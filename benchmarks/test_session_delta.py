"""Delta-session transmission matrix: the PR-7 wire-format numbers.

Streams the flight-path workload as progressive-transmission sessions
(``delta`` transport: varint-coded delta frames over
:class:`~repro.core.streaming.EngineSession`) and as stateless
re-query (``naive`` transport: every frame a full keyframe), at a
warm step (small camera motion, heavy overlap) and a churny step.
Every run's schema-versioned report is merged into ``BENCH_7.json``
(the nightly ``scripts/bench_compare.py`` gate reads it) and the
summary table lands in ``results/*.csv``.

Asserted (guards env-tunable so the CI smoke job can run short):

* the warm cell ships ``REPRO_SESSION_REDUCTION`` (default 5x) fewer
  bytes-on-wire than naive re-query — the ISSUE 7 acceptance
  criterion;
* even the churny cell beats naive on bytes;
* every frame decodes client-side to a mesh node-id-identical to the
  engine's answer (``verify=True`` raises on divergence);
* every report validates against :data:`SESSION_REPORT_SCHEMA`.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from benchmarks.conftest import emit
from repro.bench.openloop import (
    SESSION_TRANSPORTS,
    OpenLoopConfig,
    run_delta_sessions,
    validate_session_report,
)
from repro.bench.reporting import SeriesTable
from repro.core import DirectMeshStore
from repro.core.cache import SemanticCache
from repro.core.engine import QueryEngine
from repro.obs.metrics import MetricsRegistry
from repro.storage import Database
from repro.terrain import dataset_by_name

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_7.json"

N_FRAMES = int(os.environ.get("REPRO_SESSION_FRAMES", "200"))
#: Warm-cell bytes-on-wire reduction the gate demands (naive/delta).
REDUCTION = float(os.environ.get("REPRO_SESSION_REDUCTION", "5.0"))
WORKERS = 4
SESSIONS = 4
POOL_PAGES = 48
CACHE_BYTES = 1 << 22

#: (label, step_frac): the warm cell is the acceptance criterion —
#: small camera steps, heavily overlapping frames; the churny cell
#: moves a third of the ROI per frame and only has to beat naive.
STEPS = (("warm", 0.03), ("churny", 0.3))


def _merge_bench_json(section: str, payload: dict) -> None:
    """Merge one measurement into ``BENCH_7.json`` (read-modify-write:
    tests may run in any subset/order)."""
    data = {}
    if BENCH_JSON.exists():
        data = json.loads(BENCH_JSON.read_text(encoding="ascii"))
    data["bench"] = 7
    data[section] = payload
    BENCH_JSON.write_text(
        json.dumps(data, indent=2, sort_keys=True) + "\n", encoding="ascii"
    )


@pytest.fixture(scope="module")
def session_store(tmp_path_factory):
    dataset = dataset_by_name("foothills", 4000, seed=3)
    db = Database(
        tmp_path_factory.mktemp("session_serve_db"),
        pool_pages=POOL_PAGES,
    )
    store = DirectMeshStore.build(dataset.pm, db, dataset.connections)
    yield store
    db.close()


def _config(step_frac: float) -> OpenLoopConfig:
    return OpenLoopConfig(
        offered_rate=1.0,  # Closed-loop per frame; the rate is unused.
        n_requests=N_FRAMES,
        mode="flightpath",
        seed=11,
        roi_frac=0.35,
        step_frac=step_frac,
        lod_breathe=0.05,
        sessions=SESSIONS,
    )


def _run(store, config: OpenLoopConfig, transport: str):
    with QueryEngine(
        store,
        workers=WORKERS,
        registry=MetricsRegistry(),
        cache=SemanticCache(CACHE_BYTES),
    ) as engine:
        return run_delta_sessions(engine, config, transport, verify=True)


def test_session_delta_matrix(benchmark, session_store):
    store = session_store

    def run():
        table = SeriesTable(
            "session_delta",
            f"delta sessions vs naive re-query: {N_FRAMES} frames over "
            f"{SESSIONS} sessions, bytes-on-wire and per-frame latency",
            "run",
            [
                "bytes_wire",
                "B_frame",
                "p50_ms",
                "p99_ms",
                "churn",
                "keyframes",
            ],
            meta={
                "frames": N_FRAMES,
                "sessions": SESSIONS,
                "workers": WORKERS,
                "pool_pages": POOL_PAGES,
                "cache_bytes": CACHE_BYTES,
            },
        )
        runs = []
        for label, step_frac in STEPS:
            for transport in SESSION_TRANSPORTS:
                result = _run(store, _config(step_frac), transport)
                runs.append(result.to_json())
                table.add_row(
                    f"{label}/{transport}",
                    {
                        "bytes_wire": result.bytes_wire,
                        "B_frame": round(result.bytes_per_frame, 1),
                        "p50_ms": round(result.percentile_ms(50), 2),
                        "p99_ms": round(result.percentile_ms(99), 2),
                        "churn": round(result.churn_mean, 3),
                        "keyframes": result.n_keyframes,
                    },
                )
        return runs, table

    runs, table = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(table)
    _merge_bench_json("session_delta", {"runs": runs})

    # Every report self-validates — the nightly gate consumes these.
    for report in runs:
        problems = validate_session_report(report)
        assert problems == [], (
            f"invalid report {report['transport']}: {problems}"
        )

    by_key = {
        (report["step_frac"], report["transport"]): report
        for report in runs
    }
    for label, step_frac in STEPS:
        delta = by_key[(step_frac, "delta")]
        naive = by_key[(step_frac, "naive")]
        reduction = naive["bytes_wire"] / delta["bytes_wire"]
        floor = REDUCTION if label == "warm" else 1.0
        assert reduction >= floor, (
            f"{label}: delta ships {delta['bytes_wire']} B vs naive "
            f"{naive['bytes_wire']} B — only {reduction:.1f}x "
            f"(need >= {floor:g}x)"
        )
        # Delta statefulness shows up as keyframes: one per session,
        # not one per frame.
        assert delta["n_keyframes"] == SESSIONS
        assert naive["n_keyframes"] == naive["requests"]
        assert delta["churn_mean"] < 1.0 < naive["churn_mean"] + 1e-9
