"""Ablations on Direct Mesh physical design choices (DESIGN.md).

Two stores are rebuilt over the benchmark dataset with a design knob
changed and measured against the default:

* **heap clustering** — the default clusters DM records in the STR
  packing order of their (x, y, e) segments (index-aligned); the
  alternative is Hilbert (x, y) order with LOD as tiebreak (the naive
  reading of the paper's "(x, y) clustering preserved");
* **connection-list compression** — delta+varint coded connection
  lists (the extension motivated by the paper's reference [2]) versus
  plain arrays.
"""

import tempfile
from pathlib import Path

from benchmarks.conftest import emit
from repro.bench.reporting import SeriesTable
from repro.core.direct_mesh import DirectMeshStore
from repro.geometry.primitives import Rect
from repro.geometry.spacefill import hilbert_key, normalized_quantizer
from repro.storage.database import Database
from repro.storage.heapfile import HeapFile
from repro.storage.record import encode_dm_node


def _build_hilbert_variant(dataset, database):
    """A DM store whose heap uses Hilbert-(x, y) clustering."""
    from repro.geometry.primitives import Box3
    from repro.index.rstar import RStarTree
    from repro.mesh.progressive import LOD_INFINITY

    pm = dataset.pm
    e_cap = pm.max_lod() * 1.05 + 1.0
    heap = HeapFile(database.segment("alt_nodes"))
    rtree = RStarTree(database.segment("alt_rtree"))
    bounds = Rect.from_points(n for n in pm.nodes)
    quantize = normalized_quantizer(bounds)
    ordered = sorted(
        pm.nodes, key=lambda n: (hilbert_key(*quantize(n.x, n.y)), n.e)
    )
    entries = []
    for node in ordered:
        rid = heap.insert(
            encode_dm_node(node, dataset.connections.get(node.id, []))
        )
        e_high = node.e_high if node.e_high != LOD_INFINITY else e_cap
        entries.append(
            (Box3.vertical_segment(node.x, node.y, node.e, e_high), rid)
        )
    rtree.bulk_load(entries)
    database.buffer.flush_dirty()
    return heap, rtree


def test_clustering_ablation(benchmark, env_2m, workload_2m):
    ds = env_2m.dataset

    def run():
        table = SeriesTable(
            "abl_clustering",
            "DM heap clustering: STR (index-aligned) vs Hilbert-(x, y)",
            "roi_pct",
            ["str_order", "hilbert_order"],
        )
        with tempfile.TemporaryDirectory() as tmp:
            db = Database(Path(tmp) / "db", pool_pages=256)
            heap, rtree = _build_hilbert_variant(ds, db)
            from repro.geometry.primitives import Box3
            from repro.storage.record import decode_dm_node

            lod = workload_2m.average_lod()
            centers = workload_2m.centers()[:8]
            for fraction in (0.05, 0.10, 0.20):
                str_total = alt_total = 0
                for center in centers:
                    roi = workload_2m.roi(fraction, center)
                    env_2m.database.begin_measured_query()
                    env_2m.dm.uniform_query(roi, lod)
                    str_total += env_2m.database.disk_accesses
                    db.begin_measured_query()
                    # reprolint: disable=R2 ablation measures the bare index
                    rids = rtree.search(Box3.from_rect(roi, lod, lod))
                    for payload in heap.read_many(sorted(rids)):
                        decode_dm_node(payload)
                    alt_total += db.disk_accesses
                table.add_row(
                    fraction * 100,
                    {
                        "str_order": round(str_total / len(centers), 1),
                        "hilbert_order": round(alt_total / len(centers), 1),
                    },
                )
            db.close()
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(table)
    # Index-aligned clustering should not lose to the naive order.
    for _, row in table.rows:
        assert row["str_order"] <= row["hilbert_order"] * 1.15


def test_compression_ablation(benchmark, env_2m, workload_2m):
    ds = env_2m.dataset

    def run():
        table = SeriesTable(
            "abl_compression",
            "connection-list storage: plain arrays vs delta+varint",
            "metric",
            ["plain", "compressed"],
        )
        with tempfile.TemporaryDirectory() as tmp:
            db = Database(Path(tmp) / "db", pool_pages=256)
            comp = DirectMeshStore.build(
                ds.pm,
                db,
                ds.connections,
                prefix="comp",
                compress_connections=True,
            )
            # Cached environments are opened, not built, so read page
            # counts from the segments rather than build reports.
            plain_pages = env_2m.database.segment_pages("dm_nodes")
            comp_pages = db.segment_pages("comp_nodes")
            table.add_row(
                0, {"plain": plain_pages, "compressed": comp_pages}
            )
            lod = workload_2m.average_lod()
            plain_da = comp_da = 0
            centers = workload_2m.centers()[:8]
            for center in centers:
                roi = workload_2m.roi(0.10, center)
                env_2m.database.begin_measured_query()
                plain_result = env_2m.dm.uniform_query(roi, lod)
                plain_da += env_2m.database.disk_accesses
                db.begin_measured_query()
                comp_result = comp.uniform_query(roi, lod)
                comp_da += db.disk_accesses
                assert set(plain_result.nodes) == set(comp_result.nodes)
            table.add_row(
                1,
                {
                    "plain": round(plain_da / len(centers), 1),
                    "compressed": round(comp_da / len(centers), 1),
                },
            )
            db.close()
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(table)
    pages_row = table.rows[0][1]
    da_row = table.rows[1][1]
    assert pages_row["compressed"] < pages_row["plain"]
    assert da_row["compressed"] <= da_row["plain"] * 1.05
