"""The DM storage-overhead claim.

Paper Section 1/4: the topology encoding reconstructs approximations
"with a very small overhead".  We compare bytes per node of the PM and
DM record formats (the delta is the connection list) and the index
sizes on both datasets.
"""

import pytest

from benchmarks.conftest import emit
from repro.bench.figures import storage_overhead_table
from repro.storage.record import PM_RECORD_SIZE


@pytest.mark.parametrize("which", ["2m", "17m"])
def test_storage_overhead(benchmark, env_2m, env_17m, which):
    env = env_2m if which == "2m" else env_17m
    table = benchmark.pedantic(
        lambda: storage_overhead_table(env), rounds=1, iterations=1
    )
    table.experiment = f"tab_storage_{which}"
    emit(table)
    _, row = table.rows[0]
    # The DM record (incl. connection list) stays within ~2.5x of the
    # PM record: a small constant per-node overhead, not the
    # prohibitive full-connectivity blow-up of Section 4's naive
    # alternative (hundreds of entries per node).
    assert row["PM"] == PM_RECORD_SIZE
    assert row["DM"] <= PM_RECORD_SIZE * 2.5


def test_index_smaller_than_data(benchmark, env_2m):
    def run():
        db = env_2m.database
        return (
            db.segment_pages("dm_nodes"),
            db.segment_pages("dm_rtree"),
        )

    heap_pages, index_pages = benchmark.pedantic(run, rounds=1, iterations=1)
    assert index_pages < heap_pages * 1.5
