"""Shared fixtures for the figure-regeneration benchmarks.

Dataset sizes default to 20k ("2M" analog) and 60k ("17M" analog)
points and scale with ``REPRO_SCALE``; the number of random query
locations defaults to the paper's 20 and can be lowered with
``REPRO_BENCH_LOCATIONS`` for quick runs.  Built environments are
cached under ``.data/`` so repeated benchmark runs skip construction.

Every benchmark prints its table (the paper figure's data) and writes
CSV into ``results/``.
"""

from __future__ import annotations

import os

import pytest

from repro.bench.cache import load_environment
from repro.bench.workload import Workload
from repro.terrain.datasets import scale_factor

BENCH_POINTS_2M = int(
    int(os.environ.get("REPRO_BENCH_POINTS_2M", "20000")) * scale_factor()
)
BENCH_POINTS_17M = int(
    int(os.environ.get("REPRO_BENCH_POINTS_17M", "60000")) * scale_factor()
)
BENCH_LOCATIONS = int(os.environ.get("REPRO_BENCH_LOCATIONS", "20"))


@pytest.fixture(scope="session")
def env_2m():
    """The 2M-point-analog environment (foothills)."""
    env = load_environment("foothills", BENCH_POINTS_2M)
    yield env
    env.close()


@pytest.fixture(scope="session")
def env_17m():
    """The 17M-point-analog environment (crater)."""
    env = load_environment("crater", BENCH_POINTS_17M)
    yield env
    env.close()


@pytest.fixture(scope="session")
def workload_2m(env_2m):
    return Workload(env_2m.dataset, n_locations=BENCH_LOCATIONS)


@pytest.fixture(scope="session")
def workload_17m(env_17m):
    return Workload(env_17m.dataset, n_locations=BENCH_LOCATIONS)


_capture_manager = None


@pytest.fixture(autouse=True)
def _grab_capture_manager(request):
    """Remember pytest's capture manager so emit() can bypass it.

    pytest imports this file as module ``conftest`` while the test
    modules import it as ``benchmarks.conftest`` — two distinct module
    objects — so the manager is stored on whichever of the two exist.
    """
    import sys as _sys

    manager = request.config.pluginmanager.getplugin("capturemanager")
    for name in ("conftest", "benchmarks.conftest"):
        module = _sys.modules.get(name)
        if module is not None:
            module._capture_manager = manager
    yield


def emit(table):
    """Print a result table and persist its CSV.

    Tables are printed with pytest capture disabled, so a plain
    ``pytest benchmarks/ --benchmark-only | tee bench_output.txt``
    records them (pytest captures at the file-descriptor level;
    writing to ``sys.__stdout__`` would not be enough).
    """
    path = table.to_csv("results")
    text = f"\n{table.to_text()}\n  [written to {path}]"
    if _capture_manager is not None:
        with _capture_manager.global_and_fixture_disabled():
            print(text, flush=True)
    else:
        print(text, flush=True)
