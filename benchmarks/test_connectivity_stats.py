"""Paper Section 4 in-text statistics: connection-point counts.

The paper reports that "for each point the average number of
connection points with a similar LOD is 12 in both test datasets ...
Whereas the average number of total connection points is 180 for the
2-million-point dataset and 840 for the 17-million-point dataset."

The claims to reproduce: (1) similar-LOD lists stay small and roughly
*independent of dataset size*; (2) total connection counts are much
larger and *grow* with dataset size.
"""

from benchmarks.conftest import emit
from repro.bench.figures import connection_table


def test_connection_statistics(benchmark, env_2m, env_17m):
    table = benchmark.pedantic(
        lambda: connection_table([env_2m.dataset, env_17m.dataset]),
        rounds=1,
        iterations=1,
    )
    emit(table)
    small, large = table.rows[0][1], table.rows[1][1]
    # Similar-LOD lists: small (order ~10), near-constant across sizes.
    assert 4 <= small["avg_similar"] <= 30
    assert 4 <= large["avg_similar"] <= 30
    assert abs(large["avg_similar"] - small["avg_similar"]) <= 5
    # Totals: much larger than the similar-LOD lists, growing with size
    # (our totals are a conservative lower bound — the upward closure
    # of the similar-LOD lists — so growth is clearest in the tail).
    assert small["avg_total"] > 2 * small["avg_similar"]
    assert large["avg_total"] > 2 * large["avg_similar"]
    assert large["avg_total"] >= small["avg_total"]
    assert large["max_total"] > small["max_total"]
