"""Extension experiment: the quality / disk-access frontier.

The paper fixes LOD values and compares I/O; a downstream user also
cares about the reverse view — *for a given surface accuracy, what
does each method pay?*  This experiment sweeps the LOD, measures both
the disk accesses and the actual vertical RMSE of the reconstructed
surface against the source raster, and verifies the frontier is sane:
error falls as LOD (and spend) rises, and DM's error at a given LOD
matches the other methods' (everyone returns a valid approximation —
DM is cheaper, not coarser).
"""

from benchmarks.conftest import emit
from repro.bench.reporting import SeriesTable
from repro.terrain.analysis import measure_against_field


def test_quality_vs_da(benchmark, env_2m, workload_2m):
    env = env_2m
    ds = env.dataset

    def run():
        table = SeriesTable(
            "ext_quality",
            "surface RMSE and DA per LOD (DM, uniform queries)",
            "lod_pct_of_max",
            ["rmse", "da", "nodes"],
        )
        center = workload_2m.centers()[0]
        roi = workload_2m.roi(0.10, center)
        for fraction in (0.01, 0.02, 0.05, 0.10, 0.20):
            lod = ds.pm.max_lod() * fraction
            env.database.begin_measured_query()
            result = env.dm.uniform_query(roi, lod)
            da = env.database.disk_accesses
            vertices, triangles = result.vertex_mesh()
            if not triangles:
                continue
            err = measure_against_field(
                vertices, triangles, ds.field, samples_per_side=30
            )
            table.add_row(
                fraction * 100,
                {
                    "rmse": round(err.rmse, 3),
                    "da": da,
                    "nodes": len(result),
                },
            )
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(table)
    rmse = table.column("rmse")
    da = table.column("da")
    # Finer LOD -> lower error, higher cost (monotone frontier).
    assert rmse == sorted(rmse)
    assert da == sorted(da, reverse=True)
    # The finest sweep point achieves error within its LOD tolerance
    # band (vertical errors are per-collapse; surfaces accumulate a
    # small factor).
    finest_lod = ds.pm.max_lod() * 0.01
    assert rmse[0] <= finest_lod * 4


def test_methods_equal_quality_at_matched_lod(benchmark, env_2m, workload_2m):
    """DM's savings are not bought with accuracy: at the same LOD, the
    PM baseline's mesh (same node set) has identical quality, and
    HDoV's (finer-or-equal versions) is at least as accurate."""
    env = env_2m
    ds = env.dataset

    def run():
        center = workload_2m.centers()[1]
        roi = workload_2m.roi(0.10, center)
        lod = ds.pm.max_lod() * 0.05
        dm_result = env.dm.uniform_query(roi, lod)
        pm_result = env.pm_store.uniform_query(roi, lod)
        hdov_result = env.hdov.uniform_query(roi, lod)
        vertices, triangles = dm_result.vertex_mesh()
        dm_err = measure_against_field(
            vertices, triangles, ds.field, samples_per_side=25
        )
        return (
            set(dm_result.nodes),
            set(pm_result.nodes),
            {n.e for n in hdov_result.nodes.values()},
            dm_err,
            lod,
        )

    dm_ids, pm_ids, hdov_lods, dm_err, lod = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    assert dm_ids == pm_ids  # Same approximation, by construction.
    assert all(e <= lod + 1e-9 for e in hdov_lods)  # Finer or equal.
    assert dm_err.samples > 0
