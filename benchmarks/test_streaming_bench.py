"""Benchmark: progressive streaming sessions (extension experiment).

Simulates a viewer walking across the 2M-analog terrain with a radial
LOD field, comparing the delta protocol of
:class:`~repro.core.streaming.TerrainSession` against a stateless
server that retransmits every frame.  Asserts the headline property:
small camera steps produce low churn, so the cumulative delta payload
is a fraction of stateless retransmission.
"""

from benchmarks.conftest import emit
from repro.bench.reporting import SeriesTable
from repro.core.streaming import TerrainSession
from repro.geometry.plane import RadialLodField
from repro.geometry.primitives import Rect
from repro.storage.record import dm_record_size


def test_streaming_churn_vs_step(benchmark, env_2m, workload_2m):
    env = env_2m
    ds = env.dataset
    bounds = ds.bounds()
    roi_h = bounds.height * 0.4
    roi_w = bounds.width * 0.4
    e_min = ds.pm.lod_percentile(0.85)
    e_max = ds.pm.max_lod()
    rate = e_max / (roi_h * 8)

    def view_at(vy: float) -> RadialLodField:
        roi = Rect(
            bounds.center.x - roi_w / 2,
            vy,
            bounds.center.x + roi_w / 2,
            vy + roi_h,
        )
        return RadialLodField(
            roi, (bounds.center.x, vy), rate, e_min, e_max
        )

    def run():
        table = SeriesTable(
            "ext_streaming",
            "delta streaming: churn and payload vs camera step size",
            "step_pct_of_view",
            ["avg_churn_pct", "delta_bytes", "stateless_bytes"],
        )
        for step_fraction in (0.02, 0.05, 0.10, 0.25):
            session = TerrainSession(env.dm)
            vy = bounds.min_y
            session.update(view_at(vy))  # Prime the client.
            churn_total = 0.0
            delta_bytes = 0
            stateless_bytes = 0
            n_steps = 6
            for _ in range(n_steps):
                vy += roi_h * step_fraction
                delta = session.update(view_at(vy))
                churn_total += delta.churn
                delta_bytes += delta.bytes_added + 8 * len(delta.removed)
                stateless_bytes += sum(
                    dm_record_size(len(r.connections))
                    for r in (
                        session._active.values()  # Frame contents.
                    )
                )
            table.add_row(
                step_fraction * 100,
                {
                    "avg_churn_pct": round(100 * churn_total / n_steps, 1),
                    "delta_bytes": delta_bytes,
                    "stateless_bytes": stateless_bytes,
                },
            )
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(table)
    # Churn grows with step size.
    churns = table.column("avg_churn_pct")
    assert churns[0] < churns[-1]
    # Small steps: deltas are a small fraction of stateless transfer.
    first = table.rows[0][1]
    assert first["delta_bytes"] < first["stateless_bytes"] * 0.5
