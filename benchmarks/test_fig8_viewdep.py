"""Paper Figure 8: viewpoint-dependent queries.

Six experiments — varying ROI, varying ``e_min``, and varying angle on
each dataset — for DM single-base (SB), DM multi-base (MB), PM, and
the HDoV-tree.

Shape assertions encode the paper's claims (Section 6.2):

* "the PM and HDoV-tree have similar costs, which are much larger than
  the cost of DM" — PM is checked strictly; the DM advantage over
  HDoV is checked on the sweep as a whole;
* "DM with multi-base algorithm performances the best";
* "the performance of the DM decreases as the angle increase" (a
  larger angle means a taller query cube), while "even single-base
  method still keeps a margin of performance advantage".
"""

from benchmarks.conftest import emit
from repro.bench.figures import (
    viewdep_varying_angle,
    viewdep_varying_lod,
    viewdep_varying_roi,
)
from repro.bench.workload import (
    FIXED_ROI_17M,
    FIXED_ROI_2M,
    ROI_SWEEP_17M,
    ROI_SWEEP_2M,
)


def _assert_fig8_shape(table):
    # Multi-base is the best DM variant and beats both baselines.
    assert table.dominates("DM-MB", "PM", at_least=1.5)
    for _, row in table.rows:
        assert row["DM-MB"] <= row["DM-SB"] * 1.05


def test_fig8a_varying_roi_2m(benchmark, env_2m, workload_2m):
    table = benchmark.pedantic(
        lambda: viewdep_varying_roi(env_2m, workload_2m, ROI_SWEEP_2M, "fig8a"),
        rounds=1,
        iterations=1,
    )
    emit(table)
    _assert_fig8_shape(table)
    assert table.is_monotonic("DM-MB", increasing=True)


def test_fig8b_varying_lod_2m(benchmark, env_2m, workload_2m):
    table = benchmark.pedantic(
        lambda: viewdep_varying_lod(env_2m, workload_2m, FIXED_ROI_2M, "fig8b"),
        rounds=1,
        iterations=1,
    )
    emit(table)
    _assert_fig8_shape(table)


def test_fig8c_varying_angle_2m(benchmark, env_2m, workload_2m):
    table = benchmark.pedantic(
        lambda: viewdep_varying_angle(
            env_2m, workload_2m, FIXED_ROI_2M, "fig8c"
        ),
        rounds=1,
        iterations=1,
    )
    emit(table)
    _assert_fig8_shape(table)
    # The multi-base advantage grows with the angle: the gap between
    # SB and MB at the steepest angle exceeds the gap at the shallowest.
    first = table.rows[0][1]
    last = table.rows[-1][1]
    assert (last["DM-SB"] - last["DM-MB"]) >= (
        first["DM-SB"] - first["DM-MB"]
    )


def test_fig8d_varying_roi_17m(benchmark, env_17m, workload_17m):
    table = benchmark.pedantic(
        lambda: viewdep_varying_roi(
            env_17m, workload_17m, ROI_SWEEP_17M, "fig8d"
        ),
        rounds=1,
        iterations=1,
    )
    emit(table)
    _assert_fig8_shape(table)


def test_fig8e_varying_lod_17m(benchmark, env_17m, workload_17m):
    table = benchmark.pedantic(
        lambda: viewdep_varying_lod(
            env_17m, workload_17m, FIXED_ROI_17M, "fig8e"
        ),
        rounds=1,
        iterations=1,
    )
    emit(table)
    _assert_fig8_shape(table)


def test_fig8f_varying_angle_17m(benchmark, env_17m, workload_17m):
    table = benchmark.pedantic(
        lambda: viewdep_varying_angle(
            env_17m, workload_17m, FIXED_ROI_17M, "fig8f"
        ),
        rounds=1,
        iterations=1,
    )
    emit(table)
    _assert_fig8_shape(table)
