"""Serving throughput: queries/sec vs engine worker count.

This is the baseline future PRs measure against.  The store runs with
a small buffer pool and a simulated per-read device latency (see
``Pager.io_latency``) so the workload is I/O bound, as a disk-resident
terrain server would be; worker threads then overlap their read stalls
through the lock-striped buffer pool.

Asserted: >= 2x queries/sec at 4 workers vs 1 worker, and engine
results byte-identical to the sequential query processor.
"""

from __future__ import annotations

import random

import pytest

from benchmarks.conftest import emit
from repro.bench.reporting import SeriesTable
from repro.bench.runner import measure_throughput
from repro.core import DirectMeshStore
from repro.core.engine import UniformRequest
from repro.geometry.primitives import Rect
from repro.storage import Database
from repro.terrain import dataset_by_name

N_REQUESTS = 32
WORKER_COUNTS = [1, 2, 4, 8]
POOL_PAGES = 48          # Below the working set: queries stay cold.
IO_LATENCY_S = 0.0008    # ~1ms-class device read.


@pytest.fixture(scope="module")
def serve_store(tmp_path_factory):
    dataset = dataset_by_name("foothills", 4000, seed=3)
    db = Database(
        tmp_path_factory.mktemp("serve_db"),
        pool_pages=POOL_PAGES,
        io_latency=IO_LATENCY_S,
    )
    store = DirectMeshStore.build(dataset.pm, db, dataset.connections)
    yield store
    db.close()


def _workload(store, n: int, seed: int = 17) -> list[UniformRequest]:
    rng = random.Random(seed)
    extent = store.rtree.data_space.rect
    side = 0.2 * min(extent.width, extent.height)
    requests = []
    for _ in range(n):
        x0 = extent.min_x + rng.random() * (extent.width - side)
        y0 = extent.min_y + rng.random() * (extent.height - side)
        lod = (0.2 + 0.6 * rng.random()) * store.max_lod
        requests.append(
            UniformRequest(Rect(x0, y0, x0 + side, y0 + side), lod)
        )
    return requests


def test_throughput_scales_with_workers(benchmark, serve_store):
    store = serve_store
    requests = _workload(store, N_REQUESTS)

    def run():
        table = SeriesTable(
            "engine_throughput",
            "concurrent engine: queries/sec vs worker count",
            "workers",
            ["qps", "wall_s", "speedup"],
            meta={
                "requests": N_REQUESTS,
                "pool_pages": POOL_PAGES,
                "io_latency_s": IO_LATENCY_S,
            },
        )
        base_qps = None
        for workers in WORKER_COUNTS:
            report = measure_throughput(store, requests, workers)
            if base_qps is None:
                base_qps = report.qps
            table.add_row(
                workers,
                {
                    "qps": round(report.qps, 1),
                    "wall_s": round(report.wall_s, 3),
                    "speedup": round(report.qps / base_qps, 2),
                },
            )
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(table)
    qps = {workers: row["qps"] for workers, row in table.rows}
    assert qps[4] >= 2.0 * qps[1], (
        f"4 workers gave {qps[4]:.1f} qps vs {qps[1]:.1f} at 1 worker "
        f"(need >= 2x)"
    )


def test_engine_results_byte_identical_to_sequential(benchmark, serve_store):
    """The speedup does not change a single byte of any answer."""
    store = serve_store
    requests = _workload(store, 12, seed=23)

    def run():
        from repro.core.engine import QueryEngine

        store.database.flush()
        with QueryEngine(store, workers=4) as engine:
            return engine.run_batch(requests)

    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
    for request, outcome in zip(requests, outcomes):
        reference = store.uniform_query(request.roi, request.lod)
        assert outcome.result.nodes == reference.nodes
        assert outcome.result.retrieved == reference.retrieved
        assert outcome.result.vertex_mesh() == reference.vertex_mesh()
