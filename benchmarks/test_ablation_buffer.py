"""Ablation: the measurement methodology itself.

The paper flushes the database buffer before every query, so its DA
numbers are cold-cache.  This ablation quantifies how much the buffer
pool changes the picture (warm repeats, pool capacity) — evidence that
the flush-before-query protocol matters and that the reported numbers
are the conservative ones.
"""

from benchmarks.conftest import emit
from repro.bench.reporting import SeriesTable


def test_cold_vs_warm(benchmark, env_2m, workload_2m):
    env = env_2m
    ds = env.dataset
    roi = workload_2m.roi(0.10, workload_2m.centers()[0])
    lod = workload_2m.average_lod()

    def run():
        table = SeriesTable(
            "abl_buffer",
            "cold vs warm repeats of one uniform DM query",
            "repeat",
            ["cold_protocol", "warm_buffer"],
        )
        for repeat in range(3):
            env.database.begin_measured_query()  # Flush: cold.
            env.dm.uniform_query(roi, lod)
            cold = env.database.disk_accesses
            env.database.stats.reset()  # No flush: warm.
            env.dm.uniform_query(roi, lod)
            warm = env.database.disk_accesses
            table.add_row(repeat, {"cold_protocol": cold, "warm_buffer": warm})
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(table)
    for _, row in table.rows:
        assert row["warm_buffer"] < row["cold_protocol"]
    # Cold numbers are stable run to run (the methodology is sound).
    colds = table.column("cold_protocol")
    assert max(colds) == min(colds)


def test_pool_size_effect_on_cold_da(benchmark, env_2m, workload_2m):
    """Pool capacity only matters below a query's working set.

    With the flush-before-query protocol, a 256-page and a 1024-page
    pool give identical DA; a tiny pool forces re-reads within the
    query (internal index pages evicted mid-traversal) and can only
    make things worse.
    """
    from benchmarks.conftest import BENCH_POINTS_2M
    from repro.bench.cache import load_environment

    roi = workload_2m.roi(0.15, workload_2m.centers()[2])
    lod = workload_2m.average_lod()

    def run():
        table = SeriesTable(
            "abl_pool_size",
            "cold DA of one uniform PM query vs buffer pool capacity",
            "pool_pages",
            ["PM", "DM"],
        )
        for pool_pages in (8, 64, 256, 1024):
            env = load_environment(
                "foothills", BENCH_POINTS_2M, pool_pages=pool_pages
            )
            try:
                env.database.begin_measured_query()
                env.pm_store.uniform_query(roi, lod)
                pm_da = env.database.disk_accesses
                env.database.begin_measured_query()
                env.dm.uniform_query(roi, lod)
                dm_da = env.database.disk_accesses
                table.add_row(pool_pages, {"PM": pm_da, "DM": dm_da})
            finally:
                env.close()
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(table)
    big_pools = table.rows[-2:]
    assert big_pools[0][1] == big_pools[1][1]
    # Tiny pools cannot beat large ones under the cold protocol.
    assert table.rows[0][1]["PM"] >= big_pools[0][1]["PM"]
    assert table.rows[0][1]["DM"] >= big_pools[0][1]["DM"]
