"""Cluster fast path A/B: batched run decoding vs the per-node oracle.

Serves the same random uniform and view-dependent workloads through
``QueryEngine(clustered=True)`` (one contiguous page run per cluster,
bulk columnar decode, decoded-cluster cache) and through
``QueryEngine(clustered=False)`` (per-node R*-tree fetch through the
buffer pool — the PR-3 columnar path), on a disk-resident serving
profile: the buffer pool far below the working set, a milliseconds-
class simulated device read, and the request batch replayed so the
overlapping-workload steady state (what a terrain server actually
sees) dominates the cold start.  Every cell's schema-versioned report
is merged into ``BENCH_8.json`` (the nightly
``scripts/bench_compare.py`` gate reads it) and the summary table
lands in ``results/*.csv``.

Asserted (guard env-tunable so the CI smoke job can run short):

* the clustered path serves ``REPRO_CLUSTER_GUARD`` (default 2x) more
  queries/sec than the per-node path on both workloads — the ISSUE 8
  acceptance criterion;
* both paths return node-id-identical results on every probed
  request;
* every report validates against the ``cluster_fastpath`` schema.
"""

from __future__ import annotations

import json
import os
import random
from pathlib import Path

import pytest

from benchmarks.conftest import emit
from repro.bench.compare import (
    CLUSTER_REPORT_SCHEMA,
    validate_cluster_report,
)
from repro.bench.reporting import SeriesTable
from repro.bench.runner import measure_throughput
from repro.core import DirectMeshStore
from repro.core.engine import QueryEngine, SingleBaseRequest, UniformRequest
from repro.geometry.plane import QueryPlane
from repro.geometry.primitives import Rect
from repro.obs.metrics import MetricsRegistry
from repro.storage import Database
from repro.terrain import dataset_by_name
from repro.terrain.datasets import scale_factor

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_8.json"

#: Uniform-workload qps ratio the gate demands (clustered / per-node).
GUARD = float(os.environ.get("REPRO_CLUSTER_GUARD", "2.0"))
N_REQUESTS = int(os.environ.get("REPRO_CLUSTER_REQUESTS", "48"))
POINTS = int(int(os.environ.get("REPRO_CLUSTER_POINTS", "4000"))
             * scale_factor())
#: Batch replays inside the timing window: the steady state of an
#: overlapping serving workload, where the decoded-cluster cache (and
#: the per-node path's buffer pool) actually get to work.
REPEAT = int(os.environ.get("REPRO_CLUSTER_REPEAT", "3"))
WORKERS = 4
POOL_PAGES = 16          # Far below the working set: reads miss.
IO_LATENCY_S = 0.004     # ~4ms-class device read (spinning disk).

PATHS = (("clustered", True), ("per-node", False))


def _merge_bench_json(section: str, payload: dict) -> None:
    """Merge one measurement into ``BENCH_8.json`` (read-modify-write:
    tests may run in any subset/order)."""
    data = {}
    if BENCH_JSON.exists():
        data = json.loads(BENCH_JSON.read_text(encoding="ascii"))
    data["bench"] = 8
    data[section] = payload
    BENCH_JSON.write_text(
        json.dumps(data, indent=2, sort_keys=True) + "\n", encoding="ascii"
    )


@pytest.fixture(scope="module")
def cluster_store(tmp_path_factory):
    dataset = dataset_by_name("foothills", POINTS, seed=3)
    db = Database(
        tmp_path_factory.mktemp("cluster_serve_db"),
        pool_pages=POOL_PAGES,
        io_latency=IO_LATENCY_S,
    )
    store = DirectMeshStore.build(dataset.pm, db, dataset.connections)
    yield store
    db.close()


def _uniform_workload(store, n: int, seed: int = 17):
    rng = random.Random(seed)
    extent = store.rtree.data_space.rect
    side = 0.35 * min(extent.width, extent.height)
    requests = []
    for _ in range(n):
        x0 = extent.min_x + rng.random() * (extent.width - side)
        y0 = extent.min_y + rng.random() * (extent.height - side)
        lod = (0.2 + 0.6 * rng.random()) * store.max_lod
        requests.append(
            UniformRequest(Rect(x0, y0, x0 + side, y0 + side), lod)
        )
    return requests


def _viewdep_workload(store, n: int, seed: int = 29):
    rng = random.Random(seed)
    extent = store.rtree.data_space.rect
    side = 0.35 * min(extent.width, extent.height)
    requests = []
    for _ in range(n):
        x0 = extent.min_x + rng.random() * (extent.width - side)
        y0 = extent.min_y + rng.random() * (extent.height - side)
        e_a = rng.uniform(0.0, store.max_lod)
        e_b = rng.uniform(0.0, store.max_lod)
        plane = QueryPlane(
            Rect(x0, y0, x0 + side, y0 + side),
            min(e_a, e_b),
            max(e_a, e_b),
        )
        requests.append(SingleBaseRequest(plane))
    return requests


def _report(workload: str, path: str, result, registry) -> dict:
    latency = registry.histogram("engine.query_s")
    return {
        "schema": CLUSTER_REPORT_SCHEMA,
        "workload": workload,
        "path": path,
        "qps": result.qps,
        "requests": result.n_requests,
        "wall_s": result.wall_s,
        "workers": WORKERS,
        "latency_ms": {
            "p50": 1000.0 * latency.percentile(50),
            "p95": 1000.0 * latency.percentile(95),
            "p99": 1000.0 * latency.percentile(99),
        },
    }


def test_cluster_fastpath_matrix(benchmark, cluster_store):
    store = cluster_store
    workloads = {
        "uniform": _uniform_workload(store, N_REQUESTS),
        "viewdep": _viewdep_workload(store, N_REQUESTS),
    }

    def run():
        table = SeriesTable(
            "cluster_fastpath",
            "cluster fast path vs per-node oracle: queries/sec and "
            "latency, cold buffer, 4 workers",
            "run",
            ["qps", "wall_s", "p50_ms", "p99_ms", "speedup"],
            meta={
                "requests": N_REQUESTS,
                "repeat": REPEAT,
                "points": POINTS,
                "workers": WORKERS,
                "pool_pages": POOL_PAGES,
                "io_latency_s": IO_LATENCY_S,
            },
        )
        runs = []
        for workload, requests in workloads.items():
            cells = []
            for path, clustered in PATHS:
                registry = MetricsRegistry()
                result = measure_throughput(
                    store,
                    requests,
                    WORKERS,
                    registry=registry,
                    clustered=clustered,
                    repeat=REPEAT,
                )
                cells.append(_report(workload, path, result, registry))
            runs.extend(cells)
            per_node_qps = cells[-1]["qps"]
            for report in cells:
                table.add_row(
                    f"{workload}/{report['path']}",
                    {
                        "qps": round(report["qps"], 1),
                        "wall_s": round(report["wall_s"], 3),
                        "p50_ms": round(report["latency_ms"]["p50"], 2),
                        "p99_ms": round(report["latency_ms"]["p99"], 2),
                        "speedup": round(report["qps"] / per_node_qps, 2),
                    },
                )
        return runs, table

    runs, table = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(table)
    _merge_bench_json("cluster_fastpath", {"runs": runs})

    # Every report self-validates — the nightly gate consumes these.
    for report in runs:
        problems = validate_cluster_report(report)
        assert problems == [], (
            f"invalid report {report['workload']}/{report['path']}: "
            f"{problems}"
        )

    by_key = {(r["workload"], r["path"]): r for r in runs}
    for workload in ("uniform", "viewdep"):
        clustered = by_key[(workload, "clustered")]
        per_node = by_key[(workload, "per-node")]
        speedup = clustered["qps"] / per_node["qps"]
        floor = GUARD
        assert speedup >= floor, (
            f"{workload}: clustered served {clustered['qps']:.1f} qps "
            f"vs {per_node['qps']:.1f} per-node — only {speedup:.2f}x "
            f"(need >= {floor:g}x)"
        )


def test_cluster_results_node_id_identical(benchmark, cluster_store):
    """The speedup does not change a single node of any answer."""
    store = cluster_store
    requests = (
        _uniform_workload(store, 8, seed=23)
        + _viewdep_workload(store, 8, seed=31)
    )

    def run():
        store.database.flush()
        with QueryEngine(store, workers=WORKERS, clustered=True) as engine:
            fast = engine.run_batch(requests)
        store.database.flush()
        with QueryEngine(store, workers=WORKERS, clustered=False) as engine:
            oracle = engine.run_batch(requests)
        return fast, oracle

    fast, oracle = benchmark.pedantic(run, rounds=1, iterations=1)
    for clustered_out, oracle_out in zip(fast, oracle):
        assert clustered_out.result.nodes == oracle_out.result.nodes
        assert (
            clustered_out.result.retrieved == oracle_out.result.retrieved
        )
