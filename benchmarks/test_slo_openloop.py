"""Open-loop SLO matrix: the PR-6 serving-tier numbers.

Runs the open-loop harness at ``REPRO_SLO_RATE_MULTIPLE`` (default 2x)
the measured closed-loop capacity, per workload mode, with admission
control on and off.  Every run's schema-versioned report is merged
into ``BENCH_6.json`` (the nightly ``scripts/bench_compare.py`` gate
reads it) and the summary table lands in ``results/*.csv``.

Asserted (all guards env-tunable so the CI smoke job can run a short,
generous pass):

* total goodput-under-SLO (full + degraded) with admission on stays
  within ``REPRO_SLO_GOODPUT_FRAC`` of closed-loop capacity;
* the overload paths are actually exercised (shed/degraded > 0);
* admission keeps p999 and queue depth no worse than the ungoverned
  arm — the ungoverned arm is the latency-collapse demonstration;
* every report validates against :data:`SLO_REPORT_SCHEMA`.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from benchmarks.conftest import emit
from repro.bench.openloop import (
    OpenLoopConfig,
    measure_capacity,
    run_open_loop,
    suggest_budget,
    validate_slo_report,
)
from repro.bench.reporting import SeriesTable
from repro.core import DirectMeshStore
from repro.core.engine import CostGovernor, QueryEngine
from repro.obs.metrics import MetricsRegistry
from repro.storage import Database
from repro.terrain import dataset_by_name

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_6.json"

N_REQUESTS = int(os.environ.get("REPRO_SLO_REQUESTS", "600"))
RATE_MULTIPLE = float(os.environ.get("REPRO_SLO_RATE_MULTIPLE", "2.0"))
SLO_MS = float(os.environ.get("REPRO_SLO_MS", "80.0"))
WORKERS = 4
POOL_PAGES = 48          # Below the working set: misses stay cold.
IO_LATENCY_S = 0.003     # Slow-device class: keeps capacity in a range
                         # one dispatcher thread can oversubscribe 2x.

#: Total goodput (full + degraded) with admission on must reach this
#: fraction of closed-loop capacity.  0.8 = the acceptance criterion
#: ("within 20% of capacity"); the smoke job relaxes it.
GOODPUT_FRAC = float(os.environ.get("REPRO_SLO_GOODPUT_FRAC", "0.8"))
#: The ungoverned arm must show at least this ratio of p99 latency
#: versus the governed arm (1.0 = merely "no better", generous).
COLLAPSE_GUARD = float(os.environ.get("REPRO_SLO_COLLAPSE_GUARD", "1.0"))

MODES = ("zipf", "flightpath")


def _merge_bench_json(section: str, payload: dict) -> None:
    """Merge one measurement into ``BENCH_6.json`` (read-modify-write:
    tests may run in any subset/order)."""
    data = {}
    if BENCH_JSON.exists():
        data = json.loads(BENCH_JSON.read_text(encoding="ascii"))
    data["bench"] = 6
    data[section] = payload
    BENCH_JSON.write_text(
        json.dumps(data, indent=2, sort_keys=True) + "\n", encoding="ascii"
    )


@pytest.fixture(scope="module")
def slo_store(tmp_path_factory):
    dataset = dataset_by_name("foothills", 4000, seed=3)
    db = Database(
        tmp_path_factory.mktemp("slo_serve_db"),
        pool_pages=POOL_PAGES,
        io_latency=IO_LATENCY_S,
    )
    store = DirectMeshStore.build(dataset.pm, db, dataset.connections)
    yield store
    db.close()


def _config(mode: str, offered_rate: float) -> OpenLoopConfig:
    return OpenLoopConfig(
        offered_rate=offered_rate,
        n_requests=N_REQUESTS,
        mode=mode,
        seed=11,
        slo_ms=SLO_MS,
    )


def _run(store, config: OpenLoopConfig, admission: bool):
    governor = None
    if admission:
        governor = CostGovernor(
            store.cost_model,
            budget=suggest_budget(store, config, WORKERS),
        )
    with QueryEngine(
        store,
        workers=WORKERS,
        registry=MetricsRegistry(),
        governor=governor,
    ) as engine:
        return run_open_loop(engine, config)


def test_open_loop_matrix(benchmark, slo_store):
    store = slo_store

    def run():
        capacity = measure_capacity(store, _config("zipf", 1.0), WORKERS)
        offered = RATE_MULTIPLE * capacity
        table = SeriesTable(
            "slo_openloop",
            f"open-loop at {RATE_MULTIPLE:g}x capacity "
            f"({capacity:.0f} qps closed-loop): goodput under "
            f"{SLO_MS:.0f}ms SLO",
            "run",
            [
                "p50_ms",
                "p99_ms",
                "p999_ms",
                "goodput",
                "degraded_goodput",
                "shed",
                "max_queue",
            ],
            meta={
                "requests": N_REQUESTS,
                "workers": WORKERS,
                "pool_pages": POOL_PAGES,
                "io_latency_s": IO_LATENCY_S,
                "capacity_qps": round(capacity, 1),
                "rate_multiple": RATE_MULTIPLE,
            },
        )
        runs = []
        for mode in MODES:
            for admission in (True, False):
                result = _run(store, _config(mode, offered), admission)
                report = result.to_json()
                report["capacity_qps"] = round(capacity, 1)
                report["rate_multiple"] = RATE_MULTIPLE
                runs.append(report)
                label = f"{mode}/{'adm' if admission else 'noadm'}"
                table.add_row(
                    label,
                    {
                        "p50_ms": round(result.percentile_ms(50), 2),
                        "p99_ms": round(result.percentile_ms(99), 2),
                        "p999_ms": round(result.percentile_ms(99.9), 2),
                        "goodput": round(result.goodput_qps, 1),
                        "degraded_goodput": round(
                            result.degraded_goodput_qps, 1
                        ),
                        "shed": result.n_shed,
                        "max_queue": result.max_queue_depth,
                    },
                )
        return capacity, runs, table

    capacity, runs, table = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(table)
    _merge_bench_json(
        "slo_openloop",
        {
            "capacity_qps": round(capacity, 1),
            "rate_multiple": RATE_MULTIPLE,
            "requests": N_REQUESTS,
            "io_latency_s": IO_LATENCY_S,
            "workers": WORKERS,
            "runs": runs,
        },
    )

    # Every report self-validates — the nightly gate consumes these.
    for report in runs:
        problems = validate_slo_report(report)
        assert problems == [], f"invalid report {report['mode']}: {problems}"

    by_key = {
        (report["mode"], report["admission"]): report for report in runs
    }
    for mode in MODES:
        governed = by_key[(mode, True)]
        ungoverned = by_key[(mode, False)]
        total_goodput = (
            governed["goodput_qps"] + governed["degraded_goodput_qps"]
        )
        assert total_goodput >= GOODPUT_FRAC * capacity, (
            f"{mode}: goodput {total_goodput:.0f} qps under "
            f"{GOODPUT_FRAC}x capacity ({capacity:.0f})"
        )
        overload_served = (
            governed["counts"]["shed"]
            + governed["counts"]["overload_degraded"]
        )
        assert overload_served > 0, (
            f"{mode}: a {RATE_MULTIPLE:g}x overload never exercised the "
            f"degrade/shed paths"
        )
        assert governed["counts"]["errors"] == 0, (
            f"{mode}: overload produced errors instead of degraded "
            f"results"
        )
        # Bounded tail + queue: the governed arm may not be worse than
        # the collapse arm on either axis.
        assert (
            governed["latency_ms"]["p999"]
            <= ungoverned["latency_ms"]["p999"]
        ), f"{mode}: admission made p999 worse"
        assert (
            governed["max_queue_depth"] <= ungoverned["max_queue_depth"]
        ), f"{mode}: admission made the queue deeper"
        # And the ungoverned arm shows the collapse admission prevents.
        assert (
            ungoverned["latency_ms"]["p99"]
            >= COLLAPSE_GUARD * governed["latency_ms"]["p99"]
        ), (
            f"{mode}: no latency collapse without admission "
            f"(noadm p99 {ungoverned['latency_ms']['p99']}ms vs adm "
            f"{governed['latency_ms']['p99']}ms)"
        )
