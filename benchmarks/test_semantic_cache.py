"""Semantic cache + vectorized kernels: the PR-3 performance numbers.

Three measurements, all persisted to ``results/*.csv`` and merged into
the machine-readable ``BENCH_3.json`` at the repo root:

* **cache throughput** — queries/sec with and without the semantic
  cache over a repeated, overlapping workload, per worker count.  The
  guard only requires cached >= uncached (``REPRO_CACHE_GUARD``,
  default 1.0 — generous so CI boxes never flake); the measured
  speedup lands in the JSON.
* **hit-rate sweep** — cache hit rate and qps vs cache budget, showing
  the byte-budgeted LRU trading hits for memory.
* **filter microbench** — the vectorized ``filter_uniform`` /
  ``filter_to_plane`` kernels vs their scalar oracles on a >= 10k
  record page (guard ``REPRO_VEC_GUARD``, default 1.5x).
"""

from __future__ import annotations

import json
import os
import random
import time
from pathlib import Path

import pytest

from benchmarks.conftest import emit
from repro.bench.reporting import SeriesTable
from repro.bench.runner import measure_throughput
from repro.core import DirectMeshStore, SemanticCache
from repro.core.engine import UniformRequest
from repro.core.query import (
    filter_to_plane,
    filter_to_plane_columnar,
    filter_uniform,
    filter_uniform_columnar,
)
from repro.geometry.plane import QueryPlane
from repro.geometry.primitives import Rect
from repro.mesh.progressive import PMNode
from repro.storage import Database
from repro.storage.record import (
    decode_dm_node,
    decode_dm_nodes_columnar,
    encode_dm_node,
)
from repro.terrain import dataset_by_name

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_3.json"

N_REQUESTS = 24
REPEAT = 10              # Replays per measurement: the cache's workload.
WORKER_COUNTS = [1, 2, 4]
POOL_PAGES = 48          # Below the working set: misses stay cold.
IO_LATENCY_S = 0.0008    # ~1ms-class device read.

CACHE_GUARD = float(os.environ.get("REPRO_CACHE_GUARD", "1.0"))
VEC_GUARD = float(os.environ.get("REPRO_VEC_GUARD", "1.5"))


def _merge_bench_json(section: str, payload: dict) -> None:
    """Merge one measurement into ``BENCH_3.json`` (tests may run in
    any subset/order, so the file is read-modify-write)."""
    data = {}
    if BENCH_JSON.exists():
        data = json.loads(BENCH_JSON.read_text(encoding="ascii"))
    data["bench"] = 3
    data[section] = payload
    BENCH_JSON.write_text(
        json.dumps(data, indent=2, sort_keys=True) + "\n", encoding="ascii"
    )


@pytest.fixture(scope="module")
def serve_store(tmp_path_factory):
    dataset = dataset_by_name("foothills", 4000, seed=3)
    db = Database(
        tmp_path_factory.mktemp("cache_serve_db"),
        pool_pages=POOL_PAGES,
        io_latency=IO_LATENCY_S,
    )
    store = DirectMeshStore.build(dataset.pm, db, dataset.connections)
    yield store
    db.close()


def _workload(store, n: int, seed: int = 17) -> list[UniformRequest]:
    """Overlapping ROIs over a few hotspots — a map-server workload."""
    rng = random.Random(seed)
    extent = store.rtree.data_space.rect
    side = 0.25 * min(extent.width, extent.height)
    hotspots = [
        (
            extent.min_x + rng.random() * (extent.width - side),
            extent.min_y + rng.random() * (extent.height - side),
        )
        for _ in range(max(2, n // 6))
    ]
    requests = []
    for _ in range(n):
        x0, y0 = rng.choice(hotspots)
        jitter = 0.1 * side
        x0 = max(extent.min_x, x0 + (rng.random() - 0.5) * jitter)
        y0 = max(extent.min_y, y0 + (rng.random() - 0.5) * jitter)
        lod = (0.2 + 0.6 * rng.random()) * store.max_lod
        requests.append(
            UniformRequest(Rect(x0, y0, x0 + side, y0 + side), lod)
        )
    return requests


def test_cache_throughput_on_repeated_workload(benchmark, serve_store):
    """qps with the semantic cache on vs off, per worker count."""
    store = serve_store
    requests = _workload(store, N_REQUESTS)

    def run():
        table = SeriesTable(
            "cache_throughput",
            "semantic cache: queries/sec, cached vs uncached",
            "workers",
            ["qps_uncached", "qps_cached", "speedup", "hit%"],
            meta={
                "requests": N_REQUESTS,
                "repeat": REPEAT,
                "pool_pages": POOL_PAGES,
                "io_latency_s": IO_LATENCY_S,
                "prefetch_e": 0.0,
            },
        )
        for workers in WORKER_COUNTS:
            cold = measure_throughput(
                store, requests, workers, repeat=REPEAT
            )
            cache = SemanticCache(64 << 20)
            warm = measure_throughput(
                store, requests, workers, cache=cache, repeat=REPEAT
            )
            table.add_row(
                workers,
                {
                    "qps_uncached": round(cold.qps, 1),
                    "qps_cached": round(warm.qps, 1),
                    "speedup": round(warm.qps / cold.qps, 2),
                    "hit%": round(100.0 * warm.cache_hit_rate, 1),
                },
            )
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(table)
    _merge_bench_json(
        "cache_throughput",
        {
            "requests": N_REQUESTS,
            "repeat": REPEAT,
            "io_latency_s": IO_LATENCY_S,
            "rows": [
                {"workers": workers, **values}
                for workers, values in table.rows
            ],
        },
    )
    for workers, values in table.rows:
        assert values["qps_cached"] >= CACHE_GUARD * values["qps_uncached"], (
            f"cached qps {values['qps_cached']} below "
            f"{CACHE_GUARD}x uncached {values['qps_uncached']} "
            f"at {workers} workers"
        )


def test_cache_hit_rate_vs_budget(benchmark, serve_store):
    """The LRU byte budget trading hit rate for memory."""
    store = serve_store
    requests = _workload(store, 60, seed=29)
    budgets_kb = [8, 32, 128, 1024]

    def run():
        table = SeriesTable(
            "cache_hit_rate",
            "semantic cache: hit rate vs byte budget",
            "cache_kb",
            ["hit%", "qps", "evictions"],
            meta={"requests": 60, "repeat": REPEAT},
        )
        for kb in budgets_kb:
            cache = SemanticCache(kb * 1024)
            report = measure_throughput(
                store, requests, workers=4, cache=cache, repeat=REPEAT
            )
            table.add_row(
                kb,
                {
                    "hit%": round(100.0 * report.cache_hit_rate, 1),
                    "qps": round(report.qps, 1),
                    "evictions": cache.stats().evictions,
                },
            )
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(table)
    _merge_bench_json(
        "hit_rate_sweep",
        {
            "rows": [
                {"cache_kb": kb, **values} for kb, values in table.rows
            ],
        },
    )
    hit = {kb: row["hit%"] for kb, row in table.rows}
    assert hit[budgets_kb[-1]] >= hit[budgets_kb[0]], (
        "a larger cache budget must not lower the hit rate"
    )


def _microbench_records(n: int, seed: int = 7):
    rng = random.Random(seed)
    payloads = []
    for i in range(n):
        node = PMNode(
            i,
            rng.uniform(0.0, 100.0),
            rng.uniform(0.0, 100.0),
            rng.uniform(0.0, 10.0),
            error=0.0,
        )
        node.e = rng.uniform(0.0, 4.0)
        node.e_high = node.e + rng.uniform(0.0, 2.0)
        payloads.append(
            encode_dm_node(node, sorted(rng.sample(range(n), 6)))
        )
    return (
        payloads,
        [decode_dm_node(p) for p in payloads],
        decode_dm_nodes_columnar(payloads),
    )


def _best_of(fn, rounds: int = 5) -> float:
    best = float("inf")
    for _ in range(rounds):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def test_vectorized_filter_microbench(benchmark):
    """The vectorized path vs the scalar path at >= 10k records.

    Each row measures what the engine actually runs per range query:
    decoding the fetched payloads and filtering them — per-record
    ``struct`` decode + Python-loop filter (scalar) against
    ``decode_dm_nodes_columnar`` + numpy mask (vectorized).
    """
    n = 20000
    payloads, records, columns = _microbench_records(n)
    roi = Rect(20.0, 20.0, 80.0, 80.0)
    lod = 2.0
    plane = QueryPlane(roi, 0.5, 4.0)

    def run():
        pairs = {
            "filter_uniform": (
                lambda: filter_uniform(
                    [decode_dm_node(p) for p in payloads], roi, lod
                ),
                lambda: filter_uniform_columnar(
                    decode_dm_nodes_columnar(payloads), roi, lod
                ),
            ),
            "filter_to_plane": (
                lambda: filter_to_plane(
                    [decode_dm_node(p) for p in payloads], plane
                ),
                lambda: filter_to_plane_columnar(
                    decode_dm_nodes_columnar(payloads), plane
                ),
            ),
        }
        table = SeriesTable(
            "vectorized_filters",
            "decode+filter: scalar path vs vectorized path (best-of-5 s)",
            "kernel",
            ["scalar_ms", "vectorized_ms", "speedup"],
            meta={"records": n},
        )
        for name, (scalar_fn, vector_fn) in pairs.items():
            scalar_s = _best_of(scalar_fn)
            vector_s = _best_of(vector_fn)
            table.add_row(
                name,
                {
                    "scalar_ms": round(scalar_s * 1e3, 3),
                    "vectorized_ms": round(vector_s * 1e3, 3),
                    "speedup": round(scalar_s / vector_s, 2),
                },
            )
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(table)
    # Correctness rides along: both kernels agree on this page.
    assert filter_uniform(records, roi, lod) == filter_uniform_columnar(
        columns, roi, lod
    )
    _merge_bench_json(
        "filter_microbench",
        {
            "records": n,
            "rows": [
                {"kernel": kernel, **values}
                for kernel, values in table.rows
            ],
        },
    )
    for kernel, values in table.rows:
        assert values["speedup"] >= VEC_GUARD, (
            f"{kernel}: vectorized speedup {values['speedup']}x below "
            f"the {VEC_GUARD}x guard at {n} records"
        )
