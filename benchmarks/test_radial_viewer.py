"""Extension experiment: the radial viewer model (``f(m.e, d) <= E``).

The paper presents its viewpoint-dependent machinery with a planar LOD
ramp for simplicity; the underlying viewer model it cites is
distance-based.  This experiment runs the literal radial field through
the same processors and checks the paper's conclusions carry over:
multi-base still wins, PM still pays the traversal tax.
"""

from benchmarks.conftest import emit
from repro.bench.reporting import SeriesTable
from repro.bench.runner import average_over
from repro.geometry.plane import RadialLodField


def test_radial_viewer_costs(benchmark, env_2m, workload_2m):
    env = env_2m
    ds = env.dataset

    def measure_at(center, roi_fraction):
        roi = workload_2m.roi(roi_fraction, center)
        field = RadialLodField(
            roi,
            viewer=(roi.center.x, roi.min_y - roi.height * 0.05),
            rate=ds.pm.max_lod() / (roi.height * 3),
            e_min=ds.pm.lod_percentile(0.5),
            e_max=ds.pm.max_lod(),
        )
        db = env.database
        out = {}
        db.begin_measured_query()
        env.dm.single_base_query(field)
        out["DM-SB"] = db.disk_accesses
        db.begin_measured_query()
        env.dm.multi_base_query(field)
        out["DM-MB"] = db.disk_accesses
        db.begin_measured_query()
        env.pm_store.viewdep_query(field)
        out["PM"] = db.disk_accesses
        return out

    def run():
        table = SeriesTable(
            "ext_radial",
            "radial viewer model: DA by ROI",
            "roi_pct",
            ["DM-SB", "DM-MB", "PM"],
            meta={"dataset": ds.name, "n_points": ds.n_points},
        )
        centers = workload_2m.centers()[:10]
        for fraction in (0.05, 0.10, 0.20):
            table.add_row(
                fraction * 100,
                average_over(
                    centers, lambda c: measure_at(c, fraction)
                ),
            )
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(table)
    assert table.dominates("DM-MB", "PM", at_least=1.5)
    for _, row in table.rows:
        assert row["DM-MB"] <= row["DM-SB"] * 1.05


def test_radial_equals_reference(benchmark, env_2m, workload_2m):
    """Correctness under the radial model at bench scale."""
    from repro.mesh.selective import viewdep_query_ref

    env = env_2m
    ds = env.dataset

    def run():
        center = workload_2m.centers()[3]
        roi = workload_2m.roi(0.10, center)
        field = RadialLodField(
            roi,
            viewer=(roi.center.x, roi.min_y),
            rate=ds.pm.max_lod() / (roi.height * 2),
            e_min=ds.pm.lod_percentile(0.4),
            e_max=ds.pm.max_lod(),
        )
        result = env.dm.multi_base_query(field)
        reference = viewdep_query_ref(ds.pm, field)
        return set(result.nodes), reference

    got, want = benchmark.pedantic(run, rounds=1, iterations=1)
    assert got == want
