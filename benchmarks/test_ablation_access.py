"""Ablations: I/O access patterns and HDoV's visibility machinery.

* **abl_access_pattern** — the paper reports one number (disk access
  count); the trace recorder characterises *how* each method reads:
  HDoV streams whole versions (highly sequential), PM hops through
  B+-tree paths (scattered), DM sits between.  On spinning media the
  gap between PM and the others would widen further.
* **abl_visibility** — the paper observes HDoV's visibility selection
  "does not help ... much because obstruction among the areas of the
  terrain is not as much as in the synthetic city model".  Comparing
  the HDoV-tree against the plain LOD-R-tree (identical structure,
  no DoV) on our open terrain reproduces that: the two cost nearly
  the same.
"""

import tempfile
from pathlib import Path

from benchmarks.conftest import emit
from repro.bench.reporting import SeriesTable
from repro.index.hdov import LodRTree
from repro.storage.database import Database
from repro.storage.trace import IOTracer


def test_access_patterns(benchmark, env_2m, workload_2m):
    env = env_2m
    ds = env.dataset
    lod = workload_2m.average_lod()

    def run():
        table = SeriesTable(
            "abl_access_pattern",
            "physical-read pattern per method (uniform query, ROI 10%)",
            "metric_row",
            ["DM", "PM", "HDoV"],
        )
        reads: dict[str, float] = {}
        seq: dict[str, float] = {}
        runs: dict[str, float] = {}
        centers = workload_2m.centers()[:8]
        for name, runner in (
            ("DM", lambda roi: env.dm.uniform_query(roi, lod)),
            ("PM", lambda roi: env.pm_store.uniform_query(roi, lod)),
            ("HDoV", lambda roi: env.hdov.uniform_query(roi, lod)),
        ):
            total_reads = total_seq = total_run = 0.0
            for center in centers:
                roi = workload_2m.roi(0.10, center)
                env.database.begin_measured_query()
                tracer = IOTracer.attach(env.database.stats)
                runner(roi)
                trace = tracer.detach()
                total_reads += len(trace)
                total_seq += trace.sequentiality
                trace_runs = trace.runs()
                total_run += max(trace_runs) if trace_runs else 0
            reads[name] = round(total_reads / len(centers), 1)
            seq[name] = round(total_seq / len(centers), 2)
            runs[name] = round(total_run / len(centers), 1)
        table.add_row(0, reads)  # Row 0: reads.
        table.add_row(1, seq)  # Row 1: sequentiality.
        table.add_row(2, runs)  # Row 2: longest run.
        table.meta["rows"] = "0=reads, 1=sequentiality, 2=longest_run"
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(table)
    seq_row = table.rows[1][1]
    assert seq_row["HDoV"] >= seq_row["DM"]
    assert seq_row["HDoV"] >= seq_row["PM"]
    reads_row = table.rows[0][1]
    assert reads_row["PM"] > reads_row["DM"]


def test_visibility_ablation(benchmark, env_2m, workload_2m):
    env = env_2m
    ds = env.dataset

    def run():
        table = SeriesTable(
            "abl_visibility",
            "HDoV-tree vs plain LOD-R-tree (open terrain)",
            "roi_pct",
            ["HDoV", "LOD-R-tree"],
        )
        with tempfile.TemporaryDirectory() as tmp:
            db = Database(Path(tmp) / "db", pool_pages=256)
            grid = 4
            lodrt = LodRTree.build(
                ds.pm,
                ds.field,
                db,
                connections=ds.connections,
                grid=grid,
            )
            lod = workload_2m.average_lod()
            centers = workload_2m.centers()[:8]
            for fraction in (0.05, 0.10, 0.20):
                hdov_total = lodrt_total = 0
                for center in centers:
                    roi = workload_2m.roi(fraction, center)
                    env.database.begin_measured_query()
                    env.hdov.uniform_query(roi, lod)
                    hdov_total += env.database.disk_accesses
                    db.begin_measured_query()
                    lodrt.uniform_query(roi, lod)
                    lodrt_total += db.disk_accesses
                table.add_row(
                    fraction * 100,
                    {
                        "HDoV": round(hdov_total / len(centers), 1),
                        "LOD-R-tree": round(lodrt_total / len(centers), 1),
                    },
                )
            db.close()
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(table)
    # The paper's observation: on open terrain, visibility selection
    # changes little — the two structures cost about the same.
    for _, row in table.rows:
        ratio = row["HDoV"] / max(1.0, row["LOD-R-tree"])
        assert 0.5 <= ratio <= 2.0
