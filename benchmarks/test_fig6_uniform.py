"""Paper Figure 6: viewpoint-independent ("uniform mesh") queries.

Four experiments — varying ROI and varying LOD on each dataset —
measuring average disk accesses over random query locations for
Direct Mesh (DM), PM over the LOD-quadtree (PM), and the HDoV-tree.

Shape assertions encode the paper's claims:

* costs grow with ROI and shrink as the LOD value grows;
* "DM clearly outperforms the other two methods" — checked against PM
  at every sweep point, and against HDoV in the mid-LOD regime (at the
  coarsest/finest extremes our lean HDoV implementation is volume-
  bound and can tie; see EXPERIMENTS.md).
"""

from benchmarks.conftest import emit
from repro.bench.figures import uniform_varying_lod, uniform_varying_roi
from repro.bench.workload import (
    FIXED_ROI_17M,
    FIXED_ROI_2M,
    ROI_SWEEP_17M,
    ROI_SWEEP_2M,
)


def test_fig6a_varying_roi_2m(benchmark, env_2m, workload_2m):
    table = benchmark.pedantic(
        lambda: uniform_varying_roi(env_2m, workload_2m, ROI_SWEEP_2M, "fig6a"),
        rounds=1,
        iterations=1,
    )
    emit(table)
    assert table.dominates("DM", "PM", at_least=2.0)
    assert table.is_monotonic("DM", increasing=True)
    assert table.is_monotonic("PM", increasing=True)


def test_fig6b_varying_lod_2m(benchmark, env_2m, workload_2m):
    table = benchmark.pedantic(
        lambda: uniform_varying_lod(env_2m, workload_2m, FIXED_ROI_2M, "fig6b"),
        rounds=1,
        iterations=1,
    )
    emit(table)
    assert table.dominates("DM", "PM", at_least=1.5)
    # Coarser LOD (larger value) means fewer disk accesses.
    assert table.is_monotonic("DM", increasing=False)
    assert table.is_monotonic("PM", increasing=False)
    # DM beats HDoV in the paper's mid-LOD operating range.
    mid = [row for x, row in table.rows if 2 <= x <= 20]
    assert any(row["DM"] < row["HDoV"] for row in mid)


def test_fig6c_varying_roi_17m(benchmark, env_17m, workload_17m):
    table = benchmark.pedantic(
        lambda: uniform_varying_roi(
            env_17m, workload_17m, ROI_SWEEP_17M, "fig6c"
        ),
        rounds=1,
        iterations=1,
    )
    emit(table)
    assert table.dominates("DM", "PM", at_least=2.0)
    assert table.is_monotonic("DM", increasing=True)


def test_fig6d_varying_lod_17m(benchmark, env_17m, workload_17m):
    table = benchmark.pedantic(
        lambda: uniform_varying_lod(
            env_17m, workload_17m, FIXED_ROI_17M, "fig6d"
        ),
        rounds=1,
        iterations=1,
    )
    emit(table)
    assert table.dominates("DM", "PM", at_least=1.5)
    assert table.is_monotonic("DM", increasing=False)
