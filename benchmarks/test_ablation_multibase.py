"""Ablation: the multi-base optimisation (paper formulas (1)-(9)).

Three checks beyond Figure 8's end-to-end numbers:

* the cost model's gain curve over 1, 2, 4, ... strips has the shape
  formula (7) predicts (an optimum, not monotone descent);
* formula (9): splitting the top plane *in the middle* beats
  off-centre splits, measured against the real tree;
* the planner's strip count actually reduces measured disk accesses
  versus forced single-base on steep planes.
"""

from benchmarks.conftest import emit
from repro.bench.reporting import SeriesTable
from repro.core.cost_model import MultiBasePlan


def _steep_plane(env, workload, roi_fraction=0.15):
    roi = workload.roi(roi_fraction, workload.centers()[0])
    return workload.plane(roi, env.dataset.pm.max_lod() * 0.01, 0.9)


def _forced_plan(env, plane, parts):
    strips = plane.split_across_direction(parts)
    est = sum(env.dm.cost_model.estimate_plane(s) for s in strips)
    single = env.dm.cost_model.estimate_plane(plane)
    return MultiBasePlan(strips, est, single)


def test_gain_curve_and_measured_da(benchmark, env_2m, workload_2m):
    env = env_2m
    plane = _steep_plane(env, workload_2m)

    def run():
        table = SeriesTable(
            "abl_multibase",
            "multi-base: estimated vs measured DA by strip count",
            "strips",
            ["estimated", "measured"],
        )
        for parts in (1, 2, 4, 8, 16):
            plan = _forced_plan(env, plane, parts)
            env.database.begin_measured_query()
            env.dm.multi_base_query(plane, plan=plan)
            table.add_row(
                parts,
                {
                    "estimated": round(plan.estimated_da, 1),
                    "measured": env.database.disk_accesses,
                },
            )
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(table)
    measured = table.column("measured")
    # Splitting once helps on a steep plane...
    assert min(measured[1:]) < measured[0]
    # ...but over-splitting stops paying (per-query index descents).
    assert measured[-1] >= min(measured)
    # The cost model ranks single-base vs best split correctly.
    estimated = table.column("estimated")
    assert estimated[1] < estimated[0]


def test_middle_split_beats_off_centre(benchmark, env_2m, workload_2m):
    env = env_2m
    plane = _steep_plane(env, workload_2m)

    def run():
        table = SeriesTable(
            "abl_middle_split",
            "2-way split position: estimated + measured DA",
            "split_fraction",
            ["estimated", "measured"],
        )
        from repro.core.cost_model import _split_at

        for fraction in (0.1, 0.3, 0.5, 0.7, 0.9):
            halves = _split_at(plane, fraction)
            est = sum(env.dm.cost_model.estimate_plane(h) for h in halves)
            plan = MultiBasePlan(list(halves), est, est)
            env.database.begin_measured_query()
            env.dm.multi_base_query(plane, plan=plan)
            table.add_row(
                fraction,
                {
                    "estimated": round(est, 1),
                    "measured": env.database.disk_accesses,
                },
            )
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(table)
    estimates = dict(zip(table.x_values(), table.column("estimated")))
    assert estimates[0.5] == min(estimates.values())


def test_planner_matches_or_beats_single_base(benchmark, env_2m, workload_2m):
    env = env_2m

    def run():
        table = SeriesTable(
            "abl_planner",
            "planned multi-base vs forced single-base (measured DA)",
            "angle_pct",
            ["single", "planned", "strips"],
        )
        for angle_fraction in (0.25, 0.5, 0.75, 0.9):
            roi = workload_2m.roi(0.15, workload_2m.centers()[1])
            plane = workload_2m.plane(
                roi, env.dataset.pm.max_lod() * 0.01, angle_fraction
            )
            env.database.begin_measured_query()
            env.dm.single_base_query(plane)
            single = env.database.disk_accesses
            plan = env.dm.cost_model.plan_multi_base(plane)
            env.database.begin_measured_query()
            env.dm.multi_base_query(plane, plan=plan)
            planned = env.database.disk_accesses
            table.add_row(
                angle_fraction * 100,
                {
                    "single": single,
                    "planned": planned,
                    "strips": plan.n_queries,
                },
            )
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(table)
    for _, row in table.rows:
        assert row["planned"] <= row["single"] * 1.1
