"""Cross-check a runtime lock-order dump against the static graph.

Usage::

    PYTHONPATH=src python scripts/lockwatch_check.py <dump.json> [src...]

Reads the JSON lock-order graph written by ``repro.obs.lockwatch``
(``REPRO_LOCKWATCH_OUT``), then:

1. asserts the observed acquisition-order graph is acyclic — a cycle
   here is a deadlock the scheduler simply has not lost yet; and
2. recomputes the *static* lock-order graph with the interprocedural
   lockset analysis and asserts every observed edge is predicted by
   it — an unexplained edge is a blind spot in the static analysis
   (an unannotated attribute, an unresolved call) that must be fixed,
   because it means R9 could miss a real inversion through that edge.

Exits 0 when both hold, 1 with a detailed diff otherwise.
"""

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.locksets import analyze_paths  # noqa: E402
from repro.obs.lockwatch import find_cycle  # noqa: E402


def main(argv: "list[str]") -> int:
    if not argv:
        print(
            "usage: lockwatch_check.py <dump.json> [static-src...]",
            file=sys.stderr,
        )
        return 2
    dump_path = Path(argv[0])
    static_sources = argv[1:] or [str(REPO_ROOT / "src" / "repro")]

    try:
        data = json.loads(dump_path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        print(f"lockwatch-check: cannot read {dump_path}: {exc}")
        return 1

    dynamic = {
        (src, dst): count
        for src, dst, count in data.get("edges", [])
    }
    print(
        f"lockwatch-check: {len(data.get('locks', []))} locks, "
        f"{len(dynamic)} observed ordering edges"
    )
    if not dynamic:
        print(
            "lockwatch-check: WARNING: no lock nesting observed; "
            "was REPRO_LOCKWATCH=1 set for the workload?"
        )

    failed = False

    cycle = find_cycle(dynamic)
    if cycle is not None:
        failed = True
        print(
            "lockwatch-check: FAIL: observed lock-order graph has a "
            "cycle (a latent deadlock): " + " -> ".join(cycle)
        )
    else:
        print("lockwatch-check: observed graph is acyclic")

    analysis = analyze_paths(static_sources, root=str(REPO_ROOT))
    static = set(analysis.order.edges)
    unexplained = sorted(set(dynamic) - static)
    if unexplained:
        failed = True
        print(
            "lockwatch-check: FAIL: runtime edges missing from the "
            "static lock-order graph (static-analysis blind spots):"
        )
        for src, dst in unexplained:
            print(f"  {src} -> {dst} (seen {dynamic[(src, dst)]}x)")
        print(
            "  Fix by annotating the attribute or call the analysis "
            "failed to resolve (see docs/reprolint.md)."
        )
    else:
        print(
            "lockwatch-check: every observed edge is predicted by "
            f"the static graph ({len(static)} static edges)"
        )

    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
