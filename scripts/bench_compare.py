#!/usr/bin/env python
"""Nightly bench regression gate (thin shim over repro.bench.compare).

Usage::

    python scripts/bench_compare.py BASELINE.json CANDIDATE.json \
        [--max-regression 0.25]

Exits non-zero when any admission-controlled open-loop run's p99
latency regressed past the threshold versus the committed baseline.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench.compare import DEFAULT_MAX_P99_REGRESSION, compare_files
from repro.errors import ReproError


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="committed baseline BENCH json")
    parser.add_argument("candidate", help="freshly produced BENCH json")
    parser.add_argument(
        "--max-regression",
        type=float,
        default=DEFAULT_MAX_P99_REGRESSION,
        help="tolerated fractional p99 growth (default 0.25 = 25%%)",
    )
    args = parser.parse_args(argv)
    try:
        result = compare_files(
            args.baseline, args.candidate, args.max_regression
        )
    except (OSError, ValueError, ReproError) as exc:
        print(f"bench gate error: {exc}", file=sys.stderr)
        return 2
    print(result.to_text())
    return 0 if result.ok else 1


if __name__ == "__main__":
    sys.exit(main())
