"""Live-mutation robustness drill: patches, crashes, readers, fsck.

Usage::

    PYTHONPATH=src python scripts/mutation_drill.py [--patches N]
        [--kills N] [--readers N] [--seed N]

One self-contained pass over the live-mutation contract (the fast
subset of ``tests/test_mutate.py`` + ``tests/test_stress.py`` that CI
repeats as a gate):

1. **parity** — a store evolved through N random live patches is
   node-id-identical to a store rebuilt from scratch on the final
   terrain;
2. **kill matrix** — a simulated crash at every distinct patch
   protocol point (WAL record boundaries, page writes, the meta flip)
   recovers to exactly the pre- or post-patch snapshot, with fsck
   clean apart from reclaimable orphans, which ``--repair`` removes;
3. **readers** — concurrent readers racing live commits only ever see
   some committed epoch's exact snapshot, and their outcomes are
   labeled with that epoch.

Exits 0 when every check holds, 1 with a description otherwise.
"""

import argparse
import shutil
import sys
import tempfile
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.core.cache import SemanticCache  # noqa: E402
from repro.core.direct_mesh import DirectMeshStore  # noqa: E402
from repro.core.engine import QueryEngine, UniformRequest  # noqa: E402
from repro.core.mutate import MutableStore  # noqa: E402
from repro.errors import MutationError  # noqa: E402
from repro.geometry.primitives import Rect  # noqa: E402
from repro.storage.database import Database, epoch_prefix  # noqa: E402
from repro.storage.faults import SimulatedCrash  # noqa: E402
from repro.storage.integrity import (  # noqa: E402
    repair_database,
    scrub_database,
)
from repro.storage.record import decode_dm_node  # noqa: E402
from repro.terrain.dem import DEM  # noqa: E402
from repro.terrain.gridfield import GridField  # noqa: E402

GRID = 17
TILE_VERTS = 9


def make_dem(rng: np.random.Generator) -> DEM:
    return DEM(
        GridField(rng.uniform(0.0, 30.0, (GRID, GRID)), cell_size=1.0)
    )


def clone_dem(dem: DEM) -> DEM:
    return DEM(
        GridField(
            dem.field.heights.copy(),
            cell_size=dem.field.cell_size,
            origin=dem.field.origin,
        )
    )


def random_patch(rng: np.random.Generator) -> "tuple[Rect, np.ndarray]":
    r0 = int(rng.integers(0, GRID - 1))
    c0 = int(rng.integers(0, GRID - 1))
    r1 = int(rng.integers(r0 + 1, GRID))
    c1 = int(rng.integers(c0 + 1, GRID))
    region = Rect(float(c0), float(r0), float(c1), float(r1))
    heights = rng.uniform(0.0, 30.0, (r1 - r0 + 1, c1 - c0 + 1))
    return region, heights


def store_digest(store: DirectMeshStore) -> dict:
    digest = {}
    for _rid, payload in store.heap.scan():
        record = decode_dm_node(payload)
        digest[record.id] = (
            record.x, record.y, record.z, record.e_low, record.e_high,
            record.parent, record.child1, record.child2,
            record.wing1, record.wing2, tuple(record.connections),
        )
    return digest


def crash_close(db: Database) -> None:
    db.buffer._frames.clear()
    for pager in db._pagers.values():
        pager.close()
    db._pagers.clear()
    db._closed = True


def drill_parity(workdir: Path, n_patches: int, seed: int) -> "str | None":
    rng = np.random.default_rng(seed)
    dem = make_dem(rng)
    live_dem = clone_dem(dem)
    db = Database(workdir / "parity-live")
    ms = MutableStore.build(live_dem, db, prefix="dm", tile_verts=TILE_VERTS)
    patched = clone_dem(dem)
    for _ in range(n_patches):
        region, heights = random_patch(rng)
        ms.apply_patch(region, heights)
        patched.apply_patch(region, heights)
    live = store_digest(ms.store)
    db.close()
    db2 = Database(workdir / "parity-scratch")
    fresh = MutableStore.build(
        patched, db2, prefix="dm", tile_verts=TILE_VERTS
    )
    scratch = store_digest(fresh.store)
    db2.close()
    if live != scratch:
        return (
            f"parity violated after {n_patches} patches: patched store "
            f"({len(live)} nodes) != scratch rebuild ({len(scratch)})"
        )
    print(
        f"mutation-drill: parity ok — {n_patches} patches, "
        f"{len(live)} nodes, epoch {ms.epoch}"
    )
    return None


def drill_kills(workdir: Path, n_kills: int, seed: int) -> "str | None":
    rng = np.random.default_rng(seed)
    dem = make_dem(rng)
    region, heights = random_patch(np.random.default_rng(seed + 1))

    base = workdir / "kill-base"
    db = Database(base)
    ms = MutableStore.build(
        clone_dem(dem), db, prefix="dm", tile_verts=TILE_VERTS
    )
    pre = store_digest(ms.store)
    db.close()

    events: "list[str]" = []
    scratch = workdir / "kill-dryrun"
    shutil.copytree(base, scratch)
    db = Database(scratch)
    ms = MutableStore.open(db, clone_dem(dem), prefix="dm")
    ms.apply_patch(region, heights.copy(), kill_hook=events.append)
    post = store_digest(ms.store)
    db.close()

    # Every distinct protocol label, then spread the rest evenly.
    chosen: "list[int]" = []
    seen: "set[str]" = set()
    for index, label in enumerate(events):
        if label not in seen:
            seen.add(label)
            chosen.append(index)
    step = max(1, len(events) // max(1, n_kills))
    for index in range(0, len(events), step):
        if index not in chosen:
            chosen.append(index)
    chosen.sort()

    for kill_at in chosen:
        label = events[kill_at]
        work = workdir / f"kill-{kill_at}"
        shutil.copytree(base, work)
        db = Database(work)
        ms = MutableStore.open(db, clone_dem(dem), prefix="dm")
        fired = [0]

        def hook(event: str, _n: "list[int]" = fired) -> None:
            if _n[0] == kill_at:
                _n[0] += 1
                raise SimulatedCrash(event)
            _n[0] += 1

        try:
            ms.apply_patch(region, heights.copy(), kill_hook=hook)
        except SimulatedCrash:
            pass
        else:
            return f"kill at {label}: SimulatedCrash did not propagate"
        try:
            ms.apply_patch(region, heights.copy())
        except MutationError:
            pass
        else:
            return f"kill at {label}: poisoned handle accepted a patch"
        crash_close(db)

        db = Database(work)
        epoch = db.store_epoch("dm")
        if epoch not in (0, 1):
            return f"kill at {label}: impossible epoch {epoch}"
        got = store_digest(
            DirectMeshStore.open(db, epoch_prefix("dm", epoch))
        )
        expected = pre if epoch == 0 else post
        if got != expected:
            return f"kill at {label}: hybrid snapshot at epoch {epoch}"
        report = scrub_database(db)
        if not report.ok:
            return f"kill at {label}: fsck found damage: {report.to_text()}"
        if report.orphans:
            repair_database(db, report)
            if not scrub_database(db).ok:
                return f"kill at {label}: orphan repair left damage"
        db.close()
        shutil.rmtree(work, ignore_errors=True)
    print(
        f"mutation-drill: kill matrix ok — {len(chosen)} crash points "
        f"over {len(events)} protocol events, all pre/post exact"
    )
    return None


def drill_readers(
    workdir: Path, n_patches: int, n_readers: int, seed: int
) -> "str | None":
    rng = np.random.default_rng(seed)
    dem = make_dem(rng)
    extent = dem.field.bounds()
    db = Database(workdir / "readers")
    ms = MutableStore.build(dem, db, prefix="dm", tile_verts=TILE_VERTS)
    lod = ms.store.max_lod * 0.6

    def view(store: DirectMeshStore) -> dict:
        result = store.uniform_query(extent, lod)
        return {
            nid: (r.x, r.y, r.z, tuple(r.connections))
            for nid, r in result.nodes.items()
        }

    truth = {0: view(ms.store)}
    truth_lock = threading.Lock()
    engine = QueryEngine(
        ms.store, epoch=ms.epoch, workers=n_readers,
        cache=SemanticCache(1 << 22),
    )
    ms.attach(engine)
    request = UniformRequest(extent, lod)
    stop = threading.Event()
    failures: "list[str]" = []
    served = [0]

    def reader() -> None:
        while not stop.is_set() and not failures:
            outcome = engine.submit(request).result()
            if not outcome.ok:
                failures.append(f"reader error: {outcome.error!r}")
                return
            epoch = outcome.metrics.epoch
            expected = None
            deadline = time.monotonic() + 10.0
            while expected is None and time.monotonic() < deadline:
                with truth_lock:
                    expected = truth.get(epoch)
                if expected is None:
                    time.sleep(0.002)
            got = {
                nid: (r.x, r.y, r.z, tuple(r.connections))
                for nid, r in outcome.result.nodes.items()
            }
            if got != expected:
                failures.append(
                    f"reader at epoch {epoch} saw a non-snapshot result"
                )
                return
            served[0] += 1
            time.sleep(0.001)

    threads = [
        threading.Thread(target=reader, daemon=True)
        for _ in range(n_readers)
    ]
    for thread in threads:
        thread.start()
    try:
        for _ in range(n_patches):
            if failures:
                break
            region, heights = random_patch(rng)
            report = ms.apply_patch(region, heights)
            with truth_lock:
                truth[report.to_epoch] = view(ms.store)
    finally:
        stop.set()
        for thread in threads:
            thread.join(timeout=30)
        engine.close()
        db.close()
    if failures:
        return failures[0]
    print(
        f"mutation-drill: readers ok — {served[0]} epoch-consistent "
        f"reads across {n_patches} live commits ({n_readers} threads)"
    )
    return None


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--patches", type=int, default=8)
    parser.add_argument("--kills", type=int, default=12)
    parser.add_argument("--readers", type=int, default=8)
    parser.add_argument("--seed", type=int, default=17)
    args = parser.parse_args(argv)

    workdir = Path(tempfile.mkdtemp(prefix="mutation-drill-"))
    try:
        for check in (
            drill_parity(workdir, args.patches, args.seed),
            drill_kills(workdir, args.kills, args.seed),
            drill_readers(workdir, args.patches, args.readers, args.seed),
        ):
            if check is not None:
                print(f"mutation-drill: FAIL: {check}")
                return 1
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    print("mutation-drill: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
