"""Tests for heap files, RIDs, and record codecs."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.errors import RecordError, StorageError
from repro.geometry.primitives import Rect
from repro.mesh.progressive import LOD_INFINITY, NULL_ID, PMNode
from repro.storage.database import Database
from repro.storage.heapfile import HeapFile, pack_rid, unpack_rid
from repro.storage.record import (
    PM_RECORD_SIZE,
    decode_dm_node,
    decode_pm_node,
    dm_record_size,
    encode_dm_node,
    encode_pm_node,
)


class TestRid:
    def test_roundtrip(self):
        rid = pack_rid(12345, 678)
        assert unpack_rid(rid) == (12345, 678)

    def test_zero(self):
        assert unpack_rid(pack_rid(0, 0)) == (0, 0)

    def test_slot_out_of_range(self):
        with pytest.raises(StorageError):
            pack_rid(0, 1 << 16)
        with pytest.raises(StorageError):
            pack_rid(-1, 0)

    @given(st.integers(0, (1 << 40)), st.integers(0, (1 << 16) - 1))
    def test_roundtrip_property(self, page, slot):
        assert unpack_rid(pack_rid(page, slot)) == (page, slot)


class TestHeapFile:
    def test_insert_read(self, fresh_db):
        hf = HeapFile(fresh_db.segment("t"))
        rid = hf.insert(b"payload")
        assert hf.read(rid) == b"payload"

    def test_many_pages(self, fresh_db):
        hf = HeapFile(fresh_db.segment("t"))
        rids = hf.insert_many(
            (f"row-{i}".encode() * 20 for i in range(2000))
        )
        assert hf.n_pages > 1
        assert hf.read(rids[1500]) == b"row-1500" * 20
        assert hf.count() == 2000

    def test_scan_order(self, fresh_db):
        hf = HeapFile(fresh_db.segment("t"))
        rids = [hf.insert(bytes([i])) for i in range(50)]
        scanned = [rid for rid, _ in hf.scan()]
        assert scanned == rids

    def test_read_many_preserves_input_order(self, fresh_db):
        hf = HeapFile(fresh_db.segment("t"))
        rids = [hf.insert(f"{i}".encode()) for i in range(100)]
        shuffled = rids[::-1]
        payloads = hf.read_many(shuffled)
        assert payloads == [f"{99 - i}".encode() for i in range(100)]

    def test_delete(self, fresh_db):
        hf = HeapFile(fresh_db.segment("t"))
        rid = hf.insert(b"bye")
        hf.delete(rid)
        assert hf.count() == 0

    def test_oversized_record(self, fresh_db):
        hf = HeapFile(fresh_db.segment("t"))
        with pytest.raises(StorageError):
            hf.insert(b"x" * 9000)

    def test_persistence(self, tmp_path):
        with Database(tmp_path / "db") as db:
            hf = HeapFile(db.segment("t"))
            rid = hf.insert(b"durable")
        with Database(tmp_path / "db") as db:
            hf = HeapFile(db.segment("t"))
            assert hf.read(rid) == b"durable"


def make_node(**overrides):
    defaults = dict(
        id=7,
        x=1.5,
        y=-2.5,
        z=88.25,
        error=0.75,
        parent=9,
        child1=3,
        child2=4,
        wing1=5,
        wing2=NULL_ID,
    )
    defaults.update(overrides)
    node = PMNode(**defaults)
    node.e = defaults["error"]
    node.e_high = 2.0
    node.footprint = Rect(0, -3, 2, 0)
    return node


class TestPMRecord:
    def test_roundtrip(self):
        node = make_node()
        payload = encode_pm_node(node)
        assert len(payload) == PM_RECORD_SIZE
        back = decode_pm_node(payload)
        assert back.id == node.id
        assert back.x == node.x
        assert back.e == node.e
        assert back.e_high == node.e_high
        assert back.parent == node.parent
        assert back.wings() == node.wings()
        assert back.footprint.as_tuple() == node.footprint.as_tuple()

    def test_infinity_roundtrip(self):
        node = make_node(parent=NULL_ID)
        node.e_high = LOD_INFINITY
        back = decode_pm_node(encode_pm_node(node))
        assert back.e_high == LOD_INFINITY
        assert math.isinf(back.e_high)

    def test_requires_footprint(self):
        node = make_node()
        node.footprint = None
        with pytest.raises(RecordError):
            encode_pm_node(node)

    def test_wrong_size_rejected(self):
        with pytest.raises(RecordError):
            decode_pm_node(b"\x00" * 10)


class TestDMRecord:
    def test_roundtrip_with_connections(self):
        node = make_node()
        conn = [1, 2, 8, 15]
        payload = encode_dm_node(node, conn)
        assert len(payload) == dm_record_size(4)
        back = decode_dm_node(payload)
        assert back.id == node.id
        assert back.connections == conn
        assert back.e_low == node.e
        assert back.e_high == node.e_high
        assert (back.child1, back.child2) == (3, 4)

    def test_empty_connections(self):
        back = decode_dm_node(encode_dm_node(make_node(), []))
        assert back.connections == []

    def test_interval_semantics(self):
        back = decode_dm_node(encode_dm_node(make_node(), []))
        assert back.interval_contains(0.75)
        assert back.interval_contains(1.99)
        assert not back.interval_contains(2.0)  # Half-open top.
        assert not back.interval_contains(0.74)
        assert back.interval_intersects(1.0, 5.0)
        assert back.interval_intersects(0.0, 0.75)
        assert not back.interval_intersects(2.0, 3.0)  # e_high excluded.

    def test_is_leaf(self):
        leaf = make_node(child1=NULL_ID, child2=NULL_ID)
        assert decode_dm_node(encode_dm_node(leaf, [])).is_leaf

    def test_truncated_rejected(self):
        payload = encode_dm_node(make_node(), [1, 2, 3])
        with pytest.raises(RecordError):
            decode_dm_node(payload[:-2])
        with pytest.raises(RecordError):
            decode_dm_node(payload[: dm_record_size(0) - 1])

    @given(st.lists(st.integers(0, 2**31 - 1), max_size=64))
    def test_connection_list_roundtrip(self, conn):
        back = decode_dm_node(encode_dm_node(make_node(), conn))
        assert back.connections == conn
