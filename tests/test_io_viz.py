"""Tests for terrain I/O and ASCII rendering."""

import numpy as np
import pytest

from repro.errors import DatasetError, ReproError
from repro.terrain.gridfield import GridField
from repro.terrain.io import (
    read_esri_ascii,
    read_xyz,
    write_esri_ascii,
    write_obj,
    write_xyz,
)
from repro.terrain.synthetic import gaussian_hills_field
from repro.viz.ascii import render_field, render_hillshade, render_points


class TestXYZ:
    def test_roundtrip(self, tmp_path):
        pts = [(1.5, 2.5, 3.5), (-1.0, 0.0, 99.125)]
        path = tmp_path / "pts.xyz"
        write_xyz(path, pts)
        assert read_xyz(path) == pts

    def test_comments_and_blanks(self, tmp_path):
        path = tmp_path / "pts.xyz"
        path.write_text("# header\n\n1 2 3\n  \n4 5 6\n")
        assert read_xyz(path) == [(1, 2, 3), (4, 5, 6)]

    def test_bad_column_count(self, tmp_path):
        path = tmp_path / "bad.xyz"
        path.write_text("1 2\n")
        with pytest.raises(DatasetError):
            read_xyz(path)

    def test_bad_number(self, tmp_path):
        path = tmp_path / "bad.xyz"
        path.write_text("1 2 zebra\n")
        with pytest.raises(DatasetError):
            read_xyz(path)


class TestEsriAscii:
    def test_roundtrip(self, tmp_path):
        field = GridField(
            np.arange(12, dtype=float).reshape(3, 4),
            cell_size=2.5,
            origin=(100, 200),
        )
        path = tmp_path / "dem.asc"
        write_esri_ascii(path, field)
        back = read_esri_ascii(path)
        assert np.allclose(back.heights, field.heights)
        assert back.cell_size == field.cell_size
        assert back.origin == field.origin

    def test_missing_header(self, tmp_path):
        path = tmp_path / "bad.asc"
        path.write_text("ncols 2\n1 2\n")
        with pytest.raises(DatasetError):
            read_esri_ascii(path)

    def test_shape_mismatch(self, tmp_path):
        path = tmp_path / "bad.asc"
        path.write_text("ncols 3\nnrows 2\ncellsize 1\n1 2 3\n")
        with pytest.raises(DatasetError):
            read_esri_ascii(path)


class TestObj:
    def test_write_mesh(self, tmp_path):
        from repro.mesh.trimesh import TriMesh

        mesh = TriMesh(
            [(0, 0, 0), (1, 0, 0), (0, 1, 0)],
            [(0, 1, 2)],
        )
        path = tmp_path / "m.obj"
        write_obj(path, mesh)
        text = path.read_text()
        assert text.count("\nv ") + text.startswith("v ") == 3
        assert "f 1 2 3" in text

    def test_write_explicit(self, tmp_path):
        path = tmp_path / "m.obj"
        write_obj(
            path,
            vertices=[(0, 0, 0), (1, 0, 0), (0, 1, 0)],
            triangles=[(0, 1, 2)],
        )
        assert "f 1 2 3" in path.read_text()

    def test_needs_input(self, tmp_path):
        with pytest.raises(DatasetError):
            write_obj(tmp_path / "m.obj")


class TestAsciiRendering:
    def test_render_points_dimensions(self):
        pts = [(float(i), float(j), float(i + j)) for i in range(10)
               for j in range(10)]
        art = render_points(pts, width=40, height=12)
        lines = art.split("\n")
        assert len(lines) == 12
        assert all(len(line) == 40 for line in lines)

    def test_render_points_empty(self):
        with pytest.raises(ReproError):
            render_points([])

    def test_high_points_brighter(self):
        # A single very high point should map to the densest glyph.
        pts = [(0.0, 0.0, 0.0), (5.0, 5.0, 100.0), (9.0, 9.0, 0.0)]
        art = render_points(pts, width=10, height=10)
        assert "@" in art

    def test_render_field(self):
        field = gaussian_hills_field(size=32, seed=1)
        art = render_field(field, width=30, height=10)
        assert len(art.split("\n")) == 10

    def test_render_hillshade(self):
        field = gaussian_hills_field(size=32, seed=1)
        art = render_hillshade(field, width=30, height=10)
        lines = art.split("\n")
        assert len(lines) == 10
        assert all(len(line) == 30 for line in lines)
        assert len(set(art)) > 3  # Some tonal variety.
