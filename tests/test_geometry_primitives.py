"""Unit and property tests for Rect / Box3 / points."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import GeometryError
from repro.geometry.primitives import (
    Box3,
    Point2,
    Point3,
    Rect,
    union_all_boxes,
    union_all_rects,
)

coords = st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False)


def rects():
    return st.tuples(coords, coords, coords, coords).map(
        lambda t: Rect(
            min(t[0], t[2]), min(t[1], t[3]), max(t[0], t[2]), max(t[1], t[3])
        )
    )


def boxes():
    return st.tuples(coords, coords, coords, coords, coords, coords).map(
        lambda t: Box3(
            min(t[0], t[3]),
            min(t[1], t[4]),
            min(t[2], t[5]),
            max(t[0], t[3]),
            max(t[1], t[4]),
            max(t[2], t[5]),
        )
    )


class TestPoints:
    def test_distance(self):
        assert Point2(0, 0).distance_to(Point2(3, 4)) == 5.0
        assert Point2(0, 0).distance_sq(Point2(3, 4)) == 25.0

    def test_point3_distance(self):
        assert Point3(1, 2, 2).distance_to(Point3(1, 2, 2)) == 0.0
        assert Point3(0, 0, 0).distance_to(Point3(2, 3, 6)) == 7.0

    def test_projection(self):
        assert Point3(1.5, -2.0, 9.0).xy() == Point2(1.5, -2.0)

    def test_iteration_and_tuple(self):
        assert tuple(Point3(1, 2, 3)) == (1.0, 2.0, 3.0)
        assert Point2(4, 5).as_tuple() == (4.0, 5.0)


class TestRect:
    def test_inverted_raises(self):
        with pytest.raises(GeometryError):
            Rect(1, 0, 0, 1)
        with pytest.raises(GeometryError):
            Rect(0, 1, 1, 0)

    def test_contains_boundary(self):
        r = Rect(0, 0, 10, 10)
        assert r.contains_point(0, 0)
        assert r.contains_point(10, 10)
        assert not r.contains_point(10.0001, 5)

    def test_intersection_disjoint(self):
        assert Rect(0, 0, 1, 1).intersection(Rect(2, 2, 3, 3)) is None

    def test_intersection_touching(self):
        overlap = Rect(0, 0, 1, 1).intersection(Rect(1, 0, 2, 1))
        assert overlap is not None
        assert overlap.area == 0.0

    def test_from_points(self):
        r = Rect.from_points([Point2(3, 1), Point2(-1, 7), Point2(0, 0)])
        assert r.as_tuple() == (-1, 0, 3, 7)

    def test_from_points_empty(self):
        with pytest.raises(GeometryError):
            Rect.from_points([])

    def test_centered(self):
        r = Rect.centered(5, 5, 4, 2)
        assert r.as_tuple() == (3, 4, 7, 6)
        assert r.center == Point2(5, 5)

    def test_scaled(self):
        r = Rect(0, 0, 10, 10).scaled(0.5)
        assert r.as_tuple() == (2.5, 2.5, 7.5, 7.5)

    def test_expanded(self):
        assert Rect(0, 0, 1, 1).expanded(1).as_tuple() == (-1, -1, 2, 2)

    @given(rects(), rects())
    def test_union_contains_both(self, a, b):
        u = a.union(b)
        assert u.contains_rect(a)
        assert u.contains_rect(b)

    @given(rects(), rects())
    def test_intersects_symmetric(self, a, b):
        assert a.intersects(b) == b.intersects(a)

    @given(rects(), rects())
    def test_intersection_consistent_with_intersects(self, a, b):
        inter = a.intersection(b)
        assert (inter is not None) == a.intersects(b)
        if inter is not None:
            assert a.contains_rect(inter)
            assert b.contains_rect(inter)


class TestBox3:
    def test_inverted_raises(self):
        with pytest.raises(GeometryError):
            Box3(0, 0, 1, 1, 1, 0)

    def test_vertical_segment_is_degenerate(self):
        seg = Box3.vertical_segment(2, 3, 0.5, 4.5)
        assert seg.volume == 0.0
        assert seg.depth == 4.0
        assert seg.rect.as_tuple() == (2, 3, 2, 3)

    def test_from_rect(self):
        b = Box3.from_rect(Rect(0, 0, 2, 3), 1, 5)
        assert b.as_tuple() == (0, 0, 1, 2, 3, 5)

    def test_margin(self):
        assert Box3(0, 0, 0, 1, 2, 3).margin == 6.0

    def test_enlargement(self):
        a = Box3(0, 0, 0, 1, 1, 1)
        b = Box3(0, 0, 0, 2, 1, 1)
        assert a.enlargement(b) == pytest.approx(1.0)
        assert b.enlargement(a) == 0.0

    def test_intersection_volume(self):
        a = Box3(0, 0, 0, 2, 2, 2)
        b = Box3(1, 1, 1, 3, 3, 3)
        assert a.intersection_volume(b) == pytest.approx(1.0)
        assert a.intersection_volume(Box3(5, 5, 5, 6, 6, 6)) == 0.0

    def test_plane_query_intersects_segment(self):
        # A query plane at the LOD where a segment exists must hit it.
        seg = Box3.vertical_segment(5, 5, 1.0, 3.0)
        plane = Box3.from_rect(Rect(0, 0, 10, 10), 2.0, 2.0)
        assert plane.intersects(seg)
        above = Box3.from_rect(Rect(0, 0, 10, 10), 3.5, 3.5)
        assert not above.intersects(seg)

    @given(boxes(), boxes())
    def test_union_contains_both(self, a, b):
        u = a.union(b)
        assert u.contains_box(a)
        assert u.contains_box(b)

    @given(boxes(), boxes())
    def test_intersection_volume_symmetric(self, a, b):
        assert a.intersection_volume(b) == pytest.approx(
            b.intersection_volume(a)
        )

    @given(boxes())
    def test_center_inside(self, b):
        assert b.contains_point(*b.center)

    def test_union_all(self):
        bs = [Box3(0, 0, 0, 1, 1, 1), Box3(5, -2, 0, 6, 0, 9)]
        assert union_all_boxes(bs).as_tuple() == (0, -2, 0, 6, 1, 9)
        with pytest.raises(GeometryError):
            union_all_boxes([])

    def test_union_all_rects(self):
        rs = [Rect(0, 0, 1, 1), Rect(-5, 2, 0, 3)]
        assert union_all_rects(rs).as_tuple() == (-5, 0, 1, 3)
        with pytest.raises(GeometryError):
            union_all_rects([])
