"""Tests for the command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def built_db(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "db"
    code = main(
        [
            "build",
            str(path),
            "--dataset",
            "foothills",
            "--points",
            "1500",
            "--seed",
            "9",
        ]
    )
    assert code == 0
    return path


class TestBuild:
    def test_build_output(self, built_db, capsys):
        main(["info", str(built_db)])
        out = capsys.readouterr().out
        assert "dm_nodes" in out
        assert "dm_rtree" in out
        assert "max LOD" in out

    def test_build_compressed(self, tmp_path, capsys):
        code = main(
            [
                "build",
                str(tmp_path / "db"),
                "--points",
                "1200",
                "--compress",
            ]
        )
        assert code == 0
        assert "data pages" in capsys.readouterr().out

    def test_build_from_dem(self, tmp_path, capsys):
        from repro.terrain import gaussian_hills_field, write_esri_ascii

        dem = tmp_path / "dem.asc"
        write_esri_ascii(dem, gaussian_hills_field(size=48, seed=2))
        code = main(
            ["build", str(tmp_path / "db"), "--dem", str(dem), "--points", "900"]
        )
        assert code == 0


class TestQuery:
    def test_query_full_extent(self, built_db, capsys):
        code = main(["query", str(built_db), "--lod", "2.0"])
        assert code == 0
        out = capsys.readouterr().out
        assert "points" in out
        assert "disk accesses" in out

    def test_query_with_roi_render_obj(self, built_db, tmp_path, capsys):
        obj = tmp_path / "out.obj"
        code = main(
            [
                "query",
                str(built_db),
                "--roi", "1000", "1000", "3000", "3000",
                "--lod", "1.0",
                "--render",
                "--obj", str(obj),
            ]
        )
        assert code == 0
        assert obj.exists()
        assert "wrote" in capsys.readouterr().out

    def test_viewdep(self, built_db, capsys):
        code = main(
            [
                "viewdep",
                str(built_db),
                "--roi", "500", "500", "4000", "4000",
                "--emin", "0.2",
                "--emax", "8.0",
            ]
        )
        assert code == 0
        assert "multi-base plan" in capsys.readouterr().out

    def test_viewdep_custom_direction(self, built_db, capsys):
        code = main(
            [
                "viewdep",
                str(built_db),
                "--roi", "500", "500", "4000", "4000",
                "--emin", "0.2",
                "--emax", "5.0",
                "--direction", "1", "0",
            ]
        )
        assert code == 0


class TestBenchServe:
    def test_bench_serve_sweeps_workers(self, built_db, capsys):
        code = main(
            [
                "bench-serve",
                str(built_db),
                "--requests", "8",
                "--workers", "1,2",
                "--seed", "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "queries/s" in out
        assert "speedup" in out

    def test_bench_serve_mixed_with_metrics(self, built_db, capsys):
        code = main(
            [
                "bench-serve",
                str(built_db),
                "--requests", "6",
                "--workers", "2",
                "--mode", "mixed",
                "--dedup", "subsume",
                "--metrics",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "engine.range_queries" in out
        assert "engine.query_s" in out

    def test_bench_serve_with_fault_injection(self, built_db, capsys):
        code = main(
            [
                "bench-serve",
                str(built_db),
                "--requests", "40",
                "--workers", "4",
                "--fault-rate", "0.05",
                "--retries", "6",
                "--seed", "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "faults: rate 0.05" in out
        assert "injected" in out
        # Fault columns present; the sweep completed despite errors.
        assert "ok" in out and "degraded" in out

    def test_bench_serve_with_deadline(self, built_db, capsys):
        code = main(
            [
                "bench-serve",
                str(built_db),
                "--requests", "8",
                "--workers", "2",
                "--deadline-ms", "30000",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "deadline 30000.0ms" in out


class TestErrors:
    def test_info_on_missing_dir(self, tmp_path, capsys):
        code = main(["info", str(tmp_path / "nope")])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_query_on_empty_db(self, tmp_path, capsys):
        code = main(["query", str(tmp_path / "db"), "--lod", "1.0"])
        assert code == 1


class TestExplain:
    def test_explain_uniform(self, built_db, capsys):
        code = main(
            [
                "explain",
                str(built_db),
                "--roi", "1000", "1000", "3000", "3000",
                "--lod", "1.5",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "viewpoint-independent" in out
        assert "estimated total" in out

    def test_explain_viewdep_executed(self, built_db, capsys):
        code = main(
            [
                "explain",
                str(built_db),
                "--roi", "500", "500", "4000", "4000",
                "--emin", "0.1",
                "--emax", "9.0",
                "--execute",
            ]
        )
        assert code == 0
        assert "executed:" in capsys.readouterr().out

    def test_explain_needs_parameters(self, built_db, capsys):
        code = main(
            ["explain", str(built_db), "--roi", "0", "0", "10", "10"]
        )
        assert code == 1
        assert "error:" in capsys.readouterr().err


class TestVerify:
    def test_info_verify(self, built_db, capsys):
        code = main(["info", str(built_db), "--verify"])
        assert code == 0
        out = capsys.readouterr().out
        assert "store verification: OK" in out


class TestPmInterchange:
    def test_build_save_and_reload_pm(self, tmp_path, capsys):
        pmz = tmp_path / "terrain.pmz"
        code = main(
            [
                "build",
                str(tmp_path / "db1"),
                "--points", "1200",
                "--save-pm", str(pmz),
            ]
        )
        assert code == 0
        assert pmz.exists()
        # Rebuild a second database from the saved mesh: no
        # re-simplification.
        code = main(
            ["build", str(tmp_path / "db2"), "--from-pm", str(pmz)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "built" in out
