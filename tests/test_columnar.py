"""The columnar (vectorized) query kernels against the scalar oracle.

The contract: for *any* record set and any query,
``decode_dm_nodes_columnar`` + the numpy filters return
node-id-identical output (in fact identical record dicts) to
``decode_dm_node`` + the scalar filters, and ``mesh_edges_np`` matches
``mesh_edges_scalar``.  Hypothesis drives randomized record stores,
ROIs, LODs, planes and radial fields through both paths — including
half-open interval boundaries, roots with infinite ``e_high``, empty
ROIs, and LODs above the store's ``e_cap``.
"""

from __future__ import annotations

import random

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.query import (
    filter_to_plane,
    filter_to_plane_columnar,
    filter_uniform,
    filter_uniform_columnar,
)
from repro.core.reconstruct import (
    mesh_edges,
    mesh_edges_np,
    mesh_edges_scalar,
)
from repro.errors import RecordError
from repro.geometry.plane import QueryPlane, RadialLodField
from repro.geometry.primitives import Rect
from repro.mesh.progressive import LOD_INFINITY, PMNode
from repro.storage.record import (
    decode_dm_node,
    decode_dm_nodes_columnar,
    encode_dm_node,
)

common = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


def _make_payloads(seed: int, n: int, compress_every: int = 0) -> list[bytes]:
    """Encode ``n`` pseudo-random DM node records."""
    rng = random.Random(seed)
    payloads = []
    for i in range(n):
        node = PMNode(
            i,
            rng.uniform(-10.0, 10.0),
            rng.uniform(-10.0, 10.0),
            rng.uniform(0.0, 5.0),
            error=0.0,
            parent=rng.randint(-1, n - 1),
            child1=rng.choice([-1, rng.randint(0, n - 1)]),
            child2=rng.choice([-1, rng.randint(0, n - 1)]),
            wing1=-1,
            wing2=-1,
        )
        node.e = rng.uniform(0.0, 3.0)
        node.e_high = (
            node.e + rng.uniform(0.0, 2.0) if i % 5 else LOD_INFINITY
        )
        connections = sorted(rng.sample(range(n), rng.randint(0, min(10, n))))
        compress = bool(compress_every) and i % compress_every == 0
        payloads.append(encode_dm_node(node, connections, compress=compress))
    return payloads


class TestColumnarDecode:
    def test_roundtrip_matches_scalar_decode(self):
        payloads = _make_payloads(seed=0, n=300, compress_every=3)
        scalar = [decode_dm_node(p) for p in payloads]
        columns = decode_dm_nodes_columnar(payloads)
        assert len(columns) == len(scalar)
        assert columns.records() == scalar

    def test_empty_batch(self):
        columns = decode_dm_nodes_columnar([])
        assert len(columns) == 0
        assert columns.records() == []
        assert columns.nbytes >= 0

    def test_truncated_payload_rejected(self):
        with pytest.raises(RecordError):
            decode_dm_nodes_columnar([b"\x00" * 10])

    def test_trailing_bytes_rejected(self):
        payload = _make_payloads(seed=1, n=1)[0]
        with pytest.raises(RecordError):
            decode_dm_nodes_columnar([payload + b"\x00\x00\x00\x00"])

    def test_materialize_preserves_row_order(self):
        payloads = _make_payloads(seed=2, n=50)
        columns = decode_dm_nodes_columnar(payloads)
        mask = np.zeros(50, bool)
        mask[::3] = True
        nodes = columns.materialize(mask)
        assert list(nodes) == [int(i) for i in columns.ids[::3]]


@pytest.fixture(scope="module")
def record_universe():
    """One decoded record set shared by the filter property tests."""
    payloads = _make_payloads(seed=7, n=1200, compress_every=4)
    return [decode_dm_node(p) for p in payloads], decode_dm_nodes_columnar(
        payloads
    )


positions = st.floats(-12.0, 12.0, allow_nan=False)
spans = st.floats(0.0, 15.0, allow_nan=False)
lods = st.floats(0.0, 6.0, allow_nan=False)


class TestFilterParity:
    @common
    @given(positions, positions, spans, spans, lods)
    def test_filter_uniform(self, record_universe, cx, cy, w, h, lod):
        records, columns = record_universe
        roi = Rect.centered(cx, cy, w, h)
        assert filter_uniform(records, roi, lod) == filter_uniform_columnar(
            columns, roi, lod
        )

    @common
    @given(st.integers(0, 1199))
    def test_filter_uniform_interval_boundary(self, record_universe, idx):
        """The half-open ``[e_low, e_high)`` boundary, hit exactly."""
        records, columns = record_universe
        roi = Rect(-20, -20, 20, 20)
        for lod in (records[idx].e_low, records[idx].e_high):
            if lod == LOD_INFINITY:
                continue
            scalar = filter_uniform(records, roi, lod)
            vector = filter_uniform_columnar(columns, roi, lod)
            assert scalar == vector

    @common
    @given(positions, positions, spans, spans, lods, lods, positions, positions)
    def test_filter_to_plane(
        self, record_universe, cx, cy, w, h, e_a, e_b, dx, dy
    ):
        records, columns = record_universe
        roi = Rect.centered(cx, cy, w, h)
        if abs(dx) + abs(dy) < 1e-6:
            dx = 1.0
        plane = QueryPlane(roi, min(e_a, e_b), max(e_a, e_b), (dx, dy))
        assert filter_to_plane(records, plane) == filter_to_plane_columnar(
            columns, plane
        )

    @common
    @given(positions, positions, spans, spans, positions, positions,
           st.floats(0.01, 1.0))
    def test_filter_radial_field(
        self, record_universe, cx, cy, w, h, vx, vy, rate
    ):
        records, columns = record_universe
        roi = Rect.centered(cx, cy, w, h)
        field = RadialLodField(roi, (vx, vy), rate, e_min=0.1, e_max=4.0)
        assert filter_to_plane(records, field) == filter_to_plane_columnar(
            columns, field
        )

    def test_empty_roi(self, record_universe):
        """A degenerate ROI far outside the data keeps both paths empty."""
        records, columns = record_universe
        roi = Rect(100.0, 100.0, 100.0, 100.0)
        assert filter_uniform(records, roi, 1.0) == {}
        assert filter_uniform_columnar(columns, roi, 1.0) == {}
        plane = QueryPlane(roi, 0.5, 2.0)
        assert filter_to_plane_columnar(columns, plane) == {}

    def test_plane_without_batch_kernel_falls_back(self, record_universe):
        """LOD fields lacking ``required_lod_batch`` still vectorize."""
        records, columns = record_universe

        class OddField:
            roi = Rect(-8, -8, 8, 8)

            @staticmethod
            def required_lod(x, y):
                return 1.0 + 0.1 * abs(x) + 0.05 * abs(y)

        field = OddField()
        assert filter_to_plane(records, field) == filter_to_plane_columnar(
            columns, field
        )


class TestEdgeExtractionParity:
    @common
    @given(lods, st.floats(0.2, 1.0))
    def test_edges_match_scalar(self, record_universe, lod, size_f):
        records, columns = record_universe
        roi = Rect.centered(0.0, 0.0, 24.0 * size_f, 24.0 * size_f)
        nodes = filter_uniform(records, roi, lod)
        assert mesh_edges_np(nodes) == mesh_edges_scalar(nodes)
        assert mesh_edges(nodes) == mesh_edges_scalar(nodes)

    def test_empty_and_connectionless(self):
        assert mesh_edges_np({}) == set()
        payloads = _make_payloads(seed=9, n=3)
        records = [decode_dm_node(p) for p in payloads]
        for rec in records:
            rec.connections = []
        nodes = {rec.id: rec for rec in records}
        assert mesh_edges_np(nodes) == set() == mesh_edges_scalar(nodes)


class TestECapClamp:
    def test_uniform_above_e_cap_matches_scalar_engine(self, tmp_path):
        """LOD above ``e_cap`` returns the base mesh on every path."""
        from repro.core import DirectMeshStore, QueryEngine
        from repro.core.engine import UniformRequest
        from repro.storage import Database
        from repro.terrain import dataset_by_name

        dataset = dataset_by_name("foothills", 400, seed=5)
        with Database(tmp_path / "db") as db:
            store = DirectMeshStore.build(dataset.pm, db, dataset.connections)
            roi = store.rtree.data_space.rect
            lod = store.e_cap * 2.0
            reference = store.uniform_query(roi, lod)
            assert len(reference) > 0  # The base mesh, not an empty set.
            with QueryEngine(store, workers=2) as engine:
                outcome = engine.run(UniformRequest(roi, lod))
            assert outcome.result.nodes == reference.nodes
            with QueryEngine(store, workers=2, vectorized=False) as engine:
                outcome = engine.run(UniformRequest(roi, lod))
            assert outcome.result.nodes == reference.nodes
