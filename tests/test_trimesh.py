"""Tests for the static triangle mesh."""

import pytest

from repro.errors import MeshError
from repro.mesh.trimesh import TriMesh


@pytest.fixture
def quad_mesh():
    # Two triangles over a unit square.
    return TriMesh(
        [(0, 0, 0), (1, 0, 1), (1, 1, 2), (0, 1, 3)],
        [(0, 1, 2), (0, 2, 3)],
    )


class TestConstruction:
    def test_validates_indices(self):
        with pytest.raises(MeshError):
            TriMesh([(0, 0, 0)], [(0, 1, 2)])

    def test_rejects_degenerate_triangle(self):
        with pytest.raises(MeshError):
            TriMesh([(0, 0, 0), (1, 0, 0), (0, 1, 0)], [(0, 0, 1)])

    def test_from_grid_counts(self):
        mesh = TriMesh.from_grid([[0, 1, 2], [3, 4, 5], [6, 7, 8]], 2.0)
        assert mesh.n_vertices == 9
        assert mesh.n_triangles == 8
        mesh.validate_topology()
        assert mesh.bounds().as_tuple() == (0, 0, 4, 4)

    def test_from_grid_too_small(self):
        with pytest.raises(MeshError):
            TriMesh.from_grid([[1, 2]])

    def test_from_points_delaunay(self):
        pts = [(0, 0, 5), (10, 0, 6), (10, 10, 7), (0, 10, 8), (5, 5, 9)]
        mesh = TriMesh.from_points(pts)
        assert mesh.n_vertices == 5
        assert mesh.n_triangles == 4
        mesh.validate_topology()

    def test_from_points_duplicate_xy_first_wins(self):
        pts = [(0, 0, 5), (10, 0, 6), (0, 10, 7), (0, 0, 99)]
        mesh = TriMesh.from_points(pts)
        assert mesh.n_vertices == 3
        assert (0.0, 0.0, 5.0) in mesh.vertices


class TestAdjacency:
    def test_edges(self, quad_mesh):
        assert quad_mesh.edges() == {(0, 1), (1, 2), (0, 2), (2, 3), (0, 3)}

    def test_vertex_neighbors(self, quad_mesh):
        neighbors = quad_mesh.vertex_neighbors()
        assert neighbors[0] == {1, 2, 3}
        assert neighbors[1] == {0, 2}

    def test_edge_triangles(self, quad_mesh):
        et = quad_mesh.edge_triangles()
        assert et[(0, 2)] == [0, 1]  # Shared diagonal.
        assert et[(0, 1)] == [0]

    def test_boundary_vertices(self, quad_mesh):
        # All four corners are on the boundary of a quad.
        assert quad_mesh.boundary_vertices() == {0, 1, 2, 3}

    def test_interior_vertex_not_boundary(self):
        mesh = TriMesh.from_grid([[0] * 4 for _ in range(4)])
        boundary = mesh.boundary_vertices()
        assert 5 not in boundary  # (1, 1) is interior.
        assert 0 in boundary

    def test_vertex_triangles(self, quad_mesh):
        vt = quad_mesh.vertex_triangles()
        assert vt[0] == [0, 1]
        assert vt[3] == [1]


class TestSampling:
    def test_elevation_interpolates(self, quad_mesh):
        assert quad_mesh.elevation_at(0, 0) == pytest.approx(0.0)
        assert quad_mesh.elevation_at(1, 1) == pytest.approx(2.0)
        mid = quad_mesh.elevation_at(0.5, 0.5)
        assert mid == pytest.approx(1.0)  # On the shared diagonal.

    def test_elevation_outside(self, quad_mesh):
        assert quad_mesh.elevation_at(5, 5) is None

    def test_elevation_range(self, quad_mesh):
        assert quad_mesh.elevation_range() == (0.0, 3.0)


class TestValidation:
    def test_topology_catches_cw_triangle(self):
        mesh = TriMesh(
            [(0, 0, 0), (1, 0, 0), (0, 1, 0)], [(0, 2, 1)], validate=False
        )
        with pytest.raises(MeshError):
            mesh.validate_topology()

    def test_topology_catches_nonmanifold_edge(self):
        mesh = TriMesh(
            [(0, 0, 0), (1, 0, 0), (0.5, 1, 0), (0.5, -1, 0), (0.5, 2, 0)],
            [(0, 1, 2), (0, 3, 1), (0, 1, 4)],
            validate=False,
        )
        with pytest.raises(MeshError):
            mesh.validate_topology()

    def test_empty_mesh_bounds(self):
        with pytest.raises(MeshError):
            TriMesh([], []).bounds()
