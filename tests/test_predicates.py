"""Tests for the filtered-exact planar predicates."""

from hypothesis import given, strategies as st

from repro.geometry.predicates import (
    collinear,
    incircle,
    orient2d,
    point_in_triangle,
    segments_intersect,
    triangle_area2,
)

small = st.floats(-100, 100, allow_nan=False, allow_infinity=False)


class TestOrient2D:
    def test_ccw(self):
        assert orient2d(0, 0, 1, 0, 0, 1) == 1

    def test_cw(self):
        assert orient2d(0, 0, 0, 1, 1, 0) == -1

    def test_exactly_collinear(self):
        assert orient2d(0, 0, 1, 1, 2, 2) == 0

    def test_nearly_collinear_exact_fallback(self):
        # These points are exactly collinear in binary floating point;
        # naive evaluation is at the mercy of rounding, the filtered
        # predicate must return 0.
        a = (0.5, 0.5)
        b = (12.0, 12.0)
        c = (24.0, 24.0)
        assert orient2d(*a, *b, *c) == 0

    def test_tiny_perturbation_detected(self):
        base = orient2d(0, 0, 1e-20, 1e-20, 2e-20, 2.0000001e-20)
        assert base != 0  # Slightly bent upward at c.

    @given(small, small, small, small, small, small)
    def test_antisymmetry(self, ax, ay, bx, by, cx, cy):
        assert orient2d(ax, ay, bx, by, cx, cy) == -orient2d(
            bx, by, ax, ay, cx, cy
        )

    @given(small, small, small, small, small, small)
    def test_rotation_invariance(self, ax, ay, bx, by, cx, cy):
        assert orient2d(ax, ay, bx, by, cx, cy) == orient2d(
            bx, by, cx, cy, ax, ay
        )


class TestInCircle:
    def test_inside(self):
        # Unit circle through (1,0), (0,1), (-1,0); origin is inside.
        assert incircle(1, 0, 0, 1, -1, 0, 0, 0) == 1

    def test_outside(self):
        assert incircle(1, 0, 0, 1, -1, 0, 5, 5) == -1

    def test_cocircular_exact(self):
        # Four points of the unit circle: exactly on the boundary.
        assert incircle(1, 0, 0, 1, -1, 0, 0, -1) == 0

    def test_grid_cocircular(self):
        # The four corners of a unit square are cocircular.
        assert incircle(0, 0, 1, 0, 1, 1, 0, 1) == 0

    @given(small, small, small, small, small, small, small, small)
    def test_symmetry_under_rotation(self, ax, ay, bx, by, cx, cy, dx, dy):
        assert incircle(ax, ay, bx, by, cx, cy, dx, dy) == incircle(
            bx, by, cx, cy, ax, ay, dx, dy
        )


class TestHelpers:
    def test_collinear(self):
        assert collinear(0, 0, 2, 2, 5, 5)
        assert not collinear(0, 0, 2, 2, 5, 5.1)

    def test_triangle_area2_sign(self):
        assert triangle_area2(0, 0, 1, 0, 0, 1) == 1.0
        assert triangle_area2(0, 0, 0, 1, 1, 0) == -1.0

    def test_point_in_triangle_interior(self):
        assert point_in_triangle(0.25, 0.25, 0, 0, 1, 0, 0, 1)

    def test_point_in_triangle_boundary(self):
        assert point_in_triangle(0.5, 0, 0, 0, 1, 0, 0, 1)
        assert point_in_triangle(0, 0, 0, 0, 1, 0, 0, 1)

    def test_point_in_triangle_outside(self):
        assert not point_in_triangle(1, 1, 0, 0, 1, 0, 0, 1)

    def test_point_in_triangle_either_winding(self):
        assert point_in_triangle(0.25, 0.25, 0, 0, 0, 1, 1, 0)

    def test_segments_crossing(self):
        assert segments_intersect(0, 0, 2, 2, 0, 2, 2, 0)

    def test_segments_disjoint(self):
        assert not segments_intersect(0, 0, 1, 0, 0, 1, 1, 1)

    def test_segments_touching_endpoint(self):
        assert segments_intersect(0, 0, 1, 1, 1, 1, 2, 0)

    def test_segments_collinear_overlap(self):
        assert segments_intersect(0, 0, 2, 0, 1, 0, 3, 0)

    def test_segments_collinear_disjoint(self):
        assert not segments_intersect(0, 0, 1, 0, 2, 0, 3, 0)
