"""Tests for progressive terrain streaming sessions."""

import pytest

from repro.core.streaming import TerrainSession
from repro.errors import QueryError
from repro.geometry.plane import QueryPlane, RadialLodField
from repro.geometry.primitives import Rect


@pytest.fixture
def session(session_db):
    return TerrainSession(session_db["dm"])


class TestFirstUpdate:
    def test_everything_added(self, session, hills_dataset):
        roi = hills_dataset.bounds().scaled(0.3)
        lod = hills_dataset.pm.average_lod()
        delta = session.update(roi, lod)
        assert delta.kept == 0
        assert delta.removed == []
        assert len(delta.added) == len(session.active_ids)
        assert delta.churn == 1.0
        assert delta.bytes_added > 0
        assert delta.disk_accesses > 0

    def test_mesh_materialises(self, session, hills_dataset):
        roi = hills_dataset.bounds().scaled(0.4)
        session.update(roi, hills_dataset.pm.average_lod())
        edges, triangles = session.mesh()
        assert edges
        assert triangles

    def test_requires_lod_for_rect(self, session, hills_dataset):
        with pytest.raises(QueryError):
            session.update(hills_dataset.bounds())

    def test_rejects_unknown_view(self, session):
        with pytest.raises(QueryError):
            session.update(42)


class TestIncrementalUpdates:
    def test_same_view_is_free_churn(self, session, hills_dataset):
        roi = hills_dataset.bounds().scaled(0.3)
        lod = hills_dataset.pm.average_lod()
        session.update(roi, lod)
        delta = session.update(roi, lod)
        assert delta.added == []
        assert delta.removed == []
        assert delta.churn == 0.0
        assert delta.kept == len(session.active_ids)

    def test_overlapping_view_reuses(self, session, hills_dataset):
        bounds = hills_dataset.bounds()
        lod = hills_dataset.pm.average_lod()
        roi1 = hills_dataset.roi_for_fraction(
            0.2, bounds.center.x, bounds.center.y
        )
        shift = roi1.width * 0.2
        roi2 = Rect(
            roi1.min_x + shift, roi1.min_y, roi1.max_x + shift, roi1.max_y
        )
        session.update(roi1, lod)
        delta = session.update(roi2, lod)
        assert delta.kept > 0
        assert 0.0 < delta.churn < 1.0
        # Removed nodes must be those that left the ROI.
        for node_id in delta.removed:
            assert node_id not in session.active_ids

    def test_lod_refinement_adds_detail(self, session, hills_dataset):
        roi = hills_dataset.bounds().scaled(0.3)
        coarse = hills_dataset.pm.max_lod() * 0.4
        fine = hills_dataset.pm.max_lod() * 0.05
        session.update(roi, coarse)
        n_coarse = len(session.active_ids)
        delta = session.update(roi, fine)
        assert len(session.active_ids) > n_coarse
        assert delta.added

    def test_active_matches_store_query(self, session, session_db,
                                         hills_dataset):
        roi = hills_dataset.bounds().scaled(0.35)
        lod = hills_dataset.pm.average_lod()
        session.update(roi, lod)
        direct = session_db["dm"].uniform_query(roi, lod)
        assert session.active_ids == set(direct.nodes)

    def test_update_count_and_reset(self, session, hills_dataset):
        roi = hills_dataset.bounds().scaled(0.2)
        lod = hills_dataset.pm.average_lod()
        session.update(roi, lod)
        session.update(roi, lod)
        assert session.update_count == 2
        session.reset()
        assert session.active_ids == set()


class TestMeasurementBracket:
    """Regression tests for the ISSUE 7 exception-unsafe bracket."""

    def test_failed_update_leaves_state_untouched(
        self, session, hills_dataset
    ):
        roi = hills_dataset.bounds().scaled(0.3)
        lod = hills_dataset.pm.average_lod()
        session.update(roi, lod)
        active = session.active_ids
        count = session.update_count
        with pytest.raises(QueryError):
            session.update(42)
        assert session.active_ids == active
        assert session.update_count == count

    def test_failed_update_does_not_clobber_external_measurement(
        self, session_db, hills_dataset
    ):
        # The old bracket called begin_measured_query() *before*
        # evaluating the view, so a raise reset the global disk
        # counters and whatever measurement an outer caller had open
        # lost its counts.  The probe-scoped bracket must not.
        store = session_db["dm"]
        db = store.database
        streaming_session = TerrainSession(store)
        roi = hills_dataset.bounds().scaled(0.3)
        lod = hills_dataset.pm.average_lod()
        db.begin_measured_query()
        store.uniform_query(roi, lod)
        external = db.disk_accesses
        assert external > 0
        with pytest.raises(QueryError):
            streaming_session.update(42)
        assert db.disk_accesses == external

    def test_attribution_matches_a_never_failed_session(
        self, session_db, hills_dataset
    ):
        # A failed update between two good ones must not leak its
        # accounting into the next: the victim's post-failure update
        # reports the same disk accesses as a control session that
        # never failed.
        store = session_db["dm"]
        lod = hills_dataset.pm.average_lod()
        roi1 = hills_dataset.bounds().scaled(0.3)
        roi2 = hills_dataset.bounds().scaled(0.45)
        control = TerrainSession(store)
        victim = TerrainSession(store)
        control.update(roi1, lod)
        victim.update(roi1, lod)
        with pytest.raises(QueryError):
            victim.update(object())
        assert (
            victim.update(roi2, lod).disk_accesses
            == control.update(roi2, lod).disk_accesses
        )


class TestViewdepStreaming:
    def test_plane_view(self, session, hills_dataset):
        roi = hills_dataset.bounds().scaled(0.4)
        plane = QueryPlane(
            roi,
            hills_dataset.pm.lod_percentile(0.5),
            hills_dataset.pm.max_lod() * 0.8,
        )
        delta = session.update(plane)
        assert delta.added

    def test_walking_viewer_low_churn(self, session, hills_dataset):
        # A small camera step should reuse most of the mesh.
        ds = hills_dataset
        bounds = ds.bounds()
        roi = bounds.scaled(0.5)
        rate = ds.pm.max_lod() / (roi.height * 2)

        def view(vy):
            return RadialLodField(
                roi,
                viewer=(bounds.center.x, vy),
                rate=rate,
                e_min=ds.pm.lod_percentile(0.4),
                e_max=ds.pm.max_lod(),
            )

        session.update(view(bounds.min_y))
        delta = session.update(view(bounds.min_y + roi.height * 0.05))
        assert delta.churn < 0.5
