"""Open-loop harness: arrivals, workloads, scoring, report schema.

Generation is all deterministic (seeded) so these tests assert exact
replayability; the end-to-end runs go through the real engine against
the session database, once ungoverned and once with a saturated
:class:`~repro.core.engine.CostGovernor` so both report shapes are
covered.
"""

from __future__ import annotations

from itertools import islice

import pytest

from repro.bench.openloop import (
    SLO_REPORT_SCHEMA,
    OpenLoopConfig,
    OpenLoopResult,
    build_workload,
    flight_path_workload,
    poisson_arrivals,
    run_open_loop,
    suggest_budget,
    validate_slo_report,
    zipf_workload,
)
from repro.core.engine import CostGovernor, QueryEngine, UniformRequest
from repro.errors import QueryError


def small_config(**overrides) -> OpenLoopConfig:
    kwargs = {
        "offered_rate": 500.0,
        "n_requests": 40,
        "seed": 5,
        "hotspots": 8,
        "sessions": 4,
        "tenants": 2,
    }
    kwargs.update(overrides)
    return OpenLoopConfig(**kwargs)


class TestPoissonArrivals:
    def test_deterministic_and_monotone(self):
        a = poisson_arrivals(100.0, 50, seed=3)
        b = poisson_arrivals(100.0, 50, seed=3)
        assert a == b
        assert all(later > earlier for earlier, later in zip(a, a[1:]))
        assert len(a) == 50

    def test_different_seed_different_schedule(self):
        assert poisson_arrivals(100.0, 50, seed=3) != poisson_arrivals(
            100.0, 50, seed=4
        )

    def test_mean_gap_tracks_rate(self):
        arrivals = poisson_arrivals(200.0, 4000, seed=1)
        mean_gap = arrivals[-1] / len(arrivals)
        assert mean_gap == pytest.approx(1 / 200.0, rel=0.15)


class TestWorkloads:
    def test_zipf_is_skewed_and_replayable(self, session_db):
        store = session_db["dm"]
        config = small_config()
        draws = [
            request
            for request, _ in islice(zipf_workload(store, config), 300)
        ]
        again = [
            request
            for request, _ in islice(zipf_workload(store, config), 300)
        ]
        assert draws == again
        # Hotspots keep fixed ROI+LOD, so popularity is countable.
        counts: dict[UniformRequest, int] = {}
        for request in draws:
            counts[request] = counts.get(request, 0) + 1
        assert len(counts) <= config.hotspots
        ranked = sorted(counts.values(), reverse=True)
        # Zipf head: the most popular cube dominates the tail.
        assert ranked[0] >= 3 * ranked[-1]

    def test_zipf_tenants_cycle(self, session_db):
        store = session_db["dm"]
        config = small_config()
        tenants = {
            tenant
            for _, tenant in islice(zipf_workload(store, config), 200)
        }
        assert tenants == {f"tenant-{i}" for i in range(config.tenants)}

    def test_flight_path_consecutive_cubes_overlap(self, session_db):
        store = session_db["dm"]
        config = small_config(sessions=3)
        stream = flight_path_workload(store, config)
        drawn = [next(stream) for _ in range(60)]
        # Same session every `sessions` ticks; consecutive cubes of a
        # session must overlap (the workload's defining property).
        for session in range(config.sessions):
            session_requests = [
                request
                for index, (request, _) in enumerate(drawn)
                if index % config.sessions == session
            ]
            tenants = {
                tenant
                for index, (_, tenant) in enumerate(drawn)
                if index % config.sessions == session
            }
            assert len(tenants) == 1, "sessions must be tenant-pinned"
            for prev, nxt in zip(session_requests, session_requests[1:]):
                overlap = prev.roi.intersection(nxt.roi)
                assert overlap is not None
                assert overlap.area > 0.25 * prev.roi.area

    def test_flight_path_stays_on_terrain(self, session_db):
        store = session_db["dm"]
        extent = store.rtree.data_space.rect
        stream = flight_path_workload(store, small_config(n_requests=1))
        for _ in range(400):
            request, _ = next(stream)
            assert extent.expanded(1e-6).contains_rect(request.roi)

    def test_mixed_interleaves_both_modes(self, session_db):
        store = session_db["dm"]
        config = small_config(mode="mixed")
        mixed = [
            request
            for request, _ in islice(build_workload(store, config), 40)
        ]
        zipf = [
            request
            for request, _ in islice(
                build_workload(store, small_config(mode="zipf")), 20
            )
        ]
        assert mixed[0::2] == zipf

    def test_empty_store_raises(self):
        from types import SimpleNamespace

        empty = SimpleNamespace(rtree=SimpleNamespace(data_space=None))
        with pytest.raises(QueryError):
            next(zipf_workload(empty, small_config()))


class TestConfigValidation:
    @pytest.mark.parametrize(
        "overrides",
        [
            {"offered_rate": 0.0},
            {"n_requests": 0},
            {"mode": "stampede"},
            {"roi_frac": 0.0},
            {"roi_frac": 1.5},
            {"hotspots": 0},
            {"sessions": 0},
            {"tenants": 0},
            {"slo_ms": 0.0},
        ],
    )
    def test_bad_knobs_raise(self, overrides):
        with pytest.raises(QueryError):
            small_config(**overrides).validate()


class TestResultScoring:
    def make_result(self, latencies_s, slo_ms=50.0, **overrides) -> OpenLoopResult:
        kwargs = dict(
            config=small_config(slo_ms=slo_ms, n_requests=len(latencies_s)),
            admission=True,
            wall_s=2.0,
            latencies_s=list(latencies_s),
            n_ok=len(latencies_s),
            n_errors=0,
            n_degraded=0,
            n_shed=0,
            n_full_within_slo=sum(
                1 for value in latencies_s if value <= slo_ms / 1000.0
            ),
            n_degraded_within_slo=0,
            max_queue_depth=3,
            dispatch_lag_s=0.001,
            counters={},
        )
        kwargs.update(overrides)
        return OpenLoopResult(**kwargs)

    def test_percentiles_are_exact(self):
        result = self.make_result([i / 1000.0 for i in range(1, 101)])
        assert result.percentile_ms(100) == pytest.approx(100.0)
        assert result.percentile_ms(50) == pytest.approx(50.5)
        assert result.percentile_ms(0) == pytest.approx(1.0)

    def test_goodput_counts_only_full_fidelity_within_slo(self):
        result = self.make_result([0.01, 0.01, 0.2, 0.2], slo_ms=50.0)
        assert result.goodput_qps == pytest.approx(2 / 2.0)
        report = result.to_json()
        assert report["goodput_slo_fraction"] == pytest.approx(2 / 4)

    def test_report_round_trips_schema(self):
        result = self.make_result([0.01] * 10)
        report = result.to_json()
        assert report["schema"] == SLO_REPORT_SCHEMA
        assert validate_slo_report(report) == []
        assert result.to_text()


class TestValidateReport:
    def valid_report(self) -> dict:
        result = TestResultScoring().make_result([0.01] * 5)
        return result.to_json()

    def test_accepts_generated_report(self):
        assert validate_slo_report(self.valid_report()) == []

    def test_rejects_non_object(self):
        assert validate_slo_report([1, 2]) != []

    def test_rejects_wrong_schema_tag(self):
        report = self.valid_report()
        report["schema"] = "repro.bench.slo/v0"
        assert any("schema" in p for p in validate_slo_report(report))

    def test_rejects_missing_number(self):
        report = self.valid_report()
        del report["goodput_qps"]
        assert any("goodput_qps" in p for p in validate_slo_report(report))

    def test_rejects_boolean_masquerading_as_count(self):
        report = self.valid_report()
        report["counts"]["shed"] = True
        assert any("counts.shed" in p for p in validate_slo_report(report))

    def test_rejects_missing_latency_key(self):
        report = self.valid_report()
        del report["latency_ms"]["p999"]
        assert any("p999" in p for p in validate_slo_report(report))

    def test_rejects_bad_mode_and_admission(self):
        report = self.valid_report()
        report["mode"] = "stampede"
        report["admission"] = "yes"
        problems = validate_slo_report(report)
        assert any("mode" in p for p in problems)
        assert any("admission" in p for p in problems)


class TestRunOpenLoop:
    def test_ungoverned_run_completes_and_validates(self, session_db):
        store = session_db["dm"]
        config = small_config(n_requests=30, offered_rate=2000.0)
        with QueryEngine(store, workers=4) as engine:
            result = run_open_loop(engine, config)
        assert result.n_requests == 30
        assert not result.admission
        assert result.n_ok + result.n_errors == 30
        assert result.n_errors == 0
        assert result.wall_s > 0
        assert validate_slo_report(result.to_json()) == []

    def test_governed_run_sheds_and_validates(self, session_db):
        store = session_db["dm"]
        config = small_config(n_requests=40, offered_rate=5000.0)
        governor = CostGovernor(
            store.cost_model, budget=1.0, degrade_headroom=1.0
        )
        # Saturate up front so every arrival sheds: the run must still
        # complete with zero errors and a valid report.
        governor.decide("filler", 1.0)
        with QueryEngine(store, workers=4, governor=governor) as engine:
            result = run_open_loop(engine, config)
        assert result.admission
        assert result.n_errors == 0
        assert result.n_shed == 40
        assert result.n_degraded == 40  # shed answers are degraded
        report = result.to_json()
        assert report["counts"]["shed"] == 40
        assert validate_slo_report(report) == []

    def test_latency_measured_from_scheduled_arrival(self, session_db):
        # With an offered rate far above what one dispatcher can even
        # enqueue, later requests' latencies include their queue wait:
        # the p999 must exceed the p50 noticeably in a governed-less
        # flood of slow-ish requests.  (Scheduling from arrival is the
        # property; exact magnitudes are timing-dependent.)
        store = session_db["dm"]
        config = small_config(n_requests=60, offered_rate=100000.0)
        with QueryEngine(store, workers=1) as engine:
            result = run_open_loop(engine, config)
        assert result.percentile_ms(99.9) >= result.percentile_ms(50)


class TestSuggestBudget:
    def test_scales_with_workers(self, session_db):
        store = session_db["dm"]
        config = small_config()
        one = suggest_budget(store, config, workers=1)
        four = suggest_budget(store, config, workers=4)
        assert one > 0
        assert four == pytest.approx(4 * one)

    def test_rejects_bad_workers(self, session_db):
        with pytest.raises(QueryError):
            suggest_budget(session_db["dm"], small_config(), workers=0)
