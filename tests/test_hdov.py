"""Tests for the HDoV-tree / LOD-R-tree baseline."""

import pytest

from repro.geometry.plane import QueryPlane
from repro.geometry.primitives import Rect
from repro.index.hdov import HDoVTree, LodRTree
from repro.index.visibility import default_viewpoints, tile_visibility
from repro.storage.database import Database
from repro.terrain.synthetic import gaussian_hills_field


@pytest.fixture(scope="module")
def built(tmp_path_factory, request):
    # Build once for this module over the session hills dataset.
    hills = request.getfixturevalue("hills_dataset")
    path = tmp_path_factory.mktemp("hdov")
    db = Database(path / "db", pool_pages=512)
    tree = HDoVTree.build(
        hills.pm,
        hills.field,
        db,
        connections=hills.connections,
        grid=8,
    )
    yield hills, db, tree
    db.close()


class TestBuild:
    def test_grid_must_be_power_of_two(self, hills_dataset, tmp_path):
        with Database(tmp_path / "db") as db:
            with pytest.raises(Exception):
                HDoVTree.build(hills_dataset.pm, None, db, grid=6)

    def test_thresholds_increase_with_height(self, built):
        _, _, tree = built
        assert tree.thresholds == sorted(tree.thresholds)
        assert tree.thresholds[0] == 0.0

    def test_reopen(self, built):
        hills, db, tree = built
        again = HDoVTree.open(db)
        roi = hills.bounds().scaled(0.4)
        a = tree.uniform_query(roi, hills.pm.average_lod())
        b = again.uniform_query(roi, hills.pm.average_lod())
        assert set(a.nodes) == set(b.nodes)


class TestUniformQuery:
    def test_lod_guarantee(self, built):
        # Every returned node's mesh version error must satisfy the
        # requested LOD (finer or equal), never coarser.
        hills, _, tree = built
        lod = hills.pm.average_lod()
        roi = hills.bounds().scaled(0.35)
        result = tree.uniform_query(roi, lod)
        assert len(result) > 0
        for node in result.nodes.values():
            # The node came from a version with error <= lod, so its
            # own normalised LOD cannot exceed the version error.
            assert node.e <= lod + 1e-9

    def test_covers_roi(self, built):
        hills, _, tree = built
        roi = hills.bounds().scaled(0.5)
        result = tree.uniform_query(roi, hills.pm.average_lod())
        xs = [n.x for n in result.nodes.values()]
        ys = [n.y for n in result.nodes.values()]
        # Points spread across the ROI, not one corner.
        assert max(xs) - min(xs) > roi.width * 0.5
        assert max(ys) - min(ys) > roi.height * 0.5

    def test_outside_roi_excluded(self, built):
        hills, _, tree = built
        roi = hills.bounds().scaled(0.3)
        result = tree.uniform_query(roi, hills.pm.average_lod())
        for node in result.nodes.values():
            assert roi.contains_point(node.x, node.y)

    def test_coarser_lod_reads_less(self, built):
        hills, db, tree = built
        roi = hills.bounds().scaled(0.5)
        db.begin_measured_query()
        tree.uniform_query(roi, hills.pm.max_lod() * 0.01)
        fine = db.disk_accesses
        db.begin_measured_query()
        tree.uniform_query(roi, hills.pm.max_lod() * 0.6)
        coarse = db.disk_accesses
        assert coarse < fine

    def test_granularity_waste_visible(self, built):
        # Whole-version reads fetch more records than land in the ROI.
        hills, _, tree = built
        roi = hills.bounds().scaled(0.25)
        result = tree.uniform_query(roi, hills.pm.average_lod())
        assert result.records_scanned > len(result.nodes)

    def test_triangles_reference_result_nodes(self, built):
        hills, _, tree = built
        roi = hills.bounds().scaled(0.4)
        result = tree.uniform_query(roi, hills.pm.average_lod())
        assert result.triangles, "tile meshes must carry triangles"
        ids = set(result.nodes)
        for a, b, c in result.triangles:
            assert ids & {a, b, c}


class TestViewdepQuery:
    def test_distant_region_coarser(self, built):
        hills, _, tree = built
        bounds = hills.bounds()
        roi = bounds.scaled(0.6)
        plane = QueryPlane(
            roi, hills.pm.max_lod() * 0.01, hills.pm.max_lod() * 0.6
        )
        result = tree.viewdep_query(plane)
        near = [
            n.e
            for n in result.nodes.values()
            if n.y < roi.min_y + roi.height * 0.2
        ]
        far = [
            n.e
            for n in result.nodes.values()
            if n.y > roi.max_y - roi.height * 0.2
        ]
        if near and far:
            avg = lambda v: sum(v) / len(v)  # noqa: E731
            assert avg(far) >= avg(near)

    def test_versions_read_counted(self, built):
        hills, _, tree = built
        roi = hills.bounds().scaled(0.4)
        plane = QueryPlane(roi, 0.0, hills.pm.max_lod() * 0.5)
        result = tree.viewdep_query(plane)
        assert result.versions_read >= 1


class TestLodRTree:
    def test_no_visibility(self, hills_dataset, tmp_path):
        with Database(tmp_path / "db") as db:
            tree = LodRTree.build(
                hills_dataset.pm,
                hills_dataset.field,
                db,
                connections=hills_dataset.connections,
                grid=4,
            )
            assert tree.use_visibility is False
            roi = hills_dataset.bounds().scaled(0.4)
            result = tree.uniform_query(
                roi, hills_dataset.pm.average_lod()
            )
            assert len(result) > 0
            assert result.skipped_occluded == 0


class TestVisibility:
    def test_open_terrain_mostly_visible(self):
        field = gaussian_hills_field(size=64, n_hills=3, amplitude=10, seed=1)
        vps = default_viewpoints(field)
        tile = Rect(100, 100, 300, 300)
        dov = tile_visibility(field, tile, vps)
        assert dov > 0.5

    def test_no_viewpoints_fully_visible(self):
        field = gaussian_hills_field(size=32, seed=2)
        assert tile_visibility(field, Rect(0, 0, 50, 50), []) == 1.0

    def test_wall_occludes(self):
        import numpy as np

        from repro.terrain.gridfield import GridField

        # Flat terrain with a tall wall across the middle.
        heights = np.zeros((64, 64))
        heights[30:32, :] = 500.0
        field = GridField(heights, cell_size=1.0)
        viewpoint = [(32.0, 2.0, 3.0)]  # Low, south of the wall.
        behind = Rect(10, 45, 55, 60)  # North of the wall.
        front = Rect(10, 5, 55, 20)
        assert tile_visibility(field, behind, viewpoint) < 0.3
        assert tile_visibility(field, front, viewpoint) > 0.7


class TestOcclusionBehavior:
    def test_occluded_tiles_skipped(self, tmp_path):
        """A deep basin surrounded by high rims is invisible from the
        boundary viewpoints: HDoV must skip it in viewpoint-dependent
        queries, returning fewer nodes than the LOD-R-tree would."""
        import numpy as np

        from repro.core.connectivity import build_connection_lists
        from repro.geometry.plane import QueryPlane
        from repro.mesh.simplify import SimplifyConfig, simplify_to_pm
        from repro.mesh.trimesh import TriMesh
        from repro.storage.database import Database
        from repro.terrain.gridfield import GridField

        # Flat terrain with a deep walled pit aligned to tile cells,
        # so several whole tiles are invisible from the boundary
        # viewpoints (verified: their DoV measures 0.0).
        size = 48
        heights = np.zeros((size, size))
        heights[12:36, 12:36] = -300.0  # The pit floor.
        heights[10:12, 10:38] = 500.0  # Rim walls.
        heights[36:38, 10:38] = 500.0
        heights[10:38, 10:12] = 500.0
        heights[10:38, 36:38] = 500.0
        field = GridField(heights, cell_size=10.0)
        rng = np.random.default_rng(3)
        xs = rng.uniform(0, 470, 2500)
        ys = rng.uniform(0, 470, 2500)
        zs = field.sample_many(xs, ys)
        mesh = TriMesh.from_points(
            list(zip(xs.tolist(), ys.tolist(), zs.tolist()))
        )
        pm = simplify_to_pm(mesh, SimplifyConfig(error_measure="vertical"))
        pm.normalize_lod()
        conn = build_connection_lists(pm)
        with Database(tmp_path / "db", pool_pages=512) as db:
            tree = HDoVTree.build(
                pm, field, db, connections=conn, grid=8
            )
            roi = mesh.bounds()
            plane = QueryPlane(roi, pm.max_lod() * 0.02, pm.max_lod() * 0.9)
            result = tree.viewdep_query(plane)
            assert result.skipped_occluded > 0
