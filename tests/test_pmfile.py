"""Tests for the .pmz progressive-mesh interchange format."""

import zlib

import pytest

from repro.errors import DatasetError
from repro.mesh.pmfile import load_pm, save_pm
from repro.mesh.simplify import simplify_to_pm


class TestRoundTrip:
    def test_pm_round_trip(self, tmp_path, wavy_pm):
        path = tmp_path / "mesh.pmz"
        save_pm(path, wavy_pm)
        loaded, connections = load_pm(path)
        assert connections is None
        assert len(loaded.nodes) == len(wavy_pm.nodes)
        assert loaded.n_leaves == wavy_pm.n_leaves
        assert loaded.base_edges == wavy_pm.base_edges
        for a, b in zip(loaded.nodes, wavy_pm.nodes):
            assert (a.x, a.y, a.z) == (b.x, b.y, b.z)
            assert a.e == b.e
            assert a.e_high == b.e_high
            assert a.parent == b.parent
            assert a.wings() == b.wings()
        assert loaded.is_normalized
        # Footprints re-derived identically.
        assert (
            loaded.node(loaded.roots[0]).footprint.as_tuple()
            == wavy_pm.node(wavy_pm.roots[0]).footprint.as_tuple()
        )

    def test_with_connections(self, tmp_path, wavy_pm, wavy_connections):
        path = tmp_path / "mesh.pmz"
        save_pm(path, wavy_pm, wavy_connections)
        loaded, connections = load_pm(path)
        assert connections is not None
        assert connections == {
            k: sorted(v) for k, v in wavy_connections.items()
        }

    def test_cuts_identical_after_reload(self, tmp_path, wavy_pm):
        path = tmp_path / "mesh.pmz"
        save_pm(path, wavy_pm)
        loaded, _ = load_pm(path)
        for fraction in (0.0, 0.05, 0.3):
            lod = wavy_pm.max_lod() * fraction
            assert set(loaded.uniform_cut(lod)) == set(
                wavy_pm.uniform_cut(lod)
            )

    def test_loaded_pm_builds_a_store(self, tmp_path, wavy_pm,
                                      wavy_connections):
        from repro.core.direct_mesh import DirectMeshStore
        from repro.core.verify_store import verify_store
        from repro.storage.database import Database

        path = tmp_path / "mesh.pmz"
        save_pm(path, wavy_pm, wavy_connections)
        loaded, connections = load_pm(path)
        with Database(tmp_path / "db") as db:
            store = DirectMeshStore.build(loaded, db, connections)
            assert verify_store(store).ok

    def test_compression_effective(self, tmp_path, wavy_pm):
        path = tmp_path / "mesh.pmz"
        save_pm(path, wavy_pm)
        raw_size = len(wavy_pm.nodes) * 60 + len(wavy_pm.base_edges) * 8
        assert path.stat().st_size < raw_size


class TestValidation:
    def test_requires_normalised(self, tmp_path, wavy_mesh):
        raw = simplify_to_pm(wavy_mesh)
        with pytest.raises(DatasetError):
            save_pm(tmp_path / "x.pmz", raw)

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.pmz"
        path.write_bytes(b"NOPE" + b"\x00" * 30)
        with pytest.raises(DatasetError):
            load_pm(path)

    def test_truncated_header(self, tmp_path):
        path = tmp_path / "short.pmz"
        path.write_bytes(b"PM")
        with pytest.raises(DatasetError):
            load_pm(path)

    def test_corrupt_body(self, tmp_path, wavy_pm):
        path = tmp_path / "corrupt.pmz"
        save_pm(path, wavy_pm)
        data = bytearray(path.read_bytes())
        data[30] ^= 0xFF  # Inside the zlib stream.
        path.write_bytes(bytes(data))
        with pytest.raises(DatasetError):
            load_pm(path)

    def test_truncated_body(self, tmp_path, wavy_pm):
        path = tmp_path / "trunc.pmz"
        save_pm(path, wavy_pm)
        data = path.read_bytes()
        # Re-compress a shorter body under an intact header.
        header = data[:20]
        body = zlib.decompress(data[20:])
        path.write_bytes(header + zlib.compress(body[: len(body) // 4]))
        with pytest.raises(DatasetError):
            load_pm(path)
