"""Regression tests for bugs found during development.

Each test pins a specific defect class so it cannot silently return:
the quadtree duplicate-coordinate chain corruption, STR singleton
tails, orient2d underflow, and endpoint-placement duplicate positions.
"""

import random

import pytest

from repro.geometry.primitives import Box3
from repro.index.quadtree import LodQuadtree
from repro.index.rstar import RStarTree


class TestQuadtreeChainRegression:
    """Crater dataset, schema v7: PM parents placed exactly on a child
    endpoint produced identical (x, y) populations whose spill chains
    stored a bogus e-split value, corrupting descent boxes
    ('inverted box' GeometryError on range_search)."""

    def test_identical_xy_distinct_e(self, fresh_db):
        tree = LodQuadtree(fresh_db.segment("qt"))
        # 600 points at the same (x, y) with increasing e: more than
        # two leaf pages, so the chain has depth > 1.
        pts = [(10.0, 10.0, float(i), i) for i in range(600)]
        # And regular points around them.
        rng = random.Random(1)
        pts += [
            (rng.uniform(0, 100), rng.uniform(0, 100), rng.uniform(0, 5),
             1000 + i)
            for i in range(500)
        ]
        tree.bulk_load(pts)
        # The failing query shape: a box whose e-range is far from the
        # chain's first point's e.
        q = Box3(5, 5, 100.0, 15, 15, 400.0)
        got = sorted(v for *_, v in tree.range_search(q))
        want = sorted(
            v for x, y, e, v in pts if q.contains_point(x, y, e)
        )
        assert got == want

    def test_identical_everything(self, fresh_db):
        tree = LodQuadtree(fresh_db.segment("qt"))
        pts = [(1.0, 2.0, 3.0, i) for i in range(700)]
        tree.bulk_load(pts)
        assert tree.count_in_range(Box3(0, 0, 0, 5, 5, 5)) == 700
        assert tree.count_in_range(Box3(0, 0, 4, 5, 5, 5)) == 0


class TestStrSingletonRegression:
    """STR packing could emit a trailing 1-entry node, violating the
    R-tree minimum-fill invariant and failing validate() after later
    inserts."""

    @pytest.mark.parametrize("count", [125, 249, 373, 497])
    def test_awkward_counts_validate(self, fresh_db, count):
        rng = random.Random(count)
        tree = RStarTree(fresh_db.segment(f"rt{count}"))
        entries = []
        for i in range(count):
            x, y, e = (rng.uniform(0, 100) for _ in range(3))
            entries.append((Box3(x, y, e, x + 1, y + 1, e + 1), i))
        tree.bulk_load(entries)
        tree.validate()


class TestOrient2dUnderflowRegression:
    """Subnormal-scale coordinates made one evaluation order return 0
    while another returned the correct sign (hypothesis found it)."""

    def test_known_case(self):
        from repro.geometry.predicates import orient2d

        ax, ay = 4.716257917594479e-256, 2.220209278194716e-180
        bx, by = 4.716257917594479e-256, 0.0
        cx, cy = 0.0, 1.0
        first = orient2d(ax, ay, bx, by, cx, cy)
        second = orient2d(bx, by, cx, cy, ax, ay)
        assert first == second != 0


class TestDuplicatePositionNodes:
    """QEM endpoint placement can give a parent exactly its child's
    (x, y): stores and indexes must tolerate coincident positions."""

    def test_store_with_coincident_nodes(self, tmp_path):
        from repro.core.connectivity import build_connection_lists
        from repro.core.direct_mesh import DirectMeshStore
        from repro.core.verify_store import verify_store
        from repro.mesh.selective import uniform_query_ref
        from repro.mesh.simplify import SimplifyConfig, simplify_to_pm
        from repro.storage.database import Database
        from tests.conftest import make_wavy_grid_mesh

        mesh = make_wavy_grid_mesh(side=14, seed=3)
        # Midpoint placement still dedups via optimal=False path;
        # endpoint duplicates come from the default optimal mode's
        # fallback chain — build with the default.
        pm = simplify_to_pm(mesh, SimplifyConfig(placement="optimal"))
        pm.normalize_lod()
        conn = build_connection_lists(pm)
        coincident = 0
        positions = {}
        for node in pm.nodes:
            key = (node.x, node.y)
            coincident += key in positions
            positions[key] = node.id
        with Database(tmp_path / "db") as db:
            store = DirectMeshStore.build(pm, db, conn)
            assert verify_store(store).ok
            roi = mesh.bounds().scaled(0.6)
            lod = pm.average_lod()
            assert set(store.uniform_query(roi, lod).nodes) == (
                uniform_query_ref(pm, roi, lod)
            )


class TestHalfOpenIntervalBoundary:
    """Interval tops are exclusive: a query at exactly a parent's e
    must return the parent, not the children."""

    def test_boundary_lod_query(self, session_db, hills_dataset):
        ds = hills_dataset
        store = session_db["dm"]
        # Pick an internal node's exact normalised error as the LOD.
        node = next(
            n for n in ds.pm.internal_nodes if n.e > 0 and n.parent != -1
        )
        roi = ds.bounds()
        result = store.uniform_query(roi, node.e)
        assert node.id in result.nodes
        child = ds.pm.node(node.child1)
        # The child's interval ends exactly at node.e: excluded.
        assert child.id not in result.nodes
