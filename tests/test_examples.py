"""Smoke tests: every example script must run end to end.

Examples are documentation that executes; these tests keep them from
rotting.  Each runs as a subprocess with its smallest workload in an
isolated working directory.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
EXAMPLES = REPO_ROOT / "examples"


def _example_env() -> dict[str, str]:
    """The subprocess environment, with ``src/`` importable.

    The examples import ``repro`` directly; prepending the source tree
    to ``PYTHONPATH`` makes them run whether or not the package is
    installed (the suite itself may be running off PYTHONPATH).
    """
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        src if not existing else src + os.pathsep + existing
    )
    return env


def run_example(tmp_path, name: str, *args: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=600,
        cwd=tmp_path,  # Outputs (results/) land in the temp dir.
        env=_example_env(),
    )
    assert result.returncode == 0, (
        f"{name} failed:\nstdout:\n{result.stdout}\nstderr:\n{result.stderr}"
    )
    return result.stdout


@pytest.mark.slow
class TestExamples:
    def test_quickstart(self, tmp_path):
        out = run_example(tmp_path, "quickstart.py")
        assert "uniform query" in out
        assert "disk accesses" in out
        assert (tmp_path / "results" / "quickstart_viewdep.obj").exists()

    def test_flyover(self, tmp_path):
        out = run_example(tmp_path, "flyover.py", "3")
        assert "flyover total" in out
        assert "reduction" in out

    def test_compare_methods(self, tmp_path):
        out = run_example(tmp_path, "compare_methods.py", "8", "5")
        assert "Direct Mesh" in out
        assert "statistics report" in out
        assert "<-- best" in out

    def test_dem_pipeline(self, tmp_path):
        out = run_example(tmp_path, "dem_pipeline.py")
        assert "tile" in out
        for tile in ("sw", "se", "nw", "ne"):
            assert (tmp_path / "results" / f"tile_{tile}.obj").exists()

    def test_streaming_client(self, tmp_path):
        out = run_example(tmp_path, "streaming_client.py", "4")
        assert "transfer:" in out
        assert "saved" in out
