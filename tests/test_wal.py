"""Tests for write-ahead logging and crash recovery."""

import pytest

from repro.errors import StorageError
from repro.storage.database import Database
from repro.storage.heapfile import HeapFile
from repro.storage.wal import WAL_FILENAME, WriteAheadLog


def crash(db: Database) -> None:
    """Simulate a process death: drop the buffer (losing dirty pages)
    and close the file descriptors without flushing."""
    db.buffer._frames.clear()
    for pager in db._pagers.values():
        pager.close()
    db._pagers.clear()
    db._closed = True


class TestCleanPath:
    def test_atomic_success_removes_log(self, tmp_path):
        with Database(tmp_path / "db") as db:
            with db.atomic():
                hf = HeapFile(db.segment("t"))
                rid = hf.insert(b"durable")
            assert not (tmp_path / "db" / WAL_FILENAME).exists()
        with Database(tmp_path / "db") as db:
            assert HeapFile(db.segment("t")).read(rid) == b"durable"

    def test_atomic_does_not_nest(self, tmp_path):
        with Database(tmp_path / "db") as db:
            with db.atomic():
                with pytest.raises(StorageError):
                    with db.atomic():
                        pass

    def test_exception_leaves_uncommitted_log(self, tmp_path):
        path = tmp_path / "db"
        with Database(path) as db:
            with pytest.raises(RuntimeError):
                with db.atomic():
                    hf = HeapFile(db.segment("t"))
                    hf.insert(b"x" * 4000)
                    db.buffer.flush_dirty()  # Force logged writes.
                    raise RuntimeError("boom")
            # Log file left behind for the next open to inspect.
            assert (path / WAL_FILENAME).exists()
            db._wal = None  # Already reset by atomic(); be explicit.
        # Reopen: the torn log is discarded.
        with Database(path) as db:
            assert not (path / WAL_FILENAME).exists()


class TestCrashRecovery:
    def test_uncommitted_crash_discards(self, tmp_path):
        path = tmp_path / "db"
        db = Database(path)
        try:
            with pytest.raises(RuntimeError):
                with db.atomic():
                    hf = HeapFile(db.segment("t"))
                    for _ in range(50):
                        hf.insert(b"y" * 3000)
                    db.buffer.flush_dirty()
                    raise RuntimeError("power cut")
        finally:
            crash(db)
        assert (path / WAL_FILENAME).exists()
        with Database(path) as db2:
            assert not (path / WAL_FILENAME).exists()

    def test_committed_crash_replays(self, tmp_path):
        path = tmp_path / "db"
        db = Database(path)
        hf = HeapFile(db.segment("t"))
        rid_before = hf.insert(b"pre-existing")
        db.buffer.flush_dirty()

        # Write new pages through the WAL and commit, then crash
        # BEFORE the dirty pages reach the segment files: recovery
        # must replay them from the log.
        wal = WriteAheadLog(path, db.page_size)
        wal.begin()
        db._wal = wal
        for pager in db._pagers.values():
            pager.wal = wal
        rids = [hf.insert(f"record-{i}".encode() * 30) for i in range(120)]
        # Log the dirty buffered pages manually (as flush would), but
        # do NOT write them in place.
        for (name, page_no), frame in db.buffer._frames.items():
            if frame.dirty:
                wal.log_page(name, page_no, bytes(frame.data))
        wal.commit()
        wal.close(discard=False)
        crash(db)

        with Database(path) as db2:
            assert not (path / WAL_FILENAME).exists()
            hf2 = HeapFile(db2.segment("t"))
            assert hf2.read(rid_before) == b"pre-existing"
            for i, rid in enumerate(rids):
                assert hf2.read(rid) == f"record-{i}".encode() * 30

    def test_torn_log_record_discarded(self, tmp_path):
        path = tmp_path / "db"
        with Database(path) as db:
            db.segment("t").allocate()
        # Fabricate a log with a truncated page record and no commit.
        wal = WriteAheadLog(path, 8192)
        wal.begin()
        wal.log_page("t", 0, b"\xab" * 8192)
        wal.close(discard=False)
        log = path / WAL_FILENAME
        data = log.read_bytes()
        log.write_bytes(data[: len(data) // 2])
        with Database(path) as db:
            assert not log.exists()
            # Original page untouched.
            assert bytes(db.segment("t").fetch(0)) != b"\xab" * 8192

    def test_corrupt_crc_stops_replay(self, tmp_path):
        path = tmp_path / "db"
        with Database(path) as db:
            db.segment("t").allocate()
        wal = WriteAheadLog(path, 8192)
        wal.begin()
        wal.log_page("t", 0, b"\xcd" * 8192)
        wal.commit()
        wal.close(discard=False)
        log = path / WAL_FILENAME
        raw = bytearray(log.read_bytes())
        raw[40] ^= 0xFF  # Flip a bit inside the page image.
        log.write_bytes(bytes(raw))
        with Database(path) as db:
            # CRC failure truncates the log before the commit record,
            # so nothing is replayed.
            assert bytes(db.segment("t").fetch(0)) != b"\xcd" * 8192


class TestWalUnit:
    def test_log_requires_begin(self, tmp_path):
        wal = WriteAheadLog(tmp_path, 512)
        with pytest.raises(StorageError):
            wal.log_page("t", 0, b"\x00" * 512)
        with pytest.raises(StorageError):
            wal.commit()

    def test_wrong_page_size_rejected(self, tmp_path):
        wal = WriteAheadLog(tmp_path, 512)
        wal.begin()
        try:
            with pytest.raises(StorageError):
                wal.log_page("t", 0, b"\x00" * 100)
        finally:
            wal.close()

    def test_build_inside_atomic(self, tmp_path, wavy_pm, wavy_connections):
        from repro.core.direct_mesh import DirectMeshStore
        from repro.core.verify_store import verify_store

        with Database(tmp_path / "db") as db:
            with db.atomic():
                DirectMeshStore.build(wavy_pm, db, wavy_connections)
        with Database(tmp_path / "db") as db:
            store = DirectMeshStore.open(db)
            assert verify_store(store).ok
