"""Tests for write-ahead logging and crash recovery."""

import pytest

from repro.errors import StorageError
from repro.storage.database import Database
from repro.storage.heapfile import HeapFile
from repro.storage.wal import WAL_FILENAME, WriteAheadLog


def crash(db: Database) -> None:
    """Simulate a process death: drop the buffer (losing dirty pages)
    and close the file descriptors without flushing."""
    db.buffer._frames.clear()
    for pager in db._pagers.values():
        pager.close()
    db._pagers.clear()
    db._closed = True


class TestCleanPath:
    def test_atomic_success_removes_log(self, tmp_path):
        with Database(tmp_path / "db") as db:
            with db.atomic():
                hf = HeapFile(db.segment("t"))
                rid = hf.insert(b"durable")
            assert not (tmp_path / "db" / WAL_FILENAME).exists()
        with Database(tmp_path / "db") as db:
            assert HeapFile(db.segment("t")).read(rid) == b"durable"

    def test_atomic_does_not_nest(self, tmp_path):
        with Database(tmp_path / "db") as db:
            with db.atomic():
                with pytest.raises(StorageError):
                    with db.atomic():
                        pass

    def test_exception_leaves_uncommitted_log(self, tmp_path):
        path = tmp_path / "db"
        with Database(path) as db:
            with pytest.raises(RuntimeError):
                with db.atomic():
                    hf = HeapFile(db.segment("t"))
                    hf.insert(b"x" * 4000)
                    db.buffer.flush_dirty()  # Force logged writes.
                    raise RuntimeError("boom")
            # Log file left behind for the next open to inspect.
            assert (path / WAL_FILENAME).exists()
            db._wal = None  # Already reset by atomic(); be explicit.
        # Reopen: the torn log is discarded.
        with Database(path) as db:
            assert not (path / WAL_FILENAME).exists()


class TestCrashRecovery:
    def test_uncommitted_crash_discards(self, tmp_path):
        path = tmp_path / "db"
        db = Database(path)
        try:
            with pytest.raises(RuntimeError):
                with db.atomic():
                    hf = HeapFile(db.segment("t"))
                    for _ in range(50):
                        hf.insert(b"y" * 3000)
                    db.buffer.flush_dirty()
                    raise RuntimeError("power cut")
        finally:
            crash(db)
        assert (path / WAL_FILENAME).exists()
        with Database(path) as db2:
            assert not (path / WAL_FILENAME).exists()

    def test_committed_crash_replays(self, tmp_path):
        path = tmp_path / "db"
        db = Database(path)
        hf = HeapFile(db.segment("t"))
        rid_before = hf.insert(b"pre-existing")
        db.buffer.flush_dirty()

        # Write new pages through the WAL and commit, then crash
        # BEFORE the dirty pages reach the segment files: recovery
        # must replay them from the log.
        wal = WriteAheadLog(path, db.page_size)
        wal.begin()
        db._wal = wal
        for pager in db._pagers.values():
            pager.wal = wal
        rids = [hf.insert(f"record-{i}".encode() * 30) for i in range(120)]
        # Log the dirty buffered pages manually (as flush would), but
        # do NOT write them in place.
        for (name, page_no), frame in db.buffer._frames.items():
            if frame.dirty:
                wal.log_page(name, page_no, bytes(frame.data))
        wal.commit()
        wal.close(discard=False)
        crash(db)

        with Database(path) as db2:
            assert not (path / WAL_FILENAME).exists()
            hf2 = HeapFile(db2.segment("t"))
            assert hf2.read(rid_before) == b"pre-existing"
            for i, rid in enumerate(rids):
                assert hf2.read(rid) == f"record-{i}".encode() * 30

    def test_torn_log_record_discarded(self, tmp_path):
        path = tmp_path / "db"
        with Database(path) as db:
            db.segment("t").allocate()
        # Fabricate a log with a truncated page record and no commit.
        wal = WriteAheadLog(path, 8192)
        wal.begin()
        wal.log_page("t", 0, b"\xab" * 8192)
        wal.close(discard=False)
        log = path / WAL_FILENAME
        data = log.read_bytes()
        log.write_bytes(data[: len(data) // 2])
        with Database(path) as db:
            assert not log.exists()
            # Original page untouched.
            assert bytes(db.segment("t").fetch(0)) != b"\xab" * 8192

    def test_corrupt_crc_stops_replay(self, tmp_path):
        path = tmp_path / "db"
        with Database(path) as db:
            db.segment("t").allocate()
        wal = WriteAheadLog(path, 8192)
        wal.begin()
        wal.log_page("t", 0, b"\xcd" * 8192)
        wal.commit()
        wal.close(discard=False)
        log = path / WAL_FILENAME
        raw = bytearray(log.read_bytes())
        raw[40] ^= 0xFF  # Flip a bit inside the page image.
        log.write_bytes(bytes(raw))
        with Database(path) as db:
            # CRC failure truncates the log before the commit record,
            # so nothing is replayed.
            assert bytes(db.segment("t").fetch(0)) != b"\xcd" * 8192


class TestCrashMatrix:
    """Atomicity under every torn-log shape.

    A committed three-record log is truncated at every record boundary
    and mid-record, and corrupted inside every record (and the commit
    record): recovery must either fully replay all three images or
    fully discard them — never apply a prefix.
    """

    PAGE_SIZE = 8192
    N_RECORDS = 3
    # crc(4) + kind(4) + name_len(4) + name("t") + page_no(8) + page.
    RECORD = 12 + 1 + 8 + PAGE_SIZE
    COMMIT = 12
    FULL = N_RECORDS * RECORD + COMMIT

    def _prepare(self, tmp_path) -> tuple:
        path = tmp_path / "db"
        with Database(path) as db:
            seg = db.segment("t")
            for _ in range(self.N_RECORDS):
                seg.allocate()
        wal = WriteAheadLog(path, self.PAGE_SIZE)
        wal.begin()
        for page_no in range(self.N_RECORDS):
            image = bytearray(self.PAGE_SIZE)
            image[:4] = bytes([page_no + 1] * 4)
            wal.log_page("t", page_no, bytes(image))
        wal.commit()
        wal.close(discard=False)
        return path, (path / WAL_FILENAME).read_bytes()

    def _recover_and_classify(self, path, raw: bytes) -> str:
        (path / WAL_FILENAME).write_bytes(raw)
        with Database(path) as db:
            assert not (path / WAL_FILENAME).exists()
            seg = db.segment("t")
            heads = [
                bytes(seg.fetch(p)[:4]) for p in range(self.N_RECORDS)
            ]
        applied = [
            heads[p] == bytes([p + 1] * 4) for p in range(self.N_RECORDS)
        ]
        untouched = [head == b"\x00" * 4 for head in heads]
        assert all(applied) or all(untouched), (
            f"partial replay: {applied}"
        )
        return "replayed" if all(applied) else "discarded"

    @pytest.mark.parametrize(
        "cut",
        [0, RECORD, 2 * RECORD, 3 * RECORD, FULL]
        + [100, RECORD + 100, 2 * RECORD + 100, 3 * RECORD + 6],
        ids=lambda c: f"cut-{c}",
    )
    def test_truncation_never_half_applies(self, tmp_path, cut):
        path, raw = self._prepare(tmp_path)
        assert len(raw) == self.FULL
        expected = "replayed" if cut == self.FULL else "discarded"
        assert self._recover_and_classify(path, raw[:cut]) == expected

    @pytest.mark.parametrize(
        "record", range(N_RECORDS + 1), ids=lambda r: f"record-{r}"
    )
    def test_corruption_never_half_applies(self, tmp_path, record):
        # A flipped byte inside record N (or, for the last index, the
        # commit record) breaks its crc; the parse stops there and the
        # commit record is never reached, so nothing may be applied.
        path, raw = self._prepare(tmp_path)
        damaged = bytearray(raw)
        offset = 40 if record < self.N_RECORDS else 6
        damaged[record * self.RECORD + offset] ^= 0xFF
        outcome = self._recover_and_classify(path, bytes(damaged))
        assert outcome == "discarded"


class TestWalUnit:
    def test_log_requires_begin(self, tmp_path):
        wal = WriteAheadLog(tmp_path, 512)
        with pytest.raises(StorageError):
            wal.log_page("t", 0, b"\x00" * 512)
        with pytest.raises(StorageError):
            wal.commit()

    def test_wrong_page_size_rejected(self, tmp_path):
        wal = WriteAheadLog(tmp_path, 512)
        wal.begin()
        try:
            with pytest.raises(StorageError):
                wal.log_page("t", 0, b"\x00" * 100)
        finally:
            wal.close()

    def test_build_inside_atomic(self, tmp_path, wavy_pm, wavy_connections):
        from repro.core.direct_mesh import DirectMeshStore
        from repro.core.verify_store import verify_store

        with Database(tmp_path / "db") as db:
            with db.atomic():
                DirectMeshStore.build(wavy_pm, db, wavy_connections)
        with Database(tmp_path / "db") as db:
            store = DirectMeshStore.open(db)
            assert verify_store(store).ok


class TestPatchCrashMatrix:
    """Atomicity of the typed patch-record family (kinds 3/4).

    A committed patch log — begin header, three staged page images,
    patch-commit marker — is truncated at every record boundary and
    mid-record, and corrupted inside every record.  Recovery must land
    on exactly one of the two snapshots: fully replayed (pages applied
    AND the store epoch flipped) or fully discarded (pages untouched
    AND the epoch still at 0).  A half-state — pages without the flip,
    or the flip without the pages — is the bug this family exists to
    make impossible.
    """

    PAGE_SIZE = 8192
    N_PAGES = 3
    SEGMENT = "t@1_nodes"

    def _prepare(self, tmp_path) -> tuple:
        path = tmp_path / "db"
        with Database(path) as db:
            seg = db.segment(self.SEGMENT)
            for _ in range(self.N_PAGES):
                seg.allocate()
        header = {
            "prefix": "t",
            "from_epoch": 0,
            "to_epoch": 1,
            "region": [0.0, 0.0, 4.0, 4.0],
            "segments": [self.SEGMENT],
        }
        wal = WriteAheadLog(path, self.PAGE_SIZE)
        boundaries = []
        wal.begin_patch(header)
        boundaries.append(wal.path.stat().st_size)
        for page_no in range(self.N_PAGES):
            image = bytearray(self.PAGE_SIZE)
            image[:4] = bytes([page_no + 1] * 4)
            wal.log_page(self.SEGMENT, page_no, bytes(image))
            boundaries.append(wal.path.stat().st_size)
        wal.commit_patch(header)
        boundaries.append(wal.path.stat().st_size)
        wal.close(discard=False)
        return path, (path / WAL_FILENAME).read_bytes(), boundaries

    def _recover_and_classify(self, path, raw: bytes) -> str:
        (path / WAL_FILENAME).write_bytes(raw)
        with Database(path) as db:
            assert not (path / WAL_FILENAME).exists()
            epoch = db.store_epoch("t")
            seg = db.segment(self.SEGMENT)
            heads = [bytes(seg.fetch(p)[:4]) for p in range(self.N_PAGES)]
        applied = [
            heads[p] == bytes([p + 1] * 4) for p in range(self.N_PAGES)
        ]
        untouched = [head == b"\x00" * 4 for head in heads]
        assert all(applied) or all(untouched), f"partial replay: {applied}"
        if all(applied):
            assert epoch == 1, "pages replayed but epoch never flipped"
            return "replayed"
        assert epoch == 0, "epoch flipped without the pages"
        return "discarded"

    def test_full_log_replays_and_flips(self, tmp_path):
        path, raw, boundaries = self._prepare(tmp_path)
        assert len(raw) == boundaries[-1]
        assert self._recover_and_classify(path, raw) == "replayed"

    @pytest.mark.parametrize("boundary", range(5), ids=lambda b: f"after-{b}")
    def test_truncation_at_record_boundaries(self, tmp_path, boundary):
        # Cutting after the begin header, or after any staged page,
        # leaves no commit marker: everything must be discarded.  Only
        # boundary 4 (the full log) may replay — covered above.
        path, raw, boundaries = self._prepare(tmp_path)
        cut = boundaries[boundary]
        if cut == len(raw):
            return
        outcome = self._recover_and_classify(path, raw[:cut])
        assert outcome == "discarded"

    @pytest.mark.parametrize("record", range(5), ids=lambda r: f"record-{r}")
    def test_mid_record_truncation(self, tmp_path, record):
        path, raw, boundaries = self._prepare(tmp_path)
        start = 0 if record == 0 else boundaries[record - 1]
        end = boundaries[record]
        cut = start + (end - start) // 2
        outcome = self._recover_and_classify(path, raw[:cut])
        assert outcome == "discarded"

    @pytest.mark.parametrize("record", range(5), ids=lambda r: f"record-{r}")
    def test_corruption_inside_any_record_discards(self, tmp_path, record):
        # A flipped byte breaks that record's crc; the parse stops
        # there, never reaches the commit marker, and recovery must
        # discard — including a flip inside the commit marker itself.
        path, raw, boundaries = self._prepare(tmp_path)
        start = 0 if record == 0 else boundaries[record - 1]
        damaged = bytearray(raw)
        damaged[start + 13] ^= 0xFF
        outcome = self._recover_and_classify(path, bytes(damaged))
        assert outcome == "discarded"

    def test_uncommitted_patch_leaves_orphan_segments(self, tmp_path):
        # The discarded branch leaves the staged segment on disk with
        # the committed epoch below its tag — exactly what fsck
        # reports as an orphan, distinct from corruption.
        from repro.storage.integrity import scrub_database

        path, raw, boundaries = self._prepare(tmp_path)
        assert self._recover_and_classify(path, raw[: boundaries[2]]) == (
            "discarded"
        )
        with Database(path) as db:
            report = scrub_database(db)
        assert report.ok
        assert report.orphan_segments == 1
        assert report.orphans[0].segment == self.SEGMENT
        assert report.orphans[0].epoch == 1
        assert report.orphans[0].committed_epoch == 0


class TestPatchWalUnit:
    def test_begin_patch_validates_header(self, tmp_path):
        wal = WriteAheadLog(tmp_path, 512)
        with pytest.raises(StorageError):
            wal.begin_patch({"prefix": "t", "to_epoch": 1})

    def test_patch_header_readable_before_commit(self, tmp_path):
        header = {
            "prefix": "t",
            "from_epoch": 0,
            "to_epoch": 1,
            "region": [0.0, 0.0, 1.0, 1.0],
            "segments": ["t@1_nodes"],
        }
        wal = WriteAheadLog(tmp_path, 512)
        wal.begin_patch(header)
        wal.close(discard=False)
        inspect = WriteAheadLog(tmp_path, 512)
        assert inspect.patch_header() == header
        assert inspect.committed_records() is None

    def test_commit_marker_without_begin_header_discards(self, tmp_path):
        # A kind-4 marker in a log that never carried the kind-3
        # header is structurally invalid: the parse must refuse to
        # treat it as committed (recovery would have no flip target).
        wal = WriteAheadLog(tmp_path, 512)
        wal.begin()
        wal.log_page("t", 0, b"\x00" * 512)
        wal._append_json(4, {"prefix": "t", "to_epoch": 1})
        wal.close(discard=False)
        inspect = WriteAheadLog(tmp_path, 512)
        assert inspect.committed_records() is None

    def test_plain_commit_does_not_carry_patch_header(self, tmp_path):
        wal = WriteAheadLog(tmp_path, 512)
        wal.begin()
        wal.log_page("t", 0, b"\x01" * 512)
        wal.commit()
        wal.close(discard=False)
        inspect = WriteAheadLog(tmp_path, 512)
        assert inspect.patch_header() is None
        records = inspect.committed_records()
        assert records is not None and len(records) == 1
