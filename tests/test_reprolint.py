"""Self-tests for the reprolint rule engine.

The heart is the fixture corpus under ``tests/reprolint_fixtures/``:
each rule ships a known-bad file (minimized reproduction of the bug
class it polices, with ``# [R<n>]`` markers on the lines that must
fire) and a known-good file (the fixed form, which must stay silent).
The harness asserts the *exact* set of (rule, line) findings, so a
rule that goes quiet, fires on the wrong line, or grows a false
positive on the fixed idiom fails loudly.
"""

from __future__ import annotations

import json
import re
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import (
    Violation,
    all_rules,
    check_paths,
    check_source,
)

REPO_ROOT = Path(__file__).resolve().parents[1]
FIXTURES = REPO_ROOT / "tests" / "reprolint_fixtures"

_HEADER = re.compile(r"#\s*reprolint-fixture:\s*path=(?P<path>\S+)")
_EXPECT = re.compile(r"#\s*expect:\s*(?P<rule>[A-Z]\d+):(?P<line>\d+)")
_MARKER = re.compile(r"#\s*\[(?P<rule>[A-Z]\d+)\]")


def _load_fixture(path: Path) -> tuple[str, str, set[tuple[str, int]]]:
    """Return (virtual_path, source, expected {(rule, line)})."""
    source = path.read_text(encoding="utf-8")
    header = _HEADER.search(source)
    assert header is not None, f"{path.name} lacks a reprolint-fixture header"
    expected: set[tuple[str, int]] = set()
    for match in _EXPECT.finditer(source):
        expected.add((match.group("rule"), int(match.group("line"))))
    for lineno, line in enumerate(source.splitlines(), start=1):
        for match in _MARKER.finditer(line):
            expected.add((match.group("rule"), lineno))
    return header.group("path"), source, expected


def _fixture_files() -> list[Path]:
    files = sorted(FIXTURES.glob("*.py"))
    assert files, "fixture corpus is missing"
    return files


@pytest.mark.parametrize(
    "fixture", _fixture_files(), ids=lambda p: p.stem
)
def test_fixture(fixture: Path) -> None:
    virtual_path, source, expected = _load_fixture(fixture)
    violations = check_source(source, virtual_path)
    actual = {(v.rule_id, v.line) for v in violations}
    rendered = "\n".join(v.render() for v in violations)
    assert actual == expected, (
        f"{fixture.name}: expected {sorted(expected)}, "
        f"got {sorted(actual)}\n{rendered}"
    )


def test_every_rule_has_bad_and_good_fixture() -> None:
    """Each registered rule is proven to fire AND to stay silent."""
    stems = {path.stem for path in _fixture_files()}
    fired: set[str] = set()
    for fixture in _fixture_files():
        _, _, expected = _load_fixture(fixture)
        fired |= {rule for rule, _ in expected}
    for rule in all_rules():
        assert any(
            stem.startswith(rule.id + "_") for stem in stems
        ), f"no fixture for {rule.id}"
        assert rule.id in fired or rule.id == "R0", (
            f"no fixture proves {rule.id} fires"
        )
    # R0 (pragma hygiene) is exercised by its dedicated fixture.
    assert "R0" in fired


def test_rule_ids_are_stable() -> None:
    assert [rule.id for rule in all_rules()] == [
        "R1",
        "R2",
        "R3",
        "R4",
        "R5",
        "R6",
        "R7",
        "R8",
        "R9",
        "R10",
        "R11",
        "R12",
    ]


# -- suppression grammar -----------------------------------------------------


def test_line_suppression_covers_same_line() -> None:
    source = (
        "def f():\n"
        "    assert True  # reprolint: disable=R4 test helper\n"
    )
    assert check_source(source, "src/repro/demo.py") == []


def test_standalone_suppression_covers_next_line() -> None:
    source = (
        "def f():\n"
        "    # reprolint: disable=R4 invariant is checked upstream\n"
        "    assert True\n"
    )
    assert check_source(source, "src/repro/demo.py") == []


def test_suppression_does_not_leak_to_other_lines() -> None:
    source = (
        "def f():\n"
        "    # reprolint: disable=R4 only the next line\n"
        "    assert True\n"
        "    assert False\n"
    )
    violations = check_source(source, "src/repro/demo.py")
    assert [(v.rule_id, v.line) for v in violations] == [("R4", 4)]


def test_file_wide_suppression() -> None:
    source = (
        "# reprolint: disable-file=R4 demo module asserts freely\n"
        "def f():\n"
        "    assert True\n"
        "def g():\n"
        "    assert False\n"
    )
    assert check_source(source, "src/repro/demo.py") == []


def test_suppression_without_reason_is_r0() -> None:
    source = "def f():\n    assert True  # reprolint: disable=R4\n"
    violations = check_source(source, "src/repro/demo.py")
    rule_ids = sorted(v.rule_id for v in violations)
    # The reason-less pragma is reported AND still suppresses nothing.
    assert rule_ids == ["R0", "R4"]


def test_suppression_of_unknown_rule_is_r0() -> None:
    source = "x = 1  # reprolint: disable=R42 mystery rule\n"
    violations = check_source(source, "src/repro/demo.py")
    assert [v.rule_id for v in violations] == ["R0"]


def test_malformed_pragma_is_r0() -> None:
    source = "x = 1  # reprolint: disable R4 forgot the equals\n"
    violations = check_source(source, "src/repro/demo.py")
    assert [v.rule_id for v in violations] == ["R0"]


def test_multi_rule_suppression() -> None:
    source = (
        "def f(tree):\n"
        "    # reprolint: disable=R2,R4 oracle check in a demo\n"
        "    assert tree.search(None)\n"
    )
    assert check_source(source, "src/repro/demo.py") == []


def test_parse_error_is_e0() -> None:
    violations = check_source("def broken(:\n", "src/repro/demo.py")
    assert len(violations) == 1
    assert violations[0].rule_id == "E0"


def test_violation_render_format() -> None:
    violation = Violation("src/x.py", 3, 4, "R1", "boom")
    assert violation.render() == "src/x.py:3:4: R1 boom"


# -- the repository itself must be clean -------------------------------------


def test_repo_is_reprolint_clean() -> None:
    violations = check_paths(
        [REPO_ROOT / "src", REPO_ROOT / "tests", REPO_ROOT / "benchmarks"],
        root=REPO_ROOT,
    )
    rendered = "\n".join(v.render() for v in violations)
    assert violations == [], f"reprolint violations on HEAD:\n{rendered}"


# -- CLI ---------------------------------------------------------------------


def _run_cli(*args: str) -> subprocess.CompletedProcess[str]:
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *args],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
    )


def test_cli_flags_bad_file(tmp_path: Path) -> None:
    bad = tmp_path / "src" / "repro" / "demo.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("def f():\n    assert True\n", encoding="utf-8")
    result = _run_cli(str(bad))
    assert result.returncode == 1
    assert "R4" in result.stdout
    assert "1 violation" in result.stderr


def test_cli_clean_file_exits_zero(tmp_path: Path) -> None:
    good = tmp_path / "clean.py"
    good.write_text("x = 1\n", encoding="utf-8")
    result = _run_cli(str(good))
    assert result.returncode == 0
    assert result.stdout == ""


def test_cli_list_rules() -> None:
    result = _run_cli("--list-rules")
    assert result.returncode == 0
    for rule_id in (
        "R1",
        "R2",
        "R3",
        "R4",
        "R5",
        "R6",
        "R7",
        "R8",
        "R9",
        "R10",
        "R11",
        "R12",
    ):
        assert rule_id in result.stdout


def test_cli_json_and_sarif_reports(tmp_path: Path) -> None:
    bad = tmp_path / "src" / "repro" / "demo.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("def f():\n    assert True\n", encoding="utf-8")
    json_out = tmp_path / "findings.json"
    sarif_out = tmp_path / "findings.sarif"
    result = _run_cli(
        str(bad), "--json", str(json_out), "--sarif", str(sarif_out)
    )
    assert result.returncode == 1

    payload = json.loads(json_out.read_text(encoding="utf-8"))
    assert payload["version"] == 1
    assert [f["rule"] for f in payload["violations"]] == ["R4"]
    assert payload["violations"][0]["line"] == 2
    assert payload["counts"] == {"R4": 1}

    sarif = json.loads(sarif_out.read_text(encoding="utf-8"))
    assert sarif["version"] == "2.1.0"
    run = sarif["runs"][0]
    assert run["tool"]["driver"]["name"] == "reprolint"
    assert [r["ruleId"] for r in run["results"]] == ["R4"]
    region = run["results"][0]["locations"][0]["physicalLocation"]
    assert region["region"]["startLine"] == 2


def test_cli_lock_graph_dump(tmp_path: Path) -> None:
    source = (
        "import threading\n"
        "\n"
        "\n"
        "class Outer:\n"
        "    def __init__(self, inner: 'Inner') -> None:\n"
        "        self._lock = threading.Lock()\n"
        "        self._inner = inner\n"
        "\n"
        "    def poke(self) -> None:\n"
        "        with self._lock:\n"
        "            self._inner.poke()\n"
        "\n"
        "\n"
        "class Inner:\n"
        "    def __init__(self) -> None:\n"
        "        self._lock = threading.Lock()\n"
        "\n"
        "    def poke(self) -> None:\n"
        "        with self._lock:\n"
        "            pass\n"
    )
    module = tmp_path / "src" / "repro" / "demo.py"
    module.parent.mkdir(parents=True)
    module.write_text(source, encoding="utf-8")
    out = tmp_path / "lockgraph.json"
    result = _run_cli(str(module), "--lock-graph", str(out))
    assert result.returncode == 0
    graph = json.loads(out.read_text(encoding="utf-8"))
    edges = [(e["src"], e["dst"]) for e in graph["edges"]]
    assert ("Outer._lock", "Inner._lock") in edges
