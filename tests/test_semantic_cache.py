"""The interval-aware semantic result cache.

Two layers under test:

* :class:`~repro.core.cache.SemanticCache` in isolation — exact and
  subsume hits, byte-budgeted LRU eviction, prefetch inflation,
  invalidation, and the lifetime counters;
* the cache wired into :class:`~repro.core.engine.QueryEngine` — the
  acceptance criterion is that cached answers are *exact*: an engine
  with a cache returns the same node-id sets as one without, for
  repeated, overlapping and ``lod > e_cap`` workloads alike.
"""

import random

import pytest

from repro.core import DirectMeshStore, QueryEngine, SemanticCache
from repro.core.engine import SingleBaseRequest, UniformRequest
from repro.errors import QueryError
from repro.geometry.plane import QueryPlane
from repro.geometry.primitives import Box3, Rect
from repro.mesh.progressive import PMNode
from repro.obs.metrics import MetricsRegistry
from repro.storage import Database
from repro.storage.record import decode_dm_nodes_columnar, encode_dm_node
from repro.terrain import dataset_by_name


def make_columns(n: int, seed: int = 0):
    """A columnar page of ``n`` synthetic records (for unit tests)."""
    rng = random.Random(seed)
    payloads = []
    for i in range(n):
        node = PMNode(i, rng.random(), rng.random(), rng.random(), error=0.0)
        node.e = rng.random()
        node.e_high = node.e + rng.random()
        payloads.append(encode_dm_node(node, []))
    return decode_dm_nodes_columnar(payloads)


BOX = Box3(0.0, 0.0, 0.0, 10.0, 10.0, 2.0)
INNER = Box3(2.0, 2.0, 0.5, 8.0, 8.0, 1.5)
DISJOINT = Box3(20.0, 20.0, 0.0, 30.0, 30.0, 2.0)


class TestCacheUnit:
    def test_bad_args(self):
        with pytest.raises(QueryError):
            SemanticCache(0)
        with pytest.raises(QueryError):
            SemanticCache(-5)
        with pytest.raises(QueryError):
            SemanticCache(1 << 20, prefetch_e=-0.1)

    def test_exact_hit_and_miss(self):
        cache = SemanticCache(1 << 20)
        columns = make_columns(10)
        assert cache.lookup(BOX) is None
        assert cache.insert(BOX, columns)
        assert cache.lookup(BOX) is columns
        stats = cache.stats()
        assert stats.hits == 1
        assert stats.misses == 1
        assert stats.subsume_hits == 0
        assert stats.insertions == 1
        assert stats.hit_rate == 0.5

    def test_subsume_hit(self):
        cache = SemanticCache(1 << 20)
        columns = make_columns(10)
        cache.insert(BOX, columns)
        assert cache.lookup(INNER) is columns
        assert cache.lookup(DISJOINT) is None
        stats = cache.stats()
        assert stats.subsume_hits == 1
        assert stats.hits == 1
        assert stats.misses == 1

    def test_byte_budget_lru_eviction(self):
        columns = make_columns(50)
        entry_bytes = 0
        probe = SemanticCache(1 << 30)
        probe.insert(BOX, columns)
        entry_bytes = probe.bytes  # One entry's full charge.
        cache = SemanticCache(entry_bytes * 2)  # Room for two entries.
        boxes = [
            Box3(100.0 * i, 0.0, 0.0, 100.0 * i + 1, 1.0, 1.0)
            for i in range(4)
        ]
        for box in boxes:
            cache.insert(box, columns)
        assert len(cache) == 2
        assert cache.bytes <= cache.max_bytes
        assert cache.stats().evictions == 2
        # Oldest two are gone, newest two resident.
        assert cache.lookup(boxes[0]) is None
        assert cache.lookup(boxes[1]) is None
        assert cache.lookup(boxes[2]) is columns
        assert cache.lookup(boxes[3]) is columns

    def test_lookup_refreshes_lru_position(self):
        columns = make_columns(50)
        probe = SemanticCache(1 << 30)
        probe.insert(BOX, columns)
        cache = SemanticCache(probe.bytes * 2)
        a = Box3(0.0, 0.0, 0.0, 1.0, 1.0, 1.0)
        b = Box3(100.0, 0.0, 0.0, 101.0, 1.0, 1.0)
        c = Box3(200.0, 0.0, 0.0, 201.0, 1.0, 1.0)
        cache.insert(a, columns)
        cache.insert(b, columns)
        cache.lookup(a)  # a becomes MRU; b is now the LRU victim.
        cache.insert(c, columns)
        assert cache.lookup(a) is columns
        assert cache.lookup(b) is None

    def test_oversized_entry_rejected(self):
        columns = make_columns(100)
        cache = SemanticCache(16)  # Smaller than any real entry.
        assert not cache.insert(BOX, columns)
        assert len(cache) == 0
        assert cache.bytes == 0

    def test_insert_noop_when_already_subsumed(self):
        cache = SemanticCache(1 << 20)
        big = make_columns(20)
        small = make_columns(5, seed=1)
        cache.insert(BOX, big)
        assert not cache.insert(INNER, small)
        assert len(cache) == 1
        assert cache.lookup(INNER) is big

    def test_insert_drops_subsumed_entries(self):
        cache = SemanticCache(1 << 20)
        small = make_columns(5, seed=1)
        big = make_columns(20)
        cache.insert(INNER, small)
        cache.insert(BOX, big)
        assert len(cache) == 1
        assert cache.lookup(INNER) is big

    def test_invalidate(self):
        cache = SemanticCache(1 << 20)
        cache.insert(BOX, make_columns(10))
        cache.invalidate()
        assert len(cache) == 0
        assert cache.bytes == 0
        assert cache.lookup(BOX) is None
        assert cache.stats().invalidations == 1

    def test_inflate_grows_and_clamps(self):
        cache = SemanticCache(1 << 20, prefetch_e=0.5)
        box = Box3(0.0, 0.0, 1.0, 10.0, 10.0, 2.0)
        grown = cache.inflate(box, e_cap=5.0)
        assert grown.min_e == 0.5
        assert grown.max_e == 2.5
        assert grown.rect == box.rect
        # Clamped at both ends of the indexed band.
        low = cache.inflate(Box3(0, 0, 0.2, 1, 1, 4.8), e_cap=5.0)
        assert low.min_e == 0.0
        assert low.max_e == 5.0

    def test_inflate_disabled_returns_same_box(self):
        cache = SemanticCache(1 << 20)
        assert cache.inflate(BOX, e_cap=5.0) is BOX

    def test_inflated_cube_answers_neighbour_lods(self):
        cache = SemanticCache(1 << 20, prefetch_e=1.0)
        plane = Box3(0.0, 0.0, 1.0, 10.0, 10.0, 1.0)
        cache.insert(cache.inflate(plane, e_cap=10.0), make_columns(10))
        nearby = Box3(0.0, 0.0, 1.7, 10.0, 10.0, 1.7)
        assert cache.lookup(nearby) is not None
        far = Box3(0.0, 0.0, 3.0, 10.0, 10.0, 3.0)
        assert cache.lookup(far) is None


# -- engine integration ------------------------------------------------------


@pytest.fixture(scope="module")
def store(tmp_path_factory):
    dataset = dataset_by_name("foothills", 1200, seed=17)
    db = Database(tmp_path_factory.mktemp("cache_db"), pool_pages=128)
    store = DirectMeshStore.build(dataset.pm, db, dataset.connections)
    yield store
    db.close()


def _workload(store, seed: int, n: int = 10) -> list:
    """Mixed uniform/viewdep requests with overlap and an above-cap LOD."""
    rng = random.Random(seed)
    extent = store.rtree.data_space.rect
    requests = []
    for _ in range(n):
        side = (0.2 + 0.5 * rng.random()) * min(extent.width, extent.height)
        x0 = extent.min_x + rng.random() * (extent.width - side)
        y0 = extent.min_y + rng.random() * (extent.height - side)
        roi = Rect(x0, y0, x0 + side, y0 + side)
        requests.append(UniformRequest(roi, rng.random() * store.max_lod))
    requests.append(UniformRequest(extent, store.e_cap * 2 + 1.0))
    requests.append(
        SingleBaseRequest(
            QueryPlane(extent, 0.1 * store.max_lod, 0.7 * store.max_lod)
        )
    )
    return requests


def _node_ids(outcomes) -> list:
    assert all(o.ok for o in outcomes)
    return [sorted(o.result.nodes) for o in outcomes]


class TestEngineWithCache:
    @pytest.mark.parametrize("prefetch_frac", [0.0, 0.15])
    def test_cached_answers_exact(self, store, prefetch_frac):
        """Cache on == cache off, request for request, over a repeated
        overlapping workload (with and without prefetch inflation)."""
        requests = _workload(store, seed=23)
        with QueryEngine(store, workers=4) as engine:
            reference = _node_ids(engine.run_batch(requests))
        cache = SemanticCache(
            64 << 20, prefetch_e=prefetch_frac * store.max_lod
        )
        with QueryEngine(store, workers=4, cache=cache) as engine:
            for _ in range(3):  # Cold pass, then cache-served passes.
                assert _node_ids(engine.run_batch(requests)) == reference
        assert cache.stats().hits > 0

    def test_repeated_batch_served_from_cache(self, store):
        requests = _workload(store, seed=5)
        registry = MetricsRegistry()
        cache = SemanticCache(64 << 20)
        with QueryEngine(
            store, workers=4, cache=cache, registry=registry
        ) as engine:
            engine.run_batch(requests)
            probes_cold = registry.counters()["engine.range_queries"]
            engine.run_batch(requests)
            probes_warm = (
                registry.counters()["engine.range_queries"] - probes_cold
            )
        assert probes_warm == 0
        counters = registry.counters()
        assert counters["cache.hits"] >= len(requests)
        gauges = registry.gauges()
        assert gauges["cache.bytes"] == cache.bytes
        assert gauges["cache.entries"] == len(cache)

    def test_subsumed_roi_served_from_cache(self, store):
        extent = store.rtree.data_space.rect
        lod = 0.4 * store.max_lod
        outer = UniformRequest(extent, lod)
        inner = UniformRequest(extent.scaled(0.4), lod)
        cache = SemanticCache(64 << 20)
        with QueryEngine(store, workers=2, cache=cache) as engine:
            engine.run(outer)
            outcome = engine.run(inner)
        assert outcome.metrics.cached
        assert cache.stats().subsume_hits == 1
        reference = store.uniform_query(inner.roi, inner.lod)
        assert outcome.result.nodes == reference.nodes

    def test_above_cap_lod_cached_exactly(self, store):
        """The e_cap blind spot must not reappear through the cache:
        an above-cap request served from cache still yields the base
        mesh."""
        roi = store.rtree.data_space.rect
        request = UniformRequest(roi, store.e_cap * 3)
        reference = store.uniform_query(roi, request.lod)
        assert len(reference) > 0
        cache = SemanticCache(64 << 20)
        with QueryEngine(store, workers=2, cache=cache) as engine:
            first = engine.run(request)
            second = engine.run(request)
        assert not first.metrics.cached
        assert second.metrics.cached
        assert first.result.nodes == reference.nodes
        assert second.result.nodes == reference.nodes

    def test_prefetch_turns_nearby_lods_into_hits(self, store):
        roi = store.rtree.data_space.rect.scaled(0.5)
        lod = 0.5 * store.max_lod
        cache = SemanticCache(64 << 20, prefetch_e=0.2 * store.max_lod)
        with QueryEngine(store, workers=2, cache=cache) as engine:
            engine.run(UniformRequest(roi, lod))
            nearby = engine.run(
                UniformRequest(roi, lod + 0.1 * store.max_lod)
            )
        assert nearby.metrics.cached
        reference = store.uniform_query(roi, lod + 0.1 * store.max_lod)
        assert nearby.result.nodes == reference.nodes

    def test_invalidate_forces_fresh_probes(self, store):
        requests = _workload(store, seed=31, n=4)
        registry = MetricsRegistry()
        cache = SemanticCache(64 << 20)
        with QueryEngine(
            store, workers=2, cache=cache, registry=registry
        ) as engine:
            engine.run_batch(requests)
            cache.invalidate()
            before = registry.counters()["engine.range_queries"]
            outcomes = engine.run_batch(requests)
            fresh = registry.counters()["engine.range_queries"] - before
        assert fresh > 0
        assert all(o.ok for o in outcomes)

    def test_dedup_off_still_uses_cache(self, store):
        requests = _workload(store, seed=41, n=4)
        cache = SemanticCache(64 << 20)
        with QueryEngine(store, workers=2, dedup="off", cache=cache) as engine:
            reference = _node_ids(engine.run_batch(requests))
            warm = _node_ids(engine.run_batch(requests))
        assert warm == reference
        assert cache.stats().hits > 0

    def test_scalar_engine_ignores_cache_flag(self, store):
        """vectorized=False without a cache keeps the scalar reference
        path and stays exact."""
        requests = _workload(store, seed=47, n=4)
        with QueryEngine(store, workers=2, vectorized=False) as engine:
            scalar = _node_ids(engine.run_batch(requests))
        with QueryEngine(store, workers=2) as engine:
            vector = _node_ids(engine.run_batch(requests))
        assert scalar == vector


class TestRegionInvalidation:
    """Spatial invalidation (patch commits): entries overlapping the
    patched region die, everything else survives — including across
    epochs."""

    def test_overlapping_entries_dropped_others_survive(self):
        cache = SemanticCache(1 << 20)
        cache.insert(BOX, make_columns(5))
        cache.insert(DISJOINT, make_columns(5, seed=1))
        cache.invalidate(Rect(1.0, 1.0, 5.0, 5.0))  # Overlaps BOX only.
        assert cache.lookup(BOX) is None
        assert cache.lookup(DISJOINT) is not None
        assert cache.stats().region_invalidations == 1

    def test_full_invalidate_still_clears_everything(self):
        cache = SemanticCache(1 << 20)
        cache.insert(BOX, make_columns(5))
        cache.insert(DISJOINT, make_columns(5, seed=1))
        cache.invalidate()
        assert cache.lookup(BOX) is None
        assert cache.lookup(DISJOINT) is None

    def test_begin_epoch_drops_overlap_and_keeps_rest(self):
        cache = SemanticCache(1 << 20)
        cache.insert(BOX, make_columns(5), epoch=0)
        cache.insert(DISJOINT, make_columns(5, seed=1), epoch=0)
        cache.begin_epoch(1, Rect(1.0, 1.0, 5.0, 5.0))
        # The non-overlapping epoch-0 cube is still a sound answer for
        # epoch-1 readers: the patch never touched its region.
        assert cache.lookup(DISJOINT, epoch=1) is not None
        assert cache.lookup(BOX, epoch=1) is None

    def test_new_epoch_entry_invisible_to_pinned_old_reader(self):
        cache = SemanticCache(1 << 20)
        cache.begin_epoch(1, Rect(0.0, 0.0, 10.0, 10.0))
        cache.insert(BOX, make_columns(5), epoch=1)
        assert cache.lookup(BOX, epoch=1) is not None
        # A reader still pinned to epoch 0 must not see epoch-1 data.
        assert cache.lookup(BOX, epoch=0) is None

    def test_stale_epoch_insert_refused_inside_patched_region(self):
        cache = SemanticCache(1 << 20)
        cache.begin_epoch(1, Rect(0.0, 0.0, 10.0, 10.0))
        # An in-flight epoch-0 probe finishing after the commit must
        # not publish pre-patch records over the patched region...
        assert not cache.insert(BOX, make_columns(5), epoch=0)
        assert cache.lookup(BOX, epoch=0) is None
        # ...but may still publish cubes the patch never touched.
        assert cache.insert(DISJOINT, make_columns(5, seed=1), epoch=0)

    def test_patch_log_overflow_fails_closed(self):
        from repro.core.cache import PATCH_LOG_LIMIT

        cache = SemanticCache(1 << 20)
        cache.insert(DISJOINT, make_columns(5), epoch=0)
        for i in range(PATCH_LOG_LIMIT + 1):
            cache.begin_epoch(i + 1, Rect(0.0, 0.0, 1.0, 1.0))
        # Overflow clears the cache outright rather than letting the
        # staleness check under-approximate.
        assert cache.lookup(DISJOINT, epoch=PATCH_LOG_LIMIT + 1) is None
