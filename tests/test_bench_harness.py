"""Tests for the benchmark harness: workloads, tables, measurement."""

import pytest

from repro.bench.reporting import SeriesTable
from repro.bench.runner import average_over
from repro.bench.workload import Workload


class TestWorkload:
    def test_centers_deterministic(self, hills_dataset):
        a = Workload(hills_dataset, n_locations=7, seed=5).centers()
        b = Workload(hills_dataset, n_locations=7, seed=5).centers()
        c = Workload(hills_dataset, n_locations=7, seed=6).centers()
        assert a == b
        assert a != c
        assert len(a) == 7

    def test_centers_inside_bounds(self, hills_dataset):
        wl = Workload(hills_dataset, n_locations=30)
        bounds = hills_dataset.bounds()
        for x, y in wl.centers():
            assert bounds.contains_point(x, y)

    def test_roi_area(self, hills_dataset):
        wl = Workload(hills_dataset)
        roi = wl.roi(0.05, wl.centers()[0])
        assert roi.area == pytest.approx(
            hills_dataset.bounds().area * 0.05, rel=0.01
        )

    def test_plane_respects_angle_fraction(self, hills_dataset):
        wl = Workload(hills_dataset)
        roi = wl.roi(0.1, wl.centers()[0])
        shallow = wl.plane(roi, 0.1, 0.2)
        steep = wl.plane(roi, 0.1, 0.8)
        assert steep.e_max >= shallow.e_max
        assert shallow.e_min == steep.e_min == 0.1

    def test_plane_emax_capped(self, hills_dataset):
        wl = Workload(hills_dataset)
        roi = wl.roi(0.02, wl.centers()[0])  # Tiny ROI -> huge theta.
        plane = wl.plane(roi, 0.0, 0.99)
        assert plane.e_max <= hills_dataset.pm.max_lod() * 1.02

    def test_uniform_lod(self, hills_dataset):
        wl = Workload(hills_dataset)
        assert wl.uniform_lod(0.5) == pytest.approx(
            hills_dataset.pm.max_lod() * 0.5
        )


class TestSeriesTable:
    def make(self):
        t = SeriesTable("exp1", "demo", "x", ["A", "B"])
        t.add_row(1, {"A": 10, "B": 20})
        t.add_row(2, {"A": 15, "B": 40})
        return t

    def test_text_output(self):
        text = self.make().to_text()
        assert "exp1" in text
        assert "A" in text and "B" in text
        assert "15" in text

    def test_csv_output(self, tmp_path):
        path = self.make().to_csv(tmp_path)
        content = path.read_text().strip().split("\n")
        assert content[0] == "x,A,B"
        assert content[1] == "1,10,20"

    def test_columns_and_x(self):
        t = self.make()
        assert t.column("A") == [10, 15]
        assert t.x_values() == [1, 2]

    def test_dominates(self):
        t = self.make()
        assert t.dominates("A", "B")
        assert not t.dominates("B", "A")
        assert t.dominates("A", "B", at_least=2.0)
        assert not t.dominates("A", "B", at_least=3.0)

    def test_dominates_missing_column(self):
        t = self.make()
        assert not t.dominates("A", "Z")

    def test_monotonic(self):
        t = self.make()
        assert t.is_monotonic("A", increasing=True)
        assert not t.is_monotonic("A", increasing=False)

    def test_monotonic_tolerates_noise(self):
        t = SeriesTable("e", "t", "x", ["A"])
        for x, v in [(1, 100), (2, 95), (3, 120)]:  # 5% dip allowed.
            t.add_row(x, {"A": v})
        assert t.is_monotonic("A", increasing=True, tolerance=0.1)
        assert not t.is_monotonic("A", increasing=True, tolerance=0.01)

    def test_meta_rendered(self):
        t = self.make()
        t.meta["dataset"] = "hills"
        assert "dataset=hills" in t.to_text()


class TestRunner:
    def test_average_over(self):
        calls = []

        def measure(center):
            calls.append(center)
            return {"M": center[0]}

        result = average_over([(1, 0), (3, 0)], measure)
        assert result == {"M": 2.0}
        assert calls == [(1, 0), (3, 0)]

    def test_measure_uniform_all_methods(self, session_db, hills_dataset):
        from repro.bench.cache import ExperimentEnv
        from repro.bench.runner import measure_uniform

        env = ExperimentEnv(
            dataset=hills_dataset,
            database=session_db["db"],
            dm=session_db["dm"],
            pm_store=session_db["pm"],
            hdov=session_db["hdov"],
        )
        roi = hills_dataset.bounds().scaled(0.3)
        result = measure_uniform(env, roi, hills_dataset.pm.average_lod())
        assert set(result) == {"DM", "PM", "HDoV"}
        assert all(v > 0 for v in result.values())

    def test_measure_viewdep_all_methods(self, session_db, hills_dataset):
        from repro.bench.cache import ExperimentEnv
        from repro.bench.runner import measure_viewdep
        from repro.geometry.plane import QueryPlane

        env = ExperimentEnv(
            dataset=hills_dataset,
            database=session_db["db"],
            dm=session_db["dm"],
            pm_store=session_db["pm"],
            hdov=session_db["hdov"],
        )
        ds = hills_dataset
        roi = ds.bounds().scaled(0.3)
        plane = QueryPlane(roi, ds.pm.max_lod() * 0.02, ds.pm.max_lod() * 0.5)
        result = measure_viewdep(env, plane)
        assert set(result) == {"DM-SB", "DM-MB", "PM", "HDoV"}
        assert result["DM-MB"] <= result["PM"]
