"""Tests for the Direct Mesh connection-point computation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.connectivity import (
    build_connection_lists,
    connection_statistics,
    total_connection_counts,
)
from repro.errors import MeshError
from repro.mesh.simplify import simplify_to_pm
from tests.conftest import make_wavy_grid_mesh


@pytest.fixture(scope="module")
def pm_and_conn():
    mesh = make_wavy_grid_mesh(side=16, seed=4)
    pm = simplify_to_pm(mesh)
    pm.normalize_lod()
    return pm, build_connection_lists(pm)


class TestBasics:
    def test_requires_normalisation(self):
        mesh = make_wavy_grid_mesh(side=8, seed=1)
        pm = simplify_to_pm(mesh)
        with pytest.raises(MeshError):
            build_connection_lists(pm)

    def test_symmetry(self, pm_and_conn):
        pm, conn = pm_and_conn
        for node_id, others in conn.items():
            for other in others:
                assert node_id in conn[other]

    def test_no_self_connections(self, pm_and_conn):
        _, conn = pm_and_conn
        for node_id, others in conn.items():
            assert node_id not in others

    def test_base_edges_included(self, pm_and_conn):
        pm, conn = pm_and_conn
        for a, b in pm.base_edges:
            assert b in conn[a]
            assert a in conn[b]

    def test_no_parent_child_pairs(self, pm_and_conn):
        # Parent and child cannot coexist in any approximation, so they
        # are never connection points of each other (paper Section 4).
        pm, conn = pm_and_conn
        for node in pm.internal_nodes:
            assert node.child1 not in conn[node.id]
            assert node.child2 not in conn[node.id]

    def test_intervals_touch_or_overlap(self, pm_and_conn):
        # Every recorded pair coexisted in some replay state, so their
        # LOD intervals intersect (possibly degenerately on ties).
        pm, conn = pm_and_conn
        for node_id, others in conn.items():
            node = pm.node(node_id)
            for other_id in others:
                other = pm.node(other_id)
                assert node.e <= other.e_high and other.e <= node.e_high


class TestExactness:
    """The core Direct Mesh claim: connection lists reconstruct the
    exact adjacency of every uniform approximation."""

    @settings(max_examples=20, deadline=None)
    @given(st.floats(0, 1.2, allow_nan=False))
    def test_cut_neighbors_form_planar_mesh(self, pm_and_conn, fraction):
        pm, conn = pm_and_conn
        lod = pm.max_lod() * fraction
        cut = set(pm.uniform_cut(lod))
        edges = {
            (a, b)
            for a in cut
            for b in conn[a]
            if b in cut and a < b
        }
        v = len(cut)
        e = len(edges)
        if v >= 3:
            # Planar triangulation bound: E <= 3V - 6.
            assert e <= 3 * v - 6
            # Connected terrain cut: E >= V - 1.
            assert e >= v - 1

    def test_finest_cut_reproduces_base_mesh(self, pm_and_conn):
        pm, conn = pm_and_conn
        cut = set(pm.uniform_cut(0.0))
        # Leaves that survive (not absorbed by zero-error collapses).
        surviving_leaves = {i for i in cut if i < pm.n_leaves}
        edges_at_zero = {
            (a, b) for a in cut for b in conn[a] if b in cut and a < b
        }
        for a, b in pm.base_edges:
            if a in surviving_leaves and b in surviving_leaves:
                key = (a, b) if a < b else (b, a)
                assert key in edges_at_zero

    def test_coarsest_cut_connected(self, pm_and_conn):
        pm, conn = pm_and_conn
        lod = pm.max_lod() * 0.5
        cut = set(pm.uniform_cut(lod))
        if len(cut) <= 1:
            return
        # BFS over cut-restricted connections.
        start = next(iter(cut))
        seen = {start}
        frontier = [start]
        while frontier:
            nid = frontier.pop()
            for other in conn[nid]:
                if other in cut and other not in seen:
                    seen.add(other)
                    frontier.append(other)
        assert seen == cut


class TestStatistics:
    def test_similar_vs_total(self, pm_and_conn):
        pm, conn = pm_and_conn
        stats = connection_statistics(pm, conn, include_totals=True)
        # The paper's Section 4 comparison: similar-LOD lists are much
        # smaller than the total connection sets.
        assert stats["avg_similar"] < stats["avg_total"]
        assert 4 <= stats["avg_similar"] <= 30
        assert stats["max_similar"] >= stats["avg_similar"]

    def test_totals_dominate_pointwise(self, pm_and_conn):
        pm, conn = pm_and_conn
        totals = total_connection_counts(pm, conn)
        for node_id, others in conn.items():
            own_ancestors = {a.id for a in pm.ancestors(node_id)}
            eligible = [o for o in others if o not in own_ancestors]
            assert totals[node_id] >= len(eligible)

    def test_totals_grow_with_dataset(self):
        small_mesh = make_wavy_grid_mesh(side=8, seed=2)
        big_mesh = make_wavy_grid_mesh(side=20, seed=2)
        results = []
        for mesh in (small_mesh, big_mesh):
            pm = simplify_to_pm(mesh)
            pm.normalize_lod()
            stats = connection_statistics(pm, include_totals=True)
            results.append(stats)
        # Similar-LOD list size is roughly scale-free; totals grow.
        assert results[1]["avg_total"] > results[0]["avg_total"]
        assert results[1]["avg_similar"] < results[0]["avg_similar"] * 2.5
