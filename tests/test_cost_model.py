"""Tests for the R-tree cost model and multi-base optimiser."""

import pytest

from repro.core.cost_model import RTreeCostModel, _split_at
from repro.geometry.plane import QueryPlane
from repro.geometry.primitives import Box3, Rect
from repro.index.rstar import RTreeNodeStats


def uniform_stats(n_nodes=100, extent=0.1):
    """Synthetic stats: n identical cubes of normalised side ``extent``."""
    w = h = d = extent
    return RTreeNodeStats(
        n_nodes=n_nodes,
        sum_w=n_nodes * w,
        sum_h=n_nodes * h,
        sum_d=n_nodes * d,
        sum_wh=n_nodes * w * h,
        sum_wd=n_nodes * w * d,
        sum_hd=n_nodes * h * d,
        sum_whd=n_nodes * w * h * d,
        data_space=Box3(0, 0, 0, 100, 100, 10),
    )


@pytest.fixture
def model():
    return RTreeCostModel(uniform_stats())


ROI = Rect(20, 20, 60, 60)


class TestEstimates:
    def test_formula_matches_hand_computation(self, model):
        # One query of normalised size (0.2, 0.2, 0.5) against 100
        # nodes of size 0.1: DA = 100 * 0.3 * 0.3 * 0.6.
        q = Box3(0, 0, 0, 20, 20, 5)
        assert model.estimate(q) == pytest.approx(100 * 0.3 * 0.3 * 0.6)

    def test_monotone_in_volume(self, model):
        small = Box3(0, 0, 0, 10, 10, 1)
        large = Box3(0, 0, 0, 50, 50, 5)
        assert model.estimate(small) < model.estimate(large)

    def test_plane_estimate_uses_cube(self, model):
        plane = QueryPlane(ROI, 1.0, 5.0)
        assert model.estimate_plane(plane) == pytest.approx(
            model.estimate(Box3.from_rect(ROI, 1.0, 5.0))
        )


class TestMultiBasePlan:
    def test_tilted_plane_splits(self, model):
        # A strongly tilted plane over a large ROI: splitting wins.
        plane = QueryPlane(ROI, 0.0, 8.0)
        plan = model.plan_multi_base(plane)
        assert plan.n_queries >= 2
        assert plan.estimated_da < plan.single_base_da
        assert plan.predicted_gain > 0

    def test_flat_plane_does_not_split(self, model):
        plane = QueryPlane(ROI, 2.0, 2.0)
        plan = model.plan_multi_base(plane)
        assert plan.n_queries == 1
        assert plan.predicted_gain == 0

    def test_strips_tile_roi(self, model):
        plane = QueryPlane(ROI, 0.0, 8.0)
        plan = model.plan_multi_base(plane)
        total = sum(s.roi.area for s in plan.strips)
        assert total == pytest.approx(ROI.area)
        # Strips chain along the viewing direction.
        ys = sorted((s.roi.min_y, s.roi.max_y) for s in plan.strips)
        assert ys[0][0] == ROI.min_y
        assert ys[-1][1] == ROI.max_y
        for (_, a_max), (b_min, _) in zip(ys, ys[1:]):
            assert a_max == pytest.approx(b_min)

    def test_depth_limit_respected(self, model):
        plane = QueryPlane(ROI, 0.0, 9.9)
        plan = model.plan_multi_base(plane, max_depth=2)
        assert plan.n_queries <= 4


class TestPaperFormulas:
    def test_gain_curve_decreases_then_flattens(self, model):
        plane = QueryPlane(ROI, 0.0, 8.0)
        curve = model.gain_curve(plane, max_parts=16)
        parts, costs = zip(*curve)
        assert parts == (1, 2, 4, 8, 16)
        # First split must help for a tall tilted cube.
        assert costs[1] < costs[0]
        # Costs are bounded below by the index-descent overhead, so the
        # curve cannot keep halving: the last improvement is smaller
        # than the first.
        assert (costs[0] - costs[1]) > (costs[-2] - costs[-1])

    def test_middle_split_is_optimal(self, model):
        # Formula (9): q_y1 q_z1 + q_y2 q_z2 is minimised at the middle.
        plane = QueryPlane(ROI, 0.0, 8.0)
        samples = model.middle_split_advantage(
            plane, fractions=[0.1, 0.3, 0.5, 0.7, 0.9]
        )
        best_fraction = min(samples, key=lambda kv: kv[1])[0]
        assert best_fraction == 0.5

    def test_split_at_preserves_lod_field(self):
        plane = QueryPlane(ROI, 1.0, 5.0)
        first, second = _split_at(plane, 0.25)
        assert first.roi.height == pytest.approx(ROI.height * 0.25)
        assert first.e_min == pytest.approx(1.0)
        assert first.e_max == pytest.approx(2.0)
        assert second.e_min == pytest.approx(2.0)
        assert second.e_max == pytest.approx(5.0)


class TestAgainstRealTree(object):
    def test_plan_reduces_real_disk_accesses(self, session_db, hills_dataset):
        db = session_db["db"]
        dm = session_db["dm"]
        ds = hills_dataset
        roi = ds.bounds().scaled(0.5)
        plane = QueryPlane(roi, ds.pm.max_lod() * 0.01, ds.pm.max_lod() * 0.9)
        plan = dm.cost_model.plan_multi_base(plane)
        db.begin_measured_query()
        dm.single_base_query(plane)
        single = db.disk_accesses
        db.begin_measured_query()
        dm.multi_base_query(plane)
        multi = db.disk_accesses
        if plan.n_queries > 1:
            assert multi <= single
