"""Tests for the PM-over-database baseline."""

import pytest

from repro.baselines.pm_db import PMStore
from repro.errors import StorageError
from repro.geometry.plane import QueryPlane, max_angle
from repro.mesh.selective import uniform_query_ref, viewdep_query_ref
from repro.storage.database import Database


@pytest.fixture
def setup(session_db, hills_dataset):
    return session_db["db"], session_db["pm"], hills_dataset


class TestUniform:
    def test_matches_reference(self, setup):
        db, store, ds = setup
        roi = ds.bounds().scaled(0.35)
        for fraction in (0.02, 0.1, 0.4):
            lod = ds.pm.max_lod() * fraction
            result = store.uniform_query(roi, lod)
            assert set(result.nodes) == uniform_query_ref(ds.pm, roi, lod)

    def test_roi_off_center(self, setup):
        db, store, ds = setup
        bounds = ds.bounds()
        roi = ds.roi_for_fraction(0.08, bounds.min_x + 10, bounds.max_y - 10)
        lod = ds.pm.average_lod()
        result = store.uniform_query(roi, lod)
        assert set(result.nodes) == uniform_query_ref(ds.pm, roi, lod)

    def test_individual_fetches_happen(self, setup):
        # The PM weakness: cut nodes below the cube and out-of-ROI
        # ancestors are fetched one-by-one.
        db, store, ds = setup
        roi = ds.bounds().scaled(0.3)
        result = store.uniform_query(roi, ds.pm.average_lod())
        assert result.fetched_individually > 0
        assert result.traversed > 0
        assert result.retrieved_from_index > 0

    def test_counts_disk_accesses(self, setup):
        db, store, ds = setup
        roi = ds.bounds().scaled(0.3)
        db.begin_measured_query()
        store.uniform_query(roi, ds.pm.average_lod())
        assert db.disk_accesses > 0


class TestViewdep:
    def test_matches_reference(self, setup):
        db, store, ds = setup
        roi = ds.bounds().scaled(0.3)
        theta = max_angle(ds.pm.max_lod(), roi.height)
        plane = QueryPlane.from_angle(
            roi, ds.pm.max_lod() * 0.02, theta * 0.4
        )
        result = store.viewdep_query(plane)
        assert set(result.nodes) == viewdep_query_ref(ds.pm, plane)

    def test_steep_plane_matches_reference(self, setup):
        db, store, ds = setup
        roi = ds.bounds().scaled(0.25)
        plane = QueryPlane(roi, 0.0, ds.pm.max_lod() * 0.9, direction=(1, 0))
        result = store.viewdep_query(plane)
        assert set(result.nodes) == viewdep_query_ref(ds.pm, plane)


class TestLifecycle:
    def test_reopen(self, tmp_path, hills_dataset):
        with Database(tmp_path / "db") as db:
            PMStore.build(hills_dataset.pm, db)
        with Database(tmp_path / "db") as db:
            store = PMStore.open(db)
            roi = hills_dataset.bounds().scaled(0.2)
            lod = hills_dataset.pm.average_lod()
            assert set(store.uniform_query(roi, lod).nodes) == (
                uniform_query_ref(hills_dataset.pm, roi, lod)
            )

    def test_open_missing(self, fresh_db):
        with pytest.raises(StorageError):
            PMStore.open(fresh_db)

    def test_fetch_by_id(self, setup):
        db, store, ds = setup
        node = store.fetch_by_id(0)
        assert node.id == 0
        assert (node.x, node.y, node.z) == ds.mesh.vertices[0]
        with pytest.raises(StorageError):
            store.fetch_by_id(10**9)
