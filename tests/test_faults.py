"""Fault injection and the engine's robustness policy.

Covers the :class:`FaultInjector` itself (determinism, rates, bounds),
its wiring through :class:`Pager` / :class:`BufferPool` /
:class:`Database`, and the serving guarantees built on it: per-request
fault isolation, bounded retry for transient errors, per-request
deadlines with graceful degradation, and leader-failure demotion.
"""

import random
import time

import pytest

from repro.core import DirectMeshStore, QueryEngine
from repro.core.engine import SingleBaseRequest, UniformRequest
from repro.errors import (
    DeadlineExceededError,
    PageCorruptionError,
    QueryError,
    StorageError,
    TransientIOError,
)
from repro.storage.faults import CORRUPTION_KINDS, corrupt_buffer
from repro.storage.page import seal_page, verify_page
from repro.geometry.plane import QueryPlane
from repro.geometry.primitives import Rect
from repro.obs.metrics import MetricsRegistry
from repro.storage import Database, DiskStats, FaultInjector, Pager
from repro.terrain import dataset_by_name


@pytest.fixture(scope="module")
def faulty_env(tmp_path_factory):
    """A store whose database accepts pluggable fault injectors.

    Module-scoped for build cost; every test must leave the injector
    cleared (the ``clean_injector`` fixture below guarantees it).
    """
    dataset = dataset_by_name("foothills", 1500, seed=11)
    db = Database(tmp_path_factory.mktemp("faults_db"), pool_pages=128)
    store = DirectMeshStore.build(dataset.pm, db, dataset.connections)
    yield db, store
    db.close()


@pytest.fixture
def clean_injector(faulty_env):
    """Clear any installed injector after the test."""
    db, store = faulty_env
    yield db, store
    db.set_fault_injector(None)
    db.buffer.fault_injector = None


def _random_uniform(store, rng, frac=0.3) -> UniformRequest:
    extent = store.rtree.data_space.rect
    side = frac * min(extent.width, extent.height)
    x0 = extent.min_x + rng.random() * (extent.width - side)
    y0 = extent.min_y + rng.random() * (extent.height - side)
    return UniformRequest(
        Rect(x0, y0, x0 + side, y0 + side), rng.random() * store.max_lod
    )


class TestFaultInjector:
    def test_deterministic_replay(self):
        a = FaultInjector(error_rate=0.3, seed=42)
        b = FaultInjector(error_rate=0.3, seed=42)

        def decisions(injector):
            out = []
            for _ in range(200):
                try:
                    injector.fire("test")
                    out.append(False)
                except TransientIOError:
                    out.append(True)
            return out

        assert decisions(a) == decisions(b)
        assert a.errors_injected == b.errors_injected > 0

    def test_reset_restarts_the_stream(self):
        injector = FaultInjector(error_rate=0.5, seed=9)
        first = [self._roll(injector) for _ in range(50)]
        injector.reset()
        assert [self._roll(injector) for _ in range(50)] == first
        assert injector.calls == 50

    @staticmethod
    def _roll(injector) -> bool:
        try:
            injector.fire("test")
            return False
        except TransientIOError:
            return True

    def test_rate_one_always_fails(self):
        injector = FaultInjector(error_rate=1.0, seed=0)
        for _ in range(10):
            with pytest.raises(TransientIOError):
                injector.fire("site", "detail")
        assert injector.errors_injected == 10

    def test_rate_zero_never_fails(self):
        injector = FaultInjector(error_rate=0.0, seed=0)
        for _ in range(100):
            injector.fire("site")
        assert injector.errors_injected == 0

    def test_max_errors_bounds_injection(self):
        injector = FaultInjector(error_rate=1.0, seed=0, max_errors=3)
        failures = sum(self._roll(injector) for _ in range(10))
        assert failures == 3

    def test_latency_spike_sleeps(self):
        injector = FaultInjector(
            latency_rate=1.0, latency_s=0.01, seed=0
        )
        started = time.perf_counter()
        injector.fire("site")
        assert time.perf_counter() - started >= 0.01
        assert injector.latencies_injected == 1

    def test_invalid_rates_rejected(self):
        with pytest.raises(StorageError):
            FaultInjector(error_rate=1.5)
        with pytest.raises(StorageError):
            FaultInjector(latency_rate=-0.1)
        with pytest.raises(StorageError):
            FaultInjector(latency_s=-1.0)


class TestCorruptionInjector:
    @pytest.mark.parametrize("kind", CORRUPTION_KINDS)
    def test_every_kind_invalidates_a_sealed_page(self, kind):
        buf = bytearray(random.Random(1).randbytes(4096))
        seal_page(buf)
        assert verify_page(buf)
        corrupt_buffer(buf, kind, random.Random(2))
        assert not verify_page(buf)

    def test_unknown_kind_and_empty_buffer_rejected(self):
        with pytest.raises(StorageError):
            corrupt_buffer(bytearray(16), "gamma-ray", random.Random(0))
        with pytest.raises(StorageError):
            corrupt_buffer(bytearray(), "bitflip", random.Random(0))

    def test_corrupt_page_deterministic_replay(self):
        def kinds_drawn(injector):
            out = []
            for _ in range(100):
                buf = bytearray(random.Random(7).randbytes(512))
                seal_page(buf)
                out.append(injector.corrupt_page(buf))
            return out

        a = FaultInjector(corrupt_rate=0.5, seed=21)
        b = FaultInjector(corrupt_rate=0.5, seed=21)
        assert kinds_drawn(a) == kinds_drawn(b)
        assert a.corruptions_injected == b.corruptions_injected > 0

    def test_rate_zero_never_corrupts(self):
        injector = FaultInjector(corrupt_rate=0.0, seed=0)
        buf = bytearray(512)
        seal_page(buf)
        assert injector.corrupt_page(buf) is None
        assert verify_page(buf)
        assert injector.corruptions_injected == 0

    def test_max_corruptions_bounds_injection(self):
        injector = FaultInjector(
            corrupt_rate=1.0, seed=0, max_corruptions=3
        )
        hits = 0
        for _ in range(10):
            buf = bytearray(512)
            seal_page(buf)
            if injector.corrupt_page(buf) is not None:
                hits += 1
        assert hits == 3
        assert sum(injector.corruptions_by_kind.values()) == 3

    def test_invalid_corruption_config_rejected(self):
        with pytest.raises(StorageError):
            FaultInjector(corrupt_rate=1.5)
        with pytest.raises(StorageError):
            FaultInjector(corrupt_kinds=())
        with pytest.raises(StorageError):
            FaultInjector(corrupt_kinds=("bogus",))


class TestStorageWiring:
    def test_pager_raises_transient(self, tmp_path):
        stats = DiskStats()
        pager = Pager(tmp_path / "seg.dat", stats, name="seg", page_size=512)
        page_no = pager.allocate()
        pager.fault_injector = FaultInjector(error_rate=1.0, max_errors=1)
        with pytest.raises(TransientIOError):
            pager.read_page(page_no)
        # The failed read was not counted as a physical read...
        assert stats.physical_reads == 0
        # ...and once the injector's budget is spent, the read works.
        assert len(pager.read_page(page_no)) == 512
        pager.close()

    def test_buffer_pool_fetch_faults_warm_reads(self, fresh_db):
        segment = fresh_db.segment("t")
        page_no, _ = segment.allocate()
        segment.fetch(page_no)  # Warm.
        fresh_db.buffer.fault_injector = FaultInjector(error_rate=1.0)
        with pytest.raises(TransientIOError):
            segment.fetch(page_no)
        fresh_db.buffer.fault_injector = None
        segment.fetch(page_no)

    def test_database_installs_on_current_and_future_segments(
        self, fresh_db
    ):
        early = fresh_db.segment("early")
        injector = FaultInjector(error_rate=1.0)
        fresh_db.set_fault_injector(injector)
        late = fresh_db.segment("late")
        for segment in (early, late):
            page_no, _ = segment.allocate()
            fresh_db.flush()  # Force the next fetch to hit the pager.
            with pytest.raises(TransientIOError):
                segment.fetch(page_no)
        fresh_db.set_fault_injector(None)
        page_no, _ = early.allocate()
        fresh_db.flush()
        early.fetch(page_no)


class TestFaultIsolation:
    def test_no_exception_escapes_run_batch(self, clean_injector):
        db, store = clean_injector
        # Device-level injection: covers both the buffered per-node
        # path and the cluster fast path's pool-bypassing run reads.
        db.set_fault_injector(FaultInjector(error_rate=1.0, seed=1))
        db.flush()  # Cold cache: reads (and faults) happen.
        rng = random.Random(3)
        requests = [_random_uniform(store, rng) for _ in range(8)]
        registry = MetricsRegistry()
        with QueryEngine(
            store, workers=4, retries=1, registry=registry
        ) as engine:
            outcomes = engine.run_batch(requests)
        assert len(outcomes) == len(requests)
        for outcome in outcomes:
            assert not outcome.ok
            assert isinstance(outcome.error, TransientIOError)
            assert outcome.result is None
            assert outcome.attempts == 2  # 1 try + 1 retry.
        assert registry.counters()["engine.errors"] == len(requests)

    def test_partial_faults_do_not_poison_siblings(self, clean_injector):
        db, store = clean_injector
        # Every read can fail; retry budget large enough that most
        # requests eventually succeed, and the ones that don't report
        # their own error without touching the others.
        db.set_fault_injector(FaultInjector(error_rate=0.2, seed=5))
        db.flush()
        rng = random.Random(7)
        requests = [_random_uniform(store, rng) for _ in range(24)]
        with QueryEngine(store, workers=8, retries=8) as engine:
            outcomes = engine.run_batch(requests)
        assert len(outcomes) == len(requests)
        ok = [o for o in outcomes if o.ok]
        assert len(ok) >= len(requests) // 2
        for outcome in ok:
            assert outcome.result is not None
        for outcome in outcomes:
            if not outcome.ok:
                assert isinstance(outcome.error, TransientIOError)

    def test_retries_recover_and_match_sequential(self, clean_injector):
        db, store = clean_injector
        db.set_fault_injector(FaultInjector(error_rate=0.1, seed=11))
        db.flush()  # Cold cache: physical reads (and faults) happen.
        rng = random.Random(13)
        requests = [_random_uniform(store, rng) for _ in range(16)]
        registry = MetricsRegistry()
        with QueryEngine(
            store, workers=4, retries=10, registry=registry
        ) as engine:
            outcomes = engine.run_batch(requests)
        db.set_fault_injector(None)
        assert all(o.ok for o in outcomes)
        for request, outcome in zip(requests, outcomes):
            reference = store.uniform_query(request.roi, request.lod)
            assert outcome.result.nodes == reference.nodes

    def test_hard_errors_are_not_retried(self, clean_injector, monkeypatch):
        db, store = clean_injector
        calls = {"n": 0}

        def boom(*args, **kwargs):
            calls["n"] += 1
            raise ValueError("corrupt index node")

        # The default engine serves via cluster selection; patching it
        # (not rtree.search) puts the hard error on the live path.
        monkeypatch.setattr(store.clusters.index, "candidates", boom)
        registry = MetricsRegistry()
        request = _random_uniform(store, random.Random(29))
        with QueryEngine(
            store, workers=2, retries=5, registry=registry
        ) as engine:
            outcome = engine.run(request)
        assert not outcome.ok
        assert isinstance(outcome.error, ValueError)
        assert outcome.attempts == 1
        assert calls["n"] == 1  # No retry for non-transient failures.
        assert registry.counters().get("engine.retries", 0) == 0


class TestCorruptionServing:
    def test_corrupt_uniform_degrades_and_quarantines(
        self, clean_injector
    ):
        db, store = clean_injector
        injector = FaultInjector(
            corrupt_rate=1.0, seed=3, max_corruptions=1
        )
        db.set_fault_injector(injector)
        db.flush()  # Cold cache: the first physical read is corrupted.
        crc_before = db.crc_failures
        registry = MetricsRegistry()
        request = _random_uniform(store, random.Random(41))
        with QueryEngine(
            store, workers=2, retries=5, registry=registry
        ) as engine:
            outcome = engine.run(request)
        db.set_fault_injector(None)
        assert outcome.ok and outcome.degraded
        assert outcome.attempts == 1  # Corruption is never retried.
        counters = registry.counters()
        assert counters["engine.corruptions"] == 1
        assert counters["engine.degraded"] == 1
        assert counters.get("engine.retries", 0) == 0
        assert len(engine.quarantine) == 1
        assert db.crc_failures - crc_before == 1
        # The degraded answer matches the sequential base mesh.
        reference = store.uniform_query(request.roi, store.max_lod)
        assert outcome.result.nodes == reference.nodes

    def test_corrupt_viewdep_fails_in_isolation(self, clean_injector):
        db, store = clean_injector
        injector = FaultInjector(
            corrupt_rate=1.0, seed=5, max_corruptions=1
        )
        db.set_fault_injector(injector)
        db.flush()
        extent = store.rtree.data_space.rect
        plane = QueryPlane(
            extent, 0.2 * store.max_lod, 0.8 * store.max_lod
        )
        registry = MetricsRegistry()
        with QueryEngine(
            store, workers=2, retries=5, registry=registry
        ) as engine:
            outcome = engine.run(SingleBaseRequest(plane))
        db.set_fault_injector(None)
        assert not outcome.ok
        assert isinstance(outcome.error, PageCorruptionError)
        assert outcome.attempts == 1
        assert not outcome.degraded
        assert registry.counters()["engine.corruptions"] == 1

    def test_crc_failures_track_injected_corruptions(
        self, clean_injector
    ):
        db, store = clean_injector
        injector = FaultInjector(corrupt_rate=0.3, seed=9)
        db.set_fault_injector(injector)
        db.flush()
        crc_before = db.crc_failures
        rng = random.Random(43)
        requests = [_random_uniform(store, rng) for _ in range(12)]
        with QueryEngine(store, workers=4, retries=2) as engine:
            outcomes = engine.run_batch(requests)
        db.set_fault_injector(None)
        assert len(outcomes) == len(requests)
        # Every injected corruption is caught by exactly one checksum
        # failure — corrupt pages are never admitted to the pool.
        assert injector.corruptions_injected > 0
        assert (
            db.crc_failures - crc_before == injector.corruptions_injected
        )
        for outcome in outcomes:
            assert (outcome.result is None) == (outcome.error is not None)
            if not outcome.ok:
                assert isinstance(outcome.error, PageCorruptionError)


class TestDeadlines:
    def test_expired_deadline_degrades_uniform(self, clean_injector):
        db, store = clean_injector
        rng = random.Random(17)
        requests = [_random_uniform(store, rng) for _ in range(6)]
        registry = MetricsRegistry()
        with QueryEngine(
            store, workers=2, deadline_s=1e-9, registry=registry
        ) as engine:
            outcomes = engine.run_batch(requests)
        counters = registry.counters()
        assert counters["engine.deadline_misses"] == len(requests)
        assert counters["engine.degraded"] == len(requests)
        for request, outcome in zip(requests, outcomes):
            assert outcome.ok
            assert outcome.degraded
            # The degraded answer is the coarsest valid approximation:
            # exactly what the sequential path returns at max LOD.
            reference = store.uniform_query(request.roi, store.max_lod)
            assert outcome.result.nodes == reference.nodes

    def test_expired_deadline_fails_viewdep(self, clean_injector):
        db, store = clean_injector
        extent = store.rtree.data_space.rect
        plane = QueryPlane(extent, 0.2 * store.max_lod, 0.8 * store.max_lod)
        registry = MetricsRegistry()
        with QueryEngine(
            store, workers=2, deadline_s=1e-9, registry=registry
        ) as engine:
            outcome = engine.run(SingleBaseRequest(plane))
        assert not outcome.ok
        assert isinstance(outcome.error, DeadlineExceededError)
        assert not outcome.degraded
        assert registry.counters()["engine.deadline_misses"] == 1

    def test_degrade_disabled_fails_instead(self, clean_injector):
        db, store = clean_injector
        request = _random_uniform(store, random.Random(19))
        with QueryEngine(
            store, workers=1, deadline_s=1e-9, degrade=False
        ) as engine:
            outcome = engine.run(request)
        assert not outcome.ok
        assert isinstance(outcome.error, DeadlineExceededError)

    def test_generous_deadline_changes_nothing(self, clean_injector):
        db, store = clean_injector
        request = _random_uniform(store, random.Random(23))
        with QueryEngine(store, workers=2, deadline_s=60.0) as engine:
            outcome = engine.run(request)
        assert outcome.ok and not outcome.degraded
        reference = store.uniform_query(request.roi, request.lod)
        assert outcome.result.nodes == reference.nodes

    def test_validation(self, clean_injector):
        _, store = clean_injector
        with pytest.raises(QueryError):
            QueryEngine(store, deadline_s=0.0)
        with pytest.raises(QueryError):
            QueryEngine(store, retries=-1)
        with pytest.raises(QueryError):
            QueryEngine(store, retry_backoff_s=-0.1)


class TestDemotion:
    def test_failed_leader_demotes_followers(self, clean_injector):
        db, store = clean_injector
        extent = store.rtree.data_space.rect
        lod = 0.5 * store.max_lod
        outer = UniformRequest(extent, lod)
        quarter = Rect(
            extent.min_x,
            extent.min_y,
            extent.min_x + extent.width / 2,
            extent.min_y + extent.height / 2,
        )
        inner = UniformRequest(quarter, lod)
        # Exactly one injected error: the leader (submitted first,
        # retries=0) eats it and fails; the demoted follower's
        # independent probe then runs fault-free.
        db.set_fault_injector(
            FaultInjector(error_rate=1.0, seed=3, max_errors=1)
        )
        db.flush()  # Cold cache: the leader's read faults.
        registry = MetricsRegistry()
        with QueryEngine(
            store, workers=1, dedup="subsume", retries=0, registry=registry
        ) as engine:
            outcomes = engine.run_batch([outer, inner])
        assert not outcomes[0].ok
        assert isinstance(outcomes[0].error, TransientIOError)
        assert outcomes[1].ok
        assert registry.counters()["engine.demotions"] == 1
        reference = store.uniform_query(inner.roi, inner.lod)
        assert outcomes[1].result.nodes == reference.nodes


class TestServingAcceptance:
    def test_200_requests_with_faults_meet_the_bar(self, clean_injector):
        """The PR's acceptance scenario: fault rate 0.05 on physical
        reads, 200 requests, batch completes with >= 99% success and
        every failure reported per-request."""
        from repro.bench.runner import measure_throughput

        db, store = clean_injector
        injector = FaultInjector(error_rate=0.05, seed=2024)
        db.set_fault_injector(injector)
        rng = random.Random(2024)
        requests = [
            _random_uniform(store, rng, frac=0.15) for _ in range(200)
        ]
        report = measure_throughput(
            store, requests, workers=8, retries=4
        )
        db.set_fault_injector(None)
        assert report.n_requests == 200
        assert report.success_rate >= 0.99
        assert report.n_ok + report.n_errors == 200
        assert injector.errors_injected > 0  # The run actually faulted.
