"""Property and protocol tests for the delta-frame wire format."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.wire import (
    FLAG_DEGRADED,
    FLAG_KEYFRAME,
    WIRE_MAGIC,
    WIRE_VERSION,
    ClientMesh,
    DeltaFrame,
    decode_delta_ids,
    decode_frame,
    encode_delta_ids,
    encode_frame,
)
from repro.errors import RecordError, SessionError
from repro.storage.record import DMNodeRecord
from repro.storage.varint import U64_MAX

# DM record ids and connection entries are int32 on the wire (the
# record payload packs ``<i``); the *id streams* support full u64.
I32 = st.integers(0, 2**31 - 1)
COORD = st.floats(allow_nan=False, allow_infinity=False, width=64)


def make_record(node_id: int, connections: list[int]) -> DMNodeRecord:
    return DMNodeRecord(
        node_id, 1.5, -2.5, 3.25, 0.125, 4.0, -1, -1, -1, -1, -1,
        connections,
    )


@st.composite
def records(draw, node_id=None):
    nid = draw(I32) if node_id is None else node_id
    return DMNodeRecord(
        nid,
        draw(COORD),
        draw(COORD),
        draw(COORD),
        draw(COORD),
        draw(st.one_of(COORD, st.just(float("inf")))),
        draw(st.integers(-1, 2**31 - 1)),
        draw(st.integers(-1, 2**31 - 1)),
        draw(st.integers(-1, 2**31 - 1)),
        draw(st.integers(-1, 2**31 - 1)),
        draw(st.integers(-1, 2**31 - 1)),
        # Connection lists are sets; the compressed coding sorts them,
        # so draw them sorted for by-value round-trip comparison.
        sorted(draw(st.lists(I32, max_size=8, unique=True))),
    )


@st.composite
def frames(draw):
    added_ids = draw(st.lists(I32, unique=True, max_size=12))
    removed_pool = draw(
        st.lists(st.integers(0, U64_MAX), unique=True, max_size=12)
    )
    removed = tuple(
        rid for rid in removed_pool if rid not in set(added_ids)
    )
    added = tuple(draw(records(node_id=nid)) for nid in added_ids)
    flags = draw(
        st.sampled_from(
            [0, FLAG_KEYFRAME, FLAG_DEGRADED, FLAG_KEYFRAME | FLAG_DEGRADED]
        )
    )
    return DeltaFrame(draw(st.integers(0, U64_MAX)), added, removed, flags)


class TestDeltaIds:
    @given(st.lists(st.integers(0, U64_MAX), unique=True, max_size=64))
    def test_roundtrip_full_u64(self, ids):
        ids = sorted(ids)
        out = bytearray()
        encode_delta_ids(ids, out)
        back, offset = decode_delta_ids(bytes(out), 0, len(ids))
        assert back == ids
        assert offset == len(out)

    def test_out_of_range_rejected(self):
        with pytest.raises(RecordError):
            encode_delta_ids([2**64], bytearray())
        with pytest.raises(RecordError):
            encode_delta_ids([-1], bytearray())


class TestFrameCodec:
    @settings(max_examples=50)
    @given(frames(), st.booleans())
    def test_roundtrip(self, frame, compress):
        back = decode_frame(encode_frame(frame, compress=compress))
        assert back.seq == frame.seq
        assert back.flags == frame.flags
        assert back.removed == tuple(sorted(frame.removed))
        by_id = {record.id: record for record in frame.added}
        assert [record.id for record in back.added] == sorted(by_id)
        for record in back.added:
            assert record == by_id[record.id]

    def test_magic_and_version_enforced(self):
        payload = encode_frame(DeltaFrame(0, (), (), FLAG_KEYFRAME))
        assert payload[: len(WIRE_MAGIC)] == WIRE_MAGIC
        import zlib

        newer = bytearray(payload[:-4])
        newer[len(WIRE_MAGIC)] = WIRE_VERSION + 1
        newer += zlib.crc32(bytes(newer)).to_bytes(4, "little")
        with pytest.raises(RecordError, match="version"):
            decode_frame(bytes(newer))

    def test_any_flipped_bit_is_caught(self):
        payload = encode_frame(
            DeltaFrame(3, (make_record(7, [1, 2]),), (9,), 0)
        )
        for position in range(len(payload)):
            corrupt = bytearray(payload)
            corrupt[position] ^= 0x10
            with pytest.raises(RecordError):
                decode_frame(bytes(corrupt))

    def test_truncation_is_caught(self):
        payload = encode_frame(DeltaFrame(1, (make_record(3, []),), (), 0))
        for end in range(len(payload)):
            with pytest.raises(RecordError):
                decode_frame(payload[:end])

    def test_payload_id_cross_check(self):
        # Hand-roll a frame whose id stream says 7 but whose record
        # payload says 8 — a valid checksum over inconsistent content.
        import zlib

        from repro.storage.record import encode_dm_record
        from repro.storage.varint import encode_uvarint

        body = bytearray()
        body += WIRE_MAGIC
        body.append(WIRE_VERSION)
        body.append(0)
        encode_uvarint(0, body)  # seq
        encode_uvarint(1, body)  # n_added
        encode_uvarint(0, body)  # n_removed
        encode_delta_ids([7], body)
        payload = encode_dm_record(make_record(8, []))
        encode_uvarint(len(payload), body)
        body += payload
        body += zlib.crc32(bytes(body)).to_bytes(4, "little")
        with pytest.raises(RecordError, match="disagrees"):
            decode_frame(bytes(body))


class TestClientMesh:
    def test_keyframe_then_deltas(self):
        client = ClientMesh()
        client.apply(
            encode_frame(
                DeltaFrame(
                    0,
                    (make_record(1, []), make_record(2, [1])),
                    (),
                    FLAG_KEYFRAME,
                )
            )
        )
        assert client.active_ids == {1, 2}
        client.apply(
            encode_frame(DeltaFrame(1, (make_record(3, []),), (1,), 0))
        )
        assert client.active_ids == {2, 3}
        assert client.frames_applied == 2
        assert client.node(3).id == 3

    def test_sequence_gap_rejected_and_state_kept(self):
        client = ClientMesh()
        client.apply(
            encode_frame(
                DeltaFrame(0, (make_record(1, []),), (), FLAG_KEYFRAME)
            )
        )
        with pytest.raises(SessionError):
            client.apply(
                encode_frame(DeltaFrame(7, (make_record(2, []),), (), 0))
            )
        assert client.active_ids == {1}
        assert client.next_seq == 1

    def test_bad_splice_leaves_mesh_untouched(self):
        client = ClientMesh()
        client.apply(
            encode_frame(
                DeltaFrame(0, (make_record(1, []),), (), FLAG_KEYFRAME)
            )
        )
        # Removes an id the client does not hold.
        with pytest.raises(SessionError):
            client.apply(encode_frame(DeltaFrame(1, (), (99,), 0)))
        # Adds a duplicate after a valid removal in the same frame.
        with pytest.raises(SessionError):
            client.apply(
                encode_frame(DeltaFrame(1, (make_record(1, []),), (), 0))
            )
        assert client.active_ids == {1}
        assert client.frames_applied == 1

    def test_keyframe_resync_accepts_any_seq(self):
        client = ClientMesh()
        client.apply(
            encode_frame(
                DeltaFrame(0, (make_record(1, []),), (), FLAG_KEYFRAME)
            )
        )
        client.apply(
            encode_frame(
                DeltaFrame(
                    41, (make_record(5, []),), (), FLAG_KEYFRAME
                )
            )
        )
        assert client.active_ids == {5}
        assert client.next_seq == 42

    def test_unknown_node_raises(self):
        with pytest.raises(SessionError):
            ClientMesh().node(4)
