"""Tests for the Direct Mesh store and query processors — the core."""

import pytest

from repro.core.direct_mesh import DirectMeshStore
from repro.errors import StorageError
from repro.geometry.plane import QueryPlane, max_angle
from repro.geometry.predicates import orient2d
from repro.mesh.selective import uniform_query_ref, viewdep_query_ref
from repro.storage.database import Database


@pytest.fixture
def setup(session_db, hills_dataset):
    return session_db["db"], session_db["dm"], hills_dataset


class TestUniformQuery:
    def test_matches_reference_across_lods(self, setup):
        db, store, ds = setup
        roi = ds.bounds().scaled(0.35)
        for fraction in (0.0, 0.02, 0.1, 0.4, 0.9):
            lod = ds.pm.max_lod() * fraction
            result = store.uniform_query(roi, lod)
            assert set(result.nodes) == uniform_query_ref(ds.pm, roi, lod), (
                f"mismatch at lod fraction {fraction}"
            )

    def test_no_extraneous_records(self, setup):
        # The headline claim: the plane query retrieves (almost) only
        # the answer.  Boundary effects allow a small overshoot.
        db, store, ds = setup
        roi = ds.bounds().scaled(0.4)
        result = store.uniform_query(roi, ds.pm.average_lod())
        assert result.retrieved <= len(result.nodes) * 1.2 + 5

    def test_small_roi(self, setup):
        db, store, ds = setup
        bounds = ds.bounds()
        roi = ds.roi_for_fraction(0.01, bounds.center.x, bounds.center.y)
        lod = ds.pm.average_lod()
        result = store.uniform_query(roi, lod)
        assert set(result.nodes) == uniform_query_ref(ds.pm, roi, lod)

    def test_rejects_negative_lod(self, setup):
        from repro.errors import QueryError

        _, store, ds = setup
        with pytest.raises(QueryError):
            store.uniform_query(ds.bounds(), -1.0)


class TestMeshReconstruction:
    def test_edges_connect_result_nodes_only(self, setup):
        _, store, ds = setup
        roi = ds.bounds().scaled(0.4)
        result = store.uniform_query(roi, ds.pm.average_lod())
        ids = set(result.nodes)
        for a, b in result.edges():
            assert a in ids and b in ids

    def test_edge_counts_planar(self, setup):
        _, store, ds = setup
        roi = ds.bounds().scaled(0.5)
        result = store.uniform_query(roi, ds.pm.average_lod())
        v = len(result.nodes)
        e = len(result.edges())
        assert e <= 3 * v - 6
        assert e >= v - 1  # Connected-ish within the ROI.

    def test_triangles_are_valid(self, setup):
        _, store, ds = setup
        roi = ds.bounds().scaled(0.4)
        result = store.uniform_query(roi, ds.pm.average_lod())
        tris = result.triangles()
        assert tris
        edges = result.edges()
        for a, b, c in tris:
            assert len({a, b, c}) == 3
            for u, v in ((a, b), (b, c), (a, c)):
                assert ((u, v) if u < v else (v, u)) in edges

    def test_triangles_nondegenerate(self, setup):
        _, store, ds = setup
        roi = ds.bounds().scaled(0.4)
        result = store.uniform_query(roi, ds.pm.average_lod())
        degenerate = 0
        for a, b, c in result.triangles():
            na, nb, nc = (result.nodes[i] for i in (a, b, c))
            if orient2d(na.x, na.y, nb.x, nb.y, nc.x, nc.y) == 0:
                degenerate += 1
        assert degenerate == 0

    def test_vertex_mesh_export(self, setup):
        _, store, ds = setup
        roi = ds.bounds().scaled(0.3)
        result = store.uniform_query(roi, ds.pm.average_lod())
        vertices, triangles = result.vertex_mesh()
        assert len(vertices) == len(result.nodes)
        for tri in triangles:
            assert all(0 <= idx < len(vertices) for idx in tri)


class TestViewdepQueries:
    @pytest.mark.parametrize("angle_fraction", [0.1, 0.5, 0.9])
    def test_single_base_matches_reference(self, setup, angle_fraction):
        db, store, ds = setup
        roi = ds.bounds().scaled(0.35)
        theta = max_angle(store.max_lod, roi.height)
        plane = QueryPlane.from_angle(
            roi, ds.pm.max_lod() * 0.02, theta * angle_fraction
        )
        result = store.single_base_query(plane)
        assert set(result.nodes) == viewdep_query_ref(ds.pm, plane)

    def test_multi_base_equals_single_base(self, setup):
        db, store, ds = setup
        roi = ds.bounds().scaled(0.45)
        theta = max_angle(store.max_lod, roi.height)
        plane = QueryPlane.from_angle(
            roi, ds.pm.max_lod() * 0.01, theta * 0.6
        )
        sb = store.single_base_query(plane)
        mb = store.multi_base_query(plane)
        assert set(sb.nodes) == set(mb.nodes)
        assert mb.n_range_queries >= 1
        assert mb.plan is not None

    def test_multi_base_arbitrary_direction(self, setup):
        db, store, ds = setup
        roi = ds.bounds().scaled(0.3)
        plane = QueryPlane(
            roi,
            ds.pm.max_lod() * 0.02,
            ds.pm.max_lod() * 0.5,
            direction=(0.8, -0.6),
        )
        mb = store.multi_base_query(plane)
        assert set(mb.nodes) == viewdep_query_ref(ds.pm, plane)

    def test_single_base_retrieves_more_than_needed(self, setup):
        # The cube fetches the whole LOD range; the plane filter keeps
        # a subset — this is the volume multi-base attacks.
        db, store, ds = setup
        roi = ds.bounds().scaled(0.4)
        plane = QueryPlane(roi, 0.0, ds.pm.max_lod() * 0.8)
        result = store.single_base_query(plane)
        assert result.retrieved > len(result.nodes)


class TestDiskAccessOrdering:
    def test_dm_beats_pm_cold(self, session_db, hills_dataset):
        db = session_db["db"]
        dm = session_db["dm"]
        pm_store = session_db["pm"]
        ds = hills_dataset
        roi = ds.bounds().scaled(0.35)
        lod = ds.pm.average_lod()
        db.begin_measured_query()
        dm.uniform_query(roi, lod)
        dm_da = db.disk_accesses
        db.begin_measured_query()
        pm_store.uniform_query(roi, lod)
        pm_da = db.disk_accesses
        assert dm_da < pm_da

    def test_warm_buffer_cheaper(self, setup):
        db, store, ds = setup
        roi = ds.bounds().scaled(0.3)
        lod = ds.pm.average_lod()
        db.begin_measured_query()
        store.uniform_query(roi, lod)
        cold = db.disk_accesses
        db.stats.reset()  # Keep the buffer warm this time.
        store.uniform_query(roi, lod)
        warm = db.disk_accesses
        assert warm < cold


class TestLifecycle:
    def test_build_report(self, setup):
        _, store, ds = setup
        report = store.build_report
        assert report is not None
        assert report.n_nodes == len(ds.pm.nodes)
        assert 4 <= report.avg_connections <= 30
        assert report.heap_pages > 0

    def test_reopen(self, tmp_path, hills_dataset):
        with Database(tmp_path / "db") as db:
            DirectMeshStore.build(
                hills_dataset.pm, db, hills_dataset.connections
            )
        with Database(tmp_path / "db") as db:
            store = DirectMeshStore.open(db)
            roi = hills_dataset.bounds().scaled(0.25)
            lod = hills_dataset.pm.average_lod()
            assert set(store.uniform_query(roi, lod).nodes) == (
                uniform_query_ref(hills_dataset.pm, roi, lod)
            )

    def test_open_missing(self, fresh_db):
        with pytest.raises(StorageError):
            DirectMeshStore.open(fresh_db)

    def test_get_node(self, setup):
        _, store, ds = setup
        rec = store.get_node(5)
        assert rec is not None
        assert rec.id == 5
        assert store.get_node(10**9) is None

    def test_dynamic_index_build_small(self, hills_dataset, tmp_path):
        # Exercise the dynamic R* insertion path end to end on a
        # small sub-PM (the full dataset would be slow).
        from repro.core.connectivity import build_connection_lists
        from repro.mesh.simplify import simplify_to_pm
        from tests.conftest import make_wavy_grid_mesh

        mesh = make_wavy_grid_mesh(side=10, seed=6)
        pm = simplify_to_pm(mesh)
        pm.normalize_lod()
        conn = build_connection_lists(pm)
        with Database(tmp_path / "db") as db:
            store = DirectMeshStore.build(pm, db, conn, bulk_index=False)
            store.rtree.validate()
            roi = mesh.bounds().scaled(0.5)
            lod = pm.average_lod()
            assert set(store.uniform_query(roi, lod).nodes) == (
                uniform_query_ref(pm, roi, lod)
            )


class TestRadialViewerModel:
    """The f(m.e, d) <= E extension: radial LOD fields end to end."""

    def make_field(self, ds, roi):
        from repro.geometry.plane import RadialLodField

        return RadialLodField(
            roi,
            viewer=(roi.center.x, roi.min_y - roi.height * 0.2),
            rate=ds.pm.max_lod() / (roi.height * 3),
            e_min=ds.pm.lod_percentile(0.3),
            e_max=ds.pm.max_lod(),
        )

    def test_single_base_matches_reference(self, setup):
        _, store, ds = setup
        roi = ds.bounds().scaled(0.4)
        field = self.make_field(ds, roi)
        result = store.single_base_query(field)
        assert set(result.nodes) == viewdep_query_ref(ds.pm, field)

    def test_multi_base_matches_reference(self, setup):
        _, store, ds = setup
        roi = ds.bounds().scaled(0.4)
        field = self.make_field(ds, roi)
        result = store.multi_base_query(field)
        assert set(result.nodes) == viewdep_query_ref(ds.pm, field)

    def test_pm_baseline_handles_radial(self, session_db, hills_dataset):
        ds = hills_dataset
        roi = ds.bounds().scaled(0.35)
        field = self.make_field(ds, roi)
        result = session_db["pm"].viewdep_query(field)
        assert set(result.nodes) == viewdep_query_ref(ds.pm, field)

    def test_density_decays_with_distance(self, setup):
        _, store, ds = setup
        roi = ds.bounds().scaled(0.5)
        field = self.make_field(ds, roi)
        result = store.multi_base_query(field)
        near = [
            r for r in result.nodes.values()
            if r.y < roi.min_y + roi.height * 0.3
        ]
        far = [
            r for r in result.nodes.values()
            if r.y > roi.max_y - roi.height * 0.3
        ]
        assert len(near) > len(far)
