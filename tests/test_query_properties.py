"""Property-based tests over the query processors themselves.

Hypothesis drives randomized ROIs, LODs, planes, and radial fields
against the session store, checking the processor outputs against the
in-memory reference and against each other — the highest-level
invariants in the system.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.geometry.plane import QueryPlane, RadialLodField
from repro.geometry.primitives import Rect
from repro.mesh.progressive import NULL_ID
from repro.mesh.selective import uniform_query_ref, viewdep_query_ref

common = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)

fractions = st.floats(0.0, 1.0, allow_nan=False)
positions = st.floats(0.05, 0.95, allow_nan=False)
sizes = st.floats(0.1, 0.6, allow_nan=False)


def make_roi(ds, cx_f, cy_f, size_f):
    bounds = ds.bounds()
    cx = bounds.min_x + bounds.width * cx_f
    cy = bounds.min_y + bounds.height * cy_f
    half_w = bounds.width * size_f / 2
    half_h = bounds.height * size_f / 2
    return Rect(
        max(bounds.min_x, cx - half_w),
        max(bounds.min_y, cy - half_h),
        min(bounds.max_x, cx + half_w),
        min(bounds.max_y, cy + half_h),
    )


class TestUniformProperties:
    @common
    @given(positions, positions, sizes, fractions)
    def test_matches_reference(
        self, session_db, hills_dataset, cx, cy, size, lod_f
    ):
        ds = hills_dataset
        roi = make_roi(ds, cx, cy, size)
        lod = ds.pm.max_lod() * lod_f
        result = session_db["dm"].uniform_query(roi, lod)
        assert set(result.nodes) == uniform_query_ref(ds.pm, roi, lod)

    @common
    @given(positions, positions, sizes, fractions)
    def test_monotone_in_roi(
        self, session_db, hills_dataset, cx, cy, size, lod_f
    ):
        # A larger ROI (superset) returns a superset of nodes.
        ds = hills_dataset
        small = make_roi(ds, cx, cy, size * 0.5)
        large = make_roi(ds, cx, cy, size)
        lod = ds.pm.max_lod() * lod_f
        store = session_db["dm"]
        small_ids = set(store.uniform_query(small, lod).nodes)
        large_ids = set(store.uniform_query(large, lod).nodes)
        if large.contains_rect(small):
            assert small_ids <= large_ids

    @common
    @given(positions, positions, fractions)
    def test_result_is_antichain(
        self, session_db, hills_dataset, cx, cy, lod_f
    ):
        # No node in a uniform result is an ancestor of another.
        ds = hills_dataset
        roi = make_roi(ds, cx, cy, 0.4)
        lod = ds.pm.max_lod() * lod_f
        ids = set(session_db["dm"].uniform_query(roi, lod).nodes)
        for node_id in ids:
            for ancestor in ds.pm.ancestors(node_id):
                assert ancestor.id not in ids


class TestViewdepProperties:
    @common
    @given(positions, positions, fractions, fractions)
    def test_plane_matches_reference(
        self, session_db, hills_dataset, cx, cy, lo_f, hi_f
    ):
        ds = hills_dataset
        roi = make_roi(ds, cx, cy, 0.4)
        lo, hi = sorted(
            (ds.pm.max_lod() * lo_f, ds.pm.max_lod() * hi_f)
        )
        plane = QueryPlane(roi, lo, hi)
        sb = session_db["dm"].single_base_query(plane)
        assert set(sb.nodes) == viewdep_query_ref(ds.pm, plane)

    @common
    @given(positions, positions, st.floats(0.2, 5.0), fractions)
    def test_radial_sb_equals_mb(
        self, session_db, hills_dataset, cx, cy, rate_scale, emin_f
    ):
        ds = hills_dataset
        roi = make_roi(ds, cx, cy, 0.4)
        field = RadialLodField(
            roi,
            viewer=(roi.center.x, roi.min_y),
            rate=ds.pm.max_lod() * rate_scale / max(roi.height, 1.0),
            e_min=ds.pm.max_lod() * emin_f * 0.5,
            e_max=ds.pm.max_lod(),
        )
        store = session_db["dm"]
        sb = store.single_base_query(field)
        mb = store.multi_base_query(field)
        assert set(sb.nodes) == set(mb.nodes)


class TestECapRegression:
    """Probes above the index cap must return the base mesh.

    Root records keep the paper's ``[e, inf)`` interval but their
    indexed segments stop at ``e_cap``; before the clamp fix, any
    ``lod > e_cap`` probed above every indexed segment and returned an
    empty mesh.  The in-memory traversal is the ground truth at every
    height.
    """

    def _check(self, session_db, hills_dataset, lod):
        ds = hills_dataset
        roi = ds.bounds()
        result = session_db["dm"].uniform_query(roi, lod)
        reference = uniform_query_ref(ds.pm, roi, lod)
        assert set(result.nodes) == reference
        assert len(result.nodes) > 0

    def test_at_max_lod(self, session_db, hills_dataset):
        self._check(
            session_db, hills_dataset, hills_dataset.pm.max_lod()
        )

    def test_at_e_cap(self, session_db, hills_dataset):
        self._check(session_db, hills_dataset, session_db["dm"].e_cap)

    def test_above_e_cap(self, session_db, hills_dataset):
        dm = session_db["dm"]
        self._check(session_db, hills_dataset, dm.e_cap * 3 + 17.0)

    def test_above_cap_is_exactly_the_base_mesh(
        self, session_db, hills_dataset
    ):
        dm = session_db["dm"]
        roi = hills_dataset.bounds()
        above = dm.uniform_query(roi, dm.e_cap + 1.0)
        base = {
            node.id
            for node in hills_dataset.pm.nodes
            if node.parent == NULL_ID
            and roi.contains_point(node.x, node.y)
        }
        assert set(above.nodes) == base

    def test_viewdep_cube_above_cap(self, session_db, hills_dataset):
        dm = session_db["dm"]
        roi = hills_dataset.bounds()
        plane = QueryPlane(roi, dm.e_cap + 1.0, dm.e_cap + 10.0)
        result = dm.single_base_query(plane)
        assert set(result.nodes) == viewdep_query_ref(
            hills_dataset.pm, plane
        )
        assert len(result.nodes) > 0
