"""Cost-based admission control: token bucket, governor, shed path.

The unit tests drive :class:`~repro.core.engine.TokenBucket` and
:class:`~repro.core.engine.CostGovernor` with a deterministic fake
clock (no sleeps, no wall-time flake); the integration tests push the
engine's open-loop ``submit`` path far past capacity and check the
promises the governor makes: bounded in-flight cost, and shed
responses that are well-formed degraded results rather than errors.
"""

from __future__ import annotations

import pytest

from repro.core.engine import (
    ADMIT,
    DEGRADE,
    SHED,
    CostGovernor,
    QueryEngine,
    SingleBaseRequest,
    TokenBucket,
    UniformRequest,
)
from repro.errors import OverloadShedError, QueryError
from repro.geometry.plane import QueryPlane


class FakeClock:
    """A manually advanced monotonic clock."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class FlatCostModel:
    """A stub cost model returning a fixed estimate."""

    def __init__(self, cost: float = 4.0) -> None:
        self.cost = cost

    def estimate(self, box) -> float:
        return self.cost


def make_governor(**kwargs) -> CostGovernor:
    kwargs.setdefault("budget", 10.0)
    return CostGovernor(FlatCostModel(), **kwargs)


# -- token bucket ------------------------------------------------------------


class TestTokenBucket:
    def test_starts_full_and_drains(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=5.0, clock=clock)
        assert bucket.tokens == pytest.approx(5.0)
        assert bucket.try_take(3.0)
        assert bucket.tokens == pytest.approx(2.0)
        assert bucket.try_take(2.0)
        assert not bucket.try_take(0.5)

    def test_failed_take_is_not_a_partial_debit(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=4.0, clock=clock)
        assert not bucket.try_take(9.0)
        assert bucket.tokens == pytest.approx(4.0)

    def test_refills_at_rate_and_caps_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=6.0, clock=clock)
        assert bucket.try_take(6.0)
        clock.advance(1.0)
        assert bucket.tokens == pytest.approx(2.0)
        clock.advance(100.0)
        assert bucket.tokens == pytest.approx(6.0)

    def test_refill_unblocks_a_denied_take(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=2.0, clock=clock)
        assert bucket.try_take(2.0)
        assert not bucket.try_take(1.0)
        clock.advance(1.0)
        assert bucket.try_take(1.0)

    @pytest.mark.parametrize("rate,burst", [(0.0, 1.0), (1.0, 0.0), (-1, 5)])
    def test_rejects_non_positive_parameters(self, rate, burst):
        with pytest.raises(QueryError):
            TokenBucket(rate=rate, burst=burst)


# -- governor decisions ------------------------------------------------------


class TestCostGovernor:
    def test_admits_within_budget_and_reserves_full_cost(self):
        governor = make_governor(budget=10.0)
        decision = governor.decide("t", 4.0)
        assert decision.action == ADMIT
        assert decision.reserved_cost == pytest.approx(4.0)
        assert governor.inflight_cost == pytest.approx(4.0)

    def test_degrades_when_budget_is_full(self):
        governor = make_governor(budget=10.0, degraded_cost=1.0)
        assert governor.decide("t", 8.0).action == ADMIT
        decision = governor.decide("t", 8.0)
        assert decision.action == DEGRADE
        assert decision.reserved_cost == pytest.approx(1.0)
        assert governor.inflight_cost == pytest.approx(9.0)

    def test_sheds_beyond_degrade_headroom(self):
        governor = make_governor(
            budget=2.0, degraded_cost=1.0, degrade_headroom=1.0
        )
        assert governor.decide("t", 2.0).action == ADMIT
        decision = governor.decide("t", 2.0)
        assert decision.action == SHED
        assert decision.reserved_cost == 0.0
        # Shed reserves nothing: in-flight cost unchanged.
        assert governor.inflight_cost == pytest.approx(2.0)

    def test_non_degradable_goes_straight_to_shed(self):
        governor = make_governor(budget=2.0, degrade_headroom=100.0)
        assert governor.decide("t", 2.0).action == ADMIT
        decision = governor.decide("t", 2.0, degradable=False)
        assert decision.action == SHED

    def test_release_returns_budget(self):
        governor = make_governor(budget=5.0)
        decision = governor.decide("t", 5.0)
        assert governor.decide("t", 5.0, degradable=False).action == SHED
        governor.release(decision.reserved_cost)
        assert governor.inflight_cost == pytest.approx(0.0)
        assert governor.decide("t", 5.0).action == ADMIT

    def test_release_never_goes_negative(self):
        governor = make_governor(budget=5.0)
        governor.release(99.0)
        assert governor.inflight_cost == 0.0

    def test_estimate_floors_at_one_page(self):
        governor = CostGovernor(FlatCostModel(cost=0.01), budget=5.0)
        assert governor.estimate(None) == pytest.approx(1.0)

    def test_throttled_tenant_degrades_despite_budget_room(self):
        clock = FakeClock()
        governor = make_governor(
            budget=100.0, tenant_rate=1.0, tenant_burst=4.0, clock=clock
        )
        assert governor.decide("a", 4.0).action == ADMIT
        decision = governor.decide("a", 4.0)
        assert decision.action == DEGRADE
        assert decision.throttled
        # Another tenant's bucket is untouched.
        other = governor.decide("b", 4.0)
        assert other.action == ADMIT
        assert not other.throttled

    def test_throttled_tenant_recovers_with_the_clock(self):
        clock = FakeClock()
        governor = make_governor(
            budget=100.0, tenant_rate=2.0, tenant_burst=4.0, clock=clock
        )
        assert governor.decide("a", 4.0).action == ADMIT
        assert governor.decide("a", 4.0).throttled
        clock.advance(2.0)
        assert not governor.decide("a", 4.0).throttled

    def test_tenant_charge_is_capped_at_burst(self):
        # A query costlier than the whole bucket must not starve
        # forever: the charge caps at the burst size.
        clock = FakeClock()
        governor = make_governor(
            budget=1000.0, tenant_rate=1.0, tenant_burst=5.0, clock=clock
        )
        decision = governor.decide("a", 500.0)
        assert decision.action == ADMIT
        assert not decision.throttled

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"budget": 0.0},
            {"budget": -1.0},
            {"budget": 5.0, "degraded_cost": 0.0},
            {"budget": 5.0, "degrade_headroom": 0.5},
            {"budget": 5.0, "tenant_rate": -1.0},
        ],
    )
    def test_rejects_bad_parameters(self, kwargs):
        with pytest.raises(QueryError):
            make_governor(**kwargs)


# -- engine integration ------------------------------------------------------


def _mid_request(store) -> UniformRequest:
    # The full extent: on the small session dataset a fractional ROI
    # can legitimately intersect zero nodes, which would make the
    # "degraded answers are real results" assertions vacuous.
    extent = store.rtree.data_space.rect
    return UniformRequest(extent, 0.2 * store.max_lod)


class TestEngineAdmission:
    def test_submit_without_governor_is_ungoverned(self, session_db):
        store = session_db["dm"]
        with QueryEngine(store, workers=2) as engine:
            outcome = engine.submit(_mid_request(store)).result(timeout=30)
        assert outcome.ok
        assert not outcome.degraded
        assert not outcome.shed

    def test_admitted_request_runs_full_fidelity(self, session_db):
        store = session_db["dm"]
        governor = CostGovernor(store.cost_model, budget=1e9)
        with QueryEngine(store, workers=2, governor=governor) as engine:
            request = _mid_request(store)
            outcome = engine.submit(request).result(timeout=30)
            reference = store.uniform_query(request.roi, request.lod)
        assert outcome.ok and not outcome.degraded and not outcome.shed
        assert outcome.result.nodes == reference.nodes
        assert engine.registry.counters()["engine.admitted"] == 1
        # Reservation released on completion.
        assert governor.inflight_cost == 0.0

    def test_overload_degrades_to_base_mesh(self, session_db):
        store = session_db["dm"]
        # Budget below any real estimate, huge headroom: every request
        # takes the degraded tier.
        governor = CostGovernor(
            store.cost_model, budget=0.5, degrade_headroom=1000.0
        )
        with QueryEngine(store, workers=2, governor=governor) as engine:
            outcome = engine.submit(_mid_request(store)).result(timeout=30)
            counters = engine.registry.counters()
        assert outcome.ok
        assert outcome.degraded
        assert not outcome.shed
        assert len(outcome.result) > 0
        assert counters["engine.overload_degraded"] == 1
        assert counters["engine.degraded"] == 1

    def test_shed_is_a_well_formed_degraded_result(self, session_db):
        store = session_db["dm"]
        governor = CostGovernor(
            store.cost_model, budget=1.0, degrade_headroom=1.0
        )
        # Fill the budget so the next submission must shed.
        governor.decide("filler", 1.0)
        with QueryEngine(store, workers=2, governor=governor) as engine:
            request = _mid_request(store)
            future = engine.submit(request)
            # Shed answers resolve inline, never touching the executor.
            assert future.done()
            outcome = future.result()
            counters = engine.registry.counters()
        assert outcome.ok, f"shed outcome errored: {outcome.error}"
        assert outcome.shed
        assert outcome.degraded
        # The answer is the base mesh clipped to the ROI: every node of
        # the real degraded query, at zero queueing.
        reference = store.uniform_query(request.roi, store.max_lod)
        assert outcome.result.nodes == reference.nodes
        assert counters["engine.shed"] == 1

    def test_shed_non_degradable_surfaces_typed_error(self, session_db):
        store = session_db["dm"]
        governor = CostGovernor(
            store.cost_model, budget=1.0, degrade_headroom=1.0
        )
        governor.decide("filler", 1.0)
        extent = store.rtree.data_space.rect
        plane = QueryPlane(
            extent, 0.2 * store.max_lod, 0.6 * store.max_lod
        )
        with QueryEngine(store, workers=2, governor=governor) as engine:
            outcome = engine.submit(SingleBaseRequest(plane)).result(
                timeout=30
            )
        assert not outcome.ok
        assert isinstance(outcome.error, OverloadShedError)
        assert outcome.shed

    def test_cache_hit_bypasses_admission(self, session_db):
        from repro.core.cache import SemanticCache

        store = session_db["dm"]
        # Budget big enough to admit the first request at full
        # fidelity (which populates the cache), headroom 1.0 so a
        # saturated budget sheds instead of degrading.
        governor = CostGovernor(
            store.cost_model, budget=1e6, degrade_headroom=1.0
        )
        cache = SemanticCache(8 * 1024 * 1024)
        request = _mid_request(store)
        with QueryEngine(
            store, workers=2, governor=governor, cache=cache
        ) as engine:
            first = engine.submit(request).result(timeout=30)
            assert not first.degraded and not first.shed
            # Saturate the budget: an estimated request would shed now.
            governor.decide("filler", 1e6)
            second = engine.submit(request).result(timeout=30)
        assert first.ok
        assert second.ok
        assert not second.shed and not second.degraded
        assert second.result.nodes == first.result.nodes


class TestOverloadStress:
    def test_flood_keeps_queue_bounded_and_sheds_cleanly(self, session_db):
        """workers=8, offered rate >> capacity (a zero-gap flood).

        Asserts the two governor promises: in-flight reserved cost
        never exceeds ``budget * degrade_headroom`` (so the executor
        queue is bounded however hard the flood), and every shed
        response is a well-formed degraded result, not an error.
        """
        store = session_db["dm"]
        budget, headroom = 12.0, 2.0
        governor = CostGovernor(
            store.cost_model,
            budget=budget,
            degraded_cost=1.0,
            degrade_headroom=headroom,
        )
        ceiling = budget * headroom
        n = 400
        request = _mid_request(store)
        max_seen = 0.0
        max_depth = 0.0
        with QueryEngine(store, workers=8, governor=governor) as engine:
            depth_gauge = engine.registry.gauge("slo.queue_depth")
            futures = []
            for _ in range(n):
                futures.append(engine.submit(request))
                max_seen = max(max_seen, governor.inflight_cost)
                max_depth = max(max_depth, depth_gauge.value)
            outcomes = [f.result(timeout=60) for f in futures]
            counters = engine.registry.counters()
        assert max_seen <= ceiling + 1e-6, (
            f"in-flight cost reached {max_seen}, ceiling {ceiling}"
        )
        # Every queued task holds a reservation of at least one cost
        # unit, so the queue depth inherits the same ceiling.
        assert max_depth <= ceiling + 1e-6
        assert governor.inflight_cost == pytest.approx(0.0)
        n_shed = sum(1 for o in outcomes if o.shed)
        assert n_shed > 0, "flood never exercised the shed path"
        assert counters.get("engine.shed", 0) == n_shed
        for outcome in outcomes:
            assert outcome.ok, f"flood produced an error: {outcome.error}"
            if outcome.shed:
                assert outcome.degraded
                assert outcome.result is not None
        assert (
            counters.get("engine.admitted", 0)
            + counters.get("engine.overload_degraded", 0)
            + n_shed
            == n
        )
