"""Tests for in-memory selective refinement (the reference semantics)."""

import pytest

from repro.geometry.plane import QueryPlane
from repro.geometry.primitives import Rect
from repro.mesh.selective import (
    cut_edges,
    selective_subtree,
    uniform_query_ref,
    viewdep_query_ref,
)


class TestUniformRef:
    def test_equals_interval_filter(self, wavy_pm):
        roi = Rect(20, 20, 80, 80)
        for fraction in (0.0, 0.05, 0.2, 0.8):
            lod = wavy_pm.max_lod() * fraction
            traversal = uniform_query_ref(wavy_pm, roi, lod)
            direct = {
                n.id
                for n in wavy_pm.nodes
                if n.interval_contains(lod) and roi.contains_point(n.x, n.y)
            }
            assert traversal == direct

    def test_empty_roi_outside_terrain(self, wavy_pm):
        roi = Rect(10_000, 10_000, 10_010, 10_010)
        assert uniform_query_ref(wavy_pm, roi, 1.0) == set()

    def test_whole_terrain_is_cut(self, wavy_pm):
        bounds = Rect(-1e9, -1e9, 1e9, 1e9)
        lod = wavy_pm.max_lod() * 0.1
        assert uniform_query_ref(wavy_pm, bounds, lod) == set(
            wavy_pm.uniform_cut(lod)
        )


class TestViewdepRef:
    def test_flat_plane_equals_uniform(self, wavy_pm):
        roi = Rect(20, 20, 90, 90)
        lod = wavy_pm.max_lod() * 0.1
        plane = QueryPlane(roi, lod, lod)
        assert viewdep_query_ref(wavy_pm, plane) == uniform_query_ref(
            wavy_pm, roi, lod
        )

    def test_members_satisfy_pointwise_rule(self, wavy_pm):
        roi = Rect(10, 10, 100, 100)
        plane = QueryPlane(
            roi, wavy_pm.max_lod() * 0.01, wavy_pm.max_lod() * 0.6
        )
        result = viewdep_query_ref(wavy_pm, plane)
        assert result
        for node_id in result:
            node = wavy_pm.node(node_id)
            assert roi.contains_point(node.x, node.y)
            assert node.interval_contains(
                plane.required_lod(node.x, node.y)
            )

    def test_near_side_finer(self, wavy_pm):
        roi = Rect(0, 0, 115, 115)
        plane = QueryPlane(
            roi,
            wavy_pm.lod_percentile(0.3),
            wavy_pm.max_lod() * 0.9,
            direction=(0, 1),
        )
        result = viewdep_query_ref(wavy_pm, plane)
        near = [
            i for i in result if wavy_pm.node(i).y < roi.height * 0.25
        ]
        far = [
            i for i in result if wavy_pm.node(i).y > roi.height * 0.75
        ]
        if near and far:
            near_density = len(near)
            far_density = len(far)
            assert near_density >= far_density


class TestSubtree:
    def test_internal_and_leaves_disjoint(self, wavy_pm):
        roi = Rect(20, 20, 80, 80)
        lod = wavy_pm.max_lod() * 0.1
        internal, leaves = selective_subtree(wavy_pm, roi, lod)
        assert not internal & leaves
        assert leaves == uniform_query_ref(wavy_pm, roi, lod)

    def test_internal_nodes_are_coarser(self, wavy_pm):
        roi = Rect(20, 20, 80, 80)
        lod = wavy_pm.max_lod() * 0.1
        internal, _ = selective_subtree(wavy_pm, roi, lod)
        for node_id in internal:
            assert wavy_pm.node(node_id).e > lod

    def test_quantifies_pm_overhead(self, wavy_pm):
        # The motivation for DM: the traversed internal set is a large
        # multiple of nothing-at-all (DM needs zero internal nodes).
        roi = Rect(0, 0, 115, 115)
        lod = wavy_pm.lod_percentile(0.5)
        internal, leaves = selective_subtree(wavy_pm, roi, lod)
        assert len(internal) > 0
        assert len(leaves) > 0


class TestCutEdges:
    def test_requires_connection_lists(self, wavy_pm):
        with pytest.raises(ValueError):
            cut_edges(wavy_pm, [1, 2, 3], None)

    def test_filters_to_member_pairs(self, wavy_pm, wavy_connections):
        lod = wavy_pm.max_lod() * 0.05
        cut = wavy_pm.uniform_cut(lod)
        edges = cut_edges(wavy_pm, cut, wavy_connections)
        members = set(cut)
        for a, b in edges:
            assert a in members and b in members
            assert a < b
