"""Tests for the :mod:`repro.errors` hierarchy.

Three contracts, each load-bearing for the concurrent engine:

* every public error derives from :class:`ReproError`, so callers can
  fence the whole library with one ``except`` clause;
* every error pickles round-trip with type, message, and context
  intact — outcomes cross thread (and, later, process) boundaries
  inside futures;
* context fields render into ``str(err)`` so operators see *which*
  page/node/segment failed without string parsing.

Plus the ``python -O`` regression: the modules whose asserts were
converted to :class:`InvariantError` must import (and keep their
invariant checks) with assertions stripped.
"""

from __future__ import annotations

import inspect
import pickle
import subprocess
import sys
from pathlib import Path

import pytest

import repro.errors as errors_module
from repro.errors import InvariantError, ReproError, TransientIOError

REPO_ROOT = Path(__file__).resolve().parents[1]


def _public_error_classes() -> list[type[BaseException]]:
    classes = [
        obj
        for _, obj in inspect.getmembers(errors_module, inspect.isclass)
        if issubclass(obj, BaseException)
        and obj.__module__ == "repro.errors"
    ]
    assert classes, "no error classes found in repro.errors"
    return classes


@pytest.mark.parametrize(
    "cls", _public_error_classes(), ids=lambda c: c.__name__
)
def test_every_error_subclasses_repro_error(
    cls: type[BaseException],
) -> None:
    assert issubclass(cls, ReproError)
    assert issubclass(cls, Exception)


@pytest.mark.parametrize(
    "cls", _public_error_classes(), ids=lambda c: c.__name__
)
def test_every_error_pickles_round_trip(cls: type[BaseException]) -> None:
    original = cls("disk on fire", page=7, segment="base")
    for protocol in range(pickle.HIGHEST_PROTOCOL + 1):
        clone = pickle.loads(pickle.dumps(original, protocol))
        assert type(clone) is cls
        assert clone.message == "disk on fire"
        assert clone.context == {"page": 7, "segment": "base"}
        assert str(clone) == str(original)


def test_context_fields_are_stored_and_rendered() -> None:
    err = InvariantError("node has no footprint", node=13, depth=2)
    assert err.message == "node has no footprint"
    assert err.context == {"node": 13, "depth": 2}
    # Context renders sorted, so messages are deterministic.
    assert str(err) == "node has no footprint [depth=2, node=13]"


def test_message_without_context_renders_plain() -> None:
    err = ReproError("plain failure")
    assert str(err) == "plain failure"
    assert err.context == {}


def test_contextless_and_messageless_forms() -> None:
    assert str(ReproError()) == ""
    assert str(ReproError(page=3)) == "[page=3]"


def test_catching_base_catches_subclass() -> None:
    with pytest.raises(ReproError):
        raise TransientIOError("torn read", page=1)


def test_errors_survive_python_O() -> None:
    """Converted invariants must not vanish under ``python -O``.

    Imports every module whose asserts became InvariantError raises and
    proves the checks still fire with assertions stripped.
    """
    script = (
        "import repro.cli, repro.core.engine, repro.index.rstar\n"
        "import repro.index.quadtree, repro.storage.record\n"
        "import repro.baselines.pm_db, repro.mesh.progressive\n"
        "from repro.errors import InvariantError\n"
        "from repro.index.rstar import RStarTree\n"
        "assert_stripped = not __debug__\n"
        "if not assert_stripped:\n"
        "    raise SystemExit('expected -O to strip asserts')\n"
        "try:\n"
        "    RStarTree._least_enlargement_child([], None)\n"
        "except InvariantError:\n"
        "    print('INVARIANT-OK')\n"
    )
    result = subprocess.run(
        [sys.executable, "-O", "-c", script],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
    )
    assert result.returncode == 0, result.stderr
    assert "INVARIANT-OK" in result.stdout
