"""Tests for the benchmark report assembler."""

from pathlib import Path

from repro.bench.report import build_report, main


def write_csv(directory: Path, name: str, rows: list[list[str]]) -> None:
    directory.mkdir(parents=True, exist_ok=True)
    (directory / f"{name}.csv").write_text(
        "\n".join(",".join(row) for row in rows) + "\n", encoding="ascii"
    )


class TestBuildReport:
    def test_empty_directory(self, tmp_path):
        report = build_report(tmp_path)
        assert "no CSVs found" in report

    def test_known_experiment_titled_and_ordered(self, tmp_path):
        write_csv(tmp_path, "fig6b", [["lod", "DM"], ["1", "10"]])
        write_csv(tmp_path, "fig6a", [["roi", "DM"], ["5", "20"]])
        report = build_report(tmp_path)
        assert "Figure 6(a)" in report
        assert "Figure 6(b)" in report
        assert report.index("Figure 6(a)") < report.index("Figure 6(b)")
        assert "| roi | DM |" in report
        assert "| 5 | 20 |" in report

    def test_unknown_experiment_appended(self, tmp_path):
        write_csv(tmp_path, "fig6a", [["roi", "DM"], ["5", "20"]])
        write_csv(tmp_path, "my_custom", [["x", "y"], ["1", "2"]])
        report = build_report(tmp_path)
        assert "## my_custom" in report
        assert report.index("Figure 6(a)") < report.index("my_custom")

    def test_main_writes_file(self, tmp_path, capsys):
        write_csv(tmp_path / "res", "fig6a", [["roi", "DM"], ["5", "20"]])
        out = tmp_path / "report.md"
        assert main([str(tmp_path / "res"), str(out)]) == 0
        assert out.exists()
        assert "Figure 6(a)" in out.read_text()

    def test_main_prints_without_output_arg(self, tmp_path, capsys):
        write_csv(tmp_path / "res", "fig6a", [["roi", "DM"], ["5", "20"]])
        assert main([str(tmp_path / "res")]) == 0
        assert "Figure 6(a)" in capsys.readouterr().out
