"""The observability layer: counters, histograms, registry."""
# reprolint: disable-file=R5 registry unit tests use synthetic metric names

import threading

import pytest

from repro.obs.metrics import Counter, Histogram, MetricsRegistry


class TestCounter:
    def test_basic_increment(self):
        counter = Counter()
        assert counter.value == 0
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_concurrent_increments_are_not_lost(self):
        counter = Counter()
        n_threads, per_thread = 8, 5000

        def work():
            for _ in range(per_thread):
                counter.inc()

        threads = [threading.Thread(target=work) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == n_threads * per_thread


class TestHistogram:
    def test_summary_statistics(self):
        hist = Histogram()
        for value in (1.0, 2.0, 3.0, 4.0):
            hist.observe(value)
        snap = hist.snapshot()
        assert snap.count == 4
        assert snap.total == 10.0
        assert snap.mean == 2.5
        assert snap.min == 1.0
        assert snap.max == 4.0

    def test_percentiles_interpolate(self):
        hist = Histogram()
        for value in range(101):
            hist.observe(float(value))
        assert hist.percentile(0) == 0.0
        assert hist.percentile(50) == 50.0
        assert hist.percentile(100) == 100.0
        assert hist.percentile(95) == pytest.approx(95.0)

    def test_percentile_bounds_checked(self):
        with pytest.raises(ValueError):
            Histogram().percentile(101)

    def test_empty_snapshot_is_zeroed(self):
        snap = Histogram().snapshot()
        assert snap.count == 0
        assert snap.mean == 0.0
        assert snap.p95 == 0.0

    def test_sample_cap_keeps_exact_aggregates(self):
        hist = Histogram(max_samples=10)
        for value in range(100):
            hist.observe(float(value))
        snap = hist.snapshot()
        assert snap.count == 100  # Aggregates are exact past the cap...
        assert snap.max == 99.0
        assert hist.percentile(50) <= 10.0  # ...percentiles approximate.

    def test_concurrent_observations(self):
        hist = Histogram()
        n_threads, per_thread = 4, 2000

        def work():
            for i in range(per_thread):
                hist.observe(float(i))

        threads = [threading.Thread(target=work) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert hist.count == n_threads * per_thread

    def test_snapshot_is_internally_consistent_under_writers(self):
        """snapshot() must read aggregates and percentile samples in
        one critical section: a snapshot taken mid-update may lag, but
        it can never mix states (count without its sample, a p95
        outside [min, max], a mean outside the observed range)."""
        hist = Histogram()
        stop = threading.Event()

        def writer(base: float) -> None:
            value = base
            while not stop.is_set():
                hist.observe(value)
                value += 1.0

        threads = [
            threading.Thread(target=writer, args=(float(i * 1000),))
            for i in range(4)
        ]
        for t in threads:
            t.start()
        try:
            for _ in range(300):
                snap = hist.snapshot()
                if snap.count == 0:
                    continue
                assert snap.min <= snap.p50 <= snap.p95 <= snap.max
                assert snap.min <= snap.mean <= snap.max
        finally:
            stop.set()
            for t in threads:
                t.join()


class TestRegistry:
    def test_instruments_are_shared_by_name(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.counter("a").inc()
        assert registry.counters()["a"] == 2
        registry.histogram("h").observe(1.0)
        assert registry.histograms()["h"].count == 1

    def test_timer_records_seconds(self):
        registry = MetricsRegistry()
        with registry.timer("t"):
            pass
        snap = registry.histograms()["t"]
        assert snap.count == 1
        assert 0 <= snap.max < 1.0

    def test_timer_records_on_exception(self):
        registry = MetricsRegistry()
        with pytest.raises(RuntimeError):
            with registry.timer("t"):
                raise RuntimeError("boom")
        assert registry.histograms()["t"].count == 1

    def test_report_mentions_every_instrument(self):
        registry = MetricsRegistry()
        registry.counter("requests").inc(3)
        registry.histogram("latency_s").observe(0.25)
        report = registry.report()
        assert "requests" in report
        assert "3" in report
        assert "latency_s" in report

    def test_reset_drops_instruments(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.reset()
        assert registry.counters() == {}
