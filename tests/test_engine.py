"""The concurrent batched query engine.

The contract under test: whatever the worker count, batch order, or
dedup policy, the engine returns the *same approximations* as the
sequential query processors — and in the default ``"exact"`` mode the
results are byte-identical (same nodes, same ``retrieved`` count).
"""

import random

import pytest

from repro.core import DirectMeshStore, QueryEngine
from repro.core.engine import SingleBaseRequest, UniformRequest
from repro.errors import QueryError
from repro.geometry.plane import QueryPlane
from repro.geometry.primitives import Rect
from repro.obs.metrics import MetricsRegistry
from repro.storage import Database
from repro.terrain import dataset_by_name


@pytest.fixture(scope="module")
def store(tmp_path_factory):
    dataset = dataset_by_name("foothills", 1500, seed=11)
    db = Database(tmp_path_factory.mktemp("engine_db"), pool_pages=128)
    store = DirectMeshStore.build(dataset.pm, db, dataset.connections)
    yield store
    db.close()


def _extent(store) -> Rect:
    return store.rtree.data_space.rect


def _random_uniform(store, rng, frac=0.3) -> UniformRequest:
    extent = _extent(store)
    side = frac * min(extent.width, extent.height)
    x0 = extent.min_x + rng.random() * (extent.width - side)
    y0 = extent.min_y + rng.random() * (extent.height - side)
    lod = rng.random() * store.max_lod
    return UniformRequest(Rect(x0, y0, x0 + side, y0 + side), lod)


def _assert_identical(outcome, reference):
    assert outcome.result.nodes == reference.nodes
    assert outcome.result.retrieved == reference.retrieved
    assert outcome.result.n_range_queries == reference.n_range_queries
    # The reconstructed meshes must serialise to the same bytes.
    assert outcome.result.vertex_mesh() == reference.vertex_mesh()


class TestBatchIdentity:
    def test_uniform_matches_sequential(self, store):
        rng = random.Random(1)
        requests = [_random_uniform(store, rng) for _ in range(8)]
        with QueryEngine(store, workers=4) as engine:
            outcomes = engine.run_batch(requests)
        assert len(outcomes) == len(requests)
        for request, outcome in zip(requests, outcomes):
            assert outcome.request is request
            reference = store.uniform_query(request.roi, request.lod)
            _assert_identical(outcome, reference)

    def test_single_base_matches_sequential(self, store):
        extent = _extent(store)
        max_lod = store.max_lod
        planes = [
            QueryPlane(extent, 0.1 * max_lod, 0.6 * max_lod),
            QueryPlane(extent, 0.3 * max_lod, 0.9 * max_lod, (1.0, 0.0)),
        ]
        with QueryEngine(store, workers=2) as engine:
            outcomes = engine.run_batch(
                [SingleBaseRequest(p) for p in planes]
            )
        for plane, outcome in zip(planes, outcomes):
            _assert_identical(outcome, store.single_base_query(plane))

    def test_property_random_rois_and_lods(self, store):
        """Property-style sweep: any random ROI/LOD batch at any
        worker count agrees with the sequential reference."""
        rng = random.Random(1234)
        for workers in (1, 3, 8):
            requests = [
                _random_uniform(store, rng, frac=0.1 + 0.5 * rng.random())
                for _ in range(12)
            ]
            with QueryEngine(store, workers=workers) as engine:
                outcomes = engine.run_batch(requests)
            for request, outcome in zip(requests, outcomes):
                reference = store.uniform_query(request.roi, request.lod)
                _assert_identical(outcome, reference)

    def test_empty_batch(self, store):
        with QueryEngine(store, workers=2) as engine:
            assert engine.run_batch([]) == []

    def test_run_single(self, store):
        request = _random_uniform(store, random.Random(5))
        with QueryEngine(store, workers=1) as engine:
            outcome = engine.run(request)
        _assert_identical(
            outcome, store.uniform_query(request.roi, request.lod)
        )


class TestDedup:
    def test_exact_duplicates_share_one_range_query(self, store):
        request = _random_uniform(store, random.Random(2))
        registry = MetricsRegistry()
        with QueryEngine(store, workers=4, registry=registry) as engine:
            outcomes = engine.run_batch([request] * 6)
        counters = registry.counters()
        assert counters["engine.requests"] == 6
        assert counters["engine.range_queries"] == 1
        assert counters["engine.dedup_shared"] == 5
        reference = store.uniform_query(request.roi, request.lod)
        for outcome in outcomes:
            _assert_identical(outcome, reference)

    def test_dedup_off_probes_once_per_request(self, store):
        request = _random_uniform(store, random.Random(3))
        registry = MetricsRegistry()
        with QueryEngine(
            store, workers=2, dedup="off", registry=registry
        ) as engine:
            engine.run_batch([request] * 4)
        assert registry.counters()["engine.range_queries"] == 4

    def test_subsume_contained_roi_reuses_superset(self, store):
        extent = _extent(store)
        lod = 0.5 * store.max_lod
        outer = UniformRequest(extent, lod)
        quarter = Rect(
            extent.min_x,
            extent.min_y,
            extent.min_x + extent.width / 2,
            extent.min_y + extent.height / 2,
        )
        inner = UniformRequest(quarter, lod)
        registry = MetricsRegistry()
        with QueryEngine(
            store, workers=4, dedup="subsume", registry=registry
        ) as engine:
            outcomes = engine.run_batch([outer, inner])
        assert registry.counters()["engine.range_queries"] == 1
        assert outcomes[1].metrics.shared
        # The *approximation* is exact even though the fetch was shared.
        reference = store.uniform_query(inner.roi, inner.lod)
        assert outcomes[1].result.nodes == reference.nodes
        _assert_identical(outcomes[0], store.uniform_query(outer.roi, lod))

    def test_subsume_disjoint_boxes_not_merged(self, store):
        extent = _extent(store)
        half_w = extent.width / 2
        left = UniformRequest(
            Rect(extent.min_x, extent.min_y,
                 extent.min_x + half_w * 0.9, extent.max_y),
            0.4 * store.max_lod,
        )
        right = UniformRequest(
            Rect(extent.min_x + half_w * 1.1, extent.min_y,
                 extent.max_x, extent.max_y),
            0.4 * store.max_lod,
        )
        registry = MetricsRegistry()
        with QueryEngine(
            store, workers=2, dedup="subsume", registry=registry
        ) as engine:
            outcomes = engine.run_batch([left, right])
        assert registry.counters()["engine.range_queries"] == 2
        for request, outcome in zip((left, right), outcomes):
            _assert_identical(
                outcome, store.uniform_query(request.roi, request.lod)
            )


class TestECapRegression:
    """Engine probes above the index cap must return the base mesh
    (the sequential path is checked in test_query_properties)."""

    @pytest.mark.parametrize("lod_kind", ["max_lod", "e_cap", "above"])
    def test_engine_matches_sequential_at_cap_heights(
        self, store, lod_kind
    ):
        lod = {
            "max_lod": store.max_lod,
            "e_cap": store.e_cap,
            "above": store.e_cap * 2 + 5.0,
        }[lod_kind]
        roi = _extent(store)
        request = UniformRequest(roi, lod)
        with QueryEngine(store, workers=2) as engine:
            outcome = engine.run(request)
        reference = store.uniform_query(roi, lod)
        _assert_identical(outcome, reference)
        assert len(outcome.result.nodes) > 0

    def test_same_box_different_lod_share_one_probe(self, store):
        """Two uniform requests above e_cap clamp to the same query
        box; the exact-dedup key is (box, type), so they share one
        range query while each keeps its own filter."""
        roi = _extent(store)
        first = UniformRequest(roi, store.e_cap + 1.0)
        second = UniformRequest(roi, store.e_cap + 2.0)
        registry = MetricsRegistry()
        with QueryEngine(store, workers=2, registry=registry) as engine:
            outcomes = engine.run_batch([first, second])
        counters = registry.counters()
        assert counters["engine.range_queries"] == 1
        assert counters["engine.dedup_shared"] == 1
        for request, outcome in zip((first, second), outcomes):
            reference = store.uniform_query(request.roi, request.lod)
            _assert_identical(outcome, reference)
            assert len(outcome.result.nodes) > 0


class TestMetrics:
    def test_per_query_metrics_populated(self, store):
        request = UniformRequest(_extent(store), 0.5 * store.max_lod)
        store.database.flush()  # Cold: the fetch must read pages.
        with QueryEngine(store, workers=1) as engine:
            outcome = engine.run(request)
        metrics = outcome.metrics
        assert metrics.nodes_visited >= 1
        assert metrics.pages_read > 0
        assert metrics.logical_reads >= metrics.pages_read
        assert 0.0 <= metrics.cache_hit_rate <= 1.0
        assert metrics.total_s > 0
        assert metrics.index_s >= 0
        assert metrics.fetch_s >= 0
        assert not metrics.shared

    def test_registry_histograms_cover_stages(self, store):
        rng = random.Random(7)
        registry = MetricsRegistry()
        with QueryEngine(store, workers=4, registry=registry) as engine:
            engine.run_batch([_random_uniform(store, rng) for _ in range(5)])
        histograms = registry.histograms()
        for name in (
            "engine.index_s",
            "engine.fetch_s",
            "engine.query_s",
            "engine.nodes_visited",
            "engine.pages_read",
            "engine.cache_hit_rate",
        ):
            assert histograms[name].count == 5, name

    def test_warm_cache_has_high_hit_rate(self, store):
        request = UniformRequest(_extent(store), 0.5 * store.max_lod)
        with QueryEngine(store, workers=1) as engine:
            engine.run(request)  # Warm the pool.
            warm = engine.run(request)
        assert warm.metrics.cache_hit_rate > 0.9


class TestConcurrencyStress:
    def test_large_mixed_batch_under_contention(self, store):
        """Many overlapping queries racing on one buffer pool still
        produce sequential-identical results."""
        rng = random.Random(99)
        extent = _extent(store)
        requests = []
        for _ in range(30):
            requests.append(_random_uniform(store, rng))
        requests.append(
            SingleBaseRequest(
                QueryPlane(extent, 0.2 * store.max_lod, 0.8 * store.max_lod)
            )
        )
        store.database.flush()
        with QueryEngine(store, workers=8) as engine:
            outcomes = engine.run_batch(requests)
        for request, outcome in zip(requests, outcomes):
            if isinstance(request, UniformRequest):
                reference = store.uniform_query(request.roi, request.lod)
            else:
                reference = store.single_base_query(request.plane)
            _assert_identical(outcome, reference)

    def test_global_counters_survive_concurrency(self, store):
        """Thread-safe DiskStats: logical reads recorded concurrently
        are neither lost nor double-counted (sum of per-query probes
        equals the global delta)."""
        rng = random.Random(13)
        requests = [_random_uniform(store, rng) for _ in range(16)]
        store.database.flush()
        before = store.database.stats.snapshot()
        with QueryEngine(store, workers=8, dedup="off") as engine:
            outcomes = engine.run_batch(requests)
        delta = store.database.stats.snapshot().delta(before)
        assert delta.logical_reads == sum(
            o.metrics.logical_reads for o in outcomes
        )
        assert delta.physical_reads == sum(
            o.metrics.pages_read for o in outcomes
        )


class TestValidation:
    def test_bad_worker_count(self, store):
        with pytest.raises(QueryError):
            QueryEngine(store, workers=0)

    def test_bad_dedup_mode(self, store):
        with pytest.raises(QueryError):
            QueryEngine(store, dedup="fuzzy")


class TestEdgesRace:
    """Result objects are shared across worker threads (dedup
    followers reuse the leader's result), so the lazy ``edges()``
    cache must be race-free: every caller sees one complete set."""

    def test_concurrent_edges_single_object(self, store):
        import threading

        request = _random_uniform(store, random.Random(21), frac=0.6)
        with QueryEngine(store, workers=1) as engine:
            result = engine.run(request).result
        assert len(result.nodes) > 0
        n_threads = 8
        barrier = threading.Barrier(n_threads)
        seen = []
        lock = threading.Lock()

        def hammer():
            barrier.wait()  # Maximise the chance of a true race.
            edges = result.edges()
            with lock:
                seen.append(edges)

        for _ in range(20):  # Re-arm the race on fresh result objects.
            result._edges = None
            threads = [
                threading.Thread(target=hammer) for _ in range(n_threads)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        # Every call on one result object returned the *same* set.
        from repro.core.reconstruct import mesh_edges_scalar

        reference = mesh_edges_scalar(result.nodes)
        assert all(edges == reference for edges in seen)
        first = seen[0]
        for edges in seen[:n_threads]:
            assert edges is first

    def test_dedup_followers_share_edge_cache(self, store):
        request = _random_uniform(store, random.Random(22))
        with QueryEngine(store, workers=4) as engine:
            outcomes = engine.run_batch([request] * 6)
        edge_sets = [o.result.edges() for o in outcomes]
        assert all(e is edge_sets[0] for e in edge_sets)
