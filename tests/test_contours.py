"""Tests for marching-squares contour extraction."""

import math

import numpy as np
import pytest

from repro.errors import ReproError
from repro.terrain.gridfield import GridField
from repro.viz.contours import contour_segments, render_contours


def cone_field(size=33, cell=1.0):
    """A radially symmetric cone: contours are (approximate) circles."""
    coords = np.arange(size, dtype=float)
    xx, yy = np.meshgrid(coords, coords, indexing="ij")
    center = (size - 1) / 2
    r = np.sqrt((xx - center) ** 2 + (yy - center) ** 2)
    return GridField(100.0 - r * 4.0, cell)


class TestContourSegments:
    def test_flat_field_has_no_contours(self):
        field = GridField(np.full((10, 10), 5.0))
        assert contour_segments(field, 7.0) == []

    def test_level_below_everything(self):
        field = cone_field()
        assert contour_segments(field, -1000.0) == []

    def test_segments_lie_on_level(self):
        field = cone_field()
        level = 60.0
        for (x0, y0), (x1, y1) in contour_segments(field, level):
            # Both endpoints interpolate the raster to ~the level.
            for x, y in ((x0, y0), (x1, y1)):
                assert field.sample(x, y) == pytest.approx(level, abs=2.5)

    def test_circle_radius(self):
        field = cone_field()
        level = 60.0  # r = (100 - 60) / 4 = 10 cells.
        segs = contour_segments(field, level)
        assert segs
        center = 16.0
        for (x0, y0), _ in segs:
            r = math.hypot(x0 - center, y0 - center)
            assert r == pytest.approx(10.0, abs=0.8)

    def test_segments_chain_into_closed_loop(self):
        # Every contour point of a closed iso-line appears exactly
        # twice (once per incident segment).  The level is chosen off
        # the lattice values: where an iso-line passes exactly through
        # grid vertices, marching squares legitimately emits degenerate
        # vertex-touching segments.
        field = cone_field()
        segs = contour_segments(field, 61.37)
        counts: dict[tuple[float, float], int] = {}
        for a, b in segs:
            for p in (a, b):
                key = (round(p[0], 9), round(p[1], 9))
                counts[key] = counts.get(key, 0) + 1
        assert all(c == 2 for c in counts.values())

    def test_monotone_level_shrinks_contour(self):
        field = cone_field()
        low = len(contour_segments(field, 40.0))
        high = len(contour_segments(field, 80.0))
        assert high < low  # Higher iso-line = smaller circle.

    def test_saddle_cases_produce_two_segments(self):
        # A checkerboard cell exercises the ambiguous cases 5 and 10.
        field = GridField(np.array([[1.0, 0.0], [0.0, 1.0]]))
        segs = contour_segments(field, 0.5)
        assert len(segs) == 2


class TestRenderContours:
    def test_dimensions(self):
        art = render_contours(cone_field(), levels=4, width=40, height=15)
        lines = art.split("\n")
        assert len(lines) == 15
        assert all(len(line) == 40 for line in lines)

    def test_distinct_glyphs_per_level(self):
        art = render_contours(cone_field(), levels=3, width=50, height=20)
        used = set(art) - {" ", "\n"}
        assert len(used) == 3

    def test_explicit_levels(self):
        art = render_contours(cone_field(), levels=[50.0], width=30,
                              height=12)
        assert set(art) - {" ", "\n"} == {"."}

    def test_validation(self):
        with pytest.raises(ReproError):
            render_contours(cone_field(), levels=0)
        with pytest.raises(ReproError):
            render_contours(cone_field(), levels=[])

    def test_flat_field_single_level(self):
        field = GridField(np.full((8, 8), 3.0))
        art = render_contours(field, levels=2)
        assert set(art) <= {" ", "\n"}  # Nothing to draw.
