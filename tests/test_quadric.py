"""Tests for quadric error metrics."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.mesh.quadric import Quadric, triangle_plane_quadric

unit = st.floats(-10, 10, allow_nan=False, allow_infinity=False)


class TestQuadric:
    def test_plane_quadric_zero_on_plane(self):
        # Plane z = 0 -> (0, 0, 1, 0).
        q = Quadric.from_plane(0, 0, 1, 0)
        assert q.error(3, -7, 0) == 0.0
        assert q.error(0, 0, 2) == pytest.approx(4.0)

    def test_error_is_squared_distance(self):
        # Plane x + y = 0, normalised: (1/sqrt2, 1/sqrt2, 0, 0).
        s = 1 / math.sqrt(2)
        q = Quadric.from_plane(s, s, 0, 0)
        # Point (1, 1, 0) is sqrt(2) from the plane.
        assert q.error(1, 1, 0) == pytest.approx(2.0)

    def test_addition(self):
        q1 = Quadric.from_plane(0, 0, 1, 0)
        q2 = Quadric.from_plane(0, 0, 1, -2)  # Plane z = 2.
        total = q1 + q2
        assert total.error(0, 0, 1) == pytest.approx(1.0 + 1.0)

    def test_iadd_matches_add(self):
        q1 = Quadric.from_plane(0.6, 0.8, 0, 1)
        q2 = Quadric.from_plane(0, 0, 1, -5)
        total = q1 + q2
        q1 += q2
        assert q1.as_tuple() == total.as_tuple()

    def test_scaled(self):
        q = Quadric.from_plane(0, 0, 1, 0).scaled(3.0)
        assert q.error(0, 0, 1) == pytest.approx(3.0)

    def test_optimal_point_two_planes_is_degenerate(self):
        # Two planes intersect in a line: the system is singular.
        q = Quadric.from_plane(1, 0, 0, 0) + Quadric.from_plane(0, 1, 0, 0)
        assert q.optimal_point() is None

    def test_optimal_point_three_planes(self):
        q = (
            Quadric.from_plane(1, 0, 0, -1)  # x = 1
            + Quadric.from_plane(0, 1, 0, -2)  # y = 2
            + Quadric.from_plane(0, 0, 1, -3)  # z = 3
        )
        opt = q.optimal_point()
        assert opt is not None
        assert opt == pytest.approx((1.0, 2.0, 3.0))
        assert q.error(*opt) == pytest.approx(0.0, abs=1e-12)

    @given(unit, unit, unit)
    def test_error_never_negative(self, x, y, z):
        q = Quadric.from_plane(0.6, 0, 0.8, 1.5) + Quadric.from_plane(
            0, 1, 0, -0.5
        )
        assert q.error(x, y, z) >= 0.0

    @given(unit, unit, unit)
    def test_optimal_is_minimum(self, x, y, z):
        q = (
            Quadric.from_plane(1, 0, 0, -1)
            + Quadric.from_plane(0, 1, 0, 1)
            + Quadric.from_plane(0, 0, 1, 0)
            + Quadric.from_plane(0.6, 0.8, 0, 2)
        )
        opt = q.optimal_point()
        assert opt is not None
        assert q.error(*opt) <= q.error(x, y, z) + 1e-9


class TestTriangleQuadric:
    def test_degenerate_triangle(self):
        assert (
            triangle_plane_quadric((0, 0, 0), (1, 1, 1), (2, 2, 2)) is None
        )

    def test_vertices_on_plane_have_zero_error(self):
        p0, p1, p2 = (0, 0, 1), (4, 0, 1), (0, 4, 1)
        q = triangle_plane_quadric(p0, p1, p2)
        assert q is not None
        for p in (p0, p1, p2):
            assert q.error(*p) == pytest.approx(0.0, abs=1e-12)

    def test_area_weighting(self):
        small = triangle_plane_quadric(
            (0, 0, 0), (1, 0, 0), (0, 1, 0), area_weighted=True
        )
        big = triangle_plane_quadric(
            (0, 0, 0), (10, 0, 0), (0, 10, 0), area_weighted=True
        )
        assert big is not None and small is not None
        # Same plane; the larger triangle weighs 100x more.
        assert big.error(0, 0, 1) == pytest.approx(
            100 * small.error(0, 0, 1)
        )

    def test_unweighted_error_is_distance_squared(self):
        q = triangle_plane_quadric(
            (0, 0, 0), (5, 0, 0), (0, 5, 0), area_weighted=False
        )
        assert q is not None
        assert q.error(2, 2, 3) == pytest.approx(9.0)
