"""Tests for wing-based vertex split / collapse (DynamicMesh)."""

import pytest

from repro.errors import MeshError
from repro.geometry.plane import QueryPlane
from repro.geometry.primitives import Rect
from repro.mesh.vsplit import DynamicMesh


@pytest.fixture
def coarse(wavy_pm):
    """A DynamicMesh at the coarsest state (roots only)."""
    return DynamicMesh(wavy_pm)


class TestBootstrap:
    def test_starts_at_roots(self, wavy_pm, coarse):
        assert coarse.active == set(wavy_pm.roots)

    def test_start_at_lod(self, wavy_pm):
        lod = wavy_pm.max_lod() * 0.2
        mesh = DynamicMesh(wavy_pm, start_lod=lod)
        assert mesh.active == set(wavy_pm.uniform_cut(lod))
        mesh.validate()

    def test_requires_normalised(self, wavy_mesh):
        from repro.mesh.simplify import simplify_to_pm

        raw = simplify_to_pm(wavy_mesh)
        with pytest.raises(MeshError):
            DynamicMesh(raw)

    def test_bootstrap_adjacency_matches_connection_lists(
        self, wavy_pm, wavy_connections
    ):
        lod = wavy_pm.max_lod() * 0.1
        mesh = DynamicMesh(wavy_pm, start_lod=lod)
        expected = set()
        for a in mesh.active:
            for b in wavy_connections[a]:
                if b in mesh.active:
                    expected.add((a, b) if a < b else (b, a))
        assert mesh.edges() == expected


class TestSplitCollapse:
    def test_split_replaces_node(self, wavy_pm, coarse):
        root = next(iter(coarse.active))
        node = wavy_pm.node(root)
        coarse.split(root)
        assert root not in coarse.active
        assert node.child1 in coarse.active
        assert node.child2 in coarse.active
        assert node.child2 in coarse.neighbors(node.child1)
        coarse.validate()

    def test_split_leaf_rejected(self, wavy_pm):
        mesh = DynamicMesh(wavy_pm, start_lod=0.0)
        leaf = next(i for i in mesh.active if wavy_pm.node(i).is_leaf)
        with pytest.raises(MeshError):
            mesh.split(leaf)

    def test_split_inactive_rejected(self, coarse):
        with pytest.raises(MeshError):
            coarse.split(0)

    def test_collapse_is_inverse_of_split(self, wavy_pm):
        lod = wavy_pm.max_lod() * 0.15
        mesh = DynamicMesh(wavy_pm, start_lod=lod)
        target = next(
            i for i in mesh.active if not wavy_pm.node(i).is_leaf
        )
        before_edges = mesh.edges()
        before_active = set(mesh.active)
        mesh.split(target)
        mesh.validate()
        mesh.collapse(target)
        mesh.validate()
        assert mesh.active == before_active
        assert mesh.edges() == before_edges

    def test_collapse_needs_both_children(self, wavy_pm, coarse):
        root = next(iter(coarse.active))
        with pytest.raises(MeshError):
            coarse.collapse(root)  # Children not active yet.


class TestRefineTo:
    def test_uniform_refinement_reaches_cut(self, wavy_pm, coarse):
        lod = wavy_pm.max_lod() * 0.08
        splits, collapses = coarse.refine_to(lod)
        assert splits > 0
        assert coarse.active == set(wavy_pm.uniform_cut(lod))
        coarse.validate()

    def test_coarsening_collapses(self, wavy_pm):
        fine = DynamicMesh(wavy_pm, start_lod=0.0)
        lod = wavy_pm.max_lod() * 0.5
        splits, collapses = fine.refine_to(lod)
        assert collapses > 0
        assert fine.active == set(wavy_pm.uniform_cut(lod))
        fine.validate()

    def test_adjacency_matches_connection_lists_after_refine(
        self, wavy_pm, wavy_connections, coarse
    ):
        # The key cross-check: wing-driven incremental splits produce
        # exactly the adjacency the DM connection lists encode.
        lod = wavy_pm.max_lod() * 0.05
        coarse.refine_to(lod)
        expected = set()
        for a in coarse.active:
            for b in wavy_connections[a]:
                if b in coarse.active:
                    expected.add((a, b) if a < b else (b, a))
        assert coarse.edges() == expected

    def test_triangles_match_dm_reconstruction(
        self, wavy_pm, wavy_connections, coarse
    ):
        from repro.core.reconstruct import mesh_triangles

        lod = wavy_pm.max_lod() * 0.1
        coarse.refine_to(lod)

        class _View:
            __slots__ = ("x", "y", "connections")

            def __init__(self, node, conn):
                self.x = node.x
                self.y = node.y
                self.connections = conn

        view = {
            i: _View(wavy_pm.node(i), wavy_connections[i])
            for i in coarse.active
        }
        assert coarse.triangles() == mesh_triangles(view)

    def test_refine_to_plane(self, wavy_pm, coarse):
        bounds = Rect(0, 0, 115, 115)
        plane = QueryPlane(
            bounds,
            wavy_pm.lod_percentile(0.4),
            wavy_pm.max_lod() * 0.9,
        )
        coarse.refine_to(plane)
        coarse.validate()
        # Every active node satisfies the refinement criterion: not
        # too coarse at its own position...
        for node_id in coarse.active:
            node = wavy_pm.node(node_id)
            if not node.is_leaf:
                assert node.e <= plane.required_lod(node.x, node.y)
        # ...and no collapsible sibling pair remains.
        for node_id in coarse.active:
            parent_id = wavy_pm.node(node_id).parent
            if parent_id == -1:
                continue
            parent = wavy_pm.node(parent_id)
            both = (
                parent.child1 in coarse.active
                and parent.child2 in coarse.active
            )
            if both:
                assert parent.e > plane.required_lod(parent.x, parent.y)

    def test_round_trip_refine(self, wavy_pm, coarse):
        # Fine -> coarse -> fine lands on the same cut each time.
        fine_lod = wavy_pm.max_lod() * 0.03
        coarse_lod = wavy_pm.max_lod() * 0.4
        coarse.refine_to(fine_lod)
        first = set(coarse.active)
        coarse.refine_to(coarse_lod)
        coarse.refine_to(fine_lod)
        assert coarse.active == first


class TestWingMode:
    """The database-faithful split mode: wings + geometry only."""

    def test_interior_two_wing_splits_exact(self, wavy_pm):
        # Splits whose both wings are active divide the fan exactly.
        mesh = DynamicMesh(wavy_pm)
        ref = DynamicMesh(wavy_pm)
        lod = wavy_pm.max_lod() * 0.1
        mesh.refine_to(lod, mode="wings")
        ref.refine_to(lod, mode="leaves")
        mesh.validate()
        # Same cut either way (forced splits only trigger when wings
        # are coarser than the cut, which the descending order avoids
        # for uniform targets).
        assert mesh.active == ref.active

    def test_high_agreement_with_exact_mode(self, wavy_pm):
        for fraction in (0.05, 0.0):
            lod = wavy_pm.max_lod() * fraction
            exact = DynamicMesh(wavy_pm)
            exact.refine_to(lod, mode="leaves")
            wings = DynamicMesh(wavy_pm)
            wings.refine_to(lod, mode="wings")
            wings.validate()
            ea = exact.edges()
            ew = wings.edges()
            agreement = len(ea & ew) / max(1, len(ea | ew))
            # Wings-only reconstruction is underdetermined at boundary
            # splits (the paper's record stores no face anchors), so
            # full-resolution agreement is high but not perfect.
            assert agreement >= 0.85, f"agreement {agreement} at {fraction}"

    def test_wing_meshes_are_valid(self, wavy_pm):
        mesh = DynamicMesh(wavy_pm)
        mesh.refine_to(wavy_pm.max_lod() * 0.02, mode="wings")
        mesh.validate()
        v = len(mesh.active)
        e = len(mesh.edges())
        if v >= 3:
            assert e <= 3 * v - 6
            assert e >= v - 1

    def test_unknown_mode_rejected(self, wavy_pm):
        mesh = DynamicMesh(wavy_pm)
        root = next(iter(mesh.active))
        with pytest.raises(MeshError):
            mesh.split(root, mode="telepathy")

    def test_forced_split_helper_terminates(self, wavy_pm):
        mesh = DynamicMesh(wavy_pm)
        # Force a deep leaf active from the coarsest state.
        mesh._force_active(0, guard=0)
        assert 0 in mesh.active
        mesh.validate()
