"""Delta sessions over the query engine: manager, frames, composition.

The tentpole property of ISSUE 7 is exercised throughout: decoding
every frame client-side yields a mesh node-id-identical to a fresh
query for the same view — including the delta-algebra hypothesis
property, which replays arbitrary update sequences.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.engine import CostGovernor, QueryEngine, UniformRequest
from repro.core.cache import SemanticCache
from repro.core.wire import ClientMesh
from repro.errors import SessionError, TransientIOError
from repro.geometry.primitives import Rect
from repro.obs.metrics import MetricsRegistry
from repro.storage import FaultInjector


@pytest.fixture(scope="module")
def engine(session_db):
    with QueryEngine(
        session_db["dm"], workers=2, registry=MetricsRegistry()
    ) as eng:
        yield eng


def roi_at(dataset, frac, cx_frac, cy_frac):
    bounds = dataset.bounds()
    side = frac * min(bounds.width, bounds.height)
    x0 = bounds.min_x + cx_frac * (bounds.width - side)
    y0 = bounds.min_y + cy_frac * (bounds.height - side)
    return Rect(x0, y0, x0 + side, y0 + side)


class TestSessionManager:
    def test_lazy_singleton_on_engine(self, engine):
        assert engine.sessions() is engine.sessions()

    def test_open_get_close(self, engine):
        manager = engine.sessions()
        session = manager.open(tenant="tenant-0")
        assert manager.get(session.session_id) is session
        assert session.session_id in manager.ids()
        n_before = len(manager)
        manager.close(session.session_id)
        assert len(manager) == n_before - 1
        with pytest.raises(SessionError):
            manager.get(session.session_id)
        with pytest.raises(SessionError):
            manager.close(session.session_id)

    def test_duplicate_id_rejected(self, engine):
        manager = engine.sessions()
        manager.open(session_id="dup")
        try:
            with pytest.raises(SessionError):
                manager.open(session_id="dup")
        finally:
            manager.close("dup")

    def test_active_gauge_tracks_sessions(self, engine):
        manager = engine.sessions()
        session = manager.open()
        assert engine.registry.gauge("session.active").value == len(manager)
        manager.close(session.session_id)
        assert engine.registry.gauge("session.active").value == len(manager)


class TestEngineSession:
    def test_frames_reconstruct_fresh_queries(
        self, engine, session_db, hills_dataset
    ):
        store = session_db["dm"]
        lod = hills_dataset.pm.average_lod()
        manager = engine.sessions()
        session = manager.open(tenant="tenant-1")
        client = ClientMesh()
        try:
            for step in range(5):
                roi = roi_at(hills_dataset, 0.35, 0.1 * step, 0.05 * step)
                result = session.update(UniformRequest(roi, lod))
                frame = client.apply(result.payload)
                assert frame.keyframe == (step == 0)
                fresh = store.uniform_query(roi, lod)
                assert client.active_ids == set(fresh.nodes)
                assert client.active_ids == session.active_ids
                assert 0.0 <= result.delta.churn <= 1.0
        finally:
            manager.close(session.session_id)

    def test_session_metrics_flow(self, engine, hills_dataset):
        manager = engine.sessions()
        session = manager.open()
        try:
            roi = roi_at(hills_dataset, 0.3, 0.5, 0.5)
            session.update(
                UniformRequest(roi, hills_dataset.pm.average_lod())
            )
            counters = engine.registry.counters()
            assert counters["session.updates"] >= 1
            assert counters["session.bytes_wire"] > 0
        finally:
            manager.close(session.session_id)

    def test_resync_recovers_a_lost_client(self, engine, hills_dataset):
        lod = hills_dataset.pm.average_lod()
        manager = engine.sessions()
        session = manager.open()
        try:
            session.update(
                UniformRequest(roi_at(hills_dataset, 0.3, 0.2, 0.2), lod)
            )
            session.update(
                UniformRequest(roi_at(hills_dataset, 0.3, 0.4, 0.4), lod)
            )
            # A client that joined late (or dropped frames) resyncs.
            late = ClientMesh()
            late.apply(session.resync())
            assert late.active_ids == session.active_ids
        finally:
            manager.close(session.session_id)

    def test_failed_update_leaves_session_untouched(
        self, session_db, hills_dataset
    ):
        store = session_db["dm"]
        db = store.database
        lod = hills_dataset.pm.average_lod()
        with QueryEngine(
            store, workers=2, retries=0, registry=MetricsRegistry()
        ) as eng:
            session = eng.sessions().open()
            session.update(
                UniformRequest(roi_at(hills_dataset, 0.3, 0.1, 0.1), lod)
            )
            active = session.active_ids
            seq = session.next_seq
            db.set_fault_injector(FaultInjector(error_rate=1.0, seed=5))
            try:
                db.flush()  # Force physical reads so faults fire.
                with pytest.raises(TransientIOError):
                    session.update(
                        UniformRequest(
                            roi_at(hills_dataset, 0.3, 0.8, 0.8), lod
                        )
                    )
            finally:
                db.set_fault_injector(None)
            assert session.active_ids == active
            assert session.next_seq == seq
            assert eng.registry.counters()["session.errors"] == 1
            # The stream continues cleanly after the fault clears.
            result = session.update(
                UniformRequest(roi_at(hills_dataset, 0.3, 0.2, 0.2), lod)
            )
            client = ClientMesh()
            client.apply(session.resync())
            assert client.active_ids == session.active_ids
            assert result.frame.seq == seq

    def test_degraded_answers_are_flagged_frames(
        self, session_db, hills_dataset
    ):
        store = session_db["dm"]
        governor = CostGovernor(store.cost_model, budget=0.5)
        with QueryEngine(
            store,
            workers=2,
            governor=governor,
            registry=MetricsRegistry(),
        ) as eng:
            session = eng.sessions().open(tenant="tenant-2")
            client = ClientMesh()
            result = session.update(
                UniformRequest(
                    roi_at(hills_dataset, 0.4, 0.5, 0.5),
                    hills_dataset.pm.average_lod(),
                )
            )
            assert result.outcome.degraded
            frame = client.apply(result.payload)
            assert frame.degraded
            assert client.active_ids == session.active_ids

    def test_cache_does_not_change_frames(self, session_db, hills_dataset):
        store = session_db["dm"]
        lod = hills_dataset.pm.average_lod()
        walk = [
            UniformRequest(roi_at(hills_dataset, 0.35, 0.1 * i, 0.1), lod)
            for i in range(4)
        ]
        meshes = []
        for cache in (None, SemanticCache(max_bytes=1 << 22)):
            with QueryEngine(
                store, workers=2, cache=cache, registry=MetricsRegistry()
            ) as eng:
                session = eng.sessions().open()
                client = ClientMesh()
                for request in walk:
                    client.apply(session.update(request).payload)
                meshes.append(client.active_ids)
        assert meshes[0] == meshes[1]


class TestDeltaAlgebra:
    """Replaying (added, removed) frames of any update sequence
    reconstructs exactly the fresh-query active set."""

    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        steps=st.lists(
            st.tuples(
                st.floats(0.15, 0.5),   # ROI side fraction
                st.floats(0.0, 1.0),    # x position
                st.floats(0.0, 1.0),    # y position
                st.floats(0.05, 0.9),   # LOD fraction
            ),
            min_size=1,
            max_size=6,
        )
    )
    def test_replay_reconstructs_fresh_query(
        self, engine, session_db, hills_dataset, steps
    ):
        store = session_db["dm"]
        manager = engine.sessions()
        session = manager.open()
        client = ClientMesh()
        try:
            for frac, cx, cy, lod_frac in steps:
                roi = roi_at(hills_dataset, frac, cx, cy)
                lod = lod_frac * hills_dataset.pm.max_lod()
                result = session.update(UniformRequest(roi, lod))
                client.apply(result.payload)
                assert 0.0 <= result.delta.churn <= 1.0
            fresh = store.uniform_query(roi, lod)
            assert client.active_ids == set(fresh.nodes)
            # The spliced records materialise a mesh without help.
            edges, _triangles = client.mesh()
            assert isinstance(edges, set)
        finally:
            manager.close(session.session_id)
