"""End-to-end storage integrity: checksummed pages, scrub, repair.

Covers the v2 page format (crc32 trailer, ``storage_meta.json`` flag,
v1 legacy compat), the pager's corruption and error paths, the
scrub/repair machinery behind ``python -m repro fsck``, the bounded
:class:`PageQuarantine`, and the fsck CLI's exit codes.
"""

import json
import os
import random
import struct
import threading

import pytest

from repro.cli import main as cli_main
from repro.core import DirectMeshStore
from repro.errors import PageCorruptionError, PageError, StorageError
from repro.obs.metrics import MetricsRegistry
from repro.storage import (
    CHECKSUM_SIZE,
    Database,
    DiskStats,
    HeapFile,
    PAGE_FORMAT_V1,
    PAGE_FORMAT_V2,
    PageQuarantine,
    Pager,
    archive_pages,
    inject_corruption,
    repair_database,
    scrub_database,
    seal_page,
    verify_page,
)
from repro.storage.database import STORAGE_META_FILENAME
from repro.storage.faults import CORRUPTION_KINDS
from repro.storage.integrity import (
    QUARANTINE_FILENAME,
    _RSTAR_META,
    _RSTAR_NODE_HEADER,
    load_quarantine,
)
from repro.storage.page import page_checksums
from repro.storage.wal import WAL_FILENAME


def _flip_byte(path, offset: int) -> None:
    """Corrupt one on-disk byte without going through the pager."""
    raw = bytearray(path.read_bytes())
    raw[offset] ^= 0xFF
    path.write_bytes(bytes(raw))


class TestPageSeal:
    def test_seal_verify_roundtrip(self):
        buf = bytearray(random.Random(1).randbytes(512))
        seal_page(buf)
        assert verify_page(buf)
        stored, computed = page_checksums(buf)
        assert stored == computed

    def test_mutation_is_detected(self):
        buf = bytearray(random.Random(2).randbytes(512))
        seal_page(buf)
        buf[100] ^= 0x01
        assert not verify_page(buf)

    def test_seal_is_idempotent(self):
        # The crc covers only payload bytes, so re-sealing a sealed
        # page is a no-op — WAL images can be sealed again on replay.
        buf = bytearray(random.Random(3).randbytes(512))
        seal_page(buf)
        once = bytes(buf)
        seal_page(buf)
        assert bytes(buf) == once

    def test_tiny_buffer_rejected(self):
        with pytest.raises(PageError):
            seal_page(bytearray(CHECKSUM_SIZE))


class TestFormatFlag:
    def test_new_database_defaults_to_v2(self, tmp_path):
        path = tmp_path / "db"
        with Database(path) as db:
            assert db.page_format == PAGE_FORMAT_V2
            assert db.checksums
            assert db.payload_size == db.page_size - CHECKSUM_SIZE
            hf = HeapFile(db.segment("t"))
            rid = hf.insert(b"sealed payload")
        meta = json.loads(
            (path / STORAGE_META_FILENAME).read_text(encoding="utf-8")
        )
        assert meta["page_format"] == PAGE_FORMAT_V2
        with Database(path) as db:
            assert db.page_format == PAGE_FORMAT_V2
            assert HeapFile(db.segment("t")).read(rid) == b"sealed payload"

    def test_legacy_directory_without_flag_is_v1(self, tmp_path):
        path = tmp_path / "db"
        with Database(path, page_format=PAGE_FORMAT_V1) as db:
            hf = HeapFile(db.segment("t"))
            rid = hf.insert(b"legacy payload")
        # Pre-flag databases have segment files but no metadata.
        (path / STORAGE_META_FILENAME).unlink()
        with Database(path) as db:
            assert db.page_format == PAGE_FORMAT_V1
            assert not db.checksums
            assert db.payload_size == db.page_size
            assert HeapFile(db.segment("t")).read(rid) == b"legacy payload"

    def test_legacy_cannot_be_opened_as_v2(self, tmp_path):
        path = tmp_path / "db"
        with Database(path, page_format=PAGE_FORMAT_V1) as db:
            db.segment("t").allocate()
        (path / STORAGE_META_FILENAME).unlink()
        with pytest.raises(StorageError):
            Database(path, page_format=PAGE_FORMAT_V2)

    def test_conflicting_format_request_rejected(self, tmp_path):
        path = tmp_path / "db"
        with Database(path):
            pass  # Writes the v2 flag.
        with pytest.raises(StorageError):
            Database(path, page_format=PAGE_FORMAT_V1)

    def test_page_size_mismatch_rejected(self, tmp_path):
        path = tmp_path / "db"
        with Database(path, page_size=8192):
            pass
        with pytest.raises(StorageError):
            Database(path, page_size=4096)

    def test_unknown_format_rejected(self, tmp_path):
        with pytest.raises(StorageError):
            Database(tmp_path / "db", page_format=3)


class TestCorruptReadPath:
    def test_on_disk_corruption_raises_with_context(self, tmp_path):
        path = tmp_path / "db"
        db = Database(path, pool_pages=8)
        hf = HeapFile(db.segment("t"))
        hf.insert(b"victim record")
        db.flush()
        _flip_byte(path / "t.seg", 64)
        with pytest.raises(PageCorruptionError) as excinfo:
            db.segment("t").fetch(0)
        context = excinfo.value.context
        assert context["segment"] == "t"
        assert context["page"] == 0
        assert context["expected"] != context["actual"]
        assert db.crc_failures == 1
        db.close()

    def test_corrupt_read_is_never_cached(self, tmp_path):
        path = tmp_path / "db"
        db = Database(path, pool_pages=8)
        hf = HeapFile(db.segment("t"))
        rid = hf.insert(b"survivor")
        db.flush()
        seg_file = path / "t.seg"
        pristine = seg_file.read_bytes()
        _flip_byte(seg_file, 64)
        with pytest.raises(PageCorruptionError):
            db.segment("t").fetch(0)
        # Undo the damage: the next fetch must re-read from disk (a
        # cached corrupt frame would still fail — or worse, serve rot).
        seg_file.write_bytes(pristine)
        assert HeapFile(db.segment("t")).read(rid) == b"survivor"
        db.close()

    def test_crc_failures_reach_the_metrics_registry(self, tmp_path):
        path = tmp_path / "db"
        db = Database(path, pool_pages=8)
        registry = MetricsRegistry()
        db.set_metrics_registry(registry)
        db.segment("t").allocate()
        db.flush()
        _flip_byte(path / "t.seg", 10)
        with pytest.raises(PageCorruptionError):
            db.segment("t").fetch(0)
        assert registry.counters()["storage.crc_failures"] == 1
        db.close()

    def test_v1_reads_are_not_verified(self, tmp_path):
        path = tmp_path / "db"
        db = Database(path, page_format=PAGE_FORMAT_V1, pool_pages=8)
        db.segment("t").allocate()
        db.flush()
        _flip_byte(path / "t.seg", 10)
        db.segment("t").fetch(0)  # v1 has no trailer to check.
        assert db.crc_failures == 0
        db.close()


class TestPagerErrorPaths:
    def test_init_failure_does_not_leak_fd(self, tmp_path):
        bad = tmp_path / "bad.seg"
        bad.write_bytes(b"x" * 100)  # Not a multiple of the page size.
        before = len(os.listdir("/proc/self/fd"))
        for _ in range(5):
            with pytest.raises(StorageError):
                Pager(bad, DiskStats(), page_size=512)
        assert len(os.listdir("/proc/self/fd")) == before

    def test_open_failure_is_wrapped(self, tmp_path):
        # Opening a directory as a segment file fails at os.open.
        with pytest.raises(StorageError) as excinfo:
            Pager(tmp_path, DiskStats(), page_size=512)
        assert excinfo.value.context["path"] == str(tmp_path)

    def test_io_errors_are_wrapped_with_context(self, tmp_path):
        pager = Pager(
            tmp_path / "s.seg", DiskStats(), name="s", page_size=512
        )
        page_no = pager.allocate()
        os.close(pager._fd)  # Rip the descriptor out from under it.
        try:
            for operation in (
                lambda: pager.read_page(page_no),
                lambda: pager.write_page(page_no, bytes(512)),
                lambda: pager.sync(),
            ):
                with pytest.raises(StorageError) as excinfo:
                    operation()
                assert not isinstance(excinfo.value, PageCorruptionError)
                assert excinfo.value.context["path"] == str(
                    tmp_path / "s.seg"
                )
        finally:
            pager._closed = True  # The fd is already gone.

    def test_short_read_detected(self, tmp_path):
        path = tmp_path / "s.seg"
        pager = Pager(path, DiskStats(), name="s", page_size=512)
        pager.allocate()
        pager.allocate()
        with open(path, "r+b") as handle:
            handle.truncate(512 + 100)
        with pytest.raises(StorageError, match="short read"):
            pager.read_page(1)
        pager.close()


class TestScrubRepair:
    @pytest.fixture
    def populated_db(self, tmp_path):
        path = tmp_path / "db"
        db = Database(path, pool_pages=16)
        hf = HeapFile(db.segment("t"))
        rows = {}
        for i in range(150):
            payload = f"row {i} ".encode() * 60
            rows[hf.insert(payload)] = payload
        db.flush()
        yield path, db, rows
        db.close()

    def test_clean_database_scrubs_ok(self, populated_db):
        path, db, _ = populated_db
        registry = MetricsRegistry()
        report = scrub_database(db, registry)
        assert report.ok
        assert report.corrupt_pages == 0
        total = sum(db.segment_pages(n) for n in db.segment_names())
        assert report.pages_scanned == total
        assert registry.counters()["fsck.pages_scanned"] == total

    def test_scrub_finds_exactly_the_injected_set(self, populated_db):
        path, db, _ = populated_db
        hits = inject_corruption(path, 4, seed=11)
        report = scrub_database(db)
        assert {(f.segment, f.page) for f in report.corrupt} == {
            (segment, page) for segment, page, _ in hits
        }
        assert not report.ok

    @pytest.mark.parametrize("kind", CORRUPTION_KINDS)
    def test_every_kind_is_detected(self, populated_db, kind):
        path, db, _ = populated_db
        hits = inject_corruption(path, 2, seed=3, kinds=(kind,))
        assert all(k == kind for _, _, k in hits)
        report = scrub_database(db)
        assert report.corrupt_pages == 2

    def test_archive_then_repair_restores_everything(self, populated_db):
        path, db, rows = populated_db
        archive_pages(db)
        assert (path / WAL_FILENAME).exists()
        inject_corruption(path, 5, seed=7)
        report = scrub_database(db)
        assert report.corrupt_pages == 5
        repair_database(db, report)
        assert report.ok
        assert report.repaired_pages == 5
        assert report.quarantined_pages == 0
        db.flush()
        hf = HeapFile(db.segment("t"))
        for rid, payload in rows.items():
            assert hf.read(rid) == payload
        assert scrub_database(db).ok

    def test_repair_without_wal_quarantines(self, populated_db):
        path, db, _ = populated_db
        inject_corruption(path, 3, seed=5)
        report = scrub_database(db)
        repair_database(db, report)
        assert not report.ok
        assert report.repaired_pages == 0
        assert report.quarantined_pages == 3
        assert (path / QUARANTINE_FILENAME).exists()
        assert set(load_quarantine(path)) == {
            (fault.segment, fault.page) for fault in report.corrupt
        }

    def test_injector_validation(self, populated_db):
        path, _, _ = populated_db
        with pytest.raises(StorageError):
            inject_corruption(path, 0)
        with pytest.raises(StorageError):
            inject_corruption(path, 10_000)
        with pytest.raises(StorageError):
            inject_corruption(path, 1, kinds=("bogus",))


class TestRepairRestoresQueries:
    def test_node_identical_results_after_repair(
        self, tmp_path, wavy_pm, wavy_connections
    ):
        db = Database(tmp_path / "db", pool_pages=64)
        store = DirectMeshStore.build(wavy_pm, db, wavy_connections)
        extent = store.rtree.data_space.rect
        reference = store.uniform_query(extent, 0.4 * store.max_lod)
        db.flush()
        archive_pages(db)
        inject_corruption(db.path, 4, seed=13)
        report = scrub_database(db)
        assert report.corrupt_pages == 4
        repair_database(db, report)
        assert report.ok
        db.flush()
        repaired = store.uniform_query(extent, 0.4 * store.max_lod)
        assert repaired.nodes == reference.nodes
        db.close()


class TestStructuralScrub:
    def test_invalid_interval_is_reported(
        self, tmp_path, wavy_pm, wavy_connections
    ):
        db = Database(tmp_path / "db", pool_pages=64)
        DirectMeshStore.build(wavy_pm, db, wavy_connections)
        db.flush()
        segment = db.segment("dm_rtree")
        meta = bytes(segment.read_raw(0))
        _, root, _height, _count, *_space = _RSTAR_META.unpack_from(meta, 0)
        # Invert the first root entry's interval: e_low > e_high.  The
        # page is re-sealed on write, so only the *structural* walk —
        # not the crc scan — can catch this.
        node = bytearray(segment.read_raw(root))
        entry = struct.Struct("<6dQ")
        values = list(
            entry.unpack_from(node, _RSTAR_NODE_HEADER.size)
        )
        values[2], values[5] = values[5] + 10.0, values[2]
        entry.pack_into(node, _RSTAR_NODE_HEADER.size, *values)
        segment.write_page_image(root, node)
        report = scrub_database(db)
        assert report.corrupt_pages == 0  # The crc is valid...
        assert not report.ok  # ...but the structure is not.
        assert any("e_low <= e_high" in p for p in report.structural)
        db.close()


class TestPageQuarantine:
    def test_bounded_fifo(self):
        quarantine = PageQuarantine(capacity=4)
        for page in range(6):
            assert quarantine.add("seg", page)
        assert len(quarantine) == 4
        assert ("seg", 0) not in quarantine  # Oldest fell off.
        assert ("seg", 5) in quarantine

    def test_duplicates_are_not_re_added(self):
        quarantine = PageQuarantine(capacity=4)
        assert quarantine.add("seg", 1)
        assert not quarantine.add("seg", 1)
        assert len(quarantine) == 1

    def test_snapshot_and_clear(self):
        quarantine = PageQuarantine(capacity=8)
        quarantine.add("a", 1)
        quarantine.add("b", 2)
        assert quarantine.snapshot() == [("a", 1), ("b", 2)]
        quarantine.clear()
        assert len(quarantine) == 0

    def test_capacity_validation(self):
        with pytest.raises(StorageError):
            PageQuarantine(capacity=0)

    def test_concurrent_adds_stay_bounded(self):
        quarantine = PageQuarantine(capacity=32)
        barrier = threading.Barrier(8)

        def hammer(ident: int) -> None:
            barrier.wait()
            for page in range(100):
                quarantine.add(f"seg{ident}", page)

        threads = [
            threading.Thread(target=hammer, args=(i,)) for i in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(quarantine) == 32


class TestFsckCli:
    @pytest.fixture
    def small_db(self, tmp_path):
        path = tmp_path / "db"
        with Database(path, pool_pages=16) as db:
            hf = HeapFile(db.segment("t"))
            for i in range(40):
                hf.insert(f"record {i} ".encode() * 30)
        return path

    def test_clean_database_exits_zero(self, small_db, capsys):
        assert cli_main(["fsck", str(small_db)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_missing_path_exits_one(self, tmp_path):
        assert cli_main(["fsck", str(tmp_path / "nope")]) == 1

    def test_drill_detects_then_repairs(self, small_db, capsys):
        assert cli_main(["fsck", str(small_db), "--archive"]) == 0
        capsys.readouterr()
        rc = cli_main(
            ["fsck", str(small_db), "--inject", "2", "--seed", "5", "--json"]
        )
        assert rc == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["corrupt_pages"] == 2
        assert not payload["ok"]
        assert cli_main(["fsck", str(small_db), "--repair"]) == 0
        assert cli_main(["fsck", str(small_db)]) == 0

    def test_kind_restricted_injection(self, small_db, capsys):
        rc = cli_main(
            [
                "fsck",
                str(small_db),
                "--inject",
                "1",
                "--kind",
                "zero",
                "--json",
            ]
        )
        assert rc == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["corrupt_pages"] == 1
