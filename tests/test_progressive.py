"""Tests for the PM tree structure, LOD normalisation, and cuts."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import MeshError
from repro.mesh.progressive import (
    LOD_INFINITY,
    NULL_ID,
    PMNode,
    ProgressiveMesh,
)


def make_manual_pm():
    """A tiny handmade forest:

        4 (e raw 1.0)      roots: 4, 5
       / \\
      0   1        5 (e raw 0.2 -- smaller than a child would force
     (leaves)     / \\            normalisation if it had deep children)
                 2   3
    """
    nodes = [
        PMNode(0, 0, 0, 0, 0.0, parent=4),
        PMNode(1, 1, 0, 0, 0.0, parent=4),
        PMNode(2, 0, 1, 0, 0.0, parent=5),
        PMNode(3, 1, 1, 0, 0.0, parent=5),
        PMNode(4, 0.5, 0, 0, 1.0, child1=0, child2=1),
        PMNode(5, 0.5, 1, 0, 0.2, child1=2, child2=3),
    ]
    edges = {(0, 1), (2, 3), (0, 2), (1, 3)}
    return ProgressiveMesh(nodes, 4, edges)


class TestNormalisation:
    def test_leaf_lod_zero(self):
        pm = make_manual_pm()
        pm.normalize_lod()
        for i in range(4):
            assert pm.node(i).e == 0.0

    def test_parent_dominates_children(self, wavy_pm):
        for node in wavy_pm.internal_nodes:
            assert node.e >= wavy_pm.node(node.child1).e
            assert node.e >= wavy_pm.node(node.child2).e
            assert node.e >= node.error  # max() includes the raw error.

    def test_root_interval_unbounded(self, wavy_pm):
        for root_id in wavy_pm.roots:
            assert wavy_pm.node(root_id).e_high == LOD_INFINITY

    def test_interval_chain(self, wavy_pm):
        for node in wavy_pm.nodes:
            if node.parent != NULL_ID:
                assert node.e_high == wavy_pm.node(node.parent).e

    def test_idempotent(self):
        pm = make_manual_pm()
        pm.normalize_lod()
        before = [(n.e, n.e_high) for n in pm.nodes]
        pm.normalize_lod()
        assert [(n.e, n.e_high) for n in pm.nodes] == before

    def test_requires_normalisation(self):
        pm = make_manual_pm()
        with pytest.raises(MeshError):
            pm.uniform_cut(0.5)
        with pytest.raises(MeshError):
            pm.max_lod()


class TestFootprints:
    def test_footprint_contains_descendants(self, wavy_pm):
        for node in wavy_pm.internal_nodes:
            fp = node.footprint
            assert fp is not None
            for desc in wavy_pm.descendants(node.id):
                assert fp.contains_point(desc.x, desc.y)

    def test_leaf_footprint_is_point(self, wavy_pm):
        leaf = wavy_pm.node(0)
        assert leaf.footprint is not None
        assert leaf.footprint.area == 0.0


class TestCuts:
    def test_cut_at_zero_matches_finest(self):
        pm = make_manual_pm()
        pm.normalize_lod()
        assert set(pm.uniform_cut(0.0)) == {0, 1, 2, 3}

    def test_cut_above_max_is_roots(self, wavy_pm):
        cut = set(wavy_pm.uniform_cut(wavy_pm.max_lod() + 1))
        assert cut == set(wavy_pm.roots)

    def test_manual_cut_midway(self):
        pm = make_manual_pm()
        pm.normalize_lod()
        # e(4) = 1.0, e(5) = 0.2; at 0.5 node 4 is still split (its
        # children show) while node 5 has collapsed.
        assert set(pm.uniform_cut(0.5)) == {0, 1, 5}

    @settings(max_examples=25, deadline=None)
    @given(st.floats(0, 1, allow_nan=False))
    def test_cut_always_partitions(self, wavy_pm, fraction):
        lod = wavy_pm.max_lod() * fraction
        cut = wavy_pm.uniform_cut(lod)
        assert wavy_pm.cut_is_partition(cut)

    def test_cut_monotone_in_lod(self, wavy_pm):
        sizes = [
            len(wavy_pm.uniform_cut(wavy_pm.max_lod() * f))
            for f in (0.0, 0.1, 0.3, 0.7, 1.1)
        ]
        assert sizes == sorted(sizes, reverse=True)


class TestNavigation:
    def test_ancestors(self, wavy_pm):
        leaf = wavy_pm.node(0)
        chain = list(wavy_pm.ancestors(0))
        assert chain[0].id == leaf.parent
        assert chain[-1].parent == NULL_ID
        for a, b in zip(chain, chain[1:]):
            assert a.parent == b.id

    def test_depth(self, wavy_pm):
        assert wavy_pm.depth(wavy_pm.roots[0]) == 0
        assert wavy_pm.depth(0) == len(list(wavy_pm.ancestors(0)))

    def test_descendants_count(self):
        pm = make_manual_pm()
        assert {d.id for d in pm.descendants(4)} == {0, 1}

    def test_statistics(self, wavy_pm):
        assert 0 < wavy_pm.average_lod() < wavy_pm.max_lod()
        p10 = wavy_pm.lod_percentile(0.1)
        p90 = wavy_pm.lod_percentile(0.9)
        assert p10 <= p90 <= wavy_pm.max_lod()


class TestValidate:
    def test_catches_bad_positional_id(self):
        pm = make_manual_pm()
        pm.nodes[2].id = 99
        with pytest.raises(MeshError):
            pm.validate()

    def test_catches_child_after_parent(self):
        nodes = [
            PMNode(0, 0, 0, 0, 0.0, parent=2),
            PMNode(1, 1, 0, 0, 0.0, parent=2),
            PMNode(2, 0, 0, 0, 1.0, child1=0, child2=1),
        ]
        pm = ProgressiveMesh(nodes, 2, set())
        pm.validate()  # Fine.
        nodes[2].child1 = 2  # Self-reference.
        with pytest.raises(MeshError):
            pm.validate()

    def test_catches_broken_backlink(self):
        pm = make_manual_pm()
        pm.nodes[0].parent = 5  # Node 5 does not list 0 as a child.
        with pytest.raises(MeshError):
            pm.validate()
