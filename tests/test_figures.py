"""Tests for the per-figure experiment definitions (bench harness)."""

import pytest

from repro.bench.cache import ExperimentEnv
from repro.bench.figures import (
    connection_table,
    storage_overhead_table,
    uniform_varying_lod,
    uniform_varying_roi,
    viewdep_varying_angle,
    viewdep_varying_lod,
    viewdep_varying_roi,
)
from repro.bench.workload import Workload


@pytest.fixture
def env(session_db, hills_dataset):
    return ExperimentEnv(
        dataset=hills_dataset,
        database=session_db["db"],
        dm=session_db["dm"],
        pm_store=session_db["pm"],
        hdov=session_db["hdov"],
    )


@pytest.fixture
def workload(hills_dataset):
    return Workload(hills_dataset, n_locations=2, seed=7)


class TestUniformFigures:
    def test_varying_roi_structure(self, env, workload):
        table = uniform_varying_roi(env, workload, [0.05, 0.15], "t_roi")
        assert table.x_values() == [5.0, 15.0]
        assert set(table.columns) == {"DM", "PM", "HDoV"}
        for _, row in table.rows:
            assert all(v > 0 for v in row.values())
        assert "locations" in {k for k in table.meta}

    def test_varying_lod_structure(self, env, workload):
        table = uniform_varying_lod(
            env, workload, 0.2, "t_lod", lod_sweep=[0.02, 0.3]
        )
        assert table.x_values() == [2.0, 30.0]
        # Coarser LOD cannot cost more for DM.
        assert table.rows[1][1]["DM"] <= table.rows[0][1]["DM"] * 1.5


class TestViewdepFigures:
    def test_varying_roi(self, env, workload):
        table = viewdep_varying_roi(env, workload, [0.1], "t_vroi")
        row = table.rows[0][1]
        assert set(row) == {"DM-SB", "DM-MB", "PM", "HDoV"}
        assert row["DM-MB"] <= row["DM-SB"] * 1.05

    def test_varying_lod(self, env, workload):
        table = viewdep_varying_lod(
            env, workload, 0.15, "t_vlod", emin_sweep=[0.05]
        )
        assert len(table.rows) == 1

    def test_varying_angle(self, env, workload):
        table = viewdep_varying_angle(
            env, workload, 0.15, "t_vang", angle_sweep=[0.2, 0.8]
        )
        assert len(table.rows) == 2


class TestTables:
    def test_connection_table(self, hills_dataset):
        table = connection_table([hills_dataset])
        x, row = table.rows[0]
        assert x == hills_dataset.n_points
        assert row["avg_similar"] > 0
        assert row["avg_total"] >= row["avg_similar"]

    def test_storage_overhead(self, env):
        table = storage_overhead_table(env)
        _, row = table.rows[0]
        assert row["PM"] == 96
        assert row["DM"] > row["PM"]  # Connection lists cost something.
        assert row["DM"] < row["PM"] * 2.5
