"""Tests for the pager, buffer pool, and disk statistics."""

import pytest

from repro.errors import BufferPoolError, StorageError
from repro.storage.buffer import BufferPool
from repro.storage.pager import Pager
from repro.storage.stats import DiskStats


@pytest.fixture
def stats():
    return DiskStats()


@pytest.fixture
def pager(tmp_path, stats):
    p = Pager(tmp_path / "seg.dat", stats, name="seg", page_size=512)
    yield p
    p.close()


class TestPager:
    def test_allocate_and_rw(self, pager, stats):
        page_no = pager.allocate()
        assert page_no == 0
        data = bytearray(b"\xab" * 512)
        pager.write_page(page_no, data)
        assert pager.read_page(page_no) == data
        assert stats.physical_reads == 1
        assert stats.physical_writes == 2  # Allocation zero-fill + write.

    def test_out_of_range(self, pager):
        with pytest.raises(StorageError):
            pager.read_page(0)
        pager.allocate()
        with pytest.raises(StorageError):
            pager.read_page(1)

    def test_wrong_size_write(self, pager):
        pager.allocate()
        with pytest.raises(StorageError):
            pager.write_page(0, b"short")

    def test_persistence_across_reopen(self, tmp_path, stats):
        path = tmp_path / "p.dat"
        p1 = Pager(path, stats, page_size=256)
        p1.allocate()
        p1.write_page(0, b"\x11" * 256)
        p1.close()
        p2 = Pager(path, stats, page_size=256)
        assert p2.n_pages == 1
        assert p2.read_page(0) == b"\x11" * 256
        p2.close()

    def test_closed_pager_raises(self, tmp_path, stats):
        p = Pager(tmp_path / "c.dat", stats, page_size=256)
        p.close()
        with pytest.raises(StorageError):
            p.allocate()

    def test_bad_file_size(self, tmp_path, stats):
        path = tmp_path / "bad.dat"
        path.write_bytes(b"x" * 100)  # Not a multiple of the page size.
        with pytest.raises(StorageError):
            Pager(path, stats, page_size=256)


class TestBufferPool:
    def test_miss_then_hit(self, pager, stats):
        pool = BufferPool(stats, capacity=4)
        page_no = pager.allocate()
        pager.write_page(page_no, b"\x01" * 512)
        stats.reset()
        pool.fetch(pager, page_no)
        assert stats.physical_reads == 1
        pool.fetch(pager, page_no)
        assert stats.physical_reads == 1  # Hit.
        assert stats.logical_reads == 2

    def test_eviction_writes_dirty(self, pager, stats):
        pool = BufferPool(stats, capacity=2)
        pages = [pager.allocate() for _ in range(3)]
        buf = pool.fetch(pager, pages[0])
        buf[0] = 0x77
        pool.mark_dirty(pager, pages[0])
        pool.fetch(pager, pages[1])
        pool.fetch(pager, pages[2])  # Evicts page 0, writing it back.
        assert pager.read_page(pages[0])[0] == 0x77

    def test_flush_makes_cold(self, pager, stats):
        pool = BufferPool(stats, capacity=8)
        page_no = pager.allocate()
        pool.fetch(pager, page_no)
        pool.flush()
        stats.reset()
        pool.fetch(pager, page_no)
        assert stats.physical_reads == 1

    def test_flush_dirty_keeps_warm(self, pager, stats):
        pool = BufferPool(stats, capacity=8)
        page_no = pager.allocate()
        buf = pool.fetch(pager, page_no)
        buf[1] = 0x42
        pool.mark_dirty(pager, page_no)
        pool.flush_dirty()
        assert pager.read_page(page_no)[1] == 0x42
        stats.reset()
        pool.fetch(pager, page_no)
        assert stats.physical_reads == 0  # Still resident.

    def test_mark_dirty_nonresident_raises(self, pager, stats):
        pool = BufferPool(stats, capacity=2)
        pager.allocate()
        with pytest.raises(BufferPoolError):
            pool.mark_dirty(pager, 0)

    def test_resize_shrinks(self, pager, stats):
        pool = BufferPool(stats, capacity=8)
        for _ in range(6):
            pool.fetch(pager, pager.allocate())
        pool.resize(2)
        assert pool.resident_pages() <= 2

    def test_invalid_capacity(self, stats):
        with pytest.raises(BufferPoolError):
            BufferPool(stats, capacity=0)

    def test_lru_order(self, pager, stats):
        pool = BufferPool(stats, capacity=2)
        p0, p1, p2 = (pager.allocate() for _ in range(3))
        pool.fetch(pager, p0)
        pool.fetch(pager, p1)
        pool.fetch(pager, p0)  # p0 most recent; p1 is LRU.
        pool.fetch(pager, p2)  # Evicts p1.
        stats.reset()
        pool.fetch(pager, p0)
        assert stats.physical_reads == 0
        pool.fetch(pager, p1)
        assert stats.physical_reads == 1


class TestStats:
    def test_snapshot_delta(self, stats):
        stats.record_physical_read("a", 3)
        before = stats.snapshot()
        stats.record_physical_read("a", 2)
        stats.record_logical_read("b")
        delta = stats.snapshot().delta(before)
        assert delta.physical_reads == 2
        assert delta.logical_reads == 1
        assert delta.by_segment["a"]["physical_reads"] == 2
        assert "b" in delta.by_segment

    def test_measure_context(self, stats):
        with stats.measure() as m:
            stats.record_physical_read("x")
        assert m.result is not None
        assert m.result.disk_accesses == 1

    def test_report_format(self, stats):
        stats.record_physical_read("tbl", 5)
        report = stats.snapshot().report()
        assert "physical reads : 5" in report
        assert "tbl" in report

    def test_reset(self, stats):
        stats.record_physical_write("x")
        stats.reset()
        assert stats.physical_writes == 0
        assert stats.snapshot().by_segment == {}
