"""Tests for the store integrity checker."""

import pytest

from repro.core.verify_store import verify_store
from repro.errors import StorageError


class TestHealthyStore:
    def test_clean_report(self, session_db):
        report = verify_store(session_db["dm"])
        assert report.ok, report.to_text()
        assert report.stats["heap_records"] > 0
        assert (
            report.stats["heap_records"]
            == report.stats["index_entries"]
            == report.stats["btree_entries"]
        )
        assert "OK" in report.to_text()

    def test_raise_on_error_noop_when_clean(self, session_db):
        verify_store(session_db["dm"], raise_on_error=True)


class TestCorruptions:
    @pytest.fixture
    def small_store(self, tmp_path, wavy_pm, wavy_connections):
        from repro.core.direct_mesh import DirectMeshStore
        from repro.storage.database import Database

        db = Database(tmp_path / "db", pool_pages=256)
        store = DirectMeshStore.build(wavy_pm, db, wavy_connections)
        yield store
        db.close()

    def test_detects_dangling_index_entry(self, small_store):
        from repro.geometry.primitives import Box3

        small_store.rtree.insert(
            Box3.vertical_segment(1, 1, 0, 1), 999_999_999
        )
        report = verify_store(small_store)
        assert not report.ok
        assert any("dangling" in p for p in report.problems)

    def test_detects_missing_index_entry(self, small_store):
        # Delete one index entry but keep the heap record.
        box, rid = next(iter(small_store.rtree.all_entries()))
        assert small_store.rtree.delete(box, rid)
        report = verify_store(small_store)
        assert not report.ok
        assert any("missing from the index" in p for p in report.problems)

    def test_detects_btree_mismatch(self, small_store):
        small_store.btree.insert(0, 123456789)  # Wrong RID for node 0.
        report = verify_store(small_store)
        assert not report.ok
        assert any("rid mismatch" in p for p in report.problems)

    def test_detects_corrupt_record(self, small_store):
        # Overwrite one record's payload in place with garbage.
        from repro.storage.heapfile import unpack_rid
        from repro.storage.page import SlottedPage

        rid, _ = next(small_store.heap.scan())
        page_no, slot = unpack_rid(rid)
        buf = small_store.heap.segment.fetch(page_no)
        # The slotted layout ends at payload_size; under the v2 page
        # format the bytes beyond it are the crc trailer.
        page = SlottedPage(buf, small_store.heap.segment.payload_size)
        offset, length = page._slot(slot)
        buf[offset : offset + min(8, length)] = b"\xff" * min(8, length)
        small_store.heap.segment.mark_dirty(page_no)
        report = verify_store(small_store)
        assert not report.ok

    def test_raise_on_error(self, small_store):
        small_store.btree.insert(10**9, 1)  # Unknown id.
        with pytest.raises(StorageError):
            verify_store(small_store, raise_on_error=True)
        report = verify_store(small_store)
        assert any("unknown id" in p for p in report.problems)

    def test_report_truncates_long_problem_lists(self):
        from repro.core.verify_store import StoreReport

        report = StoreReport(problems=[f"p{i}" for i in range(80)])
        text = report.to_text()
        assert "and 30 more" in text
