"""Tests for the Bowyer-Watson Delaunay triangulator."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import TriangulationError
from repro.geometry.predicates import incircle, orient2d
from repro.geometry.triangulation import delaunay


def assert_delaunay(tri, sample_limit=300):
    """Empty-circumcircle property over (a sample of) all triangles."""
    pts = tri.points
    n = len(pts)
    rng = random.Random(0)
    tris = tri.triangles
    if len(tris) > sample_limit:
        tris = rng.sample(tris, sample_limit)
    for a, b, c in tris:
        others = range(n) if n <= 40 else rng.sample(range(n), 40)
        for d in others:
            if d in (a, b, c):
                continue
            assert (
                incircle(*pts[a], *pts[b], *pts[c], *pts[d]) <= 0
            ), f"point {d} inside circumcircle of ({a}, {b}, {c})"


def assert_all_ccw(tri):
    for a, b, c in tri.triangles:
        assert orient2d(*tri.points[a], *tri.points[b], *tri.points[c]) > 0


class TestBasics:
    def test_single_triangle(self):
        tri = delaunay([(0, 0), (1, 0), (0, 1)])
        assert len(tri.triangles) == 1
        assert_all_ccw(tri)

    def test_square_two_triangles(self):
        tri = delaunay([(0, 0), (1, 0), (1, 1), (0, 1)])
        assert len(tri.triangles) == 2
        assert tri.edges() >= {(0, 1), (1, 2), (2, 3), (0, 3)}

    def test_too_few_points(self):
        with pytest.raises(TriangulationError):
            delaunay([(0, 0), (1, 1)])

    def test_all_collinear(self):
        with pytest.raises(TriangulationError):
            delaunay([(0, 0), (1, 1), (2, 2), (3, 3)])

    def test_duplicates_merged(self):
        tri = delaunay([(0, 0), (1, 0), (0, 1), (0, 0), (1, 0)])
        assert len(tri.points) == 3
        assert tri.index_map == [0, 1, 2, 0, 1]

    def test_duplicates_only_too_few(self):
        with pytest.raises(TriangulationError):
            delaunay([(0, 0), (0, 0), (1, 1), (1, 1)])


class TestRandom:
    def test_random_points_delaunay(self):
        rng = random.Random(42)
        pts = [(rng.uniform(0, 100), rng.uniform(0, 100)) for _ in range(400)]
        tri = delaunay(pts)
        assert_all_ccw(tri)
        assert_delaunay(tri)

    def test_euler_relation(self):
        # For a triangulated convex region: T = 2n - 2 - h, E = 3n - 3 - h
        # with h hull vertices; check the implied identity
        # E = (3T + h) / 2 ... simpler: 2E = 3T + h.
        rng = random.Random(7)
        pts = [(rng.uniform(0, 10), rng.uniform(0, 10)) for _ in range(200)]
        tri = delaunay(pts)
        n = len(tri.points)
        t = len(tri.triangles)
        e = len(tri.edges())
        # Euler: n - e + (t + 1) = 2.
        assert n - e + t + 1 == 2

    def test_clustered_points(self):
        rng = random.Random(1)
        pts = []
        for cx, cy in [(0, 0), (50, 50), (0, 50)]:
            pts += [
                (cx + rng.gauss(0, 1), cy + rng.gauss(0, 1))
                for _ in range(60)
            ]
        tri = delaunay(pts)
        assert_all_ccw(tri)
        assert_delaunay(tri)


class TestDegenerate:
    def test_regular_grid(self):
        pts = [(float(i), float(j)) for i in range(12) for j in range(12)]
        tri = delaunay(pts)
        assert len(tri.triangles) == 2 * 11 * 11
        assert_all_ccw(tri)

    def test_grid_with_diagonal_line(self):
        pts = [(float(i), float(j)) for i in range(6) for j in range(6)]
        pts += [(i + 0.5, i + 0.5) for i in range(5)]
        tri = delaunay(pts)
        assert_all_ccw(tri)
        assert_delaunay(tri)

    def test_cocircular_ring(self):
        import math

        pts = [
            (math.cos(2 * math.pi * k / 12), math.sin(2 * math.pi * k / 12))
            for k in range(12)
        ]
        pts.append((0.0, 0.0))
        tri = delaunay(pts)
        assert_all_ccw(tri)
        # Fan around the centre: all 12 rim points triangulated.
        assert len(tri.triangles) == 12

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(0, 12).map(float), st.integers(0, 12).map(float)
            ),
            min_size=3,
            max_size=40,
            unique=True,
        )
    )
    def test_integer_lattice_inputs(self, pts):
        # Heavily degenerate inputs: many collinear/cocircular subsets.
        xs = {p[0] for p in pts}
        ys = {p[1] for p in pts}
        distinct_dirs = len(xs) > 1 and len(ys) > 1
        try:
            tri = delaunay(pts)
        except TriangulationError:
            # Legal only when all points are collinear.
            collinear_x = len(xs) == 1
            collinear_y = len(ys) == 1
            diag = _all_collinear(pts)
            assert collinear_x or collinear_y or diag or not distinct_dirs
            return
        assert_all_ccw(tri)
        assert_delaunay(tri)


def _all_collinear(pts):
    if len(pts) < 3:
        return True
    (ax, ay), (bx, by) = pts[0], pts[1]
    for cx, cy in pts[2:]:
        if orient2d(ax, ay, bx, by, cx, cy) != 0:
            return False
    return True
