"""The nightly bench gate: run matching, thresholds, exemptions."""

from __future__ import annotations

import json

import pytest

from repro.bench.compare import (
    CLUSTER_REPORT_SCHEMA,
    cluster_run_key,
    compare_files,
    compare_reports,
    extract_cluster_runs,
    extract_session_runs,
    extract_slo_runs,
    run_key,
    session_run_key,
    validate_cluster_report,
)
from repro.errors import QueryError


def make_run(
    mode="zipf",
    admission=True,
    p99_ms=20.0,
    rate_multiple=2.0,
) -> dict:
    report = {
        "schema": "repro.bench.slo/v1",
        "mode": mode,
        "seed": 0,
        "offered_rate": 500.0,
        "requests": 400,
        "slo_ms": 50.0,
        "tenants": 4,
        "admission": admission,
        "wall_s": 1.0,
        "achieved_rate": 400.0,
        "latency_ms": {
            "p50": p99_ms / 4,
            "p95": p99_ms / 2,
            "p99": p99_ms,
            "p999": p99_ms * 1.5,
            "max": p99_ms * 2,
        },
        "goodput_qps": 300.0,
        "degraded_goodput_qps": 50.0,
        "goodput_slo_fraction": 0.75,
        "counts": {
            "ok": 400,
            "errors": 0,
            "degraded": 60,
            "shed": 20,
            "admitted": 320,
            "overload_degraded": 40,
            "throttled": 0,
        },
        "max_queue_depth": 12,
        "dispatch_lag_ms": 0.5,
    }
    if rate_multiple is not None:
        report["rate_multiple"] = rate_multiple
    return report


def make_session_run(
    transport="delta",
    step_frac=0.05,
    p99_ms=5.0,
) -> dict:
    return {
        "schema": "repro.bench.session/v1",
        "mode": "flightpath",
        "transport": transport,
        "seed": 0,
        "requests": 200,
        "sessions": 4,
        "tenants": 4,
        "roi_frac": 0.35,
        "step_frac": step_frac,
        "lod_breathe": 0.05,
        "wall_s": 1.0,
        "latency_ms": {
            "p50": p99_ms / 4,
            "p95": p99_ms / 2,
            "p99": p99_ms,
            "p999": p99_ms * 1.5,
            "max": p99_ms * 2,
        },
        "bytes_wire": 10_000,
        "bytes_per_frame": 50.0,
        "n_degraded": 0,
        "n_keyframes": 4,
        "churn_mean": 0.1,
    }


def make_cluster_run(
    workload="uniform",
    path="clustered",
    p99_ms=30.0,
) -> dict:
    return {
        "schema": CLUSTER_REPORT_SCHEMA,
        "workload": workload,
        "path": path,
        "qps": 1000.0,
        "requests": 144,
        "wall_s": 0.15,
        "workers": 4,
        "latency_ms": {
            "p50": p99_ms / 10,
            "p95": p99_ms / 2,
            "p99": p99_ms,
        },
    }


class TestExtract:
    def test_accepts_merged_bench_layout(self):
        payload = {"bench": 6, "slo_openloop": {"runs": [make_run()]}}
        assert len(extract_slo_runs(payload)) == 1

    def test_accepts_bare_runs_and_single_report(self):
        assert len(extract_slo_runs({"runs": [make_run()] * 2})) == 2
        assert len(extract_slo_runs(make_run())) == 1

    def test_rejects_invalid_run(self):
        bad = make_run()
        del bad["latency_ms"]["p99"]
        with pytest.raises(QueryError):
            extract_slo_runs({"runs": [bad]})

    def test_rejects_run_free_payload(self):
        with pytest.raises(QueryError):
            extract_slo_runs(42)

    def test_session_merged_layout_and_schema(self):
        payload = {
            "bench": 7,
            "session_delta": {"runs": [make_session_run()]},
        }
        assert len(extract_session_runs(payload)) == 1
        bad = make_session_run()
        del bad["bytes_wire"]
        with pytest.raises(QueryError):
            extract_session_runs({"runs": [bad]})

    def test_cluster_merged_layout_and_schema(self):
        payload = {
            "bench": 8,
            "cluster_fastpath": {"runs": [make_cluster_run()]},
        }
        assert len(extract_cluster_runs(payload)) == 1
        assert validate_cluster_report(make_cluster_run()) == []
        bad = make_cluster_run()
        bad["path"] = "warp-speed"
        assert validate_cluster_report(bad)
        with pytest.raises(QueryError):
            extract_cluster_runs({"runs": [bad]})
        truncated = make_cluster_run()
        del truncated["latency_ms"]["p99"]
        with pytest.raises(QueryError):
            extract_cluster_runs({"runs": [truncated]})


class TestRunKey:
    def test_distinguishes_mode_rate_and_admission(self):
        keys = {
            run_key(make_run(mode="zipf")),
            run_key(make_run(mode="flightpath")),
            run_key(make_run(admission=False)),
            run_key(make_run(rate_multiple=4.0)),
            run_key(make_run(rate_multiple=None)),
        }
        assert len(keys) == 5

    def test_stable_across_measurement_noise(self):
        assert run_key(make_run(p99_ms=10)) == run_key(make_run(p99_ms=99))

    def test_session_key_distinguishes_step_and_transport(self):
        keys = {
            session_run_key(make_session_run()),
            session_run_key(make_session_run(transport="naive")),
            session_run_key(make_session_run(step_frac=0.3)),
        }
        assert len(keys) == 3
        assert session_run_key(make_session_run()) == session_run_key(
            make_session_run(p99_ms=99)
        )

    def test_cluster_key_distinguishes_workload_and_path(self):
        keys = {
            cluster_run_key(make_cluster_run()),
            cluster_run_key(make_cluster_run(path="per-node")),
            cluster_run_key(make_cluster_run(workload="viewdep")),
        }
        assert len(keys) == 3
        assert cluster_run_key(make_cluster_run()) == cluster_run_key(
            make_cluster_run(p99_ms=99)
        )


class TestGate:
    def test_within_threshold_passes(self):
        baseline = [make_run(p99_ms=20.0)]
        candidate = [make_run(p99_ms=24.0)]
        result = compare_reports(baseline, candidate, 0.25)
        assert result.ok
        assert "PASS" in result.to_text()

    def test_beyond_threshold_fails(self):
        baseline = [make_run(p99_ms=20.0)]
        candidate = [make_run(p99_ms=26.0)]
        result = compare_reports(baseline, candidate, 0.25)
        assert not result.ok
        assert "FAIL" in result.to_text()
        assert result.rows[0].ratio == pytest.approx(1.3)

    def test_no_admission_runs_are_exempt(self):
        baseline = [make_run(admission=False, p99_ms=20.0)]
        candidate = [make_run(admission=False, p99_ms=500.0)]
        assert compare_reports(baseline, candidate, 0.25).ok

    def test_new_cell_without_baseline_passes(self):
        baseline = [make_run(mode="zipf")]
        candidate = [make_run(mode="zipf"), make_run(mode="flightpath")]
        result = compare_reports(baseline, candidate, 0.25)
        assert result.ok
        new_row = [r for r in result.rows if r.baseline_p99_ms is None]
        assert len(new_row) == 1
        assert "NEW" in result.to_text()

    def test_sub_millisecond_noise_is_ignored(self):
        baseline = [make_run(p99_ms=0.2)]
        candidate = [make_run(p99_ms=0.9)]  # 4.5x but under the floor
        assert compare_reports(baseline, candidate, 0.25).ok

    def test_rejects_bad_threshold(self):
        with pytest.raises(QueryError):
            compare_reports([], [], max_p99_regression=0.0)


class TestSessionGate:
    def write(self, path, runs):
        path.write_text(
            json.dumps({"bench": 7, "session_delta": {"runs": runs}})
        )

    def test_delta_regression_fails(self, tmp_path):
        base, cand = tmp_path / "base.json", tmp_path / "cand.json"
        self.write(base, [make_session_run(p99_ms=5.0)])
        self.write(cand, [make_session_run(p99_ms=10.0)])
        result = compare_files(base, cand)
        assert not result.ok

    def test_naive_arm_is_exempt(self, tmp_path):
        base, cand = tmp_path / "base.json", tmp_path / "cand.json"
        self.write(base, [make_session_run("naive", p99_ms=5.0)])
        self.write(cand, [make_session_run("naive", p99_ms=500.0)])
        assert compare_files(base, cand).ok

    def test_mixed_sections_gate_together(self, tmp_path):
        base, cand = tmp_path / "base.json", tmp_path / "cand.json"
        payload = {
            "bench": 7,
            "slo_openloop": {"runs": [make_run(p99_ms=20.0)]},
            "session_delta": {"runs": [make_session_run(p99_ms=5.0)]},
        }
        base.write_text(json.dumps(payload))
        cand.write_text(json.dumps(payload))
        result = compare_files(base, cand)
        assert result.ok
        assert len(result.rows) == 2


class TestClusterGate:
    def write(self, path, runs):
        path.write_text(
            json.dumps({"bench": 8, "cluster_fastpath": {"runs": runs}})
        )

    def test_clustered_regression_fails(self, tmp_path):
        base, cand = tmp_path / "base.json", tmp_path / "cand.json"
        self.write(base, [make_cluster_run(p99_ms=30.0)])
        self.write(cand, [make_cluster_run(p99_ms=60.0)])
        assert not compare_files(base, cand).ok

    def test_per_node_arm_is_exempt(self, tmp_path):
        base, cand = tmp_path / "base.json", tmp_path / "cand.json"
        self.write(base, [make_cluster_run(path="per-node", p99_ms=30.0)])
        self.write(cand, [make_cluster_run(path="per-node", p99_ms=900.0)])
        assert compare_files(base, cand).ok

    def test_all_three_sections_gate_together(self, tmp_path):
        base, cand = tmp_path / "base.json", tmp_path / "cand.json"
        payload = {
            "bench": 8,
            "slo_openloop": {"runs": [make_run(p99_ms=20.0)]},
            "session_delta": {"runs": [make_session_run(p99_ms=5.0)]},
            "cluster_fastpath": {"runs": [make_cluster_run(p99_ms=30.0)]},
        }
        base.write_text(json.dumps(payload))
        cand.write_text(json.dumps(payload))
        result = compare_files(base, cand)
        assert result.ok
        assert len(result.rows) == 3


class TestFilesAndScript:
    def write(self, path, runs):
        path.write_text(
            json.dumps({"bench": 6, "slo_openloop": {"runs": runs}})
        )

    def test_compare_files_round_trip(self, tmp_path):
        base, cand = tmp_path / "base.json", tmp_path / "cand.json"
        self.write(base, [make_run(p99_ms=20.0)])
        self.write(cand, [make_run(p99_ms=21.0)])
        assert compare_files(base, cand).ok

    def test_script_exit_codes(self, tmp_path):
        import subprocess
        import sys
        from pathlib import Path

        script = (
            Path(__file__).resolve().parent.parent
            / "scripts"
            / "bench_compare.py"
        )
        base, cand = tmp_path / "base.json", tmp_path / "cand.json"
        self.write(base, [make_run(p99_ms=20.0)])
        self.write(cand, [make_run(p99_ms=60.0)])
        failing = subprocess.run(
            [sys.executable, str(script), str(base), str(cand)],
            capture_output=True,
            text=True,
        )
        assert failing.returncode == 1, failing.stdout + failing.stderr
        passing = subprocess.run(
            [sys.executable, str(script), str(base), str(base)],
            capture_output=True,
            text=True,
        )
        assert passing.returncode == 0, passing.stdout + passing.stderr
        missing = subprocess.run(
            [sys.executable, str(script), str(base), str(tmp_path / "x")],
            capture_output=True,
            text=True,
        )
        assert missing.returncode == 2
