"""Tests for the benchmark environment cache."""

import pytest

from repro.bench.cache import SCHEMA_VERSION, _hdov_grid_for, load_environment


@pytest.fixture
def cache_dir(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    return tmp_path


class TestGridSizing:
    def test_small_dataset_small_grid(self):
        assert _hdov_grid_for(2_000) == 2
        assert _hdov_grid_for(20_000) == 4
        assert _hdov_grid_for(60_000) == 8

    def test_grid_capped(self):
        assert _hdov_grid_for(10**9) == 64


class TestLoadEnvironment:
    def test_build_then_reload(self, cache_dir):
        env = load_environment("foothills", 600)
        try:
            key = f"foothills-600-v{SCHEMA_VERSION}"
            assert (cache_dir / key / "COMPLETE").exists()
            assert (cache_dir / key / "dataset.pickle").exists()
            n_nodes = len(env.dataset.pm.nodes)
            roi = env.dataset.bounds().scaled(0.5)
            lod = env.dataset.pm.average_lod()
            first = set(env.dm.uniform_query(roi, lod).nodes)
        finally:
            env.close()
        # Second load must come from the cache and agree exactly.
        env2 = load_environment("foothills", 600)
        try:
            assert len(env2.dataset.pm.nodes) == n_nodes
            assert set(env2.dm.uniform_query(roi, lod).nodes) == first
        finally:
            env2.close()

    def test_rebuild_flag(self, cache_dir):
        env = load_environment("foothills", 600)
        env.close()
        key = f"foothills-600-v{SCHEMA_VERSION}"
        marker = cache_dir / key / "marker"
        marker.touch()
        env = load_environment("foothills", 600, rebuild=True)
        env.close()
        assert not marker.exists()  # Directory was wiped.

    def test_incomplete_cache_rebuilt(self, cache_dir):
        env = load_environment("foothills", 600)
        env.close()
        key = f"foothills-600-v{SCHEMA_VERSION}"
        (cache_dir / key / "COMPLETE").unlink()
        env = load_environment("foothills", 600)
        try:
            assert (cache_dir / key / "COMPLETE").exists()
        finally:
            env.close()

    def test_corrupt_pickle_raises_cleanly(self, cache_dir):
        from repro.errors import DatasetError

        env = load_environment("foothills", 600)
        env.close()
        key = f"foothills-600-v{SCHEMA_VERSION}"
        (cache_dir / key / "dataset.pickle").write_bytes(b"garbage")
        with pytest.raises(DatasetError):
            load_environment("foothills", 600)

    def test_pool_size_respected(self, cache_dir):
        env = load_environment("foothills", 600, pool_pages=33)
        try:
            assert env.database.buffer.capacity == 33
        finally:
            env.close()
