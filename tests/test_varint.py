"""Tests for varint coding and compressed DM records."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import RecordError
from repro.storage.record import decode_dm_node, encode_dm_node
from repro.storage.varint import (
    U64_MAX,
    decode_id_list,
    decode_uvarint,
    encode_id_list,
    encode_uvarint,
    unzigzag,
    zigzag,
)


class TestUvarint:
    def test_single_byte_values(self):
        for value in (0, 1, 127):
            out = bytearray()
            encode_uvarint(value, out)
            assert len(out) == 1
            assert decode_uvarint(bytes(out), 0) == (value, 1)

    def test_multi_byte(self):
        out = bytearray()
        encode_uvarint(300, out)
        assert len(out) == 2
        assert decode_uvarint(bytes(out), 0)[0] == 300

    def test_negative_rejected(self):
        with pytest.raises(RecordError):
            encode_uvarint(-1, bytearray())

    def test_truncated(self):
        with pytest.raises(RecordError):
            decode_uvarint(b"\x80", 0)

    def test_overlong(self):
        with pytest.raises(RecordError):
            decode_uvarint(b"\xff" * 12, 0)

    def test_u64_boundaries(self):
        # The regression of ISSUE 7: ids in [2**63, 2**64) are legal
        # 10-byte encodings and must round-trip.
        for value in (2**63 - 1, 2**63, U64_MAX):
            out = bytearray()
            encode_uvarint(value, out)
            assert len(out) <= 10
            assert decode_uvarint(bytes(out), 0) == (value, len(out))

    def test_beyond_u64_rejected_on_encode(self):
        with pytest.raises(RecordError):
            encode_uvarint(U64_MAX + 1, bytearray())

    def test_beyond_u64_rejected_on_decode(self):
        # A 10-byte encoding of 2**64 (final byte sets bit 64) must
        # not silently decode to a value no fixed-width peer can hold.
        overflowing = b"\x80" * 9 + b"\x02"
        with pytest.raises(RecordError):
            decode_uvarint(overflowing, 0)

    @given(st.integers(0, U64_MAX))
    def test_roundtrip(self, value):
        out = bytearray()
        encode_uvarint(value, out)
        assert decode_uvarint(bytes(out), 0) == (value, len(out))


class TestZigzag:
    @given(st.integers(-(2**63), 2**63 - 1))
    def test_roundtrip(self, value):
        assert unzigzag(zigzag(value)) == value

    def test_small_magnitudes_stay_small(self):
        assert zigzag(0) == 0
        assert zigzag(-1) == 1
        assert zigzag(1) == 2
        assert zigzag(-2) == 3

    def test_i64_boundaries(self):
        # The fixed-width idiom ``(v << 1) ^ (v >> 63)`` corrupted the
        # top half of the non-negative range; the bijection must cover
        # all of [-2**63, 2**63) onto [0, 2**64).
        assert zigzag(2**63 - 1) == U64_MAX - 1
        assert zigzag(-(2**63)) == U64_MAX
        assert unzigzag(U64_MAX) == -(2**63)

    def test_out_of_range_rejected(self):
        with pytest.raises(RecordError):
            zigzag(2**63)
        with pytest.raises(RecordError):
            zigzag(-(2**63) - 1)
        with pytest.raises(RecordError):
            unzigzag(U64_MAX + 1)


class TestIdList:
    def test_roundtrip_sorted(self):
        ids = [3, 9, 10, 500, 100000]
        data = encode_id_list(ids)
        back, end = decode_id_list(data)
        assert back == ids
        assert end == len(data)

    def test_unsorted_input_sorted_output(self):
        back, _ = decode_id_list(encode_id_list([9, 3, 7]))
        assert back == [3, 7, 9]

    def test_empty(self):
        back, end = decode_id_list(encode_id_list([]))
        assert back == []
        assert end == 1

    def test_negative_rejected(self):
        with pytest.raises(RecordError):
            encode_id_list([-5])

    def test_dense_lists_compress(self):
        ids = list(range(1000, 1060))
        assert len(encode_id_list(ids)) < 4 * len(ids) // 2

    @given(st.lists(st.integers(0, U64_MAX), max_size=100))
    def test_roundtrip_property(self, ids):
        back, _ = decode_id_list(encode_id_list(ids))
        assert back == sorted(ids)

    def test_full_u64_ids(self):
        ids = [0, 2**63 - 1, 2**63, U64_MAX]
        back, _ = decode_id_list(encode_id_list(ids))
        assert back == ids

    def test_beyond_u64_rejected(self):
        with pytest.raises(RecordError):
            encode_id_list([U64_MAX + 1])


class TestCompressedRecords:
    def make_node(self):
        from repro.geometry.primitives import Rect
        from repro.mesh.progressive import PMNode

        node = PMNode(7, 1.0, 2.0, 3.0, 0.5, parent=9, child1=3, child2=4)
        node.e = 0.5
        node.e_high = 2.0
        node.footprint = Rect(0, 0, 1, 1)
        return node

    def test_roundtrip(self):
        node = self.make_node()
        conn = [2, 11, 13, 40000]
        payload = encode_dm_node(node, conn, compress=True)
        back = decode_dm_node(payload)
        assert back.connections == conn
        assert back.id == node.id
        assert back.e_low == 0.5

    def test_smaller_than_plain(self):
        node = self.make_node()
        conn = sorted(range(100, 160, 4))
        plain = encode_dm_node(node, conn, compress=False)
        compressed = encode_dm_node(node, conn, compress=True)
        assert len(compressed) < len(plain)

    def test_trailing_garbage_rejected(self):
        payload = encode_dm_node(self.make_node(), [1, 2], compress=True)
        with pytest.raises(RecordError):
            decode_dm_node(payload + b"\x00")
