"""Tests for the EXPLAIN facility."""

import pytest

from repro.core.explain import QueryExplanation, RangeStep, explain
from repro.errors import QueryError
from repro.geometry.plane import QueryPlane
from repro.geometry.primitives import Box3


class TestExplainUniform:
    def test_plan_only(self, session_db, hills_dataset):
        ds = hills_dataset
        roi = ds.bounds().scaled(0.3)
        explanation = explain(session_db["dm"], roi, lod=ds.pm.average_lod())
        assert explanation.kind == "viewpoint-independent query"
        assert len(explanation.steps) == 1
        assert explanation.steps[0].cube.depth == 0  # A plane.
        assert explanation.actual_da is None
        text = explanation.to_text()
        assert "step 1" in text
        assert "executed" not in text

    def test_execute_attaches_counters(self, session_db, hills_dataset):
        ds = hills_dataset
        roi = ds.bounds().scaled(0.3)
        explanation = explain(
            session_db["dm"], roi, lod=ds.pm.average_lod(), execute=True
        )
        assert explanation.actual_da is not None
        assert explanation.actual_da > 0
        assert explanation.result_nodes is not None
        assert "executed" in explanation.to_text()

    def test_requires_lod(self, session_db, hills_dataset):
        with pytest.raises(QueryError):
            explain(session_db["dm"], hills_dataset.bounds())


class TestExplainViewdep:
    def test_multibase_plan_shown(self, session_db, hills_dataset):
        ds = hills_dataset
        roi = ds.bounds().scaled(0.5)
        plane = QueryPlane(
            roi, ds.pm.max_lod() * 0.01, ds.pm.max_lod() * 0.9
        )
        explanation = explain(session_db["dm"], plane)
        assert explanation.steps
        assert explanation.single_base_estimate is not None
        if len(explanation.steps) > 1:
            assert "multi-base" in explanation.kind
            assert explanation.predicted_gain > 0

    def test_execution_matches_direct_query(self, session_db, hills_dataset):
        ds = hills_dataset
        store = session_db["dm"]
        roi = ds.bounds().scaled(0.4)
        plane = QueryPlane(
            roi, ds.pm.max_lod() * 0.02, ds.pm.max_lod() * 0.6
        )
        explanation = explain(store, plane, execute=True)
        direct = store.multi_base_query(plane)
        assert explanation.result_nodes == len(direct)

    def test_unknown_query_type(self, session_db):
        with pytest.raises(QueryError):
            explain(session_db["dm"], "not a query")


class TestFormatting:
    def test_range_step_describe(self):
        step = RangeStep(Box3(0, 0, 1.0, 100, 200, 1.0), 12.34)
        text = step.describe()
        assert "plane" in text
        assert "12.3" in text
        step = RangeStep(Box3(0, 0, 1.0, 100, 200, 5.0), 3.0)
        assert "cube" in step.describe()

    def test_explanation_singular_plural(self):
        one = QueryExplanation("q", [RangeStep(Box3(0, 0, 0, 1, 1, 1), 1.0)])
        assert "1 range query" in one.to_text()
        two = QueryExplanation(
            "q",
            [
                RangeStep(Box3(0, 0, 0, 1, 1, 1), 1.0),
                RangeStep(Box3(1, 1, 1, 2, 2, 2), 2.0),
            ],
        )
        assert "2 range queries" in two.to_text()
        assert two.estimated_da == 3.0
