"""The cluster fast path against the per-node oracle.

The contract (:mod:`repro.core.clusters`): for *any* store and any
query, ``QueryEngine(clustered=True)`` returns node-id-identical
results — same record dicts, same ``retrieved`` counts — as
``QueryEngine(clustered=False)``, because cluster extents are unions
of their members' capped indexed segments and the decoded batch is
narrowed with the same intersection predicate the R*-tree applies.
Hypothesis drives random query cubes, LODs above ``e_cap``, and
degenerate ROIs through both paths; the rest of the file covers the
blob codec, the directory invariants, the decoded-cluster LRU, and
the pager's multi-page run accounting.
"""

from __future__ import annotations

import random

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import DirectMeshStore, QueryEngine
from repro.core.cache import ClusterCache
from repro.core.clusters import (
    ClusterDirectory,
    decode_cluster_blob,
    encode_cluster_blob,
    intersecting_rows,
)
from repro.core.engine import SingleBaseRequest, UniformRequest
from repro.errors import PageCorruptionError, QueryError, StorageError
from repro.geometry.plane import QueryPlane
from repro.geometry.primitives import Box3, Rect
from repro.mesh.progressive import LOD_INFINITY, PMNode
from repro.storage import Database, FaultInjector
from repro.storage.record import decode_dm_nodes_columnar, encode_dm_node
from repro.terrain import dataset_by_name

common = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)

fracs = st.floats(0.0, 1.0, allow_nan=False)


@pytest.fixture(scope="module")
def built(tmp_path_factory):
    """One clustered store shared by the parity properties."""
    dataset = dataset_by_name("foothills", 900, seed=13)
    db = Database(tmp_path_factory.mktemp("clusters_db"))
    store = DirectMeshStore.build(dataset.pm, db, dataset.connections)
    yield db, store
    db.close()


def _roi(store, fx, fy, fw, fh) -> Rect:
    extent = store.rtree.data_space.rect
    w = fw * extent.width
    h = fh * extent.height
    x0 = extent.min_x + fx * (extent.width - w)
    y0 = extent.min_y + fy * (extent.height - h)
    return Rect(x0, y0, x0 + w, y0 + h)


def _assert_parity(store, request) -> None:
    with QueryEngine(store, workers=1, clustered=False) as oracle:
        reference = oracle.run(request)
    with QueryEngine(store, workers=1, clustered=True) as fast:
        outcome = fast.run(request)
    assert reference.ok and outcome.ok
    assert outcome.result.nodes == reference.result.nodes
    assert outcome.result.retrieved == reference.result.retrieved


class TestEngineParity:
    @common
    @given(fracs, fracs, fracs, fracs, st.floats(0.0, 1.3))
    def test_uniform_random_cubes(self, built, fx, fy, fw, fh, flod):
        """Random ROIs and LODs — including LODs above ``e_cap``."""
        _, store = built
        lod = flod * (store.e_cap * 1.2)
        _assert_parity(store, UniformRequest(_roi(store, fx, fy, fw, fh), lod))

    @common
    @given(fracs, fracs, fracs, fracs, fracs, fracs)
    def test_viewdep_random_planes(self, built, fx, fy, fw, fh, fa, fb):
        _, store = built
        e_a = fa * store.max_lod
        e_b = fb * store.max_lod
        plane = QueryPlane(
            _roi(store, fx, fy, fw, fh), min(e_a, e_b), max(e_a, e_b)
        )
        _assert_parity(store, SingleBaseRequest(plane))

    def test_above_e_cap_returns_base_mesh(self, built):
        """``lod > e_cap`` clamps the probe and serves the base mesh."""
        _, store = built
        extent = store.rtree.data_space.rect
        reference = store.uniform_query(extent, store.e_cap * 2.0)
        assert len(reference) > 0
        with QueryEngine(store, workers=1, clustered=True) as engine:
            outcome = engine.run(UniformRequest(extent, store.e_cap * 2.0))
        assert outcome.result.nodes == reference.nodes

    def test_empty_roi(self, built):
        """A degenerate ROI outside the data selects nothing."""
        _, store = built
        extent = store.rtree.data_space.rect
        far = Rect(
            extent.max_x + 100.0,
            extent.max_y + 100.0,
            extent.max_x + 101.0,
            extent.max_y + 101.0,
        )
        with QueryEngine(store, workers=1, clustered=True) as engine:
            outcome = engine.run(UniformRequest(far, store.max_lod / 2))
        assert outcome.result.nodes == {}
        assert outcome.result.retrieved == 0

    def test_cluster_metrics_and_cache_reuse(self, built):
        """Run pages are counted honestly; repeats hit the LRU."""
        db, store = built
        extent = store.rtree.data_space.rect
        request = UniformRequest(extent, store.max_lod / 2)
        db.flush()
        with QueryEngine(store, workers=1, clustered=True) as engine:
            cold = engine.run(request)
            warm = engine.run(request)
            cache_stats = engine.cluster_cache.stats()
        assert cold.metrics.clusters_touched > 0
        assert cold.metrics.nodes_decoded >= cold.result.retrieved
        # Every candidate's run pages were transferred, once each.
        assert cold.metrics.pages_read == sum(
            store.clusters.meta(cid).n_pages
            for cid in store.clusters.index.candidates(
                request.query_box(store.e_cap)
            )
        )
        assert warm.metrics.pages_read == 0  # Served decoded.
        assert warm.metrics.cache_hit_rate == 1.0
        assert cache_stats.hits >= cold.metrics.clusters_touched
        assert warm.result.nodes == cold.result.nodes

    def test_clustered_engine_requires_cluster_section(self, tmp_path):
        dataset = dataset_by_name("foothills", 300, seed=3)
        with Database(tmp_path / "v2db") as db:
            store = DirectMeshStore.build(
                dataset.pm, db, dataset.connections, clustered=False
            )
            assert store.clusters is None
            with pytest.raises(QueryError):
                QueryEngine(store, clustered=True)
            # Default resolves to the oracle path and still serves.
            extent = store.rtree.data_space.rect
            with QueryEngine(store) as engine:
                assert not engine.clustered
                outcome = engine.run(
                    UniformRequest(extent, store.max_lod / 2)
                )
            assert outcome.ok

    def test_v2_store_reopens_without_clusters(self, tmp_path):
        """Stores built before the cluster layer open and serve."""
        dataset = dataset_by_name("foothills", 300, seed=3)
        with Database(tmp_path / "reopen") as db:
            DirectMeshStore.build(
                dataset.pm, db, dataset.connections, clustered=False
            )
        with Database(tmp_path / "reopen") as db:
            store = DirectMeshStore.open(db)
            assert store.clusters is None

    def test_reopened_store_serves_identically(self, tmp_path):
        dataset = dataset_by_name("foothills", 500, seed=9)
        with Database(tmp_path / "persist") as db:
            store = DirectMeshStore.build(dataset.pm, db, dataset.connections)
            extent = store.rtree.data_space.rect
            reference = store.uniform_query(extent, store.max_lod / 3)
        with Database(tmp_path / "persist") as db:
            store = DirectMeshStore.open(db)
            assert store.clusters is not None
            with QueryEngine(store) as engine:
                assert engine.clustered
                outcome = engine.run(
                    UniformRequest(extent, store.max_lod / 3)
                )
            assert outcome.result.nodes == reference.nodes


class TestDirectoryInvariants:
    def test_runs_are_contiguous_and_disjoint(self, built):
        _, store = built
        directory = store.clusters.directory
        assert len(directory) > 1
        payload = store.clusters.segment.payload_size
        spans = sorted(
            (meta.start_page, meta.n_pages) for meta in directory.clusters
        )
        previous_end = None
        for start, count in spans:
            assert count >= 1
            if previous_end is not None:
                assert start >= previous_end
            previous_end = start + count
        for meta in directory.clusters:
            assert (meta.n_pages - 1) * payload < meta.n_bytes
            assert meta.n_bytes <= meta.n_pages * payload

    def test_extents_cover_members(self, built):
        """Each decoded member's capped segment lies in its extent."""
        _, store = built
        clusters = store.clusters
        for meta in clusters.directory.clusters:
            columns = clusters.decode(meta.cluster_id)
            assert len(columns) == meta.n_nodes
            capped = np.minimum(columns.e_high, store.e_cap)
            assert float(columns.x.min()) >= meta.min_x
            assert float(columns.x.max()) <= meta.max_x
            assert float(columns.y.min()) >= meta.min_y
            assert float(columns.y.max()) <= meta.max_y
            assert float(columns.e_low.min()) >= meta.min_e
            assert float(capped.max()) <= meta.max_e

    def test_directory_round_trips_through_json(self, built):
        db, store = built
        loaded = ClusterDirectory.load(db, "dm")
        assert loaded.clusters == store.clusters.directory.clusters
        assert loaded.segment == store.clusters.directory.segment

    def test_total_nodes_match_store(self, built):
        _, store = built
        assert store.clusters.directory.total_nodes == len(store.rtree)


class TestBlobCodec:
    @common
    @given(st.lists(st.binary(max_size=64), max_size=24))
    def test_roundtrip(self, payloads):
        assert decode_cluster_blob(encode_cluster_blob(payloads)) == payloads

    def test_bad_magic_rejected(self):
        blob = bytearray(encode_cluster_blob([b"abc"]))
        blob[:4] = b"XXXX"
        with pytest.raises(StorageError):
            decode_cluster_blob(bytes(blob))

    def test_truncation_rejected(self):
        blob = encode_cluster_blob([b"abcdef", b"ghi"])
        with pytest.raises(StorageError):
            decode_cluster_blob(blob[:-2])

    def test_trailing_bytes_rejected(self):
        blob = encode_cluster_blob([b"abc"])
        with pytest.raises(StorageError):
            decode_cluster_blob(blob + b"\x00")


def _columns(n: int, seed: int = 0):
    """A small decoded batch for cache and narrowing tests."""
    rng = random.Random(seed)
    payloads = []
    for i in range(n):
        node = PMNode(
            i,
            rng.uniform(-10.0, 10.0),
            rng.uniform(-10.0, 10.0),
            rng.uniform(0.0, 5.0),
            error=0.0,
            parent=-1,
            child1=-1,
            child2=-1,
            wing1=-1,
            wing2=-1,
        )
        node.e = rng.uniform(0.0, 3.0)
        node.e_high = (
            node.e + rng.uniform(0.0, 2.0) if i % 4 else LOD_INFINITY
        )
        connections = sorted(rng.sample(range(n), rng.randint(0, 5)))
        payloads.append(encode_dm_node(node, connections))
    return decode_dm_nodes_columnar(payloads)


class TestClusterCache:
    def test_hits_become_mru_and_misses_count(self):
        cache = ClusterCache(max_bytes=1 << 20)
        columns = _columns(8)
        assert cache.get(0) is None
        assert cache.put(0, columns)
        assert cache.get(0) is columns
        stats = cache.stats()
        assert stats.hits == 1 and stats.misses == 1
        assert stats.entries == 1 and stats.bytes > 0
        assert stats.hit_rate == 0.5

    def test_lru_eviction_under_byte_budget(self):
        columns = _columns(8)
        entry_bytes = columns.nbytes + 512
        cache = ClusterCache(max_bytes=entry_bytes * 2)
        cache.put(0, columns)
        cache.put(1, columns)
        cache.get(0)  # 0 becomes MRU; 1 is now the eviction victim.
        cache.put(2, columns)
        assert cache.get(1) is None
        assert cache.get(0) is not None
        assert cache.stats().evictions == 1

    def test_oversized_entry_refused(self):
        columns = _columns(8)
        cache = ClusterCache(max_bytes=16)
        assert not cache.put(0, columns)
        assert len(cache) == 0

    def test_reinsert_refreshes_without_double_charge(self):
        columns = _columns(8)
        cache = ClusterCache(max_bytes=1 << 20)
        cache.put(0, columns)
        before = cache.bytes
        cache.put(0, columns)
        assert cache.bytes == before
        assert len(cache) == 1

    def test_invalidate_empties(self):
        cache = ClusterCache(max_bytes=1 << 20)
        cache.put(0, _columns(4))
        cache.invalidate()
        assert len(cache) == 0 and cache.bytes == 0


class TestNarrowing:
    def test_select_matches_per_row_materialize(self):
        columns = _columns(40, seed=3)
        mask = np.zeros(40, bool)
        mask[::3] = True
        subset = columns.select(mask)
        assert len(subset) == int(mask.sum())
        assert subset.records() == [
            columns.record(i) for i in np.flatnonzero(mask)
        ]

    def test_select_full_mask_is_identity(self):
        columns = _columns(10, seed=4)
        assert columns.select(np.ones(10, bool)) is columns

    def test_intersecting_rows_matches_bruteforce(self):
        columns = _columns(60, seed=5)
        e_cap = 4.0
        box = Box3(-5.0, -5.0, 0.5, 5.0, 5.0, 3.5)
        mask = intersecting_rows(columns, box, e_cap)
        for i, record in enumerate(columns.records()):
            e_high = min(record.e_high, e_cap)
            expected = (
                box.min_x <= record.x <= box.max_x
                and box.min_y <= record.y <= box.max_y
                and record.e_low <= box.max_e
                and e_high >= box.min_e
            )
            assert bool(mask[i]) == expected


class TestRunIO:
    def test_read_run_counts_every_page(self, tmp_path):
        with Database(tmp_path / "runs") as db:
            segment = db.segment("r")
            for _ in range(5):
                _, buf = segment.allocate()
                buf[:4] = b"abcd"
            db.flush()
            with db.stats.attribute() as probe:
                data = segment.read_run(1, 3)
            assert probe.physical_reads == 3  # Pages, not probe calls.
            assert probe.logical_reads == 3
            assert len(data) == 3 * segment.payload_size
            assert data[:4] == b"abcd"

    def test_read_run_bounds_checked(self, tmp_path):
        with Database(tmp_path / "bounds") as db:
            segment = db.segment("r")
            for _ in range(3):
                segment.allocate()
            db.flush()
            with pytest.raises(StorageError):
                segment.read_run(1, 5)
            with pytest.raises(StorageError):
                segment.read_run(0, 0)

    def test_corrupt_run_page_detected(self, built):
        db, store = built
        db.set_fault_injector(
            FaultInjector(corrupt_rate=1.0, seed=1, max_corruptions=1)
        )
        try:
            with pytest.raises(PageCorruptionError):
                store.clusters.decode(0)
        finally:
            db.set_fault_injector(None)
        # The budget is spent; the run now reads and decodes clean.
        assert len(store.clusters.decode(0)) > 0


class TestExplainClusterView:
    def test_plan_and_execution_fields(self, built):
        from repro.core.explain import explain

        _, store = built
        extent = store.rtree.data_space.rect
        explanation = explain(
            store, extent, lod=store.max_lod / 2, execute=True
        )
        view = explanation.cluster_view
        assert view is not None
        assert view.candidates > 0
        assert view.run_pages > 0
        assert view.pages_read is not None
        assert view.nodes_decoded >= view.retrieved
        assert view.result_nodes == explanation.result_nodes
        assert view.retrieved == explanation.retrieved
        assert view.decode_hits + view.decode_misses == view.candidates
        text = explanation.to_text()
        assert "cluster path" in text and "overfetch" in text


class TestClusterCacheRegions:
    """Epoch keys and extent-based spatial invalidation (patches)."""

    def test_epoch_keys_do_not_collide(self):
        cache = ClusterCache(max_bytes=1 << 20)
        old, new = _columns(8), _columns(8, seed=9)
        cache.put(3, old, 0)
        cache.put(3, new, 1)
        assert cache.get(3, 0) is old
        assert cache.get(3, 1) is new

    def test_region_invalidation_uses_extents(self):
        cache = ClusterCache(max_bytes=1 << 20)
        near = Box3(0.0, 0.0, 0.0, 4.0, 4.0, 1.0)
        far = Box3(50.0, 50.0, 0.0, 60.0, 60.0, 1.0)
        cache.put(0, _columns(4), 0, extent=near)
        cache.put(1, _columns(4, seed=1), 0, extent=far)
        cache.invalidate(Rect(2.0, 2.0, 8.0, 8.0))
        assert cache.get(0, 0) is None
        assert cache.get(1, 0) is not None
        assert cache.stats().region_invalidations == 1

    def test_unknown_extent_fails_closed(self):
        cache = ClusterCache(max_bytes=1 << 20)
        cache.put(0, _columns(4), 0)  # No extent recorded.
        cache.invalidate(Rect(90.0, 90.0, 99.0, 99.0))
        assert cache.get(0, 0) is None

    def test_non_overlapping_old_epoch_entries_survive_commit(self):
        cache = ClusterCache(max_bytes=1 << 20)
        far = Box3(50.0, 50.0, 0.0, 60.0, 60.0, 1.0)
        cache.put(7, _columns(4), 0, extent=far)
        cache.invalidate(Rect(0.0, 0.0, 10.0, 10.0))  # Patch commit.
        # Cluster ids are not stable across epochs, so the surviving
        # entry stays keyed to epoch 0 — and stays servable there.
        assert cache.get(7, 0) is not None
        assert cache.get(7, 1) is None
