"""Stateful property tests: random operation sequences vs invariants.

Hypothesis drives random split/collapse walks over a DynamicMesh and
random key churn over a B+-tree, checking structural invariants after
every step — the class of bug (order-dependent corruption) that
example-based tests rarely reach.
"""

from hypothesis import HealthCheck, settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.mesh.simplify import simplify_to_pm
from repro.mesh.vsplit import DynamicMesh
from tests.conftest import make_wavy_grid_mesh

# One shared PM for every machine run (read-only).
_PM = None


def _pm():
    global _PM
    if _PM is None:
        mesh = make_wavy_grid_mesh(side=10, seed=12)
        _PM = simplify_to_pm(mesh)
        _PM.normalize_lod()
    return _PM


class DynamicMeshMachine(RuleBasedStateMachine):
    """Random walks through the split/collapse state space."""

    @initialize()
    def setup(self):
        self.pm = _pm()
        self.mesh = DynamicMesh(self.pm)

    @rule(choice=st.randoms(use_true_random=False))
    def split_something(self, choice):
        candidates = [
            i for i in self.mesh.active if not self.pm.node(i).is_leaf
        ]
        if not candidates:
            return
        self.mesh.split(choice.choice(sorted(candidates)))

    @rule(choice=st.randoms(use_true_random=False))
    def collapse_something(self, choice):
        candidates = []
        for node_id in self.mesh.active:
            parent_id = self.pm.node(node_id).parent
            if parent_id == -1:
                continue
            parent = self.pm.node(parent_id)
            if (
                parent.child1 in self.mesh.active
                and parent.child2 in self.mesh.active
            ):
                candidates.append(parent_id)
        if not candidates:
            return
        self.mesh.collapse(choice.choice(sorted(set(candidates))))

    @invariant()
    def active_is_antichain_cut(self):
        if not hasattr(self, "mesh"):
            return
        self.mesh.validate()

    @invariant()
    def covers_all_leaves(self):
        if not hasattr(self, "mesh"):
            return
        covered = set()
        for node_id in self.mesh.active:
            node = self.pm.node(node_id)
            if node.is_leaf:
                covered.add(node_id)
            covered.update(
                d.id for d in self.pm.descendants(node_id) if d.is_leaf
            )
        assert len(covered) == self.pm.n_leaves

    @invariant()
    def planar_edge_bound(self):
        if not hasattr(self, "mesh"):
            return
        v = len(self.mesh.active)
        e = len(self.mesh.edges())
        if v >= 3:
            assert e <= 3 * v - 6


TestDynamicMeshMachine = DynamicMeshMachine.TestCase
TestDynamicMeshMachine.settings = settings(
    max_examples=15,
    stateful_step_count=30,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


class BTreeMachine(RuleBasedStateMachine):
    """Insert/delete/overwrite churn against a dict model."""

    @initialize()
    def setup(self):
        import tempfile
        from pathlib import Path

        from repro.index.btree import BPlusTree
        from repro.storage.database import Database

        self._dir = tempfile.TemporaryDirectory()
        self.db = Database(Path(self._dir.name) / "db", pool_pages=32)
        self.tree = BPlusTree(self.db.segment("bt"))
        self.model: dict[int, int] = {}

    def teardown(self):
        self.db.close()
        self._dir.cleanup()

    @rule(key=st.integers(0, 300), value=st.integers(0, 10**9))
    def insert(self, key, value):
        self.tree.insert(key, value)
        self.model[key] = value

    @rule(key=st.integers(0, 300))
    def delete(self, key):
        assert self.tree.delete(key) == (key in self.model)
        self.model.pop(key, None)

    @rule()
    def compact(self):
        self.tree.compact()

    @rule(lo=st.integers(0, 300), span=st.integers(0, 100))
    def range_scan(self, lo, span):
        got = [k for k, _ in self.tree.range(lo, lo + span)]
        expected = sorted(k for k in self.model if lo <= k <= lo + span)
        assert got == expected

    @invariant()
    def size_matches(self):
        if not hasattr(self, "tree"):
            return
        assert len(self.tree) == len(self.model)

    @invariant()
    def spot_lookups(self):
        if not hasattr(self, "tree"):
            return
        for key in list(self.model)[:5]:
            assert self.tree.get(key) == self.model[key]


TestBTreeMachine = BTreeMachine.TestCase
TestBTreeMachine.settings = settings(
    max_examples=12,
    stateful_step_count=40,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
