"""Tests for B+-tree and R*-tree deletion."""
# reprolint: disable-file=R2 deletion tests exercise the raw R*-tree on purpose

import random

from repro.geometry.primitives import Box3
from repro.index.btree import BPlusTree
from repro.index.rstar import RStarTree


class TestBTreeDelete:
    def test_delete_present(self, fresh_db):
        tree = BPlusTree(fresh_db.segment("bt"))
        tree.insert(5, 50)
        assert tree.delete(5) is True
        assert tree.get(5) is None
        assert len(tree) == 0

    def test_delete_absent(self, fresh_db):
        tree = BPlusTree(fresh_db.segment("bt"))
        tree.insert(5, 50)
        assert tree.delete(6) is False
        assert len(tree) == 1

    def test_random_churn_matches_model(self, fresh_db):
        tree = BPlusTree(fresh_db.segment("bt"))
        rng = random.Random(0)
        model: dict[int, int] = {}
        for _ in range(6000):
            key = rng.randrange(800)
            if rng.random() < 0.6:
                value = rng.randrange(10**6)
                tree.insert(key, value)
                model[key] = value
            else:
                assert tree.delete(key) == (key in model)
                model.pop(key, None)
        assert len(tree) == len(model)
        for key, value in model.items():
            assert tree.get(key) == value
        assert [k for k, _ in tree.items()] == sorted(model)

    def test_delete_then_reinsert(self, fresh_db):
        tree = BPlusTree(fresh_db.segment("bt"))
        for k in range(2000):
            tree.insert(k, k)
        for k in range(0, 2000, 2):
            tree.delete(k)
        for k in range(0, 2000, 2):
            tree.insert(k, k * 10)
        assert tree.get(100) == 1000
        assert tree.get(101) == 101
        tree.validate()

    def test_compact_preserves_contents(self, fresh_db):
        tree = BPlusTree(fresh_db.segment("bt"))
        for k in range(3000):
            tree.insert(k, k)
        for k in range(0, 3000, 3):
            tree.delete(k)
        before = list(tree.items())
        tree.compact()
        assert list(tree.items()) == before
        tree.validate()

    def test_compact_empty(self, fresh_db):
        tree = BPlusTree(fresh_db.segment("bt"))
        tree.insert(1, 1)
        tree.delete(1)
        tree.compact()
        assert len(tree) == 0
        assert tree.get(1) is None


def _random_boxes(n, seed):
    rng = random.Random(seed)
    out = []
    for _ in range(n):
        x, y, e = (rng.uniform(0, 100) for _ in range(3))
        out.append(
            Box3(x, y, e, x + rng.uniform(0, 3), y + rng.uniform(0, 3),
                 e + rng.uniform(0, 3))
        )
    return out


class TestRStarDelete:
    def test_delete_present(self, fresh_db):
        tree = RStarTree(fresh_db.segment("rt"))
        b = Box3(0, 0, 0, 1, 1, 1)
        tree.insert(b, 7)
        assert tree.delete(b, 7) is True
        assert len(tree) == 0
        assert tree.search(b) == []

    def test_delete_absent(self, fresh_db):
        tree = RStarTree(fresh_db.segment("rt"))
        b = Box3(0, 0, 0, 1, 1, 1)
        tree.insert(b, 7)
        assert tree.delete(b, 8) is False
        assert tree.delete(Box3(9, 9, 9, 10, 10, 10), 7) is False
        assert len(tree) == 1

    def test_delete_half_matches_brute_force(self, fresh_db):
        boxes = _random_boxes(600, seed=1)
        tree = RStarTree(fresh_db.segment("rt"))
        for i, b in enumerate(boxes):
            tree.insert(b, i)
        removed = set(range(0, 600, 2))
        for i in sorted(removed):
            assert tree.delete(boxes[i], i)
        tree.validate()
        q = Box3(10, 10, 10, 70, 70, 70)
        expected = sorted(
            i
            for i, b in enumerate(boxes)
            if i not in removed and b.intersects(q)
        )
        assert sorted(tree.search(q)) == expected

    def test_delete_everything(self, fresh_db):
        boxes = _random_boxes(300, seed=2)
        tree = RStarTree(fresh_db.segment("rt"))
        for i, b in enumerate(boxes):
            tree.insert(b, i)
        order = list(range(300))
        random.Random(3).shuffle(order)
        for i in order:
            assert tree.delete(boxes[i], i)
        assert len(tree) == 0
        assert tree.search(Box3(0, 0, 0, 200, 200, 200)) == []

    def test_interleaved_insert_delete(self, fresh_db):
        tree = RStarTree(fresh_db.segment("rt"))
        rng = random.Random(4)
        live: dict[int, Box3] = {}
        next_id = 0
        for _ in range(1200):
            if live and rng.random() < 0.45:
                victim = rng.choice(list(live))
                assert tree.delete(live.pop(victim), victim)
            else:
                x, y, e = (rng.uniform(0, 50) for _ in range(3))
                b = Box3(x, y, e, x + 1, y + 1, e + 1)
                tree.insert(b, next_id)
                live[next_id] = b
                next_id += 1
        tree.validate()
        q = Box3(5, 5, 5, 30, 30, 30)
        expected = sorted(i for i, b in live.items() if b.intersects(q))
        assert sorted(tree.search(q)) == expected

    def test_delete_after_bulk_load(self, fresh_db):
        boxes = _random_boxes(500, seed=5)
        tree = RStarTree(fresh_db.segment("rt"))
        tree.bulk_load([(b, i) for i, b in enumerate(boxes)])
        for i in range(0, 500, 5):
            assert tree.delete(boxes[i], i)
        tree.validate()
        assert len(tree) == 400
