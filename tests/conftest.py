"""Shared fixtures: small terrains, progressive meshes, databases.

Session-scoped fixtures build one small dataset and one database with
every store, so integration tests share the (relatively) expensive
construction work.  Anything mutated by a test must be
function-scoped.
"""

from __future__ import annotations

import math
import random

import pytest

from repro.baselines.pm_db import PMStore
from repro.core.connectivity import build_connection_lists
from repro.core.direct_mesh import DirectMeshStore
from repro.index.hdov import HDoVTree
from repro.mesh.simplify import SimplifyConfig, simplify_to_pm
from repro.mesh.trimesh import TriMesh
from repro.storage.database import Database
from repro.terrain.datasets import TerrainDataset
from repro.terrain.dem import DEM
from repro.terrain.synthetic import gaussian_hills_field


def make_wavy_grid_mesh(side: int = 24, seed: int = 3) -> TriMesh:
    """A deterministic bumpy grid TIN used by mesh-level unit tests."""
    rng = random.Random(seed)
    heights = [
        [
            math.sin(i * 0.4) * 4.0
            + math.cos(j * 0.3) * 3.0
            + rng.random() * 0.4
            for j in range(side)
        ]
        for i in range(side)
    ]
    return TriMesh.from_grid(heights, cell_size=5.0)


@pytest.fixture(scope="session")
def wavy_mesh() -> TriMesh:
    """A 24x24 grid TIN (576 vertices)."""
    return make_wavy_grid_mesh()


@pytest.fixture(scope="session")
def wavy_pm(wavy_mesh):
    """A normalised PM over :func:`wavy_mesh` (vertical errors)."""
    pm = simplify_to_pm(
        wavy_mesh, SimplifyConfig(error_measure="vertical")
    )
    pm.normalize_lod()
    return pm


@pytest.fixture(scope="session")
def wavy_connections(wavy_pm):
    """Connection lists for :func:`wavy_pm`."""
    return build_connection_lists(wavy_pm)


@pytest.fixture(scope="session")
def hills_dataset() -> TerrainDataset:
    """A ~2000-point Gaussian-hills dataset with PM and connections."""
    field = gaussian_hills_field(size=96, n_hills=10, seed=11)
    dem = DEM(field, "hills")
    mesh = dem.to_scattered_trimesh(2000, seed=11)
    pm = simplify_to_pm(mesh, SimplifyConfig(error_measure="vertical"))
    pm.normalize_lod()
    return TerrainDataset(
        "hills", field, mesh, pm, build_connection_lists(pm)
    )


@pytest.fixture(scope="session")
def session_db(tmp_path_factory, hills_dataset):
    """A database with DM, PM, and HDoV stores over ``hills_dataset``.

    Session-scoped and read-only by convention: tests must only run
    queries against it.
    """
    path = tmp_path_factory.mktemp("session-db")
    db = Database(path / "db", pool_pages=512)
    dm = DirectMeshStore.build(
        hills_dataset.pm, db, hills_dataset.connections
    )
    pm_store = PMStore.build(hills_dataset.pm, db)
    hdov = HDoVTree.build(
        hills_dataset.pm,
        hills_dataset.field,
        db,
        connections=hills_dataset.connections,
        grid=8,
    )
    yield {"db": db, "dm": dm, "pm": pm_store, "hdov": hdov}
    db.close()


@pytest.fixture
def fresh_db(tmp_path):
    """An empty function-scoped database."""
    db = Database(tmp_path / "db", pool_pages=128)
    yield db
    db.close()
