"""Tests for approximation-quality measurement."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.geometry.primitives import Rect
from repro.terrain.analysis import measure_against_field, surface_sampler
from repro.terrain.gridfield import GridField


def flat_quad(z=5.0):
    vertices = [(0, 0, z), (10, 0, z), (10, 10, z), (0, 10, z)]
    triangles = [(0, 1, 2), (0, 2, 3)]
    return vertices, triangles


class TestSurfaceSampler:
    def test_interpolates_plane(self):
        vertices = [(0, 0, 0.0), (10, 0, 10.0), (10, 10, 20.0), (0, 10, 10.0)]
        triangles = [(0, 1, 2), (0, 2, 3)]
        sample = surface_sampler(vertices, triangles)
        # The surface z = x + y on both triangles.
        assert sample(5, 0) == pytest.approx(5.0)
        assert sample(2, 2) == pytest.approx(4.0)
        assert sample(9, 9) == pytest.approx(18.0)

    def test_outside_returns_none(self):
        sample = surface_sampler(*flat_quad())
        assert sample(50, 50) is None

    def test_rejects_empty(self):
        with pytest.raises(ReproError):
            surface_sampler([(0, 0, 0)], [])

    def test_boundary_point(self):
        sample = surface_sampler(*flat_quad())
        assert sample(0, 0) == pytest.approx(5.0)


class TestMeasureAgainstField:
    def test_exact_surface_zero_error(self):
        field = GridField(np.full((11, 11), 5.0), cell_size=1.0)
        vertices, triangles = flat_quad(z=5.0)
        err = measure_against_field(vertices, triangles, field)
        assert err.rmse == pytest.approx(0.0, abs=1e-12)
        assert err.max_error == pytest.approx(0.0, abs=1e-12)
        assert err.coverage == 1.0

    def test_offset_surface_measures_offset(self):
        field = GridField(np.full((11, 11), 5.0), cell_size=1.0)
        vertices, triangles = flat_quad(z=7.5)
        err = measure_against_field(vertices, triangles, field)
        assert err.rmse == pytest.approx(2.5)
        assert err.mean_error == pytest.approx(2.5)

    def test_no_coverage(self):
        field = GridField(np.zeros((4, 4)))
        vertices, triangles = flat_quad()
        err = measure_against_field(
            vertices, triangles, field, roi=Rect(100, 100, 120, 120)
        )
        assert err.samples == 0
        assert err.coverage == 0.0

    def test_error_tracks_query_lod(self, session_db, hills_dataset):
        """Coarser LOD queries produce larger measured vertical error —
        the end-to-end quality guarantee of the whole pipeline."""
        ds = hills_dataset
        store = session_db["dm"]
        roi = ds.bounds().scaled(0.7)
        measured = []
        for fraction in (0.005, 0.1):
            lod = ds.pm.max_lod() * fraction
            result = store.uniform_query(roi, lod)
            vertices, triangles = result.vertex_mesh()
            err = measure_against_field(
                vertices, triangles, ds.field, samples_per_side=25
            )
            assert err.samples > 0
            measured.append(err.rmse)
        assert measured[0] < measured[1]

    def test_fine_query_error_commensurate_with_lod(
        self, session_db, hills_dataset
    ):
        ds = hills_dataset
        store = session_db["dm"]
        roi = ds.bounds().scaled(0.5)
        lod = ds.pm.max_lod() * 0.05
        result = store.uniform_query(roi, lod)
        vertices, triangles = result.vertex_mesh()
        err = measure_against_field(
            vertices, triangles, ds.field, samples_per_side=25
        )
        # RMSE should be on the order of the LOD tolerance, not wildly
        # beyond it (vertical-distance errors are per-collapse, so the
        # accumulated surface deviation may exceed e somewhat).
        assert err.rmse <= lod * 4
