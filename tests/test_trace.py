"""Tests for the I/O tracer and access-pattern analysis."""

import pytest

from repro.errors import StorageError
from repro.storage.database import Database
from repro.storage.heapfile import HeapFile
from repro.storage.trace import IOTrace, IOTracer


class TestIOTrace:
    def test_empty(self):
        trace = IOTrace()
        assert len(trace) == 0
        assert trace.runs() == []
        assert trace.sequentiality == 0.0
        assert trace.distinct_pages == 0

    def test_fully_sequential(self):
        trace = IOTrace([("a", 0), ("a", 1), ("a", 2), ("a", 3)])
        assert trace.runs() == [4]
        assert trace.sequentiality == 1.0

    def test_fully_random(self):
        trace = IOTrace([("a", 9), ("a", 2), ("a", 7), ("a", 0)])
        assert trace.runs() == [1, 1, 1, 1]
        assert trace.sequentiality == 0.0

    def test_mixed_runs(self):
        trace = IOTrace(
            [("a", 0), ("a", 1), ("b", 5), ("b", 6), ("b", 7), ("a", 3)]
        )
        assert trace.runs() == [2, 3, 1]
        assert trace.sequentiality == pytest.approx(3 / 5)

    def test_segment_switch_breaks_run(self):
        trace = IOTrace([("a", 0), ("b", 1)])
        assert trace.runs() == [1, 1]

    def test_by_segment_and_summary(self):
        trace = IOTrace([("a", 0), ("b", 0), ("a", 1)])
        assert trace.by_segment() == {"a": 2, "b": 1}
        summary = trace.summary()
        assert "3 reads" in summary
        assert "a=2" in summary

    def test_distinct_counts_revisits_once(self):
        trace = IOTrace([("a", 0), ("a", 0), ("a", 1)])
        assert trace.distinct_pages == 2


class TestIOTracer:
    def test_records_real_reads(self, tmp_path):
        with Database(tmp_path / "db", pool_pages=4) as db:
            hf = HeapFile(db.segment("t"))
            rids = [hf.insert(b"x" * 2000) for _ in range(40)]
            db.begin_measured_query()
            tracer = IOTracer.attach(db.stats)
            for rid in rids[:12]:
                hf.read(rid)
            trace = tracer.detach()
            assert len(trace) == db.disk_accesses
            assert all(seg == "t" for seg, _ in trace.reads)
            # Sequential RIDs over a freshly written heap: high
            # sequentiality.
            assert trace.sequentiality > 0.5

    def test_double_attach_rejected(self, tmp_path):
        with Database(tmp_path / "db") as db:
            tracer = IOTracer.attach(db.stats)
            with pytest.raises(StorageError):
                IOTracer.attach(db.stats)
            tracer.detach()

    def test_detach_without_attach(self, tmp_path):
        with Database(tmp_path / "db") as db:
            tracer = IOTracer(db.stats)
            with pytest.raises(StorageError):
                tracer.detach()

    def test_context_manager(self, tmp_path):
        with Database(tmp_path / "db") as db:
            hf = HeapFile(db.segment("t"))
            rid = hf.insert(b"hello")
            db.begin_measured_query()
            with IOTracer.attach(db.stats) as tracer:
                hf.read(rid)
            assert db.stats.trace_hook is None
            assert len(tracer.trace) == 1

    def test_method_access_patterns_differ(self, session_db, hills_dataset):
        """DM/PM/HDoV have distinct I/O signatures (texture behind the
        paper's single DA number)."""
        db = session_db["db"]
        ds = hills_dataset
        roi = ds.bounds().scaled(0.4)
        lod = ds.pm.average_lod()

        def traced(run):
            db.begin_measured_query()
            tracer = IOTracer.attach(db.stats)
            run()
            return tracer.detach()

        dm_trace = traced(lambda: session_db["dm"].uniform_query(roi, lod))
        pm_trace = traced(lambda: session_db["pm"].uniform_query(roi, lod))
        hdov_trace = traced(
            lambda: session_db["hdov"].uniform_query(roi, lod)
        )
        # HDoV reads whole versions: the most sequential of the three.
        assert hdov_trace.sequentiality >= dm_trace.sequentiality
        assert hdov_trace.sequentiality >= pm_trace.sequentiality
        # PM touches the most pages.
        assert len(pm_trace) > len(dm_trace)
