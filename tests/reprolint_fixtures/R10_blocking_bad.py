# reprolint-fixture: path=src/repro/core/demo_blocking.py
# Three ways to stall every peer queued on the same lock: a direct
# time.sleep under the lock, a call whose *callee* (one hop down)
# opens a file, and a first-touch import inside the critical section
# (module loading does file I/O under the interpreter import lock).
import threading
import time


class Throttle:
    def __init__(self) -> None:
        self._lock = threading.Lock()

    def pace(self) -> None:
        with self._lock:
            time.sleep(0.01)  # [R10]

    def refresh(self) -> None:
        with self._lock:
            self._reload()  # [R10]

    def render(self) -> str:
        with self._lock:
            import json  # [R10]

            return json.dumps({"paced": True})

    def _reload(self) -> str:
        with open("config.json", "r", encoding="utf-8") as handle:
            return handle.read()
