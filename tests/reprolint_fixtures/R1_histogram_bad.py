# reprolint-fixture: path=src/repro/obs/demo_histogram.py
# Minimized reproduction of the Histogram.snapshot() race fixed in
# PR 2: count/total were read under the lock but the percentile
# samples were copied outside it, so a snapshot could mix two states.
import threading


class Histogram:
    def __init__(self):
        self._lock = threading.Lock()
        self._count = 0
        self._samples = []

    def observe(self, value):
        with self._lock:
            self._count += 1
            self._samples.append(value)

    def snapshot(self):
        with self._lock:
            count = self._count
        samples = sorted(self._samples)  # [R1]
        return count, samples
