# reprolint-fixture: path=src/repro/core/demo_dump.py
# Raw pread skips checksum verification; raw pwrite leaves a stale
# crc trailer that fails verification on the next pager read.
import os


def dump_page(fd, page_size, page_no):
    return os.pread(fd, page_size, page_no * page_size)  # [R7]


def patch_page(fd, page_size, page_no, data):
    os.pwrite(fd, data, page_no * page_size)  # [R7]
