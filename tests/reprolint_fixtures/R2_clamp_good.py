# reprolint-fixture: path=src/repro/core/query.py
# The fixed form: the probe height routes through clamp_lod, the
# filter keeps the real lod, so lod > e_cap returns the base mesh.
from repro.core.query import clamp_lod, filter_uniform
from repro.geometry.primitives import Box3


def uniform_query(store, roi, lod):
    probe_e = clamp_lod(lod, store.e_cap)
    plane_box = Box3.from_rect(roi, probe_e, probe_e)
    rids = store.rtree.search(plane_box)
    records = store.read_records(rids)
    return filter_uniform(records, roi, lod)
