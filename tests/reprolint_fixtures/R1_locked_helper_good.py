# reprolint-fixture: path=src/repro/core/demo_cache.py
# The *_locked suffix declares a caller-holds-the-lock contract, so a
# helper factored out of a critical section stays legal.
import threading


class Cache:
    def __init__(self):
        self._lock = threading.Lock()
        self._entries = {}
        self._bytes = 0

    def insert(self, key, entry, nbytes):
        with self._lock:
            self._entries[key] = entry
            self._bytes += nbytes

    def evict(self, key):
        with self._lock:
            self._drop_locked(key)

    def _drop_locked(self, key):
        self._entries.pop(key)
        self._bytes -= 1
