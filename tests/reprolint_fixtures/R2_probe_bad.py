# reprolint-fixture: path=src/repro/terrain/demo_probe.py
# Minimized reproduction of the e_cap blind spot fixed in PR 2: a
# module outside the sanctioned wrappers probes the R*-tree with an
# unclamped LOD, so lod > e_cap sails over every indexed segment and
# silently returns an empty mesh.
from repro.geometry.primitives import Box3


def fetch_mesh(store, roi, lod):
    plane_box = Box3.from_rect(roi, lod, lod)
    rids = store.rtree.search(plane_box)  # [R2]
    return store.read_records(rids)
