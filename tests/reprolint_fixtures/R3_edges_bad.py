# reprolint-fixture: path=src/repro/core/demo_result.py
# Minimized reproduction of the DMQueryResult._edges race fixed in
# PR 3: result objects are shared across engine worker threads, and
# the unsynchronised lazy cache let two threads build (and one
# observe a half-built) edge set.
import threading


def compute_edges():
    return set()


class QueryResult:
    def __init__(self):
        self._lock = threading.Lock()
        self._edges = None

    def edges(self):
        if self._edges is None:  # [R3]
            self._edges = compute_edges()
        return self._edges
