# reprolint-fixture: path=src/repro/obs/demo_histogram.py
# The fixed form: every field of the snapshot is read in one critical
# section, so concurrent observers can never tear it.
import threading


class Histogram:
    def __init__(self):
        self._lock = threading.Lock()
        self._count = 0
        self._samples = []

    def observe(self, value):
        with self._lock:
            self._count += 1
            self._samples.append(value)

    def snapshot(self):
        with self._lock:
            count = self._count
            samples = sorted(self._samples)
        return count, samples
