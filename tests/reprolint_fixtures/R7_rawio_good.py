# reprolint-fixture: path=src/repro/core/demo_dump.py
# Sanctioned form: route page access through the pager, which seals
# the crc trailer on write and verifies it on read.  (os.pread inside
# src/repro/storage/pager.py itself is allowed — that IS the pager.)
def dump_page(pager, page_no):
    return pager.read_page(page_no)


def patch_page(pager, page_no, data):
    pager.write_page(page_no, data)
