# reprolint-fixture: path=src/repro/core/demo_epoch_fixed.py
# The fixed form: submit() pins the snapshot exactly once through
# pinned_snapshot() and threads the frozen value; only the three
# sanctioned methods ever touch the slot.  A class with no _snap slot
# (Plain) is out of scope entirely.


class MiniEngine:
    def __init__(self, store) -> None:
        self._snap = (store, 0)

    def pinned_snapshot(self):
        return self._snap

    def install_store(self, store, epoch) -> None:
        self._snap = (store, epoch)

    def submit(self, box):
        snap = self.pinned_snapshot()
        return snap[0].search(box), snap[1]


class Plain:
    def __init__(self) -> None:
        self._snapshot = None

    def read(self):
        return self._snapshot
