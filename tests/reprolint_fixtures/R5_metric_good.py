# reprolint-fixture: path=src/repro/obs/demo_emit.py
# Registered names, registered prefixes, and dynamic names resolved
# elsewhere are all fine.
def record(metrics, n, segment, name):
    metrics.counter("engine.requests").add(n)
    metrics.counter(f"io.reads.{segment}").add(1)
    metrics.gauge(name).set(n)
