# reprolint-fixture: path=src/repro/obs/demo_emit.py
# A typo in a metric name silently forks the series; every literal
# name must come from the METRIC_NAMES registry.
def record(metrics, n):
    metrics.counter("enginee.requests").add(n)  # [R5]
    metrics.histogram("engine.query.seconds").observe(0.1)  # [R5]
