# reprolint-fixture: path=src/repro/core/demo_epoch.py
# The engine's (store, epoch) slot is swapped by patch commits; any
# method that dereferences self._snap directly — worse, twice — can
# see two different epochs inside one request.  R12 confines the slot
# to __init__/pinned_snapshot/install_store.


class MiniEngine:
    def __init__(self, store) -> None:
        self._snap = (store, 0)

    def pinned_snapshot(self):
        return self._snap

    def install_store(self, store, epoch) -> None:
        self._snap = (store, epoch)

    def submit(self, box):
        # Two dereferences: the store consulted for planning and the
        # epoch stamped on the answer may disagree across a commit.
        records = self._snap[0].search(box)  # [R12]
        return records, self._snap[1]  # [R12]

    def rebind(self, store) -> None:
        # A write outside install_store dodges cache invalidation and
        # session resync entirely.
        self._snap = (store, 99)  # [R12]
