# reprolint-fixture: path=src/repro/core/demo_batch.py
# The fixed form survives `python -O` and carries context.
from repro.errors import InvariantError


def finalize(outcomes):
    for position, outcome in enumerate(outcomes):
        if outcome is None:
            raise InvariantError("batch left a hole", position=position)
    return list(outcomes)
