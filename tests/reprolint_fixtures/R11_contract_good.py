# reprolint-fixture: path=src/repro/core/demo_contract_fixed.py
# The fixed forms: a self-call under the owner's lock, a *_locked
# helper calling a sibling *_locked helper (the contract seeds the
# held set), and a cross-object call that takes the owner's lock
# first — resolved through the constructor parameter's type.
import threading


class Ledger:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._total = 0

    def add(self, n: int) -> None:
        with self._lock:
            self._bump_locked(n)

    def add_twice(self, n: int) -> None:
        with self._lock:
            self._double_bump_locked(n)

    def _double_bump_locked(self, n: int) -> None:
        self._bump_locked(n)
        self._bump_locked(n)

    def _bump_locked(self, n: int) -> None:
        self._total += n


class Auditor:
    def __init__(self, ledger: Ledger) -> None:
        self._ledger = ledger

    def charge(self, n: int) -> None:
        with self._ledger._lock:
            self._ledger._bump_locked(n)
