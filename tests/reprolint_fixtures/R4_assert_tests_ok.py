# reprolint-fixture: path=tests/demo_test_batch.py
# Asserts are the native idiom in tests; R4 only polices src/.
def test_finalize():
    assert [1, 2] == [1, 2]
