# reprolint-fixture: path=src/repro/core/demo_inversion_fixed.py
# The fixed form of R9_inversion_bad: every path acquires Journal._lock
# before Index._lock (Index.rebuild asks the journal to drive the
# rebuild, so the cross-lock edge keeps the global Journal -> Index
# order).  The lock-order graph is acyclic and R9 stays silent.
import threading


class Journal:
    def __init__(self, index: "Index") -> None:
        self._lock = threading.Lock()
        self._index = index

    def append(self) -> None:
        with self._lock:
            self._index.touch()

    def rebuild_index(self) -> None:
        with self._lock:
            self._index.touch()


class Index:
    def __init__(self, journal: Journal) -> None:
        self._lock = threading.Lock()
        self._journal = journal

    def touch(self) -> None:
        with self._lock:
            pass

    def rebuild(self) -> None:
        self._journal.rebuild_index()
