# reprolint-fixture: path=src/repro/core/demo_result.py
# Locking the assignment without re-checking is still a race: two
# threads can pass the outer check and both build the edge set.
import threading


def compute_edges():
    return set()


class QueryResult:
    def __init__(self):
        self._lock = threading.Lock()
        self._edges = None

    def edges(self):
        if self._edges is None:  # [R3]
            with self._lock:
                self._edges = compute_edges()
        return self._edges
