# reprolint-fixture: path=tests/demo_raw_index.py
# A sanctioned escape hatch: the suppression names the rule and gives
# a reason, so the direct probe is accepted.
from repro.geometry.primitives import Box3


def probe_raw(tree):
    # reprolint: disable=R2 oracle comparison against the raw index
    return tree.search(Box3(0, 0, 0, 1, 1, 1))
