# reprolint-fixture: path=src/repro/core/demo_blocking_fixed.py
# The fixed form of R10_blocking_bad: blocking work moves out of the
# critical section.  The lock now brackets only in-memory state — the
# sleep happens after release, the file read happens before acquire,
# and the import sits at module scope where it belongs.
import json
import threading
import time


class Throttle:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._pause_s = 0.0

    def pace(self) -> None:
        with self._lock:
            pause_s = self._pause_s
        time.sleep(pause_s)

    def refresh(self) -> None:
        config = self._reload()
        with self._lock:
            self._pause_s = float(len(config)) * 0.001

    def render(self) -> str:
        with self._lock:
            paced = self._pause_s > 0
        return json.dumps({"paced": paced})

    def _reload(self) -> str:
        with open("config.json", "r", encoding="utf-8") as handle:
            return handle.read()
