# reprolint-fixture: path=src/repro/core/demo_batch.py
# Load-bearing asserts vanish under `python -O`; production invariants
# must raise typed errors instead.
def finalize(outcomes):
    assert all(o is not None for o in outcomes)  # [R4]
    return list(outcomes)
