# reprolint-fixture: path=src/repro/core/demo_inversion.py
# Two classes take each other's locks in opposite orders: Journal.append
# holds Journal._lock while reaching Index.touch (which takes
# Index._lock), and Index.rebuild holds Index._lock while reaching
# Journal.touch (which takes Journal._lock).  The cycle is only visible
# interprocedurally — each function on its own is innocent — and the
# cross-object edges need self-attribute type inference from the
# constructor parameter annotations.
import threading


class Journal:
    def __init__(self, index: "Index") -> None:
        self._lock = threading.Lock()
        self._index = index

    def append(self) -> None:
        with self._lock:
            self._index.touch()

    def touch(self) -> None:
        with self._lock:  # [R9]
            pass


class Index:
    def __init__(self, journal: Journal) -> None:
        self._lock = threading.Lock()
        self._journal = journal

    def touch(self) -> None:
        with self._lock:
            pass

    def rebuild(self) -> None:
        with self._lock:
            self._journal.touch()
