# reprolint-fixture: path=src/repro/storage/demo_latch.py
# A bare acquire() leaks the lock on any exception between acquire
# and release; use `with` or an immediate try/finally.
def drain(latch, queue):
    latch.acquire()  # [R6]
    items = list(queue)
    queue.clear()
    latch.release()
    return items
