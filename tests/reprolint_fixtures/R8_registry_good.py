# reprolint-fixture: path=src/repro/obs/metrics.py
# Well-formed registry: every name is family.metric with a declared
# family head, and prefixes end with "." for dynamic suffixes.
METRIC_NAMES: frozenset[str] = frozenset(
    {
        "engine.requests",
        "slo.queue_depth",
        "engine.query_s",
        "fsck.pages_scanned",
    }
)

METRIC_PREFIXES: frozenset[str] = frozenset(
    {
        "io.reads.",
    }
)

OTHER_NAMES = frozenset({"not.a.registry", "so R8 ignores it"})
