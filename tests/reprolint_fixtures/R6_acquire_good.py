# reprolint-fixture: path=src/repro/storage/demo_latch.py
# Sanctioned form: acquire immediately followed by try/finally that
# releases.  (A plain `with latch:` is better still.)
def drain(latch, queue):
    latch.acquire()
    try:
        items = list(queue)
        queue.clear()
    finally:
        latch.release()
    return items


def drain_with(latch, queue):
    with latch:
        items = list(queue)
        queue.clear()
    return items
