# reprolint-fixture: path=src/repro/core/demo_result.py
# The fixed form: double-checked locking.  The fast path re-reads the
# published value; builders re-check under the lock before assigning.
import threading


def compute_edges():
    return set()


class QueryResult:
    def __init__(self):
        self._lock = threading.Lock()
        self._edges = None

    def edges(self):
        cached = self._edges
        if cached is not None:
            return cached
        with self._lock:
            if self._edges is None:
                self._edges = compute_edges()
            return self._edges
