# reprolint-fixture: path=src/repro/core/query.py
# The pre-fix shape of uniform_query: the wrapper itself builds the
# query plane straight from the requested LOD with no e_cap clamp.
from repro.core.query import filter_uniform
from repro.geometry.primitives import Box3


def uniform_query(store, roi, lod):
    plane_box = Box3.from_rect(roi, lod, lod)  # [R2]
    rids = store.rtree.search(plane_box)
    records = store.read_records(rids)
    return filter_uniform(records, roi, lod)
