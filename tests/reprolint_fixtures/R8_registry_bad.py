# reprolint-fixture: path=src/repro/obs/metrics.py
# Registry entries must follow the family.metric grammar with a family
# declared in METRIC_FAMILIES; a misspelt family ("sol" for "slo")
# sails through R5 but dodges every dashboard grouping by family.
METRIC_NAMES = frozenset(
    {
        "engine.requests",
        "sol.queue_depth",  # [R8]
        "engine_requests",  # [R8]
        "engine.Query.S",  # [R8]
        "cache.hits.",  # [R8]
    }
)

METRIC_PREFIXES = frozenset(
    {
        "io.reads",  # [R8]
        "quux.segments.",  # [R8]
    }
)
