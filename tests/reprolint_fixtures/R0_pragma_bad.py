# reprolint-fixture: path=src/repro/core/demo_pragma.py
# expect: R0:8
# expect: R0:12
# A suppression without a reason, or naming an unknown rule, is
# itself a violation: every escape hatch must be justified in-repo.


def first(values):  # reprolint: disable=R4
    return values[0]


def second(values):  # reprolint: disable=R99 no such rule exists
    return values[1]
