# reprolint-fixture: path=src/repro/core/demo_contract.py
# The *_locked suffix is a caller-holds-the-lock contract.  R1 checks
# it within one function; R11 checks it across the call graph: sneak()
# reaches _bump_locked with no Ledger._lock provably held.
import threading


class Ledger:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._total = 0

    def add(self, n: int) -> None:
        with self._lock:
            self._bump_locked(n)

    def sneak(self, n: int) -> None:
        self._bump_locked(n)  # [R11]

    def _bump_locked(self, n: int) -> None:
        self._total += n
