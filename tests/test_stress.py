"""Concurrency stress tests for the storage and serving layers.

These are the tests `make stress` repeats: threads hammering a small
buffer pool while it is flushed and resized underneath them,
per-thread statistics attribution under real contention, and the
engine at ``workers=8`` with fault injection active.  They assert
invariants (no exception, no lost or cross-attributed counts, correct
page contents), not timings.
"""

import random
import threading
import time

import pytest

from repro.core import DirectMeshStore, QueryEngine
from repro.core.engine import UniformRequest
from repro.errors import PageCorruptionError, TransientIOError
from repro.geometry.primitives import Rect
from repro.storage import Database, DiskStats, FaultInjector, Pager
from repro.storage.buffer import BufferPool
from repro.terrain import dataset_by_name

STRESS_WORKERS = 8


class TestBufferPoolRaces:
    N_PAGES = 32
    PAGE_SIZE = 512

    @pytest.fixture
    def pager(self, tmp_path):
        stats = DiskStats()
        pager = Pager(
            tmp_path / "seg.dat", stats, name="seg",
            page_size=self.PAGE_SIZE,
        )
        for i in range(self.N_PAGES):
            page_no = pager.allocate()
            pager.write_page(
                page_no, bytes([i % 256]) * self.PAGE_SIZE
            )
        yield pager
        pager.close()

    def test_fetch_races_flush_and_resize(self, pager):
        """Reader threads hammer a tiny pool while the main thread
        flushes and resizes it; every fetch must return the right
        page bytes and nothing may raise."""
        pool = BufferPool(pager._stats, capacity=4)
        stop = threading.Event()
        failures: list[str] = []

        def reader(seed: int) -> None:
            rng = random.Random(seed)
            while not stop.is_set():
                page_no = rng.randrange(self.N_PAGES)
                data = pool.fetch(pager, page_no)
                if data[0] != page_no % 256:
                    failures.append(
                        f"page {page_no} returned byte {data[0]}"
                    )
                    return

        threads = [
            threading.Thread(target=reader, args=(seed,))
            for seed in range(STRESS_WORKERS)
        ]
        for thread in threads:
            thread.start()
        try:
            for i in range(200):
                if i % 3 == 0:
                    pool.flush()
                else:
                    pool.resize(2 + (i % 7))
        finally:
            stop.set()
            for thread in threads:
                thread.join()
        assert not failures
        assert pool.resident_pages() <= pool.capacity

    def test_concurrent_misses_single_physical_read(self, pager):
        """Many threads missing on the same cold page perform one
        physical read between them (stripe de-duplication)."""
        stats = pager._stats
        pool = BufferPool(stats, capacity=self.N_PAGES)
        stats.reset()
        barrier = threading.Barrier(STRESS_WORKERS)

        def fetch_same() -> None:
            barrier.wait()
            pool.fetch(pager, 7)

        threads = [
            threading.Thread(target=fetch_same)
            for _ in range(STRESS_WORKERS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert stats.physical_reads == 1
        assert stats.logical_reads == STRESS_WORKERS


class TestStatsAttribution:
    def test_probes_see_only_their_thread(self):
        """Per-thread attribute() scopes racing on one DiskStats: each
        probe must count exactly its own traffic, and the global
        counters the sum."""
        stats = DiskStats()
        results: dict[int, tuple[int, int]] = {}
        barrier = threading.Barrier(STRESS_WORKERS)

        def worker(ident: int) -> None:
            barrier.wait()
            expected = 100 + ident
            with stats.attribute() as probe:
                for _ in range(expected):
                    stats.record_logical_read(f"seg{ident % 3}")
                stats.record_physical_read(f"seg{ident % 3}", ident)
            results[ident] = (probe.logical_reads, probe.physical_reads)

        threads = [
            threading.Thread(target=worker, args=(i,))
            for i in range(STRESS_WORKERS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        for ident, (logical, physical) in results.items():
            assert logical == 100 + ident
            assert physical == ident
        assert stats.logical_reads == sum(
            100 + i for i in range(STRESS_WORKERS)
        )
        assert stats.physical_reads == sum(range(STRESS_WORKERS))

    def test_attribution_under_engine_worker_pool(self, tmp_path):
        """The engine's per-query probes, summed, equal the global
        delta even with 8 workers sharing one pool."""
        dataset = dataset_by_name("foothills", 1200, seed=23)
        with Database(tmp_path / "db", pool_pages=64) as db:
            store = DirectMeshStore.build(dataset.pm, db, dataset.connections)
            extent = store.rtree.data_space.rect
            rng = random.Random(31)
            side = 0.25 * min(extent.width, extent.height)
            requests = []
            for _ in range(24):
                x0 = extent.min_x + rng.random() * (extent.width - side)
                y0 = extent.min_y + rng.random() * (extent.height - side)
                requests.append(
                    UniformRequest(
                        Rect(x0, y0, x0 + side, y0 + side),
                        rng.random() * store.max_lod,
                    )
                )
            db.flush()
            before = db.stats.snapshot()
            with QueryEngine(
                store, workers=STRESS_WORKERS, dedup="off"
            ) as engine:
                outcomes = engine.run_batch(requests)
            delta = db.stats.snapshot().delta(before)
            assert all(o.ok for o in outcomes)
            assert delta.logical_reads == sum(
                o.metrics.logical_reads for o in outcomes
            )
            assert delta.physical_reads == sum(
                o.metrics.pages_read for o in outcomes
            )


class TestEngineUnderFaults:
    def test_eight_workers_with_faults_and_deadlines(self, tmp_path):
        """Everything at once: 8 workers, fault injection, retries and
        deadlines on — the batch completes, outcomes partition into
        ok / degraded / errored, and no exception escapes."""
        dataset = dataset_by_name("foothills", 1200, seed=23)
        with Database(tmp_path / "db", pool_pages=64) as db:
            store = DirectMeshStore.build(dataset.pm, db, dataset.connections)
            db.set_fault_injector(
                FaultInjector(
                    error_rate=0.05, latency_rate=0.1,
                    latency_s=0.0005, seed=77,
                )
            )
            extent = store.rtree.data_space.rect
            rng = random.Random(37)
            side = 0.2 * min(extent.width, extent.height)
            requests = []
            for _ in range(60):
                x0 = extent.min_x + rng.random() * (extent.width - side)
                y0 = extent.min_y + rng.random() * (extent.height - side)
                requests.append(
                    UniformRequest(
                        Rect(x0, y0, x0 + side, y0 + side),
                        rng.random() * store.max_lod,
                    )
                )
            db.flush()
            with QueryEngine(
                store,
                workers=STRESS_WORKERS,
                retries=6,
                deadline_s=30.0,
            ) as engine:
                outcomes = engine.run_batch(requests)
            db.set_fault_injector(None)
            assert len(outcomes) == len(requests)
            for outcome in outcomes:
                assert (outcome.result is None) == (outcome.error is not None)
            ok = sum(o.ok for o in outcomes)
            assert ok >= len(requests) * 0.9

    def test_eight_workers_with_corruption(self, tmp_path):
        """Corruption storm at workers=8: no exception escapes, every
        corrupted request surfaces as degraded or errored, the
        quarantine stays bounded, and the checksum counter matches the
        injector's fire count exactly."""
        dataset = dataset_by_name("foothills", 1200, seed=23)
        # A pool too small for the working set keeps every worker doing
        # physical reads, so the injector fires reliably; a warm pool
        # would absorb almost all reads and starve the corrupt path.
        with Database(tmp_path / "db", pool_pages=8) as db:
            store = DirectMeshStore.build(dataset.pm, db, dataset.connections)
            injector = FaultInjector(
                error_rate=0.02, corrupt_rate=0.1, seed=91
            )
            db.set_fault_injector(injector)
            extent = store.rtree.data_space.rect
            rng = random.Random(47)
            side = 0.2 * min(extent.width, extent.height)
            requests = []
            for _ in range(60):
                x0 = extent.min_x + rng.random() * (extent.width - side)
                y0 = extent.min_y + rng.random() * (extent.height - side)
                requests.append(
                    UniformRequest(
                        Rect(x0, y0, x0 + side, y0 + side),
                        rng.random() * store.max_lod,
                    )
                )
            db.flush()
            with QueryEngine(
                store,
                workers=STRESS_WORKERS,
                retries=4,
                quarantine_cap=16,
            ) as engine:
                outcomes = engine.run_batch(requests)
            db.set_fault_injector(None)
            assert len(outcomes) == len(requests)
            for outcome in outcomes:
                assert (outcome.result is None) == (
                    outcome.error is not None
                )
                if not outcome.ok:
                    assert isinstance(
                        outcome.error,
                        (PageCorruptionError, TransientIOError),
                    )
            assert injector.corruptions_injected > 0
            assert len(engine.quarantine) <= engine.quarantine.capacity
            assert db.crc_failures == injector.corruptions_injected


class TestReadersAcrossPatchCommits:
    """8 reader threads race 20 live patch commits.

    Every outcome must match the exact snapshot its pinned epoch
    names — never a hybrid of two epochs, never an epoch that was
    never committed.  The truth table is built by the writer as it
    goes: after each commit it queries the (single-writer) store
    directly and records the digest for that epoch.
    """

    GRID = 17
    TILE_VERTS = 9
    N_PATCHES = 20
    LOD_FRACTION = 0.6

    def test_every_read_lands_on_a_committed_snapshot(self, tmp_path):
        import numpy as np

        from repro.core.cache import SemanticCache
        from repro.core.mutate import MutableStore
        from repro.terrain.dem import DEM
        from repro.terrain.gridfield import GridField

        rng = np.random.default_rng(17)
        dem = DEM(
            GridField(
                rng.uniform(0.0, 30.0, (self.GRID, self.GRID)),
                cell_size=1.0,
            )
        )
        extent = dem.field.bounds()
        db = Database(tmp_path / "db")
        ms = MutableStore.build(
            dem, db, prefix="dm", tile_verts=self.TILE_VERTS
        )
        lod = ms.store.max_lod * self.LOD_FRACTION

        def digest(store):
            result = store.uniform_query(extent, lod)
            return {
                nid: (r.x, r.y, r.z, tuple(r.connections))
                for nid, r in result.nodes.items()
            }

        truth = {0: digest(ms.store)}
        truth_lock = threading.Lock()
        engine = QueryEngine(
            ms.store,
            epoch=ms.epoch,
            workers=STRESS_WORKERS,
            cache=SemanticCache(1 << 22),
        )
        ms.attach(engine)
        request = UniformRequest(extent, lod)
        stop = threading.Event()
        failures: list[str] = []

        def reader(seed: int) -> None:
            while not stop.is_set():
                outcome = engine.submit(request).result()
                if not outcome.ok:
                    failures.append(f"reader error: {outcome.error!r}")
                    return
                epoch = outcome.metrics.epoch
                # The engine swaps snapshots before apply_patch
                # returns to the writer, so a reader can pin the new
                # epoch a beat before the writer records its digest:
                # wait it out (bounded) before calling foul.
                expected = None
                deadline = time.monotonic() + 10.0
                while expected is None and time.monotonic() < deadline:
                    with truth_lock:
                        expected = truth.get(epoch)
                    if expected is None:
                        time.sleep(0.005)
                if expected is None:
                    failures.append(
                        f"served epoch {epoch} before/without commit"
                    )
                    return
                got = {
                    nid: (r.x, r.y, r.z, tuple(r.connections))
                    for nid, r in outcome.result.nodes.items()
                }
                if got != expected:
                    failures.append(
                        f"epoch {epoch}: result is not that epoch's "
                        f"snapshot ({len(got)} vs {len(expected)} nodes)"
                    )
                    return
                # A beat of backoff: zero-sleep readers starve the
                # writer thread under the GIL (one patch can take
                # minutes), without making the race any more likely.
                time.sleep(0.001)

        threads = [
            threading.Thread(target=reader, args=(i,), daemon=True)
            for i in range(STRESS_WORKERS)
        ]
        for thread in threads:
            thread.start()
        try:
            prng = random.Random(29)
            for i in range(self.N_PATCHES):
                r0 = prng.randrange(0, self.GRID - 1)
                c0 = prng.randrange(0, self.GRID - 1)
                r1 = prng.randrange(r0 + 1, self.GRID)
                c1 = prng.randrange(c0 + 1, self.GRID)
                heights = np.random.default_rng(100 + i).uniform(
                    0.0, 30.0, (r1 - r0 + 1, c1 - c0 + 1)
                )
                report = ms.apply_patch(
                    Rect(float(c0), float(r0), float(c1), float(r1)),
                    heights,
                )
                # Record the new truth *after* the commit flipped: a
                # reader that pinned the new epoch can only have done
                # so after install_store, which this ordering covers
                # (digest reads the single-writer handle, no racing
                # mutation is possible).
                with truth_lock:
                    truth[report.to_epoch] = digest(ms.store)
                if failures:
                    break
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=30)
            engine.close()
            db.close()
        assert not failures, failures[0]
        assert ms.epoch == self.N_PATCHES or failures
