"""Tests for the Database facade and failure injection."""

import pytest

from repro.errors import PageError, StorageError
from repro.storage.database import Database
from repro.storage.heapfile import HeapFile
from repro.storage.page import SlottedPage


class TestDatabase:
    def test_segment_creation(self, tmp_path):
        with Database(tmp_path / "db") as db:
            seg = db.segment("table_a")
            assert seg.name == "table_a"
            assert db.has_segment("table_a")  # Created on open.
            seg.allocate()
        with Database(tmp_path / "db") as db:
            assert db.has_segment("table_a")
            assert db.segment_names() == ["table_a"]

    def test_same_segment_shared(self, tmp_path):
        with Database(tmp_path / "db") as db:
            a = db.segment("x")
            b = db.segment("x")
            page_no, buf = a.allocate()
            buf[0] = 0x5A
            a.mark_dirty(page_no)
            assert b.fetch(page_no)[0] == 0x5A

    def test_overwrite_clears(self, tmp_path):
        path = tmp_path / "db"
        with Database(path) as db:
            db.segment("x").allocate()
        with Database(path, overwrite=True) as db:
            assert db.segment_names() == []

    def test_closed_database_raises(self, tmp_path):
        db = Database(tmp_path / "db")
        db.close()
        with pytest.raises(StorageError):
            db.segment("x")
        db.close()  # Idempotent.

    def test_begin_measured_query_flushes(self, tmp_path):
        with Database(tmp_path / "db", pool_pages=16) as db:
            seg = db.segment("x")
            page_no, _ = seg.allocate()
            seg.fetch(page_no)
            db.begin_measured_query()
            assert db.disk_accesses == 0
            seg.fetch(page_no)
            assert db.disk_accesses == 1  # Cold again after flush.

    def test_durability_through_buffer(self, tmp_path):
        path = tmp_path / "db"
        with Database(path, pool_pages=4) as db:
            hf = HeapFile(db.segment("t"))
            rids = [hf.insert(f"r{i}".encode() * 50) for i in range(200)]
        # Reopen: every record must have reached disk via eviction or
        # the close-time flush.
        with Database(path, pool_pages=4) as db:
            hf = HeapFile(db.segment("t"))
            for i, rid in enumerate(rids):
                assert hf.read(rid) == f"r{i}".encode() * 50


class TestFailureInjection:
    def test_truncated_segment_detected(self, tmp_path):
        path = tmp_path / "db"
        with Database(path) as db:
            db.segment("t").allocate()
        # Corrupt: truncate the file to a non-page-multiple size.
        seg_file = path / "t.seg"
        data = seg_file.read_bytes()
        seg_file.write_bytes(data[: len(data) - 100])
        with Database(path) as db:
            with pytest.raises(StorageError):
                db.segment("t")

    def test_corrupt_slot_directory(self, tmp_path):
        with Database(tmp_path / "db") as db:
            hf = HeapFile(db.segment("t"))
            rid = hf.insert(b"victim")
            # Scribble over the slot directory in the buffered page.
            # (It ends at payload_size: under the v2 format the last 4
            # bytes of the raw page are the crc trailer, not the
            # directory.)
            seg = db.segment("t")
            buf = seg.fetch(0)
            buf[seg.payload_size - 4 : seg.payload_size] = b"\xff\xff\xff\xff"
            db.segment("t").mark_dirty(0)
            with pytest.raises(PageError):
                hf.read(rid)

    def test_page_view_rejects_short_buffer(self):
        with pytest.raises(PageError):
            SlottedPage(bytearray(10), page_size=8192)

    def test_reading_foreign_format_fails_cleanly(self, tmp_path):
        from repro.errors import IndexError_, RecordError
        from repro.index.rstar import RStarTree
        from repro.storage.record import decode_pm_node

        with Database(tmp_path / "db") as db:
            hf = HeapFile(db.segment("t"))
            rid = hf.insert(b"not a PM record")
            with pytest.raises(RecordError):
                decode_pm_node(hf.read(rid))
            with pytest.raises(IndexError_):
                RStarTree(db.segment("t"))
