"""Tests for the runtime lock-order witness (repro.obs.lockwatch).

Three layers:

- unit: the env gate, the recorder, cycle detection, and the merge
  dump used to accumulate graphs across stress processes;
- a deliberate inversion: two watched locks acquired in opposite
  orders (sequentially — no real deadlock) must produce a cycle in
  the recorded graph;
- integration: build a real store and engine with instrumentation
  on, run queries, and require the observed lock-order graph to be
  acyclic *and* a subgraph of the static lock-order graph computed
  by the interprocedural lockset analysis.  That last containment is
  the point of the whole subsystem: anything the runtime sees that
  the static analysis cannot is a blind spot to fix.
"""

import json
import threading
from pathlib import Path

import pytest

from repro.obs import lockwatch
from repro.obs.lockwatch import (
    WatchedLock,
    find_cycle,
    watch,
    watched_lock,
)

REPO_ROOT = Path(__file__).resolve().parents[1]


@pytest.fixture
def watching(monkeypatch):
    """Enable instrumentation and hand back a clean recorder."""
    monkeypatch.setenv(lockwatch.ENV_FLAG, "1")
    lockwatch.reset()
    yield watch()
    lockwatch.reset()


# -- env gate ----------------------------------------------------------------


def test_disabled_by_default_returns_plain_lock(monkeypatch):
    monkeypatch.delenv(lockwatch.ENV_FLAG, raising=False)
    lock = watched_lock("Demo._lock")
    assert not isinstance(lock, WatchedLock)
    assert isinstance(lock, type(threading.Lock()))


def test_zero_means_disabled(monkeypatch):
    monkeypatch.setenv(lockwatch.ENV_FLAG, "0")
    assert not lockwatch.enabled()
    assert not isinstance(watched_lock("Demo._lock"), WatchedLock)


def test_enabled_returns_watched_lock(watching):
    lock = watched_lock("Demo._lock")
    assert isinstance(lock, WatchedLock)
    with lock:
        assert lock.locked()
    assert not lock.locked()


# -- recorder ----------------------------------------------------------------


def test_nested_acquisition_records_edge(watching):
    outer = watched_lock("Demo._outer")
    inner = watched_lock("Demo._inner")
    with outer:
        with inner:
            pass
    assert watching.edges() == {("Demo._outer", "Demo._inner"): 1}
    assert watching.locks() == {"Demo._outer", "Demo._inner"}


def test_reacquiring_same_name_records_no_self_edge(watching):
    # Striped locks share one logical name; holding two stripes must
    # not read as a self-deadlock.
    stripe_a = watched_lock("Demo._stripes")
    stripe_b = watched_lock("Demo._stripes")
    with stripe_a:
        with stripe_b:
            pass
    assert watching.edges() == {}


def test_deliberate_inversion_yields_cycle(watching):
    alpha = watched_lock("Demo._alpha")
    beta = watched_lock("Demo._beta")
    with alpha:
        with beta:
            pass
    with beta:
        with alpha:
            pass
    edges = watching.edges()
    assert ("Demo._alpha", "Demo._beta") in edges
    assert ("Demo._beta", "Demo._alpha") in edges
    cycle = find_cycle(edges)
    assert cycle is not None
    assert set(cycle) >= {"Demo._alpha", "Demo._beta"}


def test_consistent_order_has_no_cycle(watching):
    alpha = watched_lock("Demo._alpha")
    beta = watched_lock("Demo._beta")
    for _ in range(3):
        with alpha:
            with beta:
                pass
    assert find_cycle(watching.edges()) is None


def test_dump_merges_across_runs(watching, tmp_path):
    out = tmp_path / "lockorder.json"
    outer = watched_lock("Demo._outer")
    inner = watched_lock("Demo._inner")
    with outer, inner:
        pass
    watching.dump(str(out))
    # A second process' worth of observations accumulates counts.
    watching.dump(str(out))
    data = json.loads(out.read_text(encoding="utf-8"))
    assert data["version"] == 1
    assert data["locks"] == ["Demo._inner", "Demo._outer"]
    assert data["edges"] == [["Demo._outer", "Demo._inner", 2]]


def test_dump_tolerates_corrupt_existing_file(watching, tmp_path):
    out = tmp_path / "lockorder.json"
    out.write_text("not json", encoding="utf-8")
    lock = watched_lock("Demo._lock")
    with lock:
        pass
    watching.dump(str(out))
    data = json.loads(out.read_text(encoding="utf-8"))
    assert data["locks"] == ["Demo._lock"]


# -- dynamic graph vs. static graph ------------------------------------------


def _static_edge_set() -> set:
    from repro.analysis.locksets import analyze_paths

    analysis = analyze_paths(
        [str(REPO_ROOT / "src" / "repro")], root=str(REPO_ROOT)
    )
    return set(analysis.order.edges)


@pytest.mark.slow
def test_engine_lock_order_is_acyclic_and_within_static(
    watching, tmp_path, hills_dataset
):
    # Built *after* the env flip, so every watched_lock() call in the
    # storage and engine layers hands back an instrumented lock.
    from repro.core.direct_mesh import DirectMeshStore
    from repro.core.engine import QueryEngine, UniformRequest
    from repro.storage.database import Database

    db = Database(tmp_path / "db", pool_pages=64)
    try:
        store = DirectMeshStore.build(
            hills_dataset.pm, db, hills_dataset.connections
        )
        extent = store.rtree.data_space.rect
        with QueryEngine(store, workers=4) as engine:
            futures = [
                engine.submit(
                    UniformRequest(extent, frac * store.max_lod)
                )
                for frac in (0.1, 0.3, 0.5)
            ]
            for future in futures:
                assert future.result(timeout=60).ok
    finally:
        db.close()

    dynamic = watching.edges()
    assert dynamic, "instrumentation recorded no lock nesting at all"
    assert find_cycle(dynamic) is None

    static = _static_edge_set()
    unexplained = sorted(set(dynamic) - static)
    assert not unexplained, (
        "runtime lock-order edges missing from the static graph "
        f"(analysis blind spot): {unexplained}"
    )
