"""Tests for the terrain substrate: rasters, generators, DEMs, datasets."""

import numpy as np
import pytest

from repro.errors import DatasetError
from repro.terrain.dem import DEM
from repro.terrain.gridfield import GridField
from repro.terrain.synthetic import (
    crater_field,
    fractal_field,
    gaussian_hills_field,
    ridge_field,
)


class TestGridField:
    def test_validation(self):
        with pytest.raises(DatasetError):
            GridField(np.zeros((1, 5)))
        with pytest.raises(DatasetError):
            GridField(np.zeros((5, 5)), cell_size=0)

    def test_bounds(self):
        f = GridField(np.zeros((5, 9)), cell_size=2.0, origin=(10, 20))
        assert f.bounds().as_tuple() == (10, 20, 26, 28)

    def test_sample_exact_and_interpolated(self):
        f = GridField(np.array([[0.0, 1.0], [2.0, 3.0]]), cell_size=1.0)
        assert f.sample(0, 0) == 0.0
        assert f.sample(1, 1) == 3.0
        assert f.sample(0.5, 0.5) == pytest.approx(1.5)
        assert f.sample(0.5, 0.0) == pytest.approx(0.5)

    def test_sample_clamps_outside(self):
        f = GridField(np.array([[0.0, 1.0], [2.0, 3.0]]))
        assert f.sample(-5, -5) == 0.0
        assert f.sample(99, 99) == 3.0

    def test_sample_many_matches_scalar(self):
        rng = np.random.default_rng(0)
        f = GridField(rng.uniform(0, 10, (16, 16)), cell_size=3.0)
        xs = rng.uniform(0, 45, 50)
        ys = rng.uniform(0, 45, 50)
        vec = f.sample_many(xs, ys)
        for x, y, v in zip(xs, ys, vec):
            assert f.sample(x, y) == pytest.approx(v)

    def test_line_of_sight_flat(self):
        f = GridField(np.zeros((16, 16)))
        assert f.line_of_sight((0, 0, 1.0), (15, 15, 1.0))

    def test_line_of_sight_blocked(self):
        heights = np.zeros((16, 16))
        heights[8, :] = 50.0
        f = GridField(heights)
        assert not f.line_of_sight((8.0, 0.0, 1.0), (8.0, 15.0, 1.0))

    def test_downsampled(self):
        f = GridField(np.arange(81, dtype=float).reshape(9, 9))
        d = f.downsampled(2)
        assert d.n_rows == 5
        assert d.cell_size == 2.0
        assert d.heights[0, 0] == 0.0
        assert d.heights[1, 1] == f.heights[2, 2]
        with pytest.raises(DatasetError):
            f.downsampled(0)


class TestGenerators:
    def test_fractal_deterministic(self):
        a = fractal_field(exponent=5, seed=9)
        b = fractal_field(exponent=5, seed=9)
        assert np.array_equal(a.heights, b.heights)
        c = fractal_field(exponent=5, seed=10)
        assert not np.array_equal(a.heights, c.heights)

    def test_fractal_size(self):
        f = fractal_field(exponent=6)
        assert f.heights.shape == (65, 65)

    def test_fractal_validation(self):
        with pytest.raises(DatasetError):
            fractal_field(roughness=1.5)
        with pytest.raises(DatasetError):
            fractal_field(exponent=0)

    def test_fractal_has_multiscale_detail(self):
        f = fractal_field(exponent=7, seed=1)
        h = f.heights
        coarse_var = np.var(h[::16, ::16])
        assert coarse_var > 0
        local_diff = np.abs(np.diff(h, axis=0)).mean()
        assert local_diff > 0

    def test_crater_profile(self):
        f = crater_field(exponent=6, noise_amplitude=0.0, seed=0)
        n = f.heights.shape[0]
        center = f.heights[n // 2, n // 2]
        rim = f.heights[n // 2, int(n * (0.5 + 0.55 / 2))]
        corner = f.heights[0, 0]
        assert rim > center  # Rim stands above the bowl floor.
        assert rim > corner  # And above the outer flank.

    def test_ridge_field_shape(self):
        f = ridge_field(exponent=5, seed=3)
        assert f.heights.shape == (33, 33)

    def test_gaussian_hills(self):
        f = gaussian_hills_field(size=40, n_hills=5, seed=2)
        assert f.heights.shape == (40, 40)
        assert f.elevation_range()[1] > f.elevation_range()[0]
        with pytest.raises(DatasetError):
            gaussian_hills_field(size=1)


class TestDEM:
    def test_grid_trimesh(self):
        dem = DEM(gaussian_hills_field(size=20, seed=4))
        mesh = dem.to_grid_trimesh()
        assert mesh.n_vertices == 400
        mesh.validate_topology()

    def test_grid_trimesh_downsampled(self):
        dem = DEM(gaussian_hills_field(size=40, seed=4))
        mesh = dem.to_grid_trimesh(max_points=200)
        assert mesh.n_vertices <= 400

    def test_scattered_trimesh(self):
        dem = DEM(gaussian_hills_field(size=30, seed=5))
        mesh = dem.to_scattered_trimesh(500, seed=5)
        assert mesh.n_vertices == 500
        mesh.validate_topology()
        # Corners present so the TIN spans the extent.
        bounds = dem.bounds()
        vertex_xy = {(v[0], v[1]) for v in mesh.vertices}
        assert (bounds.min_x, bounds.min_y) in vertex_xy
        assert (bounds.max_x, bounds.max_y) in vertex_xy

    def test_scattered_deterministic(self):
        dem = DEM(gaussian_hills_field(size=30, seed=5))
        a = dem.to_scattered_trimesh(300, seed=1)
        b = dem.to_scattered_trimesh(300, seed=1)
        assert a.vertices == b.vertices

    def test_scattered_too_few(self):
        dem = DEM(gaussian_hills_field(size=30, seed=5))
        with pytest.raises(DatasetError):
            dem.to_scattered_trimesh(3)

    def test_elevations_sampled_from_field(self):
        field = gaussian_hills_field(size=30, seed=6)
        dem = DEM(field)
        mesh = dem.to_scattered_trimesh(100, seed=2)
        for x, y, z in mesh.vertices[:20]:
            assert z == pytest.approx(field.sample(x, y))


class TestDatasets:
    def test_roi_for_fraction(self, hills_dataset):
        bounds = hills_dataset.bounds()
        roi = hills_dataset.roi_for_fraction(
            0.1, bounds.center.x, bounds.center.y
        )
        assert roi.area == pytest.approx(bounds.area * 0.1, rel=0.01)
        assert bounds.contains_rect(roi)

    def test_roi_clamped_to_bounds(self, hills_dataset):
        bounds = hills_dataset.bounds()
        roi = hills_dataset.roi_for_fraction(0.2, bounds.min_x, bounds.min_y)
        assert bounds.contains_rect(roi)

    def test_roi_validation(self, hills_dataset):
        with pytest.raises(DatasetError):
            hills_dataset.roi_for_fraction(0.0, 0, 0)

    def test_scale_factor_env(self, monkeypatch):
        from repro.terrain.datasets import scale_factor

        monkeypatch.setenv("REPRO_SCALE", "2.5")
        assert scale_factor() == 2.5
        monkeypatch.setenv("REPRO_SCALE", "zero")
        with pytest.raises(DatasetError):
            scale_factor()
        monkeypatch.setenv("REPRO_SCALE", "-1")
        with pytest.raises(DatasetError):
            scale_factor()

    def test_dataset_by_name_unknown(self):
        from repro.terrain.datasets import dataset_by_name

        with pytest.raises(DatasetError):
            dataset_by_name("atlantis")


class TestDEMPatchValidation:
    """apply_patch must reject malformed patches atomically: every
    error raises PatchError with actionable context and leaves the
    grid untouched (no half-applied patch)."""

    def _dem(self) -> DEM:
        return DEM(GridField(np.zeros((9, 9)), cell_size=2.0))

    def _assert_rejected(self, dem, region, heights, fragment):
        from repro.errors import PatchError

        before = dem.field.heights.copy()
        with pytest.raises(PatchError) as excinfo:
            dem.apply_patch(region, heights)
        assert fragment in str(excinfo.value)
        assert excinfo.value.context.get("region") is not None
        np.testing.assert_array_equal(dem.field.heights, before)

    def test_zero_area_region(self):
        from repro.geometry.primitives import Rect

        dem = self._dem()
        self._assert_rejected(
            dem, Rect(4.0, 4.0, 4.0, 8.0), np.zeros((3, 1)), "zero"
        )
        self._assert_rejected(
            dem, Rect(4.0, 8.0, 8.0, 8.0), np.zeros((1, 3)), "zero"
        )
        self._assert_rejected(
            dem, Rect(4.0, 4.0, 4.0, 4.0), np.zeros((1, 1)), "zero"
        )

    def test_region_outside_bounds(self):
        from repro.geometry.primitives import Rect

        dem = self._dem()
        self._assert_rejected(
            dem, Rect(12.0, 0.0, 20.0, 4.0), np.zeros((3, 5)), "outside"
        )

    def test_off_grid_region(self):
        from repro.geometry.primitives import Rect

        dem = self._dem()  # cell_size 2.0: odd coordinates are off-grid
        self._assert_rejected(
            dem, Rect(1.0, 0.0, 5.0, 4.0), np.zeros((3, 3)), "aligned"
        )
        self._assert_rejected(
            dem, Rect(0.0, 0.0, 4.0 + 1e-4, 4.0), np.zeros((3, 3)), "aligned"
        )

    def test_shape_mismatch(self):
        from repro.geometry.primitives import Rect

        dem = self._dem()
        self._assert_rejected(
            dem, Rect(0.0, 0.0, 4.0, 4.0), np.zeros((2, 2)), "window"
        )

    def test_non_numeric_and_non_finite(self):
        from repro.geometry.primitives import Rect

        dem = self._dem()
        self._assert_rejected(
            dem,
            Rect(0.0, 0.0, 2.0, 2.0),
            np.array([["a", "b"], ["c", "d"]]),
            "numeric",
        )
        bad = np.zeros((2, 2))
        bad[0, 1] = np.nan
        self._assert_rejected(
            dem, Rect(0.0, 0.0, 2.0, 2.0), bad, "finite"
        )

    def test_valid_patch_applies_and_echoes_region(self):
        from repro.geometry.primitives import Rect

        dem = self._dem()
        region = Rect(2.0, 4.0, 6.0, 8.0)
        echoed = dem.apply_patch(region, np.full((3, 3), 7.5))
        assert echoed is region
        np.testing.assert_array_equal(
            dem.field.heights[2:5, 1:4], np.full((3, 3), 7.5)
        )
        assert float(dem.field.heights.sum()) == pytest.approx(9 * 7.5)

    def test_tolerates_float_jitter_on_grid_points(self):
        from repro.geometry.primitives import Rect

        dem = self._dem()
        region = Rect(2.0 + 1e-12, 4.0, 6.0, 8.0 - 1e-12)
        dem.apply_patch(region, np.full((3, 3), 1.0))
        assert float(dem.field.heights.sum()) == pytest.approx(9.0)
