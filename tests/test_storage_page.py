"""Tests for slotted pages."""

import pytest

from repro.errors import PageError
from repro.storage.page import DEFAULT_PAGE_SIZE, SlottedPage


@pytest.fixture
def page():
    return SlottedPage.format(bytearray(DEFAULT_PAGE_SIZE))


class TestSlottedPage:
    def test_insert_read_roundtrip(self, page):
        slot = page.insert(b"hello")
        assert slot == 0
        assert page.read(slot) == b"hello"

    def test_multiple_records(self, page):
        slots = [page.insert(f"rec-{i}".encode()) for i in range(10)]
        assert slots == list(range(10))
        for i, slot in enumerate(slots):
            assert page.read(slot) == f"rec-{i}".encode()

    def test_variable_lengths(self, page):
        a = page.insert(b"x")
        b = page.insert(b"y" * 1000)
        c = page.insert(b"")
        assert page.read(a) == b"x"
        assert page.read(b) == b"y" * 1000
        assert page.read(c) == b""

    def test_overflow_raises(self, page):
        big = b"z" * 4000
        page.insert(big)
        page.insert(big)
        with pytest.raises(PageError):
            page.insert(big)

    def test_can_fit_accounts_for_slot_entry(self, page):
        free = page.free_space()
        assert page.can_fit(free - 4)
        assert not page.can_fit(free - 3)

    def test_delete(self, page):
        slot = page.insert(b"gone")
        keep = page.insert(b"kept")
        page.delete(slot)
        assert page.is_deleted(slot)
        with pytest.raises(PageError):
            page.read(slot)
        with pytest.raises(PageError):
            page.delete(slot)
        assert page.records() == [(keep, b"kept")]

    def test_bad_slot(self, page):
        with pytest.raises(PageError):
            page.read(0)
        page.insert(b"a")
        with pytest.raises(PageError):
            page.read(5)

    def test_reinterpret_existing_buffer(self, page):
        page.insert(b"persisted")
        # A fresh view over the same bytes sees the record.
        view = SlottedPage(page._buf)
        assert view.read(0) == b"persisted"

    def test_small_page_size(self):
        page = SlottedPage.format(bytearray(64), page_size=64)
        slot = page.insert(b"tiny")
        assert page.read(slot) == b"tiny"
        with pytest.raises(PageError):
            page.insert(b"v" * 60)
