"""Tests for the disk-backed R*-tree."""
# reprolint: disable-file=R2 unit tests exercise the raw R*-tree on purpose

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.errors import IndexError_
from repro.geometry.primitives import Box3
from repro.index.rstar import RStarTree, str_order
from repro.storage.database import Database


def random_boxes(n, seed=0, span=100.0):
    rng = random.Random(seed)
    boxes = []
    for _ in range(n):
        x, y, e = (rng.uniform(0, span) for _ in range(3))
        boxes.append(
            Box3(
                x,
                y,
                e,
                x + rng.uniform(0, 2),
                y + rng.uniform(0, 2),
                e + rng.uniform(0, 2),
            )
        )
    return boxes


def brute_force(boxes, query):
    return sorted(i for i, b in enumerate(boxes) if b.intersects(query))


@pytest.fixture
def tree(fresh_db):
    return RStarTree(fresh_db.segment("rt"))


class TestInsertSearch:
    def test_empty_search(self, tree):
        assert tree.search(Box3(0, 0, 0, 1, 1, 1)) == []

    def test_single(self, tree):
        b = Box3(1, 1, 1, 2, 2, 2)
        tree.insert(b, 99)
        assert tree.search(Box3(0, 0, 0, 3, 3, 3)) == [99]
        assert tree.search(Box3(5, 5, 5, 6, 6, 6)) == []

    def test_matches_brute_force(self, tree):
        boxes = random_boxes(800, seed=1)
        for i, b in enumerate(boxes):
            tree.insert(b, i)
        tree.validate()
        for qseed in range(5):
            rng = random.Random(qseed + 100)
            x, y, e = (rng.uniform(0, 80) for _ in range(3))
            q = Box3(x, y, e, x + 25, y + 25, e + 25)
            assert sorted(tree.search(q)) == brute_force(boxes, q)

    def test_degenerate_segments(self, tree):
        # Vertical segments (the DM shape): zero x/y extent.
        segs = [
            Box3.vertical_segment(i * 1.0, i * 2.0, 0.0, i * 0.5 + 0.1)
            for i in range(300)
        ]
        for i, s in enumerate(segs):
            tree.insert(s, i)
        tree.validate()
        plane = Box3(0, 0, 5.0, 300, 600, 5.0)
        got = sorted(tree.search(plane))
        want = brute_force(segs, plane)
        assert got == want

    def test_duplicate_boxes(self, tree):
        b = Box3(0, 0, 0, 1, 1, 1)
        for i in range(200):
            tree.insert(b, i)
        assert sorted(tree.search(b)) == list(range(200))


class TestBulkLoad:
    def test_matches_brute_force(self, fresh_db):
        boxes = random_boxes(2000, seed=2)
        tree = RStarTree(fresh_db.segment("bulk"))
        tree.bulk_load([(b, i) for i, b in enumerate(boxes)])
        tree.validate()
        q = Box3(10, 10, 10, 50, 40, 30)
        assert sorted(tree.search(q)) == brute_force(boxes, q)
        assert len(tree) == 2000

    def test_bulk_requires_empty(self, tree):
        tree.insert(Box3(0, 0, 0, 1, 1, 1), 0)
        with pytest.raises(IndexError_):
            tree.bulk_load([(Box3(0, 0, 0, 1, 1, 1), 1)])

    def test_insert_after_bulk(self, fresh_db):
        tree = RStarTree(fresh_db.segment("b2"))
        boxes = random_boxes(500, seed=3)
        tree.bulk_load([(b, i) for i, b in enumerate(boxes)])
        extra = Box3(200, 200, 200, 201, 201, 201)
        tree.insert(extra, 999)
        tree.validate()
        assert tree.search(extra) == [999]

    def test_all_entries(self, fresh_db):
        tree = RStarTree(fresh_db.segment("ae"))
        boxes = random_boxes(100, seed=4)
        tree.bulk_load([(b, i) for i, b in enumerate(boxes)])
        assert sorted(v for _, v in tree.all_entries()) == list(range(100))


class TestStats:
    def test_node_stats_estimate_tracks_reality(self, fresh_db):
        boxes = random_boxes(3000, seed=5)
        tree = RStarTree(fresh_db.segment("st"))
        tree.bulk_load([(b, i) for i, b in enumerate(boxes)])
        stats = tree.node_stats()
        small = Box3(0, 0, 0, 5, 5, 5)
        large = Box3(0, 0, 0, 60, 60, 60)
        est_small = stats.estimate_disk_accesses(small)
        est_large = stats.estimate_disk_accesses(large)
        assert est_small < est_large
        # Estimate within a loose factor of the true page count.
        fresh_db.begin_measured_query()
        tree.search(large)
        actual = fresh_db.disk_accesses
        assert 0.2 * actual <= est_large <= 5 * actual

    def test_empty_tree_stats_raise(self, tree):
        with pytest.raises(IndexError_):
            tree.node_stats()


class TestStrOrder:
    def test_permutation(self):
        boxes = random_boxes(500, seed=6)
        order = str_order(boxes)
        assert sorted(order) == list(range(500))

    def test_groups_are_spatially_local(self):
        boxes = random_boxes(1000, seed=7)
        order = str_order(boxes, capacity=50)
        # Consecutive chunks of 50 should have small extents relative
        # to the whole space.
        for start in range(0, 1000, 200):
            chunk = [boxes[i] for i in order[start : start + 50]]
            min_x = min(b.min_x for b in chunk)
            max_x = max(b.max_x for b in chunk)
            assert max_x - min_x < 110  # Not the whole 100-space + box.


class TestPersistence:
    def test_reopen(self, tmp_path):
        boxes = random_boxes(400, seed=8)
        with Database(tmp_path / "db") as db:
            tree = RStarTree(db.segment("rt"))
            tree.bulk_load([(b, i) for i, b in enumerate(boxes)])
        with Database(tmp_path / "db") as db:
            tree = RStarTree(db.segment("rt"))
            q = Box3(20, 20, 20, 40, 40, 40)
            assert sorted(tree.search(q)) == brute_force(boxes, q)

    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(st.integers(0, 10**6))
    def test_random_queries_after_reload(self, tmp_path, qseed):
        # Build once per example in a unique directory.
        boxes = random_boxes(150, seed=9)
        with Database(tmp_path / f"db{qseed}") as db:
            tree = RStarTree(db.segment("rt"))
            for i, b in enumerate(boxes):
                tree.insert(b, i)
            rng = random.Random(qseed)
            x, y, e = (rng.uniform(0, 90) for _ in range(3))
            q = Box3(x, y, e, x + rng.uniform(1, 30), y + rng.uniform(1, 30),
                     e + rng.uniform(1, 30))
            assert sorted(tree.search(q)) == brute_force(boxes, q)
