"""Tests for edge-collapse PM construction."""

import pytest

from repro.errors import SimplificationError
from repro.mesh.progressive import NULL_ID
from repro.mesh.simplify import SimplifyConfig, simplify_to_pm
from repro.mesh.trimesh import TriMesh
from tests.conftest import make_wavy_grid_mesh


class TestConfig:
    def test_rejects_unknown_measure(self):
        with pytest.raises(ValueError):
            SimplifyConfig(error_measure="hausdorff")

    def test_rejects_unknown_placement(self):
        with pytest.raises(ValueError):
            SimplifyConfig(placement="random")


class TestStructure:
    def test_empty_mesh_rejected(self):
        with pytest.raises(SimplificationError):
            simplify_to_pm(TriMesh([(0, 0, 0)], []))

    def test_leaves_are_original_vertices(self, wavy_mesh, wavy_pm):
        assert wavy_pm.n_leaves == wavy_mesh.n_vertices
        for i in range(wavy_pm.n_leaves):
            node = wavy_pm.node(i)
            assert node.is_leaf
            assert (node.x, node.y, node.z) == wavy_mesh.vertices[i]

    def test_collapses_to_single_root(self, wavy_pm):
        # A connected terrain should collapse to one root (or very few
        # if boundary constraints block late collapses).
        assert len(wavy_pm.roots) <= 3

    def test_binary_tree_node_count(self, wavy_pm):
        # Every internal node merges exactly two: n_internal =
        # n_leaves - n_roots.
        n_internal = len(wavy_pm.nodes) - wavy_pm.n_leaves
        assert n_internal == wavy_pm.n_leaves - len(wavy_pm.roots)

    def test_structure_validates(self, wavy_pm):
        wavy_pm.validate()

    def test_children_precede_parents(self, wavy_pm):
        for node in wavy_pm.internal_nodes:
            assert node.child1 < node.id
            assert node.child2 < node.id
            assert node.child1 != node.child2

    def test_wings_are_distinct_from_children(self, wavy_pm):
        for node in wavy_pm.internal_nodes:
            for wing in node.wings():
                assert wing not in (node.child1, node.child2)

    def test_interior_collapses_have_wings(self, wavy_pm):
        with_wings = sum(
            1 for n in wavy_pm.internal_nodes if n.wings()
        )
        total = len(wavy_pm.nodes) - wavy_pm.n_leaves
        # Nearly every collapse in a big mesh is interior or boundary
        # with at least one wing; only the final few are wing-less.
        assert with_wings >= total - 5

    def test_base_edges_recorded(self, wavy_mesh, wavy_pm):
        assert wavy_pm.base_edges == wavy_mesh.edges()


class TestErrorMeasures:
    def test_vertical_error_bounded_by_relief(self):
        mesh = make_wavy_grid_mesh(side=12, seed=5)
        pm = simplify_to_pm(
            mesh, SimplifyConfig(error_measure="vertical")
        )
        z_min = min(v[2] for v in mesh.vertices)
        z_max = max(v[2] for v in mesh.vertices)
        relief = z_max - z_min
        for node in pm.internal_nodes:
            # A vertical distance can exceed the static relief a little
            # (the new point may move), but not wildly.
            assert node.error <= relief * 3

    def test_qem_error_nonnegative(self):
        mesh = make_wavy_grid_mesh(side=12, seed=5)
        pm = simplify_to_pm(mesh, SimplifyConfig(error_measure="qem"))
        assert all(n.error >= 0 for n in pm.internal_nodes)

    def test_flat_mesh_collapses_with_zero_error(self):
        mesh = TriMesh.from_grid([[1.0] * 8 for _ in range(8)])
        pm = simplify_to_pm(mesh, SimplifyConfig(error_measure="qem"))
        assert max(n.error for n in pm.internal_nodes) == pytest.approx(
            0.0, abs=1e-6
        )

    def test_midpoint_placement(self):
        mesh = make_wavy_grid_mesh(side=10, seed=2)
        pm = simplify_to_pm(mesh, SimplifyConfig(placement="midpoint"))
        first = pm.node(pm.n_leaves)  # First collapse, children are leaves.
        c1 = pm.node(first.child1)
        c2 = pm.node(first.child2)
        assert first.x == pytest.approx((c1.x + c2.x) / 2)
        assert first.y == pytest.approx((c1.y + c2.y) / 2)
        assert first.z == pytest.approx((c1.z + c2.z) / 2)


class TestGeometryInvariants:
    def test_intermediate_states_stay_planar(self):
        """Replaying collapses never flips a surviving triangle.

        This is the invariant the Direct Mesh exactness argument rests
        on, so it gets its own end-to-end check on a small mesh.
        """
        mesh = make_wavy_grid_mesh(side=10, seed=9)
        pm = simplify_to_pm(mesh)
        pm.normalize_lod()
        # Walk a handful of uniform cuts and verify CCW triangles can
        # be formed between cut neighbours (spot check via positions).
        for fraction in (0.0, 0.05, 0.2, 0.6):
            cut = pm.uniform_cut(pm.max_lod() * fraction)
            assert pm.cut_is_partition(cut)

    def test_no_orphan_nodes(self, wavy_pm):
        reachable = set()
        stack = list(wavy_pm.roots)
        while stack:
            nid = stack.pop()
            reachable.add(nid)
            stack.extend(wavy_pm.node(nid).children())
        assert len(reachable) == len(wavy_pm.nodes)

    def test_parent_links_consistent(self, wavy_pm):
        for node in wavy_pm.nodes:
            if node.parent != NULL_ID:
                parent = wavy_pm.node(node.parent)
                assert node.id in parent.children()
