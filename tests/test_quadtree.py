"""Tests for the LOD-quadtree."""

import random

import pytest

from repro.errors import IndexError_
from repro.geometry.primitives import Box3
from repro.index.quadtree import LodQuadtree
from repro.storage.database import Database


def skewed_points(n, seed=0):
    """Uniform in (x, y), exponentially skewed in e — the LOD shape."""
    rng = random.Random(seed)
    return [
        (rng.uniform(0, 100), rng.uniform(0, 100), rng.expovariate(2.0), i)
        for i in range(n)
    ]


def brute_force(points, query):
    return sorted(
        v for x, y, e, v in points if query.contains_point(x, y, e)
    )


@pytest.fixture
def tree(fresh_db):
    return LodQuadtree(fresh_db.segment("qt"))


class TestQueries:
    def test_empty(self, tree):
        assert tree.range_search(Box3(0, 0, 0, 1, 1, 1)) == []
        assert len(tree) == 0

    def test_small_set(self, tree):
        pts = [(1.0, 1.0, 0.5, 10), (5.0, 5.0, 2.0, 20), (5.0, 1.0, 0.1, 30)]
        tree.bulk_load(pts)
        q = Box3(0, 0, 0, 6, 6, 1)
        assert sorted(v for *_, v in tree.range_search(q)) == [10, 30]

    def test_matches_brute_force(self, tree):
        pts = skewed_points(8000, seed=1)
        tree.bulk_load(pts)
        for qseed in range(6):
            rng = random.Random(qseed)
            x, y = rng.uniform(0, 70), rng.uniform(0, 70)
            lo = rng.uniform(0, 1)
            q = Box3(x, y, lo, x + 25, y + 25, lo + rng.uniform(0.1, 3))
            got = sorted(v for *_, v in tree.range_search(q))
            assert got == brute_force(pts, q)

    def test_boundary_inclusive(self, tree):
        pts = [(5.0, 5.0, 1.0, 1)]
        tree.bulk_load(pts)
        assert tree.count_in_range(Box3(5, 5, 1, 6, 6, 2)) == 1
        assert tree.count_in_range(Box3(0, 0, 0, 5, 5, 1)) == 1

    def test_tall_cube_like_pm_query(self, tree):
        # The PM baseline's cube: full LOD range above a floor.
        pts = skewed_points(5000, seed=2)
        tree.bulk_load(pts)
        q = Box3(20, 20, 0.5, 50, 50, 100.0)
        assert sorted(
            v for *_, v in tree.range_search(q)
        ) == brute_force(pts, q)


class TestStructure:
    def test_bulk_requires_empty(self, tree):
        tree.bulk_load([(0.0, 0.0, 0.0, 1)])
        with pytest.raises(IndexError_):
            tree.bulk_load([(1.0, 1.0, 1.0, 2)])

    def test_duplicate_coordinates_spill(self, tree):
        # More identical points than fit one leaf page.
        pts = [(1.0, 1.0, 0.0, i) for i in range(600)]
        tree.bulk_load(pts)
        q = Box3(0, 0, 0, 2, 2, 1)
        assert len(tree.range_search(q)) == 600

    def test_adaptive_e_split_used(self, fresh_db):
        # Strong LOD skew in a tiny (x, y) area forces e-splits; the
        # tree must still answer correctly.
        rng = random.Random(3)
        pts = [
            (
                50 + rng.uniform(-0.5, 0.5),
                50 + rng.uniform(-0.5, 0.5),
                rng.expovariate(0.5),
                i,
            )
            for i in range(2000)
        ]
        tree = LodQuadtree(fresh_db.segment("skew"))
        tree.bulk_load(pts)
        q = Box3(49, 49, 1.0, 51, 51, 3.0)
        assert sorted(
            v for *_, v in tree.range_search(q)
        ) == brute_force(pts, q)

    def test_persistence(self, tmp_path):
        pts = skewed_points(2000, seed=4)
        with Database(tmp_path / "db") as db:
            LodQuadtree(db.segment("qt")).bulk_load(pts)
        with Database(tmp_path / "db") as db:
            tree = LodQuadtree(db.segment("qt"))
            assert len(tree) == 2000
            q = Box3(10, 10, 0, 60, 60, 1)
            assert sorted(
                v for *_, v in tree.range_search(q)
            ) == brute_force(pts, q)

    def test_wrong_magic(self, fresh_db):
        from repro.index.btree import BPlusTree

        BPlusTree(fresh_db.segment("bt"))
        with pytest.raises(IndexError_):
            LodQuadtree(fresh_db.segment("bt"))
