"""Tests for query planes and space-filling-curve keys."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.errors import GeometryError, QueryError
from repro.geometry.plane import QueryPlane, max_angle
from repro.geometry.primitives import Rect
from repro.geometry.spacefill import hilbert_key, morton_key, normalized_quantizer

ROI = Rect(0, 0, 100, 100)


class TestQueryPlane:
    def test_validation(self):
        with pytest.raises(QueryError):
            QueryPlane(ROI, -1.0, 2.0)
        with pytest.raises(QueryError):
            QueryPlane(ROI, 3.0, 2.0)
        with pytest.raises(QueryError):
            QueryPlane(ROI, 0.0, 1.0, direction=(0, 0))

    def test_required_lod_gradient(self):
        plane = QueryPlane(ROI, 1.0, 5.0, direction=(0, 1))
        assert plane.required_lod(50, 0) == pytest.approx(1.0)
        assert plane.required_lod(50, 100) == pytest.approx(5.0)
        assert plane.required_lod(50, 50) == pytest.approx(3.0)
        # x position is irrelevant for a +y direction.
        assert plane.required_lod(0, 50) == plane.required_lod(99, 50)

    def test_required_lod_clamped_outside(self):
        plane = QueryPlane(ROI, 1.0, 5.0)
        assert plane.required_lod(50, -40) == 1.0
        assert plane.required_lod(50, 140) == 5.0

    def test_flat_plane(self):
        plane = QueryPlane(ROI, 2.0, 2.0)
        assert plane.required_lod(10, 90) == 2.0
        assert plane.angle == 0.0

    def test_from_angle_roundtrip(self):
        angle = math.radians(30)
        plane = QueryPlane.from_angle(ROI, 1.0, angle)
        assert plane.angle == pytest.approx(angle)
        assert plane.e_max == pytest.approx(1.0 + math.tan(angle) * 100)

    def test_from_angle_invalid(self):
        with pytest.raises(QueryError):
            QueryPlane.from_angle(ROI, 0.0, math.pi / 2)

    def test_diagonal_direction(self):
        plane = QueryPlane(ROI, 0.0, 10.0, direction=(1, 1))
        near = plane.required_lod(0, 0)
        far = plane.required_lod(100, 100)
        assert near == pytest.approx(0.0)
        assert far == pytest.approx(10.0)

    def test_lod_range_over(self):
        plane = QueryPlane(ROI, 1.0, 5.0)
        lo, hi = plane.lod_range_over(Rect(0, 25, 100, 75))
        assert lo == pytest.approx(2.0)
        assert hi == pytest.approx(4.0)

    def test_split_covers_roi(self):
        plane = QueryPlane(ROI, 1.0, 5.0)
        strips = plane.split_across_direction(4)
        assert len(strips) == 4
        assert strips[0].roi.min_y == 0
        assert strips[-1].roi.max_y == 100
        total_area = sum(s.roi.area for s in strips)
        assert total_area == pytest.approx(ROI.area)
        # Strip LOD ranges chain along the gradient.
        for a, b in zip(strips, strips[1:]):
            assert a.e_max == pytest.approx(b.e_min)

    def test_split_across_x_direction(self):
        plane = QueryPlane(ROI, 1.0, 5.0, direction=(1, 0))
        strips = plane.split_across_direction(2)
        assert strips[0].roi.max_x == pytest.approx(50)

    def test_split_one_returns_self(self):
        plane = QueryPlane(ROI, 1.0, 5.0)
        assert plane.split_across_direction(1) == [plane]
        with pytest.raises(QueryError):
            plane.split_across_direction(0)

    @given(st.floats(0, 99, allow_nan=False), st.floats(0, 99, allow_nan=False))
    def test_required_always_within_bounds(self, x, y):
        plane = QueryPlane(ROI, 1.0, 5.0, direction=(0.3, 0.7))
        assert 1.0 <= plane.required_lod(x, y) <= 5.0


class TestMaxAngle:
    def test_formula(self):
        assert max_angle(10.0, 10.0) == pytest.approx(math.pi / 4)

    def test_invalid_extent(self):
        with pytest.raises(QueryError):
            max_angle(10.0, 0.0)


class TestSpaceFill:
    def test_morton_interleave(self):
        assert morton_key(0b11, 0b00, bits=2) == 0b0101
        assert morton_key(0b00, 0b11, bits=2) == 0b1010

    def test_hilbert_bijective_order4(self):
        bits = 4
        size = 1 << bits
        keys = {
            hilbert_key(x, y, bits) for x in range(size) for y in range(size)
        }
        assert keys == set(range(size * size))

    def test_hilbert_consecutive_keys_are_adjacent_cells(self):
        # The defining Hilbert property: walking the curve in key order
        # moves exactly one cell at a time.  Morton (Z-order) jumps.
        bits = 4
        size = 1 << bits

        def curve_steps(fn):
            by_key = {}
            for x in range(size):
                for y in range(size):
                    by_key[fn(x, y, bits)] = (x, y)
            steps = []
            for k in range(size * size - 1):
                (x0, y0), (x1, y1) = by_key[k], by_key[k + 1]
                steps.append(abs(x1 - x0) + abs(y1 - y0))
            return steps

        assert all(step == 1 for step in curve_steps(hilbert_key))
        assert max(curve_steps(morton_key)) > 1

    def test_bounds_checked(self):
        with pytest.raises(GeometryError):
            morton_key(-1, 0)
        with pytest.raises(GeometryError):
            hilbert_key(0, 1 << 16, bits=16)
        with pytest.raises(GeometryError):
            morton_key(0, 0, bits=0)

    def test_quantizer_clamps(self):
        q = normalized_quantizer(Rect(0, 0, 10, 10), bits=8)
        assert q(0, 0) == (0, 0)
        assert q(10, 10) == (255, 255)
        assert q(-5, 20) == (0, 255)

    def test_quantizer_degenerate_rect(self):
        q = normalized_quantizer(Rect(5, 5, 5, 5), bits=8)
        assert q(5, 5) == (0, 0)


class TestRadialLodField:
    from repro.geometry.plane import RadialLodField  # noqa: PLC0415

    def make(self, **overrides):
        from repro.geometry.plane import RadialLodField

        defaults = dict(
            roi=Rect(0, 0, 100, 100),
            viewer=(50.0, -10.0),
            rate=0.1,
            e_min=0.5,
            e_max=20.0,
        )
        defaults.update(overrides)
        return RadialLodField(**defaults)

    def test_validation(self):
        with pytest.raises(QueryError):
            self.make(rate=0.0)
        with pytest.raises(QueryError):
            self.make(e_min=-1.0)
        with pytest.raises(QueryError):
            self.make(e_min=5.0, e_max=1.0)

    def test_required_grows_with_distance(self):
        field = self.make()
        near = field.required_lod(50, 0)
        far = field.required_lod(50, 100)
        assert near < far
        assert far == pytest.approx(0.1 * 110)

    def test_clamping(self):
        field = self.make()
        assert field.required_lod(50, -9.9) == 0.5  # Floor.
        assert self.make(rate=5.0).required_lod(50, 100) == 20.0  # Cap.

    def test_lod_range_over_brackets_samples(self):
        import random

        field = self.make()
        region = Rect(20, 30, 70, 90)
        lo, hi = field.lod_range_over(region)
        rng = random.Random(0)
        for _ in range(200):
            x = rng.uniform(region.min_x, region.max_x)
            y = rng.uniform(region.min_y, region.max_y)
            req = field.required_lod(x, y)
            assert lo - 1e-9 <= req <= hi + 1e-9

    def test_viewer_inside_region(self):
        field = self.make(viewer=(50.0, 50.0))
        lo, _ = field.lod_range_over(Rect(0, 0, 100, 100))
        assert lo == 0.5  # Distance zero -> floor.

    def test_split_strips_cover_roi(self):
        field = self.make()
        strips = field.split_across_direction(4)
        assert len(strips) == 4
        assert sum(s.roi.area for s in strips) == pytest.approx(
            field.roi.area
        )
        # Strips farther from the viewer allow coarser LOD.
        assert strips[0].e_max <= strips[-1].e_max

    def test_split_one(self):
        field = self.make()
        assert field.split_across_direction(1) == [field]
        with pytest.raises(QueryError):
            field.split_across_direction(0)

    def test_split_along_x_when_viewer_east(self):
        field = self.make(viewer=(250.0, 50.0))
        strips = field.split_across_direction(2)
        assert strips[0].roi.max_x == pytest.approx(50.0)
