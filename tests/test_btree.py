"""Tests for the disk-backed B+-tree."""

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.errors import IndexError_
from repro.index.btree import BPlusTree
from repro.storage.database import Database


@pytest.fixture
def tree(fresh_db):
    return BPlusTree(fresh_db.segment("bt"))


class TestBasics:
    def test_empty_get(self, tree):
        assert tree.get(42) is None
        assert len(tree) == 0

    def test_insert_get(self, tree):
        tree.insert(5, 100)
        assert tree.get(5) == 100
        assert len(tree) == 1

    def test_overwrite(self, tree):
        tree.insert(5, 100)
        tree.insert(5, 200)
        assert tree.get(5) == 200
        assert len(tree) == 1

    def test_many_random(self, tree):
        rng = random.Random(0)
        keys = rng.sample(range(10**7), 5000)
        for k in keys:
            tree.insert(k, k + 1)
        assert tree.height >= 2  # Must have split.
        for k in rng.sample(keys, 500):
            assert tree.get(k) == k + 1
        assert tree.get(10**7 + 1) is None
        tree.validate()

    def test_sequential_inserts(self, tree):
        for k in range(3000):
            tree.insert(k, k * 2)
        tree.validate()
        assert tree.get(2999) == 5998

    def test_reverse_sequential(self, tree):
        for k in range(2000, 0, -1):
            tree.insert(k, k)
        tree.validate()
        assert [k for k, _ in tree.range(1, 10)] == list(range(1, 11))


class TestRange:
    def test_range_inclusive(self, tree):
        for k in range(0, 100, 2):
            tree.insert(k, k)
        assert [k for k, _ in tree.range(10, 20)] == [10, 12, 14, 16, 18, 20]

    def test_range_across_leaves(self, tree):
        for k in range(4000):
            tree.insert(k, k)
        got = [k for k, _ in tree.range(500, 1500)]
        assert got == list(range(500, 1501))

    def test_range_empty(self, tree):
        tree.insert(1, 1)
        assert list(tree.range(5, 10)) == []

    def test_items_in_order(self, tree):
        keys = [9, 1, 7, 3, 5]
        for k in keys:
            tree.insert(k, k)
        assert [k for k, _ in tree.items()] == sorted(keys)


class TestBulkLoad:
    def test_bulk_equals_inserted(self, fresh_db):
        items = [(k * 3, k) for k in range(5000)]
        bulk = BPlusTree(fresh_db.segment("bulk"))
        bulk.bulk_load(items)
        bulk.validate()
        assert len(bulk) == 5000
        for k, v in items[::97]:
            assert bulk.get(k) == v
        assert bulk.get(1) is None

    def test_bulk_requires_sorted_unique(self, tree):
        with pytest.raises(IndexError_):
            tree.bulk_load([(2, 0), (1, 0)])
        with pytest.raises(IndexError_):
            tree.bulk_load([(1, 0), (1, 1)])

    def test_bulk_requires_empty(self, tree):
        tree.insert(1, 1)
        with pytest.raises(IndexError_):
            tree.bulk_load([(2, 2)])

    def test_insert_after_bulk(self, fresh_db):
        t = BPlusTree(fresh_db.segment("b2"))
        t.bulk_load([(k, k) for k in range(0, 1000, 2)])
        t.insert(501, 999)
        assert t.get(501) == 999
        t.validate()


class TestPersistence:
    def test_reopen(self, tmp_path):
        with Database(tmp_path / "db") as db:
            t = BPlusTree(db.segment("bt"))
            for k in range(1000):
                t.insert(k, k * 7)
        with Database(tmp_path / "db") as db:
            t = BPlusTree(db.segment("bt"))
            assert len(t) == 1000
            assert t.get(123) == 861

    def test_wrong_magic(self, tmp_path):
        from repro.storage.heapfile import HeapFile

        with Database(tmp_path / "db") as db:
            HeapFile(db.segment("notbt")).insert(b"x")
            with pytest.raises(IndexError_):
                BPlusTree(db.segment("notbt"))


class TestModel:
    @settings(
        max_examples=30,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        st.lists(
            st.tuples(st.integers(0, 500), st.integers(0, 10**6)),
            max_size=200,
        )
    )
    def test_matches_dict_model(self, fresh_db, ops):
        import uuid

        tree = BPlusTree(fresh_db.segment(f"m{uuid.uuid4().hex[:8]}"))
        model: dict[int, int] = {}
        for key, value in ops:
            tree.insert(key, value)
            model[key] = value
        assert len(tree) == len(model)
        for key, value in model.items():
            assert tree.get(key) == value
        assert [k for k, _ in tree.items()] == sorted(model)
