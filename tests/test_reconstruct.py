"""Tests for mesh reconstruction and Algorithm 1's refinement."""

from repro.core.reconstruct import (
    mesh_edges,
    mesh_triangles,
    refine_to_plane,
    resolve_overlaps,
)
from repro.geometry.plane import QueryPlane
from repro.geometry.primitives import Rect
from repro.storage.record import DMNodeRecord


def rec(node_id, x, y, e_low, e_high, conn, parent=-1, children=(-1, -1)):
    return DMNodeRecord(
        node_id,
        x,
        y,
        0.0,
        e_low,
        e_high,
        parent,
        children[0],
        children[1],
        -1,
        -1,
        list(conn),
    )


class TestEdgesTriangles:
    def test_square_with_diagonal(self):
        nodes = {
            0: rec(0, 0, 0, 0, 1, [1, 2, 3]),
            1: rec(1, 1, 0, 0, 1, [0, 2]),
            2: rec(2, 1, 1, 0, 1, [0, 1, 3]),
            3: rec(3, 0, 1, 0, 1, [0, 2]),
        }
        edges = mesh_edges(nodes)
        assert edges == {(0, 1), (1, 2), (0, 2), (2, 3), (0, 3)}
        tris = mesh_triangles(nodes, edges)
        assert sorted(tris) == [(0, 1, 2), (0, 2, 3)]

    def test_edges_need_mutual_presence(self):
        nodes = {
            0: rec(0, 0, 0, 0, 1, [1, 99]),  # 99 absent.
            1: rec(1, 1, 0, 0, 1, [0]),
        }
        assert mesh_edges(nodes) == {(0, 1)}

    def test_empty(self):
        assert mesh_edges({}) == set()
        assert mesh_triangles({}) == []

    def test_lone_edge_no_triangles(self):
        nodes = {
            0: rec(0, 0, 0, 0, 1, [1]),
            1: rec(1, 1, 0, 0, 1, [0]),
        }
        assert mesh_triangles(nodes) == []

    def test_hexagon_fan(self):
        import math

        center = rec(0, 0, 0, 0, 1, [1, 2, 3, 4, 5, 6])
        nodes = {0: center}
        for k in range(6):
            angle = k * math.pi / 3
            ring_conn = [0, 1 + (k + 1) % 6, 1 + (k - 1) % 6]
            nodes[k + 1] = rec(
                k + 1, math.cos(angle), math.sin(angle), 0, 1, ring_conn
            )
        tris = mesh_triangles(nodes)
        assert len(tris) == 6
        assert all(0 in tri for tri in tris)


class TestRefinement:
    def make_family(self):
        """Parent 2 (interval [1, 10)) with children 0, 1 ([0, 1))."""
        return {
            0: rec(0, 0.0, 0.0, 0.0, 1.0, [1], parent=2),
            1: rec(1, 1.0, 0.0, 0.0, 1.0, [0], parent=2),
            2: rec(2, 0.5, 0.0, 1.0, 10.0, [], children=(0, 1)),
        }

    def test_coarse_plane_keeps_parent(self):
        records = self.make_family()
        plane = QueryPlane(Rect(-1, -1, 2, 1), 5.0, 5.0)
        result = refine_to_plane(records, plane)
        assert result.active == {2}
        assert result.splits == 0

    def test_fine_plane_splits_to_children(self):
        records = self.make_family()
        plane = QueryPlane(Rect(-1, -1, 2, 1), 0.5, 0.5)
        result = refine_to_plane(records, plane, start_lod=5.0)
        assert result.active == {0, 1}
        assert result.splits == 1
        assert result.missing_children == []

    def test_missing_child_recorded(self):
        records = self.make_family()
        del records[1]  # Child clipped by the ROI.
        plane = QueryPlane(Rect(-1, -1, 2, 1), 0.5, 0.5)
        result = refine_to_plane(records, plane, start_lod=5.0)
        assert result.active == {0}
        assert result.missing_children == [1]

    def test_refinement_matches_filter_on_uniform_plane(
        self, session_db, hills_dataset
    ):
        # Algorithm 1 executed step-by-step must agree with the
        # set-filter semantics when the plane is flat.
        store = session_db["dm"]
        ds = hills_dataset
        roi = ds.bounds().scaled(0.4)
        lod = ds.pm.average_lod()
        flat = QueryPlane(roi, lod, lod)
        cube_result = store.single_base_query(flat)
        # Re-fetch everything the cube would grab, then refine.
        from repro.geometry.primitives import Box3

        # reprolint: disable=R2 oracle probe; lod is below e_cap by construction
        rids = store.rtree.search(Box3.from_rect(roi, lod, lod))
        records = {r.id: r for r in store.read_records(rids)}
        refined = refine_to_plane(records, flat)
        assert refined.active == set(cube_result.nodes)


class TestResolveOverlaps:
    def test_keeps_ancestor(self):
        records = {
            0: rec(0, 0, 0, 0.0, 1.0, [], parent=2),
            2: rec(2, 0.5, 0, 1.0, 10.0, [], children=(0, 1)),
        }
        kept = resolve_overlaps(records)
        assert set(kept) == {2}

    def test_no_overlap_untouched(self):
        records = {
            0: rec(0, 0, 0, 0.0, 1.0, [1], parent=5),
            1: rec(1, 1, 0, 0.0, 1.0, [0], parent=6),
        }
        assert set(resolve_overlaps(records)) == {0, 1}

    def test_deep_chain(self):
        records = {
            0: rec(0, 0, 0, 0.0, 1.0, [], parent=1),
            1: rec(1, 0, 0, 1.0, 2.0, [], parent=2, children=(0, -1)),
            2: rec(2, 0, 0, 2.0, 3.0, [], children=(1, -1)),
        }
        kept = resolve_overlaps(records)
        assert set(kept) == {2}
