"""Live terrain mutation: parity, epochs, and the kill-anywhere matrix.

The contract under test (ISSUE 10):

* **Parity** — a store patched in place is node-id-identical to a
  store rebuilt from scratch on the patched DEM (the tile-
  deterministic pipeline makes subtree recomputation exact, not
  approximate).
* **Epoch snapshots** — readers pin ``(store, epoch)`` per request;
  commits swap the snapshot, invalidate exactly the overlapping cache
  state, and force keyframe resyncs on overlapping sessions.
* **Kill-anywhere** — a simulated crash at *every* WAL record
  boundary and page write (optionally with torn/bitflip damage to the
  staged pages) recovers to exactly the pre- or post-patch snapshot,
  never a hybrid.
"""

import shutil
import threading

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.engine import QueryEngine, UniformRequest
from repro.core.cache import SemanticCache
from repro.core.mutate import MutableStore, plan_tiles
from repro.errors import MutationError, PatchError
from repro.geometry.primitives import Rect
from repro.storage.database import Database, epoch_prefix
from repro.storage.faults import SimulatedCrash
from repro.storage.integrity import (
    inject_corruption,
    repair_database,
    scrub_database,
)

GRID = 17
CELL = 1.0
TILE_VERTS = 9  # 2x2 tiles over a 17x17 grid.
EXTENT = Rect(0.0, 0.0, (GRID - 1) * CELL, (GRID - 1) * CELL)


def make_dem(seed: int = 0):
    from repro.terrain.dem import DEM
    from repro.terrain.gridfield import GridField

    rng = np.random.default_rng(seed)
    heights = rng.uniform(0.0, 30.0, (GRID, GRID))
    return DEM(GridField(heights.tolist(), cell_size=CELL))


def clone_dem(dem):
    from repro.terrain.dem import DEM
    from repro.terrain.gridfield import GridField

    return DEM(
        GridField(
            dem.field.heights.copy().tolist(),
            cell_size=dem.field.cell_size,
            origin=dem.field.origin,
        )
    )


def aligned_region(r0: int, c0: int, r1: int, c1: int) -> Rect:
    """A grid-aligned patch region over sample rows/cols (inclusive)."""
    return Rect(c0 * CELL, r0 * CELL, c1 * CELL, r1 * CELL)


def patch_heights(r0: int, c0: int, r1: int, c1: int, seed: int):
    rng = np.random.default_rng(seed)
    return rng.uniform(0.0, 30.0, (r1 - r0 + 1, c1 - c0 + 1))


def store_digest(store) -> dict:
    """Every record's full identity, keyed by node id."""
    from repro.storage.record import decode_dm_node

    digest = {}
    for _rid, payload in store.heap.scan():
        record = decode_dm_node(payload)
        digest[record.id] = (
            record.x,
            record.y,
            record.z,
            record.e_low,
            record.e_high,
            record.parent,
            record.child1,
            record.child2,
            record.wing1,
            record.wing2,
            tuple(record.connections),
        )
    return digest


def crash_process(db: Database) -> None:
    """Process death: dirty buffers lost, descriptors dropped."""
    db.buffer._frames.clear()
    for pager in db._pagers.values():
        pager.close()
    db._pagers.clear()
    db._closed = True


# -- parity ------------------------------------------------------------------


class TestParity:
    """Patched store == rebuilt-from-scratch store, node for node."""

    def _build(self, tmp_path, dem, name):
        db = Database(tmp_path / name)
        return db, MutableStore.build(
            dem, db, prefix="dm", tile_verts=TILE_VERTS
        )

    def test_single_patch_parity(self, tmp_path):
        dem = make_dem(0)
        db, ms = self._build(tmp_path, clone_dem(dem), "live")
        region = aligned_region(4, 4, 8, 8)
        heights = patch_heights(4, 4, 8, 8, seed=1)
        report = ms.apply_patch(region, heights)
        assert report.to_epoch == 1

        patched = clone_dem(dem)
        patched.apply_patch(region, heights)
        db2, fresh = self._build(tmp_path, patched, "scratch")
        assert store_digest(ms.store) == store_digest(fresh.store)
        db.close()
        db2.close()

    def test_sequential_patches_and_reopen(self, tmp_path):
        dem = make_dem(3)
        live_dem = clone_dem(dem)
        db, ms = self._build(tmp_path, live_dem, "live")
        windows = [(0, 0, 4, 4), (6, 2, 12, 10), (8, 8, 16, 16)]
        for i, window in enumerate(windows):
            ms.apply_patch(
                aligned_region(*window), patch_heights(*window, seed=10 + i)
            )
        assert ms.epoch == 3
        db.close()

        # Reopen from the sidecar at the committed epoch and keep
        # patching: the epoch sequence continues where it left off.
        db = Database(tmp_path / "live")
        ms = MutableStore.open(db, live_dem, prefix="dm")
        assert ms.epoch == 3
        ms.apply_patch(
            aligned_region(2, 2, 6, 6), patch_heights(2, 2, 6, 6, seed=99)
        )
        assert ms.epoch == 4

        patched = clone_dem(dem)
        for i, window in enumerate(windows):
            patched.apply_patch(
                aligned_region(*window), patch_heights(*window, seed=10 + i)
            )
        patched.apply_patch(
            aligned_region(2, 2, 6, 6), patch_heights(2, 2, 6, 6, seed=99)
        )
        db2, fresh = self._build(tmp_path, patched, "scratch")
        assert store_digest(ms.store) == store_digest(fresh.store)
        db.close()
        db2.close()

    def test_old_epoch_stays_readable_after_commit(self, tmp_path):
        from repro.core.direct_mesh import DirectMeshStore

        dem = make_dem(5)
        db, ms = self._build(tmp_path, dem, "live")
        before = store_digest(ms.store)
        ms.apply_patch(
            aligned_region(0, 0, 8, 8), patch_heights(0, 0, 8, 8, seed=7)
        )
        # A reader pinned to epoch 0 still sees the old snapshot.
        old = DirectMeshStore.open(db, epoch_prefix("dm", 0))
        assert store_digest(old) == before
        db.close()

    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(data=st.data())
    def test_parity_property(self, tmp_path_factory, data):
        # Random patch sequences over random terrain: the patched
        # store must always be node-id-identical to a fresh build on
        # the patched DEM.
        tmp_path = tmp_path_factory.mktemp("parity")
        dem = make_dem(data.draw(st.integers(0, 2**16), label="terrain"))
        db, ms = self._build(tmp_path, clone_dem(dem), "live")
        patched = clone_dem(dem)
        for i in range(data.draw(st.integers(1, 3), label="n_patches")):
            r0 = data.draw(st.integers(0, GRID - 2), label=f"r0_{i}")
            c0 = data.draw(st.integers(0, GRID - 2), label=f"c0_{i}")
            r1 = data.draw(st.integers(r0 + 1, GRID - 1), label=f"r1_{i}")
            c1 = data.draw(st.integers(c0 + 1, GRID - 1), label=f"c1_{i}")
            seed = data.draw(st.integers(0, 2**16), label=f"seed_{i}")
            region = aligned_region(r0, c0, r1, c1)
            heights = patch_heights(r0, c0, r1, c1, seed)
            ms.apply_patch(region, heights)
            patched.apply_patch(region, heights)
        db2, fresh = self._build(tmp_path, patched, "scratch")
        assert store_digest(ms.store) == store_digest(fresh.store)
        db.close()
        db2.close()
        shutil.rmtree(tmp_path, ignore_errors=True)


# -- kill-anywhere crash matrix ---------------------------------------------


REGION = aligned_region(4, 4, 10, 10)
HEIGHTS = patch_heights(4, 4, 10, 10, seed=42)


def _enumerate_kill_events(tmp_path) -> list:
    """Dry-run one patch commit and record the full event schedule."""
    events = []
    dem = make_dem(1)
    db = Database(tmp_path / "dryrun")
    ms = MutableStore.build(dem, db, prefix="dm", tile_verts=TILE_VERTS)
    ms.apply_patch(REGION, HEIGHTS.copy(), kill_hook=events.append)
    db.close()
    return events


class TestKillAnywhere:
    """Crash at every protocol point: recovery lands on exactly the
    pre- or post-patch snapshot (classified by the committed epoch),
    with fsck clean apart from reclaimable orphans."""

    @pytest.fixture(scope="class")
    def matrix(self, tmp_path_factory):
        tmp_path = tmp_path_factory.mktemp("matrix")
        events = _enumerate_kill_events(tmp_path)
        assert events[0] == "patch_begin:pre"
        assert "commit:durable" in events and "flip:post" in events
        # Every distinct label once, plus a deterministic sample of
        # the (many) interior page boundaries: ~40 kill points total.
        chosen = []
        seen_labels = set()
        for index, label in enumerate(events):
            if label not in seen_labels:
                seen_labels.add(label)
                chosen.append(index)
        rng = np.random.default_rng(7)
        remaining = [i for i in range(len(events)) if i not in set(chosen)]
        extra = min(len(remaining), 40 - len(chosen))
        if extra > 0:
            chosen.extend(
                sorted(rng.choice(remaining, size=extra, replace=False))
            )
        dem = make_dem(1)
        base = tmp_path / "base"
        db = Database(base)
        ms = MutableStore.build(
            clone_dem(dem), db, prefix="dm", tile_verts=TILE_VERTS
        )
        pre_digest = store_digest(ms.store)
        db.close()
        # The post-patch truth, built once on a copy.
        post_dir = tmp_path / "post"
        shutil.copytree(base, post_dir)
        post_db = Database(post_dir)
        post_dem = clone_dem(dem)
        post_ms = MutableStore.open(post_db, post_dem, prefix="dm")
        post_ms.apply_patch(REGION, HEIGHTS.copy())
        post_digest = store_digest(post_ms.store)
        post_db.close()
        return {
            "tmp_path": tmp_path,
            "events": events,
            "chosen": chosen,
            "dem": dem,
            "base": base,
            "pre": pre_digest,
            "post": post_digest,
        }

    def _run_kill(self, matrix, kill_at: int, corrupt: str | None):
        from repro.core.direct_mesh import DirectMeshStore

        tmp_path = matrix["tmp_path"]
        label = matrix["events"][kill_at]
        work = tmp_path / f"kill-{kill_at}-{corrupt or 'clean'}"
        shutil.copytree(matrix["base"], work)
        db = Database(work)
        ms = MutableStore.open(
            db, clone_dem(matrix["dem"]), prefix="dm"
        )
        fired = {"n": 0}

        def hook(event: str) -> None:
            if fired["n"] == kill_at:
                fired["n"] += 1
                raise SimulatedCrash(event)
            fired["n"] += 1

        with pytest.raises(SimulatedCrash) as excinfo:
            ms.apply_patch(REGION, HEIGHTS.copy(), kill_hook=hook)
        assert excinfo.value.event == label
        # The in-process handle is poisoned until reopen.
        with pytest.raises(MutationError):
            ms.apply_patch(REGION, HEIGHTS.copy())
        crash_process(db)

        if corrupt is not None:
            # Additionally damage one staged page (torn write): only
            # the shadow segments of the in-flight epoch are fair game
            # — committed state survived the crash by construction.
            staged = tuple(
                p.stem
                for p in work.glob("dm@1_*.seg")
                if p.stat().st_size > 0
            )
            if staged:
                inject_corruption(
                    work, 1, seed=kill_at, kinds=(corrupt,),
                    segments=staged,
                )

        db = Database(work)  # Recovery runs here.
        epoch = db.store_epoch("dm")
        assert epoch in (0, 1), f"impossible epoch {epoch} at {label}"
        store = DirectMeshStore.open(db, epoch_prefix("dm", epoch))
        digest = store_digest(store)
        expected = matrix["pre"] if epoch == 0 else matrix["post"]
        assert digest == expected, (
            f"kill at {label} (event {kill_at}) landed on a hybrid "
            f"snapshot (epoch {epoch})"
        )
        report = scrub_database(db)
        assert report.ok, (
            f"kill at {label}: fsck found real damage: "
            f"{report.to_text()}"
        )
        if epoch == 0 and report.orphans:
            repair_database(db, report)
            follow_up = scrub_database(db)
            assert follow_up.ok and not follow_up.orphans
        db.close()
        shutil.rmtree(work, ignore_errors=True)
        return label, epoch

    def test_kill_at_every_boundary(self, matrix):
        outcomes = {}
        for kill_at in matrix["chosen"]:
            label, epoch = self._run_kill(matrix, kill_at, corrupt=None)
            outcomes.setdefault(label, set()).add(epoch)
        # Sanity on the classification itself: a crash before the
        # commit marker is durable must recover to pre-patch; one
        # after the flip must recover to post-patch.
        assert outcomes["patch_begin:pre"] == {0}
        assert outcomes["commit:pre"] == {0}
        assert outcomes["flip:post"] == {1}
        assert outcomes["unlink:post"] == {1}
        # commit:durable and flip:pre carry a durable commit marker:
        # recovery replays and re-flips.
        assert outcomes["commit:durable"] == {1}
        assert outcomes["flip:pre"] == {1}

    @pytest.mark.parametrize("kind", ["torn", "bitflip"])
    def test_kill_with_staged_page_damage(self, matrix, kind):
        # Crash points where staged pages exist on disk, then damage
        # one of them: pre-commit the segment is an orphan (damage
        # invisible); post-commit recovery rewrites every staged page
        # from the log, healing the damage.
        for label in ("page:post", "commit:pre", "commit:durable"):
            kill_at = matrix["events"].index(label)
            got_label, epoch = self._run_kill(matrix, kill_at, corrupt=kind)
            assert got_label == label
            assert epoch == (1 if label == "commit:durable" else 0)


# -- epoch pinning through the engine ----------------------------------------


class TestEnginePinning:
    def _open(self, tmp_path):
        dem = make_dem(2)
        db = Database(tmp_path / "db")
        ms = MutableStore.build(dem, db, prefix="dm", tile_verts=TILE_VERTS)
        engine = QueryEngine(
            ms.store,
            epoch=ms.epoch,
            cache=SemanticCache(1 << 22),
            workers=2,
        )
        ms.attach(engine)
        return db, ms, engine

    def test_outcomes_carry_the_pinned_epoch(self, tmp_path):
        db, ms, engine = self._open(tmp_path)
        request = UniformRequest(EXTENT, ms.store.max_lod)
        assert engine.submit(request).result().metrics.epoch == 0
        ms.apply_patch(
            aligned_region(0, 0, 8, 8), patch_heights(0, 0, 8, 8, seed=1)
        )
        outcome = engine.submit(request).result()
        assert outcome.ok and outcome.metrics.epoch == 1
        assert engine.epoch == 1
        db.close()

    def test_commit_invalidates_only_overlapping_cache(self, tmp_path):
        db, ms, engine = self._open(tmp_path)
        corner = UniformRequest(
            Rect(0.0, 0.0, 3.0, 3.0), ms.store.max_lod
        )
        engine.submit(corner).result()  # Populate the cache.
        before = engine.cache.stats()
        engine.submit(corner).result()
        assert engine.cache.stats().hits == before.hits + 1
        # A patch in the far corner leaves the cached cube servable.
        ms.apply_patch(
            aligned_region(12, 12, 16, 16),
            patch_heights(12, 12, 16, 16, seed=3),
        )
        mid = engine.cache.stats()
        engine.submit(corner).result()
        after = engine.cache.stats()
        assert after.hits == mid.hits + 1
        assert after.region_invalidations >= 1
        # An overlapping patch kills it.
        ms.apply_patch(
            aligned_region(0, 0, 4, 4), patch_heights(0, 0, 4, 4, seed=4)
        )
        probe = engine.cache.stats()
        engine.submit(corner).result()
        assert engine.cache.stats().hits == probe.hits
        db.close()

    def test_patched_answers_match_fresh_build(self, tmp_path):
        db, ms, engine = self._open(tmp_path)
        window = (2, 2, 14, 14)
        region = aligned_region(*window)
        heights = patch_heights(*window, seed=8)
        ms.apply_patch(region, heights)
        request = UniformRequest(EXTENT, ms.store.max_lod * 0.5)
        served = engine.submit(request).result()
        assert served.ok
        truth = ms.store.uniform_query(EXTENT, ms.store.max_lod * 0.5)
        assert set(served.result.nodes) == set(truth.nodes)
        db.close()


# -- streaming sessions across commits ---------------------------------------


class TestSessionResync:
    def test_overlapping_session_gets_keyframe(self, tmp_path):
        from repro.core.wire import FLAG_KEYFRAME

        dem = make_dem(4)
        db = Database(tmp_path / "db")
        ms = MutableStore.build(dem, db, prefix="dm", tile_verts=TILE_VERTS)
        engine = QueryEngine(ms.store, epoch=ms.epoch, workers=2)
        ms.attach(engine)
        session = engine.sessions().open()
        request = UniformRequest(EXTENT, ms.store.max_lod)
        first = session.update(request)
        assert first.frame.flags & FLAG_KEYFRAME  # Frame 0 always is.
        steady = session.update(request)
        assert not steady.frame.flags & FLAG_KEYFRAME
        assert not session.stale

        ms.apply_patch(
            aligned_region(0, 0, 8, 8), patch_heights(0, 0, 8, 8, seed=2)
        )
        assert session.stale
        resync = session.update(request)
        assert resync.frame.flags & FLAG_KEYFRAME
        assert not resync.frame.removed
        assert not session.stale
        assert {record.id for record in resync.frame.added} == set(
            session.active_ids
        )
        assert (
            engine.registry.counter("session.patch_resyncs").value == 1
        )
        db.close()

    def test_disjoint_session_keeps_streaming_deltas(self, tmp_path):
        from repro.core.wire import FLAG_KEYFRAME

        dem = make_dem(4)
        db = Database(tmp_path / "db")
        ms = MutableStore.build(dem, db, prefix="dm", tile_verts=TILE_VERTS)
        engine = QueryEngine(ms.store, epoch=ms.epoch, workers=2)
        ms.attach(engine)
        session = engine.sessions().open()
        corner = UniformRequest(Rect(0.0, 0.0, 3.0, 3.0), ms.store.max_lod)
        session.update(corner)
        # Patch the far corner: this session's view is untouched.
        ms.apply_patch(
            aligned_region(12, 12, 16, 16),
            patch_heights(12, 12, 16, 16, seed=5),
        )
        assert not session.stale
        follow = session.update(corner)
        assert not follow.frame.flags & FLAG_KEYFRAME
        db.close()


# -- fsck orphan handling end to end ------------------------------------------


class TestOrphanReclamation:
    def test_aborted_patch_leaves_quarantinable_orphans(self, tmp_path):
        dem = make_dem(6)
        db = Database(tmp_path / "db")
        ms = MutableStore.build(dem, db, prefix="dm", tile_verts=TILE_VERTS)

        def kill(event: str) -> None:
            if event == "commit:pre":
                raise SimulatedCrash(event)

        with pytest.raises(SimulatedCrash):
            ms.apply_patch(
                aligned_region(0, 0, 8, 8),
                patch_heights(0, 0, 8, 8, seed=1),
                kill_hook=kill,
            )
        crash_process(db)

        db = Database(tmp_path / "db")
        report = scrub_database(db)
        assert report.ok  # Orphans are not corruption.
        names = {orphan.segment for orphan in report.orphans}
        assert names == {
            "dm@1_nodes", "dm@1_rtree", "dm@1_btree", "dm@1_cruns"
        }
        repair_database(db, report)
        assert all(orphan.removed for orphan in report.orphans)
        assert not list((tmp_path / "db").glob("dm@1_*"))
        # The reopened store picks up where epoch 0 left off.
        ms = MutableStore.open(db, make_dem(6), prefix="dm")
        assert ms.epoch == 0
        report2 = ms.apply_patch(
            aligned_region(0, 0, 8, 8), patch_heights(0, 0, 8, 8, seed=1)
        )
        assert report2.to_epoch == 1
        db.close()


# -- validation plumbing -------------------------------------------------------


class TestMutableStoreValidation:
    def test_rejected_patch_is_a_noop(self, tmp_path):
        dem = make_dem(8)
        db = Database(tmp_path / "db")
        ms = MutableStore.build(dem, db, prefix="dm", tile_verts=TILE_VERTS)
        before = store_digest(ms.store)
        with pytest.raises(PatchError):
            ms.apply_patch(
                Rect(0.5, 0.0, 4.5, 4.0), np.zeros((5, 5))
            )
        assert ms.epoch == 0
        assert store_digest(ms.store) == before
        # A rejected patch does not poison the handle.
        ms.apply_patch(
            aligned_region(0, 0, 4, 4), patch_heights(0, 0, 4, 4, seed=1)
        )
        assert ms.epoch == 1
        db.close()

    def test_open_rejects_mismatched_dem(self, tmp_path):
        from repro.terrain.dem import DEM
        from repro.terrain.gridfield import GridField

        dem = make_dem(9)
        db = Database(tmp_path / "db")
        MutableStore.build(dem, db, prefix="dm", tile_verts=TILE_VERTS)
        wrong = DEM(GridField(np.zeros((5, 5)), cell_size=CELL))
        with pytest.raises(MutationError):
            MutableStore.open(db, wrong, prefix="dm")
        db.close()

    def test_layout_is_deterministic(self):
        layout_a = plan_tiles(make_dem(0), TILE_VERTS)
        layout_b = plan_tiles(make_dem(1), TILE_VERTS)
        assert layout_a.to_json() == layout_b.to_json()
