# Convenience targets for the Direct Mesh reproduction.
#
# `test` and `lint` run the exact commands CI runs
# (.github/workflows/ci.yml), so local and CI results cannot drift;
# `ci` chains both.

PYTHON ?= python3

.PHONY: install test test-fast lint lint-repro typecheck ci stress lockwatch perf-smoke slo-smoke session-smoke cluster-smoke bench-slo bench-session bench-cluster fsck mutation-drill bench report examples clean

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest -q

test-fast:
	$(PYTHON) -m pytest tests/ -m "not slow"

lint:
	ruff check src tests benchmarks

# Project-specific static analysis: lock discipline, e_cap clamping,
# lazy-init safety, typed invariants, metric-name registry.  Rules and
# suppressions live in src/repro/analysis; `--list-rules` explains.
lint-repro:
	PYTHONPATH=src $(PYTHON) -m repro.analysis src tests benchmarks --statistics

# Strict typing over the concurrency-critical layers (the `files` list
# in [tool.mypy]).  mypy is not vendored in the offline image, so skip
# gracefully when it is missing; CI always installs and runs it.
typecheck:
	@if $(PYTHON) -c "import mypy" 2>/dev/null; then \
		$(PYTHON) -m mypy; \
	else \
		echo "typecheck: mypy not installed; skipping (CI runs it)"; \
	fi

ci: lint lint-repro test

# Robustness gate: the fault-injection and concurrency suites (which
# run the engine at workers=8), repeated to shake out scheduling-
# dependent races.  Mirrors the `stress` job in CI.
STRESS_RUNS ?= 3
stress:
	@for i in $$(seq 1 $(STRESS_RUNS)); do \
		echo "stress run $$i/$(STRESS_RUNS)"; \
		$(PYTHON) -m pytest tests/test_faults.py tests/test_stress.py \
			tests/test_engine.py tests/test_metrics.py -q || exit 1; \
	done

# Runtime lock-order witness: re-run the stress suites with every
# engine/storage lock instrumented (REPRO_LOCKWATCH=1), dump the
# observed acquisition-order graph, then require it to be acyclic and
# a subgraph of the static graph computed by the R9 lockset analysis.
# Mirrors the `lockwatch` job in CI.
LOCKWATCH_OUT ?= lockorder.json
lockwatch:
	rm -f $(LOCKWATCH_OUT)
	REPRO_LOCKWATCH=1 REPRO_LOCKWATCH_OUT=$(LOCKWATCH_OUT) \
		STRESS_RUNS=1 $(MAKE) stress
	PYTHONPATH=src $(PYTHON) scripts/lockwatch_check.py $(LOCKWATCH_OUT)

# Performance gate: the semantic-cache / vectorized-kernel benchmark
# with its built-in guards (cached qps >= REPRO_CACHE_GUARD x uncached,
# vectorized filters >= REPRO_VEC_GUARD x scalar).  Mirrors the
# `perf-smoke` job in CI, which relaxes the guards for shared runners.
perf-smoke:
	$(PYTHON) -m pytest benchmarks/test_semantic_cache.py --benchmark-only -q

# Open-loop SLO smoke: a short run of the admission-controlled
# open-loop matrix with generous guards (goodput merely well above
# zero, shed path exercised, reports schema-valid).  Mirrors the
# `slo-smoke` job in CI; the honest numbers come from the nightly
# bench workflow (`benchmarks/test_slo_openloop.py` at defaults).
SLO_SMOKE_REQUESTS ?= 250
SLO_SMOKE_GOODPUT_FRAC ?= 0.25
slo-smoke:
	REPRO_SLO_REQUESTS=$(SLO_SMOKE_REQUESTS) \
	REPRO_SLO_GOODPUT_FRAC=$(SLO_SMOKE_GOODPUT_FRAC) \
	REPRO_SLO_COLLAPSE_GUARD=0.5 \
	$(PYTHON) -m pytest benchmarks/test_slo_openloop.py --benchmark-only -q

# Full open-loop SLO matrix at honest guard levels + the nightly
# regression gate against the committed BENCH_6.json baseline.
bench-slo:
	cp BENCH_6.json /tmp/repro-bench-baseline.json
	$(PYTHON) -m pytest benchmarks/test_slo_openloop.py --benchmark-only -q
	$(PYTHON) scripts/bench_compare.py /tmp/repro-bench-baseline.json BENCH_6.json

# Delta-session smoke: a short run of the transmission matrix with a
# relaxed reduction guard (delta must merely halve naive's bytes; the
# honest >= 5x number comes from the nightly bench at defaults).
# Every frame is still decoded client-side and verified against the
# engine's answer.  Mirrors the `session-smoke` job in CI.
SESSION_SMOKE_FRAMES ?= 80
SESSION_SMOKE_REDUCTION ?= 2.0
session-smoke:
	REPRO_SESSION_FRAMES=$(SESSION_SMOKE_FRAMES) \
	REPRO_SESSION_REDUCTION=$(SESSION_SMOKE_REDUCTION) \
	$(PYTHON) -m pytest benchmarks/test_session_delta.py --benchmark-only -q

# Cluster fast-path smoke: the clustered/per-node A/B with a relaxed
# speedup guard (clustered merely must not lose to the per-node
# oracle; the honest >= 2x comes from the nightly bench at defaults).
# Results stay node-id-identical either way — that parity is always
# asserted at full strength.  Mirrors the `cluster-smoke` job in CI.
CLUSTER_SMOKE_GUARD ?= 1.0
CLUSTER_SMOKE_REQUESTS ?= 24
cluster-smoke:
	REPRO_CLUSTER_GUARD=$(CLUSTER_SMOKE_GUARD) \
	REPRO_CLUSTER_REQUESTS=$(CLUSTER_SMOKE_REQUESTS) \
	$(PYTHON) -m pytest benchmarks/test_clusters.py --benchmark-only -q

# Full cluster A/B at the honest >= 2x speedup guard + the nightly
# regression gate against the committed BENCH_8.json baseline.
bench-cluster:
	cp BENCH_8.json /tmp/repro-bench8-baseline.json
	$(PYTHON) -m pytest benchmarks/test_clusters.py --benchmark-only -q
	$(PYTHON) scripts/bench_compare.py /tmp/repro-bench8-baseline.json BENCH_8.json

# Full delta-session matrix at the honest >= 5x reduction guard + the
# nightly regression gate against the committed BENCH_7.json baseline.
bench-session:
	cp BENCH_7.json /tmp/repro-bench7-baseline.json
	$(PYTHON) -m pytest benchmarks/test_session_delta.py --benchmark-only -q
	$(PYTHON) scripts/bench_compare.py /tmp/repro-bench7-baseline.json BENCH_7.json

# Integrity drill: build a throwaway database, scrub it (must be
# clean), snapshot, inject seeded corruption (scrub must now fail),
# repair from the snapshot, scrub once more, then damage the cluster
# directory sidecar (scrub must flag the run/blob mismatch) and
# restore it.  Mirrors the `integrity` job in CI.
FSCK_DB ?= /tmp/repro-fsck-drill.db
fsck:
	rm -rf $(FSCK_DB)
	PYTHONPATH=src $(PYTHON) -m repro build $(FSCK_DB) --dataset foothills --points 800
	PYTHONPATH=src $(PYTHON) -m repro fsck $(FSCK_DB)
	PYTHONPATH=src $(PYTHON) -m repro fsck $(FSCK_DB) --archive
	PYTHONPATH=src $(PYTHON) -m repro fsck $(FSCK_DB) --inject 5 --seed 7; \
		test $$? -eq 1 || { echo "fsck missed injected corruption"; exit 1; }
	PYTHONPATH=src $(PYTHON) -m repro fsck $(FSCK_DB) --repair
	PYTHONPATH=src $(PYTHON) -m repro fsck $(FSCK_DB)
	cp $(FSCK_DB)/dm_clusters.json /tmp/repro-fsck-clusters.bak
	$(PYTHON) -c "import json; p = '$(FSCK_DB)/dm_clusters.json'; \
		d = json.load(open(p)); d['clusters'][0]['n_nodes'] += 1; \
		json.dump(d, open(p, 'w'))"
	PYTHONPATH=src $(PYTHON) -m repro fsck $(FSCK_DB); \
		test $$? -eq 1 || { echo "fsck missed cluster-directory damage"; exit 1; }
	mv /tmp/repro-fsck-clusters.bak $(FSCK_DB)/dm_clusters.json
	PYTHONPATH=src $(PYTHON) -m repro fsck $(FSCK_DB)
	rm -rf $(FSCK_DB)

# Live-mutation robustness gate: rebuild-from-scratch parity across
# random patch sequences, a kill-anywhere crash pass (every distinct
# WAL protocol point + a sample of page boundaries, recovery must
# land on exactly the pre- or post-patch snapshot), and concurrent
# readers racing live commits (every result must be some committed
# epoch's exact snapshot).  Mirrors the `mutation-drill` job in CI.
mutation-drill:
	PYTHONPATH=src $(PYTHON) scripts/mutation_drill.py

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

report:
	$(PYTHON) -m repro.bench.report results results/report.md

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/flyover.py 4
	$(PYTHON) examples/compare_methods.py
	$(PYTHON) examples/dem_pipeline.py
	$(PYTHON) examples/streaming_client.py 6

clean:
	rm -rf .data .pytest_cache .hypothesis results
	find . -name __pycache__ -type d -exec rm -rf {} +
