"""The two evaluation datasets (scaled analogs of the paper's data).

The paper evaluates on a 2M-point mining terrain and the 17M-point
USGS Crater Lake DEM, neither redistributable.  These builders produce
deterministic synthetic analogs at laptop scale (see DESIGN.md):

* :func:`foothills_dataset` — ridge-and-valley fractal terrain, the
  2M-point analog (default 25k points);
* :func:`crater_dataset` — caldera terrain, the 17M-point analog
  (default 80k points).

A :class:`TerrainDataset` bundles the raster field, the
full-resolution TIN, the normalised progressive mesh, and the Direct
Mesh connection lists — everything the stores and baselines build on.
Set the environment variable ``REPRO_SCALE`` (a float) to scale both
dataset sizes, e.g. ``REPRO_SCALE=4`` for a 100k/320k-point run.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.core.connectivity import build_connection_lists
from repro.errors import DatasetError
from repro.geometry.primitives import Rect
from repro.mesh.progressive import ProgressiveMesh
from repro.mesh.simplify import SimplifyConfig, simplify_to_pm
from repro.mesh.trimesh import TriMesh
from repro.terrain.dem import DEM
from repro.terrain.gridfield import GridField
from repro.terrain.synthetic import crater_field, ridge_field

__all__ = [
    "TerrainDataset",
    "foothills_dataset",
    "crater_dataset",
    "dataset_by_name",
    "scale_factor",
]

#: Baseline point counts for the two analogs.
FOOTHILLS_POINTS = 25_000
CRATER_POINTS = 80_000


def scale_factor() -> float:
    """The ``REPRO_SCALE`` environment scaling (default 1.0)."""
    raw = os.environ.get("REPRO_SCALE", "1")
    try:
        value = float(raw)
    except ValueError as exc:
        raise DatasetError(f"REPRO_SCALE={raw!r} is not a number") from exc
    if value <= 0:
        raise DatasetError(f"REPRO_SCALE must be positive, got {value}")
    return value


@dataclass
class TerrainDataset:
    """A fully prepared terrain dataset.

    Attributes:
        name: dataset identifier (cache key component).
        field: the source raster.
        mesh: the full-resolution TIN.
        pm: the normalised progressive mesh built from ``mesh``.
        connections: Direct Mesh similar-LOD connection lists.
    """

    name: str
    field: GridField
    mesh: TriMesh
    pm: ProgressiveMesh
    connections: dict[int, list[int]]

    @property
    def n_points(self) -> int:
        """Number of full-resolution terrain points."""
        return self.mesh.n_vertices

    def bounds(self) -> Rect:
        """The terrain extent in ``(x, y)``."""
        return self.mesh.bounds()

    def roi_for_fraction(self, fraction: float, cx: float, cy: float) -> Rect:
        """A square ROI covering ``fraction`` of the dataset area,
        centred as close to ``(cx, cy)`` as fits inside the bounds."""
        if not 0 < fraction <= 1:
            raise DatasetError(f"fraction must be in (0, 1], got {fraction}")
        bounds = self.bounds()
        side = (bounds.area * fraction) ** 0.5
        half = side / 2
        cx = min(max(cx, bounds.min_x + half), bounds.max_x - half)
        cy = min(max(cy, bounds.min_y + half), bounds.max_y - half)
        return Rect(cx - half, cy - half, cx + half, cy + half)


def _prepare(
    name: str,
    field: GridField,
    n_points: int,
    seed: int,
    simplify_config: SimplifyConfig | None,
) -> TerrainDataset:
    dem = DEM(field, name)
    mesh = dem.to_scattered_trimesh(n_points, seed=seed)
    if simplify_config is None:
        # Collapses are ordered by quadric error (the paper pre-processes
        # with QEM [7]) but each node records the *vertical distance*
        # measure, the unit the paper's LOD axis uses.
        simplify_config = SimplifyConfig(error_measure="vertical")
    pm = simplify_to_pm(mesh, simplify_config)
    pm.normalize_lod()
    connections = build_connection_lists(pm)
    return TerrainDataset(name, field, mesh, pm, connections)


def foothills_dataset(
    n_points: int | None = None,
    seed: int = 42,
    simplify_config: SimplifyConfig | None = None,
) -> TerrainDataset:
    """The 2M-point mining-terrain analog (ridge-and-valley fractal).

    Args:
        n_points: terrain samples (default 25k x ``REPRO_SCALE``).
        seed: RNG seed for both relief and sampling.
        simplify_config: PM construction options.
    """
    if n_points is None:
        n_points = int(FOOTHILLS_POINTS * scale_factor())
    field = ridge_field(
        exponent=9, roughness=0.55, amplitude=120.0, cell_size=10.0, seed=seed
    )
    return _prepare("foothills", field, n_points, seed, simplify_config)


def crater_dataset(
    n_points: int | None = None,
    seed: int = 7,
    simplify_config: SimplifyConfig | None = None,
) -> TerrainDataset:
    """The 17M-point Crater Lake DEM analog (caldera terrain)."""
    if n_points is None:
        n_points = int(CRATER_POINTS * scale_factor())
    field = crater_field(
        exponent=9,
        rim_radius_fraction=0.55,
        rim_height=250.0,
        bowl_depth=350.0,
        noise_amplitude=40.0,
        cell_size=10.0,
        seed=seed,
    )
    return _prepare("crater", field, n_points, seed, simplify_config)


def dataset_by_name(
    name: str, n_points: int | None = None, seed: int | None = None
) -> TerrainDataset:
    """Dispatch on dataset name (``"foothills"`` or ``"crater"``)."""
    if name == "foothills":
        return foothills_dataset(n_points, seed if seed is not None else 42)
    if name == "crater":
        return crater_dataset(n_points, seed if seed is not None else 7)
    raise DatasetError(f"unknown dataset {name!r}")
