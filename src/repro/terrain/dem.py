"""Digital elevation models and grid-to-TIN conversion.

A :class:`DEM` wraps a :class:`~repro.terrain.gridfield.GridField` and
produces the full-resolution triangular meshes the MTM pipeline starts
from, either by triangulating the raster directly or by scattering a
target number of sample points (the shape the paper's datasets have:
irregular 3D point sets).
"""

from __future__ import annotations

import numpy as np

from repro.errors import DatasetError, PatchError
from repro.geometry.primitives import Rect
from repro.mesh.trimesh import TriMesh
from repro.terrain.gridfield import GridField

__all__ = ["DEM"]


class DEM:
    """A terrain model backed by a raster elevation grid."""

    def __init__(self, field: GridField, name: str = "dem") -> None:
        self.field = field
        self.name = name

    # -- TIN extraction -----------------------------------------------------

    def to_grid_trimesh(self, max_points: int | None = None) -> TriMesh:
        """Triangulate the raster directly (optionally downsampled).

        Args:
            max_points: downsample so the mesh has at most roughly this
                many vertices.
        """
        field = self.field
        if max_points is not None:
            total = field.n_rows * field.n_cols
            if total > max_points:
                factor = int(np.ceil(np.sqrt(total / max_points)))
                field = field.downsampled(factor)
        return TriMesh.from_grid(field.heights.tolist(), field.cell_size)

    def to_scattered_trimesh(self, n_points: int, seed: int = 0) -> TriMesh:
        """A TIN over ``n_points`` scattered samples of the surface.

        Points are drawn from a jittered grid (quasi-uniform in
        ``(x, y)``, like surveyed terrain data), elevations are
        bilinear samples; the four corners are always included so the TIN
        covers the full extent.
        """
        if n_points < 4:
            raise DatasetError(f"need at least 4 points, got {n_points}")
        rng = np.random.default_rng(seed)
        bounds = self.field.bounds()
        side = int(np.ceil(np.sqrt(n_points)))
        gx = np.linspace(bounds.min_x, bounds.max_x, side + 1)[:-1]
        gy = np.linspace(bounds.min_y, bounds.max_y, side + 1)[:-1]
        cell_w = (bounds.max_x - bounds.min_x) / side
        cell_h = (bounds.max_y - bounds.min_y) / side
        xx, yy = np.meshgrid(gx, gy, indexing="ij")
        xs = (xx + rng.uniform(0, cell_w, xx.shape)).ravel()
        ys = (yy + rng.uniform(0, cell_h, yy.shape)).ravel()
        keep = rng.permutation(len(xs))[: n_points - 4]
        xs = xs[keep]
        ys = ys[keep]
        corner_x = np.array(
            [bounds.min_x, bounds.min_x, bounds.max_x, bounds.max_x]
        )
        corner_y = np.array(
            [bounds.min_y, bounds.max_y, bounds.min_y, bounds.max_y]
        )
        xs = np.concatenate([xs, corner_x])
        ys = np.concatenate([ys, corner_y])
        zs = self.field.sample_many(xs, ys)
        points = list(zip(xs.tolist(), ys.tolist(), zs.tolist()))
        return TriMesh.from_points(points)

    # -- mutation -----------------------------------------------------------

    def apply_patch(self, region: Rect, heights: np.ndarray) -> Rect:
        """Overwrite the grid samples inside ``region`` with ``heights``.

        ``region`` must be grid-aligned — its corners must land exactly
        on grid sample positions — and ``heights`` must have exactly
        the shape of the covered sample window (``rows x cols``, row 0
        at ``region.min_y``).  Every violation raises
        :class:`~repro.errors.PatchError` *before* any sample is
        touched, so a rejected patch never leaves the grid
        half-updated.

        Returns the patched region (echoed back) so callers can feed
        it straight into the store-mutation layer.
        """
        field = self.field
        bounds = field.bounds()
        if not (
            region.min_x < region.max_x and region.min_y < region.max_y
        ):
            raise PatchError(
                "patch region has zero or negative area",
                region=region.as_tuple(),
            )
        if not bounds.contains_rect(region):
            raise PatchError(
                "patch region lies outside the grid extent",
                region=region.as_tuple(),
                bounds=bounds.as_tuple(),
            )
        ox, oy = field.origin
        cell = field.cell_size
        edges = []
        for value, org in (
            (region.min_x, ox), (region.min_y, oy),
            (region.max_x, ox), (region.max_y, oy),
        ):
            frac = (value - org) / cell
            snapped = round(frac)
            if abs(frac - snapped) > 1e-9:
                raise PatchError(
                    "patch region is not grid-aligned",
                    region=region.as_tuple(),
                    origin=field.origin,
                    cell_size=cell,
                )
            edges.append(int(snapped))
        c0, r0, c1, r1 = edges
        heights = np.asarray(heights)
        if not np.issubdtype(heights.dtype, np.number):
            raise PatchError(
                f"patch heights must be numeric, got dtype {heights.dtype}",
                region=region.as_tuple(),
            )
        expected = (r1 - r0 + 1, c1 - c0 + 1)
        if heights.shape != expected:
            raise PatchError(
                "patch heights do not match the covered sample window",
                region=region.as_tuple(),
                expected_shape=expected,
                actual_shape=heights.shape,
            )
        heights = heights.astype(np.float64)
        if not np.all(np.isfinite(heights)):
            raise PatchError(
                "patch heights contain non-finite values",
                region=region.as_tuple(),
            )
        field.heights[r0 : r1 + 1, c0 : c1 + 1] = heights
        return region

    # -- convenience ------------------------------------------------------------

    def bounds(self):
        """The terrain extent in ``(x, y)``."""
        return self.field.bounds()

    def elevation_at(self, x: float, y: float) -> float:
        """Bilinear elevation at ``(x, y)``."""
        return self.field.sample(x, y)
