"""Synthetic terrain generators.

The paper evaluates on two real datasets we cannot redistribute: a
2M-point terrain from a mining company and the 17M-point USGS Crater
Lake DEM.  These generators produce their laptop-scale statistical
analogs (see DESIGN.md, substitutions):

* :func:`fractal_field` / :func:`ridge_field` — diamond-square fractal
  relief with optional ridge shaping: rolling mining-country foothills;
* :func:`crater_field` — a caldera (raised rim, deep bowl, optional
  central cone) over fractal noise: the Crater Lake analog;
* :func:`gaussian_hills_field` — smooth blobs, handy in tests.

All generators are deterministic given a seed.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DatasetError
from repro.terrain.gridfield import GridField

__all__ = [
    "fractal_field",
    "ridge_field",
    "crater_field",
    "gaussian_hills_field",
]


def _grid_size_for(exponent: int) -> int:
    return (1 << exponent) + 1


def fractal_field(
    exponent: int = 8,
    roughness: float = 0.55,
    amplitude: float = 120.0,
    cell_size: float = 10.0,
    seed: int = 0,
) -> GridField:
    """Diamond-square fractal terrain.

    Args:
        exponent: grid is ``(2**exponent + 1)`` points on a side.
        roughness: per-octave amplitude decay in ``(0, 1)``; higher is
            rougher.
        amplitude: overall elevation scale.
        cell_size: ground distance between samples.
        seed: RNG seed.
    """
    if not 0 < roughness < 1:
        raise DatasetError(f"roughness must be in (0, 1), got {roughness}")
    if exponent < 1 or exponent > 13:
        raise DatasetError(f"exponent must be in 1..13, got {exponent}")
    rng = np.random.default_rng(seed)
    n = _grid_size_for(exponent)
    h = np.zeros((n, n), dtype=np.float64)
    h[0, 0], h[0, -1], h[-1, 0], h[-1, -1] = rng.normal(0, amplitude, 4)
    step = n - 1
    scale = amplitude
    while step > 1:
        half = step // 2
        # Diamond step: centres of squares.
        rows = np.arange(half, n, step)
        cols = np.arange(half, n, step)
        rr, cc = np.meshgrid(rows, cols, indexing="ij")
        avg = (
            h[rr - half, cc - half]
            + h[rr - half, cc + half]
            + h[rr + half, cc - half]
            + h[rr + half, cc + half]
        ) / 4.0
        h[rr, cc] = avg + rng.normal(0, scale, rr.shape)
        # Square step: edge midpoints, both lattices.
        for row_start, col_start in ((0, half), (half, 0)):
            rows = np.arange(row_start, n, step)
            cols = np.arange(col_start, n, step)
            if len(rows) == 0 or len(cols) == 0:
                continue
            rr, cc = np.meshgrid(rows, cols, indexing="ij")
            total = np.zeros(rr.shape)
            count = np.zeros(rr.shape)
            for dr, dc in ((-half, 0), (half, 0), (0, -half), (0, half)):
                r2 = rr + dr
                c2 = cc + dc
                valid = (r2 >= 0) & (r2 < n) & (c2 >= 0) & (c2 < n)
                total[valid] += h[r2[valid], c2[valid]]
                count[valid] += 1
            h[rr, cc] = total / np.maximum(count, 1) + rng.normal(
                0, scale, rr.shape
            )
        step = half
        scale *= roughness
    return GridField(h, cell_size)


def ridge_field(
    exponent: int = 8,
    roughness: float = 0.55,
    amplitude: float = 120.0,
    ridge_strength: float = 0.6,
    cell_size: float = 10.0,
    seed: int = 0,
) -> GridField:
    """Fractal terrain shaped into ridge-and-valley relief.

    Applying ``1 - |.|`` to a zero-centred fractal produces sharp
    ridge lines — the texture of fold-mountain mining country (the
    2M-point dataset analog).
    """
    base = fractal_field(exponent, roughness, amplitude, cell_size, seed)
    h = base.heights
    peak = np.abs(h).max() or 1.0
    ridged = (1.0 - np.abs(h) / peak) * amplitude
    # Re-add a low-frequency tilt so valleys drain somewhere.
    extra = fractal_field(
        max(1, exponent - 3), roughness, amplitude * 0.4, cell_size, seed + 1
    )
    coarse = np.kron(
        extra.heights,
        np.ones(
            (
                -(-h.shape[0] // extra.heights.shape[0]),
                -(-h.shape[1] // extra.heights.shape[1]),
            )
        ),
    )[: h.shape[0], : h.shape[1]]
    return GridField(ridged + coarse, cell_size)


def crater_field(
    exponent: int = 8,
    rim_radius_fraction: float = 0.55,
    rim_height: float = 250.0,
    bowl_depth: float = 350.0,
    noise_amplitude: float = 40.0,
    cell_size: float = 10.0,
    seed: int = 0,
) -> GridField:
    """A caldera terrain: raised rim, deep bowl, fractal detail.

    The Crater Lake analog (the 17M-point dataset): one dominant
    radial structure — steep rim walls where simplification keeps
    many points, a flat lake floor where it keeps few — which gives
    the strong LOD skew the evaluation relies on.
    """
    noise = fractal_field(
        exponent, 0.55, noise_amplitude, cell_size, seed
    )
    n = noise.heights.shape[0]
    coords = np.arange(n, dtype=np.float64)
    xx, yy = np.meshgrid(coords, coords, indexing="ij")
    cx = cy = (n - 1) / 2.0
    r = np.sqrt((xx - cx) ** 2 + (yy - cy) ** 2) / ((n - 1) / 2.0)
    rim = rim_radius_fraction
    profile = np.where(
        r < rim,
        # Inside: bowl rising steeply to the rim crest.
        rim_height - bowl_depth * (1.0 - (r / rim) ** 4),
        # Outside: flank decaying from the crest.
        rim_height * np.exp(-((r - rim) / 0.35) ** 2),
    )
    # The lake surface: clip the bowl floor flat.
    lake_level = rim_height - bowl_depth * 0.55
    profile = np.maximum(profile, np.where(r < rim, lake_level, -np.inf))
    return GridField(profile + noise.heights, cell_size)


def gaussian_hills_field(
    size: int = 129,
    n_hills: int = 12,
    amplitude: float = 80.0,
    cell_size: float = 10.0,
    seed: int = 0,
) -> GridField:
    """Smooth terrain made of random Gaussian bumps (test-friendly)."""
    if size < 2:
        raise DatasetError(f"size must be >= 2, got {size}")
    rng = np.random.default_rng(seed)
    coords = np.arange(size, dtype=np.float64)
    xx, yy = np.meshgrid(coords, coords, indexing="ij")
    h = np.zeros((size, size))
    for _ in range(n_hills):
        cx, cy = rng.uniform(0, size - 1, 2)
        sigma = rng.uniform(size * 0.05, size * 0.25)
        height = rng.uniform(0.2, 1.0) * amplitude * rng.choice((-0.6, 1.0))
        h += height * np.exp(-(((xx - cx) ** 2 + (yy - cy) ** 2) / (2 * sigma**2)))
    return GridField(h, cell_size)
