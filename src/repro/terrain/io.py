"""Terrain file I/O: XYZ point lists, ESRI ASCII grids, Wavefront OBJ.

Small, dependency-free readers/writers so datasets and query results
can leave the library — enough to round-trip everything the examples
and tests produce.
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence

import numpy as np

from repro.errors import DatasetError
from repro.mesh.trimesh import TriMesh
from repro.terrain.gridfield import GridField

__all__ = [
    "write_xyz",
    "read_xyz",
    "write_esri_ascii",
    "read_esri_ascii",
    "write_obj",
]


def write_xyz(path: str | Path, points: Sequence[tuple[float, float, float]]) -> None:
    """Write points as whitespace-separated ``x y z`` lines."""
    with open(path, "w", encoding="ascii") as f:
        for x, y, z in points:
            f.write(f"{x:.6f} {y:.6f} {z:.6f}\n")


def read_xyz(path: str | Path) -> list[tuple[float, float, float]]:
    """Read an ``x y z`` text file (blank lines and ``#`` comments ok)."""
    points: list[tuple[float, float, float]] = []
    with open(path, "r", encoding="ascii") as f:
        for line_no, line in enumerate(f, 1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) < 3:
                raise DatasetError(f"{path}:{line_no}: expected 3 columns")
            try:
                points.append((float(parts[0]), float(parts[1]), float(parts[2])))
            except ValueError as exc:
                raise DatasetError(f"{path}:{line_no}: {exc}") from exc
    return points


def write_esri_ascii(path: str | Path, field: GridField) -> None:
    """Write a grid in ESRI ASCII raster format (the USGS DEM family)."""
    with open(path, "w", encoding="ascii") as f:
        f.write(f"ncols {field.n_cols}\n")
        f.write(f"nrows {field.n_rows}\n")
        f.write(f"xllcorner {field.origin[0]:.6f}\n")
        f.write(f"yllcorner {field.origin[1]:.6f}\n")
        f.write(f"cellsize {field.cell_size:.6f}\n")
        f.write("NODATA_value -9999\n")
        # ESRI rows run top (max y) to bottom.
        for row in range(field.n_rows - 1, -1, -1):
            f.write(" ".join(f"{v:.4f}" for v in field.heights[row]) + "\n")


def read_esri_ascii(path: str | Path) -> GridField:
    """Read an ESRI ASCII raster into a :class:`GridField`."""
    header: dict[str, float] = {}
    rows: list[list[float]] = []
    with open(path, "r", encoding="ascii") as f:
        for line in f:
            parts = line.split()
            if not parts:
                continue
            key = parts[0].lower()
            if key in (
                "ncols",
                "nrows",
                "xllcorner",
                "yllcorner",
                "cellsize",
                "nodata_value",
            ):
                header[key] = float(parts[1])
            else:
                rows.append([float(v) for v in parts])
    for required in ("ncols", "nrows", "cellsize"):
        if required not in header:
            raise DatasetError(f"{path}: missing header field {required}")
    heights = np.array(rows, dtype=np.float64)
    if heights.shape != (int(header["nrows"]), int(header["ncols"])):
        raise DatasetError(
            f"{path}: data shape {heights.shape} does not match header"
        )
    heights = heights[::-1]  # Back to row 0 = min y.
    return GridField(
        heights,
        header["cellsize"],
        (header.get("xllcorner", 0.0), header.get("yllcorner", 0.0)),
    )


def write_obj(
    path: str | Path,
    mesh: TriMesh | None = None,
    vertices: Sequence[tuple[float, float, float]] | None = None,
    triangles: Sequence[tuple[int, int, int]] | None = None,
) -> None:
    """Write a mesh as Wavefront OBJ (1-based indices).

    Pass either ``mesh`` or explicit ``vertices``/``triangles`` (e.g. a
    reconstructed query result).
    """
    if mesh is not None:
        vertices = mesh.vertices
        triangles = mesh.triangles
    if vertices is None or triangles is None:
        raise DatasetError("write_obj needs a mesh or vertices+triangles")
    with open(path, "w", encoding="ascii") as f:
        f.write("# Direct Mesh reproduction export\n")
        for x, y, z in vertices:
            f.write(f"v {x:.6f} {y:.6f} {z:.6f}\n")
        for a, b, c in triangles:
            f.write(f"f {a + 1} {b + 1} {c + 1}\n")
