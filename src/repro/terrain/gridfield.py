"""Regular elevation grids with bilinear sampling.

A :class:`GridField` is the raster form of a terrain — what a DEM file
contains, and what the synthetic generators produce.  TINs are derived
from it by sampling; the HDoV visibility estimator uses its fast
line-of-sight queries.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DatasetError
from repro.geometry.primitives import Rect

__all__ = ["GridField"]


class GridField:
    """A regular grid of elevations over an axis-aligned extent.

    ``heights[row, col]`` is the elevation at
    ``(origin_x + col * cell, origin_y + row * cell)``.
    """

    def __init__(
        self,
        heights: np.ndarray,
        cell_size: float = 1.0,
        origin: tuple[float, float] = (0.0, 0.0),
    ) -> None:
        heights = np.asarray(heights, dtype=np.float64)
        if heights.ndim != 2 or heights.shape[0] < 2 or heights.shape[1] < 2:
            raise DatasetError("heights must be a 2D array, at least 2x2")
        if cell_size <= 0:
            raise DatasetError(f"cell size must be positive, got {cell_size}")
        self.heights = heights
        self.cell_size = float(cell_size)
        self.origin = (float(origin[0]), float(origin[1]))

    # -- geometry -----------------------------------------------------------

    @property
    def n_rows(self) -> int:
        """Grid rows (y direction)."""
        return self.heights.shape[0]

    @property
    def n_cols(self) -> int:
        """Grid columns (x direction)."""
        return self.heights.shape[1]

    def bounds(self) -> Rect:
        """The grid's (x, y) extent."""
        ox, oy = self.origin
        return Rect(
            ox,
            oy,
            ox + (self.n_cols - 1) * self.cell_size,
            oy + (self.n_rows - 1) * self.cell_size,
        )

    def elevation_range(self) -> tuple[float, float]:
        """``(min, max)`` elevation."""
        return (float(self.heights.min()), float(self.heights.max()))

    # -- sampling -------------------------------------------------------------

    def sample(self, x: float, y: float) -> float:
        """Bilinear elevation at ``(x, y)`` (clamped to the extent)."""
        ox, oy = self.origin
        fx = (x - ox) / self.cell_size
        fy = (y - oy) / self.cell_size
        fx = min(max(fx, 0.0), self.n_cols - 1.0)
        fy = min(max(fy, 0.0), self.n_rows - 1.0)
        c0 = int(fx)
        r0 = int(fy)
        c1 = min(c0 + 1, self.n_cols - 1)
        r1 = min(r0 + 1, self.n_rows - 1)
        tx = fx - c0
        ty = fy - r0
        h = self.heights
        top = h[r0, c0] * (1 - tx) + h[r0, c1] * tx
        bottom = h[r1, c0] * (1 - tx) + h[r1, c1] * tx
        return float(top * (1 - ty) + bottom * ty)

    def sample_many(self, xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
        """Vectorised bilinear sampling."""
        ox, oy = self.origin
        fx = np.clip((np.asarray(xs) - ox) / self.cell_size, 0, self.n_cols - 1)
        fy = np.clip((np.asarray(ys) - oy) / self.cell_size, 0, self.n_rows - 1)
        c0 = fx.astype(np.int64)
        r0 = fy.astype(np.int64)
        c1 = np.minimum(c0 + 1, self.n_cols - 1)
        r1 = np.minimum(r0 + 1, self.n_rows - 1)
        tx = fx - c0
        ty = fy - r0
        h = self.heights
        top = h[r0, c0] * (1 - tx) + h[r0, c1] * tx
        bottom = h[r1, c0] * (1 - tx) + h[r1, c1] * tx
        return top * (1 - ty) + bottom * ty

    # -- line of sight -----------------------------------------------------------

    def line_of_sight(
        self,
        from_xyz: tuple[float, float, float],
        to_xyz: tuple[float, float, float],
        steps: int = 48,
    ) -> bool:
        """True if the segment between the two 3D points clears terrain.

        Samples ``steps`` interior points; the endpoints themselves are
        not tested (the target sits *on* the terrain).
        """
        x0, y0, z0 = from_xyz
        x1, y1, z1 = to_xyz
        ts = np.linspace(0.0, 1.0, steps + 2)[1:-1]
        xs = x0 + (x1 - x0) * ts
        ys = y0 + (y1 - y0) * ts
        zs = z0 + (z1 - z0) * ts
        ground = self.sample_many(xs, ys)
        return bool(np.all(zs >= ground - 1e-9))

    # -- derivation -----------------------------------------------------------------

    def downsampled(self, factor: int) -> "GridField":
        """Every ``factor``-th sample (coarse copy)."""
        if factor < 1:
            raise DatasetError(f"factor must be >= 1, got {factor}")
        return GridField(
            self.heights[::factor, ::factor],
            self.cell_size * factor,
            self.origin,
        )
