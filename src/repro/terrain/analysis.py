"""Terrain approximation quality measurement.

The paper's metric is I/O; a downstream user also needs to know *how
good* a retrieved approximation is.  This module measures the vertical
deviation between a query result's triangulated surface and the ground
truth (the source raster or the full-resolution TIN), plus basic
terrain statistics (slope/roughness) used by the examples.

The error measure matches the library's LOD unit — vertical distance —
so "query at LOD e" and "measured error ~ e" are directly comparable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import ReproError
from repro.geometry.primitives import Rect
from repro.terrain.gridfield import GridField

__all__ = ["ApproximationError", "measure_against_field", "surface_sampler"]


@dataclass(frozen=True)
class ApproximationError:
    """Vertical-deviation statistics of an approximation.

    Attributes:
        rmse: root-mean-square vertical error over the sample grid.
        max_error: worst absolute vertical error.
        mean_error: mean absolute vertical error.
        samples: number of sample points that hit the approximation.
        coverage: fraction of sample points inside some triangle (a
            low value means the approximation has holes in the ROI).
    """

    rmse: float
    max_error: float
    mean_error: float
    samples: int
    coverage: float


def surface_sampler(
    vertices: Sequence[tuple[float, float, float]],
    triangles: Sequence[tuple[int, int, int]],
):
    """A callable interpolating the triangulated surface.

    Returns ``sample(x, y) -> float | None`` using barycentric
    interpolation with a uniform-grid spatial index over triangles
    (fast enough for tens of thousands of queries).
    """
    if not triangles:
        raise ReproError("cannot sample a surface with no triangles")
    xs = [v[0] for v in vertices]
    ys = [v[1] for v in vertices]
    bounds = Rect(min(xs), min(ys), max(xs), max(ys))
    n_cells = max(1, int(math.sqrt(len(triangles))))
    cell_w = (bounds.width or 1.0) / n_cells
    cell_h = (bounds.height or 1.0) / n_cells

    grid: dict[tuple[int, int], list[int]] = {}
    for t_index, (a, b, c) in enumerate(triangles):
        t_min_x = min(vertices[a][0], vertices[b][0], vertices[c][0])
        t_max_x = max(vertices[a][0], vertices[b][0], vertices[c][0])
        t_min_y = min(vertices[a][1], vertices[b][1], vertices[c][1])
        t_max_y = max(vertices[a][1], vertices[b][1], vertices[c][1])
        ix0 = int((t_min_x - bounds.min_x) / cell_w)
        ix1 = int((t_max_x - bounds.min_x) / cell_w)
        iy0 = int((t_min_y - bounds.min_y) / cell_h)
        iy1 = int((t_max_y - bounds.min_y) / cell_h)
        for ix in range(max(0, ix0), min(n_cells - 1, ix1) + 1):
            for iy in range(max(0, iy0), min(n_cells - 1, iy1) + 1):
                grid.setdefault((ix, iy), []).append(t_index)

    def sample(x: float, y: float) -> float | None:
        ix = int((x - bounds.min_x) / cell_w)
        iy = int((y - bounds.min_y) / cell_h)
        for t_index in grid.get(
            (min(max(ix, 0), n_cells - 1), min(max(iy, 0), n_cells - 1)), ()
        ):
            a, b, c = triangles[t_index]
            ax, ay, az = vertices[a]
            bx, by, bz = vertices[b]
            cx, cy, cz = vertices[c]
            det = (by - cy) * (ax - cx) + (cx - bx) * (ay - cy)
            if det == 0:
                continue
            l1 = ((by - cy) * (x - cx) + (cx - bx) * (y - cy)) / det
            l2 = ((cy - ay) * (x - cx) + (ax - cx) * (y - cy)) / det
            l3 = 1.0 - l1 - l2
            eps = -1e-9
            if l1 >= eps and l2 >= eps and l3 >= eps:
                return l1 * az + l2 * bz + l3 * cz
        return None

    return sample


def measure_against_field(
    vertices: Sequence[tuple[float, float, float]],
    triangles: Sequence[tuple[int, int, int]],
    field: GridField,
    roi: Rect | None = None,
    samples_per_side: int = 40,
    margin_fraction: float = 0.05,
) -> ApproximationError:
    """Vertical error of a triangulated approximation vs the raster.

    Args:
        vertices, triangles: the approximation (e.g. from
            :meth:`DMQueryResult.vertex_mesh`).
        field: the ground-truth raster.
        roi: measurement region (default: the approximation's bounds,
            shrunk by ``margin_fraction`` to avoid ragged query-window
            edges where the mesh is clipped).
        samples_per_side: sample-grid resolution.
    """
    if roi is None:
        xs = [v[0] for v in vertices]
        ys = [v[1] for v in vertices]
        roi = Rect(min(xs), min(ys), max(xs), max(ys)).scaled(
            1.0 - margin_fraction * 2
        )
    sampler = surface_sampler(vertices, triangles)
    sample_xs = np.linspace(roi.min_x, roi.max_x, samples_per_side)
    sample_ys = np.linspace(roi.min_y, roi.max_y, samples_per_side)
    errors: list[float] = []
    missed = 0
    for x in sample_xs:
        for y in sample_ys:
            approx_z = sampler(float(x), float(y))
            if approx_z is None:
                missed += 1
                continue
            errors.append(abs(approx_z - field.sample(float(x), float(y))))
    total = samples_per_side * samples_per_side
    if not errors:
        return ApproximationError(
            math.inf, math.inf, math.inf, 0, 0.0
        )
    arr = np.array(errors)
    return ApproximationError(
        rmse=float(np.sqrt(np.mean(arr**2))),
        max_error=float(arr.max()),
        mean_error=float(arr.mean()),
        samples=len(errors),
        coverage=len(errors) / total,
    )
