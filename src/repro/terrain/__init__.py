"""Terrain data substrate: rasters, synthetic relief, DEMs, datasets.

Public surface:

* :class:`~repro.terrain.gridfield.GridField` — raster elevations with
  bilinear sampling and line-of-sight queries;
* :mod:`repro.terrain.synthetic` — fractal / ridge / crater / hills
  generators;
* :class:`~repro.terrain.dem.DEM` — raster-to-TIN conversion;
* :func:`~repro.terrain.datasets.foothills_dataset` and
  :func:`~repro.terrain.datasets.crater_dataset` — the two evaluation
  datasets (analogs of the paper's 2M and 17M point sets);
* :mod:`repro.terrain.io` — XYZ / ESRI ASCII / OBJ round-tripping.
"""

from repro.terrain.analysis import (
    ApproximationError,
    measure_against_field,
    surface_sampler,
)
from repro.terrain.datasets import (
    TerrainDataset,
    crater_dataset,
    dataset_by_name,
    foothills_dataset,
    scale_factor,
)
from repro.terrain.dem import DEM
from repro.terrain.gridfield import GridField
from repro.terrain.io import (
    read_esri_ascii,
    read_xyz,
    write_esri_ascii,
    write_obj,
    write_xyz,
)
from repro.terrain.synthetic import (
    crater_field,
    fractal_field,
    gaussian_hills_field,
    ridge_field,
)

__all__ = [
    "ApproximationError",
    "DEM",
    "GridField",
    "TerrainDataset",
    "crater_dataset",
    "crater_field",
    "dataset_by_name",
    "foothills_dataset",
    "fractal_field",
    "gaussian_hills_field",
    "measure_against_field",
    "read_esri_ascii",
    "read_xyz",
    "ridge_field",
    "scale_factor",
    "surface_sampler",
    "write_esri_ascii",
    "write_obj",
    "write_xyz",
]
