"""Planar geometric predicates used by the Delaunay triangulator.

The predicates are implemented with double-precision arithmetic plus a
static error filter: a result whose magnitude falls below a conservative
bound derived from the operand magnitudes is treated as *uncertain* and
re-evaluated with :mod:`fractions` exact rational arithmetic.  This is
the classic "floating-point filter" approach and is robust enough for
terrain point sets (which come from grids and pseudo-random generators,
not adversarial input) while staying dependency-free.
"""

from __future__ import annotations

from fractions import Fraction

__all__ = [
    "orient2d",
    "incircle",
    "collinear",
    "segments_intersect",
    "point_in_triangle",
    "triangle_area2",
]

# Relative error bounds for the filtered predicates.  These follow the
# structure of Shewchuk's bounds; the constants are conservative.
_ORIENT2D_BOUND = 4e-15
_INCIRCLE_BOUND = 1e-13


def orient2d(ax: float, ay: float, bx: float, by: float, cx: float, cy: float) -> int:
    """Orientation of the triangle ``a, b, c``.

    Returns ``+1`` if the points wind counter-clockwise, ``-1`` if
    clockwise, and ``0`` if exactly collinear.
    """
    detleft = (ax - cx) * (by - cy)
    detright = (ay - cy) * (bx - cx)
    det = detleft - detright
    # Underflow guard: a product of two non-zero factors that rounds to
    # zero defeats the error analysis below (it assumes gradual
    # rounding, not total cancellation to zero).  Only reachable with
    # subnormal-scale inputs; route those to the exact path.
    if (detleft == 0.0 and ax != cx and by != cy) or (
        detright == 0.0 and ay != cy and bx != cx
    ):
        return _orient2d_exact(ax, ay, bx, by, cx, cy)
    if detleft > 0:
        if detright <= 0:
            return _sign(det)
        detsum = detleft + detright
    elif detleft < 0:
        if detright >= 0:
            return _sign(det)
        detsum = -detleft - detright
    else:
        return _sign(det)
    errbound = _ORIENT2D_BOUND * detsum
    if det >= errbound or -det >= errbound:
        return _sign(det)
    return _orient2d_exact(ax, ay, bx, by, cx, cy)


def _orient2d_exact(
    ax: float, ay: float, bx: float, by: float, cx: float, cy: float
) -> int:
    """Exact orientation via rational arithmetic (slow path)."""
    axf, ayf = Fraction(ax), Fraction(ay)
    bxf, byf = Fraction(bx), Fraction(by)
    cxf, cyf = Fraction(cx), Fraction(cy)
    det = (axf - cxf) * (byf - cyf) - (ayf - cyf) * (bxf - cxf)
    return _sign(det)


def incircle(
    ax: float,
    ay: float,
    bx: float,
    by: float,
    cx: float,
    cy: float,
    dx: float,
    dy: float,
) -> int:
    """In-circle test for the Delaunay criterion.

    For a counter-clockwise triangle ``a, b, c``: returns ``+1`` if ``d``
    lies strictly inside its circumcircle, ``-1`` if strictly outside,
    ``0`` if exactly on the circle.
    """
    adx = ax - dx
    ady = ay - dy
    bdx = bx - dx
    bdy = by - dy
    cdx = cx - dx
    cdy = cy - dy

    ad_sq = adx * adx + ady * ady
    bd_sq = bdx * bdx + bdy * bdy
    cd_sq = cdx * cdx + cdy * cdy

    det = (
        ad_sq * (bdx * cdy - bdy * cdx)
        - bd_sq * (adx * cdy - ady * cdx)
        + cd_sq * (adx * bdy - ady * bdx)
    )

    permanent = (
        ad_sq * (abs(bdx * cdy) + abs(bdy * cdx))
        + bd_sq * (abs(adx * cdy) + abs(ady * cdx))
        + cd_sq * (abs(adx * bdy) + abs(ady * bdx))
    )
    errbound = _INCIRCLE_BOUND * permanent
    if det > errbound or -det > errbound:
        return _sign(det)
    return _incircle_exact(ax, ay, bx, by, cx, cy, dx, dy)


def _incircle_exact(
    ax: float,
    ay: float,
    bx: float,
    by: float,
    cx: float,
    cy: float,
    dx: float,
    dy: float,
) -> int:
    """Exact in-circle test via rational arithmetic (slow path)."""
    adx = Fraction(ax) - Fraction(dx)
    ady = Fraction(ay) - Fraction(dy)
    bdx = Fraction(bx) - Fraction(dx)
    bdy = Fraction(by) - Fraction(dy)
    cdx = Fraction(cx) - Fraction(dx)
    cdy = Fraction(cy) - Fraction(dy)
    det = (
        (adx * adx + ady * ady) * (bdx * cdy - bdy * cdx)
        - (bdx * bdx + bdy * bdy) * (adx * cdy - ady * cdx)
        + (cdx * cdx + cdy * cdy) * (adx * bdy - ady * bdx)
    )
    return _sign(det)


def collinear(ax: float, ay: float, bx: float, by: float, cx: float, cy: float) -> bool:
    """True if the three points lie exactly on one line."""
    return orient2d(ax, ay, bx, by, cx, cy) == 0


def triangle_area2(
    ax: float, ay: float, bx: float, by: float, cx: float, cy: float
) -> float:
    """Twice the signed area of triangle ``a, b, c``.

    Positive for counter-clockwise winding.  Unlike :func:`orient2d`
    this returns the (unfiltered) magnitude, which callers use for area
    weighting rather than branching, so exactness is not required.
    """
    return (bx - ax) * (cy - ay) - (by - ay) * (cx - ax)


def point_in_triangle(
    px: float,
    py: float,
    ax: float,
    ay: float,
    bx: float,
    by: float,
    cx: float,
    cy: float,
) -> bool:
    """True if ``p`` lies inside or on the boundary of triangle ``a, b, c``.

    Works for either winding order of the triangle.
    """
    d1 = orient2d(px, py, ax, ay, bx, by)
    d2 = orient2d(px, py, bx, by, cx, cy)
    d3 = orient2d(px, py, cx, cy, ax, ay)
    has_neg = d1 < 0 or d2 < 0 or d3 < 0
    has_pos = d1 > 0 or d2 > 0 or d3 > 0
    return not (has_neg and has_pos)


def segments_intersect(
    p1x: float,
    p1y: float,
    p2x: float,
    p2y: float,
    q1x: float,
    q1y: float,
    q2x: float,
    q2y: float,
) -> bool:
    """True if segment ``p1 p2`` and segment ``q1 q2`` intersect.

    Touching at endpoints counts as intersecting.
    """
    d1 = orient2d(q1x, q1y, q2x, q2y, p1x, p1y)
    d2 = orient2d(q1x, q1y, q2x, q2y, p2x, p2y)
    d3 = orient2d(p1x, p1y, p2x, p2y, q1x, q1y)
    d4 = orient2d(p1x, p1y, p2x, p2y, q2x, q2y)
    if ((d1 > 0 and d2 < 0) or (d1 < 0 and d2 > 0)) and (
        (d3 > 0 and d4 < 0) or (d3 < 0 and d4 > 0)
    ):
        return True
    if d1 == 0 and _on_segment(q1x, q1y, q2x, q2y, p1x, p1y):
        return True
    if d2 == 0 and _on_segment(q1x, q1y, q2x, q2y, p2x, p2y):
        return True
    if d3 == 0 and _on_segment(p1x, p1y, p2x, p2y, q1x, q1y):
        return True
    if d4 == 0 and _on_segment(p1x, p1y, p2x, p2y, q2x, q2y):
        return True
    return False


def _on_segment(
    ax: float, ay: float, bx: float, by: float, px: float, py: float
) -> bool:
    """True if collinear point ``p`` lies within the bounding box of ``ab``."""
    return min(ax, bx) <= px <= max(ax, bx) and min(ay, by) <= py <= max(ay, by)


def _sign(value) -> int:
    if value > 0:
        return 1
    if value < 0:
        return -1
    return 0
