"""Geometric primitives and algorithms (substrate).

Public surface:

* :class:`~repro.geometry.primitives.Point2`,
  :class:`~repro.geometry.primitives.Point3` — value types for terrain
  samples;
* :class:`~repro.geometry.primitives.Rect`,
  :class:`~repro.geometry.primitives.Box3` — 2D/3D axis-aligned bounds
  (query ROIs, index MBRs, query cubes);
* :func:`~repro.geometry.triangulation.delaunay` — Bowyer-Watson
  Delaunay triangulation for scattered samples;
* :class:`~repro.geometry.plane.QueryPlane` — tilted LOD plane for
  viewpoint-dependent queries;
* robust planar predicates in :mod:`repro.geometry.predicates`.
"""

from repro.geometry.plane import QueryPlane, RadialLodField, max_angle
from repro.geometry.predicates import (
    collinear,
    incircle,
    orient2d,
    point_in_triangle,
    segments_intersect,
    triangle_area2,
)
from repro.geometry.primitives import (
    EPSILON,
    Box3,
    Point2,
    Point3,
    Rect,
    union_all_boxes,
    union_all_rects,
)
from repro.geometry.triangulation import Triangulation, delaunay

__all__ = [
    "EPSILON",
    "Box3",
    "Point2",
    "Point3",
    "QueryPlane",
    "RadialLodField",
    "Rect",
    "Triangulation",
    "collinear",
    "delaunay",
    "incircle",
    "max_angle",
    "orient2d",
    "point_in_triangle",
    "segments_intersect",
    "triangle_area2",
    "union_all_boxes",
    "union_all_rects",
]
