"""Geometric primitives: points, rectangles, and axis-aligned boxes.

These are the value types used throughout the library.  Terrain points
live in three dimensions ``(x, y, z)`` where ``z`` is elevation; index
structures additionally work in the ``(x, y, e)`` space of the paper,
where ``e`` is the level-of-detail (approximation error) dimension.

The classes are deliberately small, immutable, and allocation-friendly:
the R*-tree and quadtree create millions of them during a benchmark run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.errors import GeometryError

__all__ = [
    "Point2",
    "Point3",
    "Rect",
    "Box3",
    "EPSILON",
]

#: Tolerance used for approximate geometric comparisons.
EPSILON = 1e-9


@dataclass(frozen=True, slots=True)
class Point2:
    """A point in the ``(x, y)`` plane."""

    x: float
    y: float

    def distance_to(self, other: "Point2") -> float:
        """Euclidean distance to ``other``."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def distance_sq(self, other: "Point2") -> float:
        """Squared Euclidean distance to ``other`` (no square root)."""
        dx = self.x - other.x
        dy = self.y - other.y
        return dx * dx + dy * dy

    def __iter__(self) -> Iterator[float]:
        yield self.x
        yield self.y

    def as_tuple(self) -> tuple[float, float]:
        """Return ``(x, y)``."""
        return (self.x, self.y)


@dataclass(frozen=True, slots=True)
class Point3:
    """A terrain point ``(x, y, z)`` with ``z`` the elevation."""

    x: float
    y: float
    z: float

    def xy(self) -> Point2:
        """Project onto the ``(x, y)`` plane."""
        return Point2(self.x, self.y)

    def distance_to(self, other: "Point3") -> float:
        """Euclidean distance to ``other`` in 3D."""
        dx = self.x - other.x
        dy = self.y - other.y
        dz = self.z - other.z
        return math.sqrt(dx * dx + dy * dy + dz * dz)

    def __iter__(self) -> Iterator[float]:
        yield self.x
        yield self.y
        yield self.z

    def as_tuple(self) -> tuple[float, float, float]:
        """Return ``(x, y, z)``."""
        return (self.x, self.y, self.z)


@dataclass(frozen=True, slots=True)
class Rect:
    """An axis-aligned rectangle in the ``(x, y)`` plane.

    Used both as the region of interest (ROI) of terrain queries and as
    the 2D minimum bounding rectangle (MBR) of index entries.  The
    rectangle is closed on all sides: a point on the boundary is
    contained.
    """

    min_x: float
    min_y: float
    max_x: float
    max_y: float

    def __post_init__(self) -> None:
        if self.min_x > self.max_x or self.min_y > self.max_y:
            raise GeometryError(
                f"inverted rectangle: ({self.min_x}, {self.min_y}) "
                f"to ({self.max_x}, {self.max_y})"
            )

    @classmethod
    def from_points(cls, points: Iterable[Point2 | Point3]) -> "Rect":
        """The smallest rectangle containing every point in ``points``."""
        it = iter(points)
        try:
            first = next(it)
        except StopIteration:
            raise GeometryError("cannot bound an empty point set") from None
        min_x = max_x = first.x
        min_y = max_y = first.y
        for p in it:
            if p.x < min_x:
                min_x = p.x
            elif p.x > max_x:
                max_x = p.x
            if p.y < min_y:
                min_y = p.y
            elif p.y > max_y:
                max_y = p.y
        return cls(min_x, min_y, max_x, max_y)

    @classmethod
    def centered(cls, cx: float, cy: float, width: float, height: float) -> "Rect":
        """A ``width`` x ``height`` rectangle centred on ``(cx, cy)``."""
        return cls(cx - width / 2, cy - height / 2, cx + width / 2, cy + height / 2)

    @property
    def width(self) -> float:
        """Extent along x."""
        return self.max_x - self.min_x

    @property
    def height(self) -> float:
        """Extent along y."""
        return self.max_y - self.min_y

    @property
    def area(self) -> float:
        """Rectangle area (zero for degenerate rectangles)."""
        return self.width * self.height

    @property
    def center(self) -> Point2:
        """The rectangle's centroid."""
        return Point2((self.min_x + self.max_x) / 2, (self.min_y + self.max_y) / 2)

    def contains_point(self, x: float, y: float) -> bool:
        """True if ``(x, y)`` lies inside or on the boundary."""
        return self.min_x <= x <= self.max_x and self.min_y <= y <= self.max_y

    def contains_rect(self, other: "Rect") -> bool:
        """True if ``other`` lies entirely within this rectangle."""
        return (
            self.min_x <= other.min_x
            and self.min_y <= other.min_y
            and self.max_x >= other.max_x
            and self.max_y >= other.max_y
        )

    def intersects(self, other: "Rect") -> bool:
        """True if the two rectangles share at least a boundary point."""
        return (
            self.min_x <= other.max_x
            and other.min_x <= self.max_x
            and self.min_y <= other.max_y
            and other.min_y <= self.max_y
        )

    def union(self, other: "Rect") -> "Rect":
        """The smallest rectangle containing both rectangles."""
        return Rect(
            min(self.min_x, other.min_x),
            min(self.min_y, other.min_y),
            max(self.max_x, other.max_x),
            max(self.max_y, other.max_y),
        )

    def intersection(self, other: "Rect") -> "Rect | None":
        """The overlap of the two rectangles, or ``None`` if disjoint."""
        min_x = max(self.min_x, other.min_x)
        min_y = max(self.min_y, other.min_y)
        max_x = min(self.max_x, other.max_x)
        max_y = min(self.max_y, other.max_y)
        if min_x > max_x or min_y > max_y:
            return None
        return Rect(min_x, min_y, max_x, max_y)

    def expanded(self, margin: float) -> "Rect":
        """A copy grown by ``margin`` on every side."""
        return Rect(
            self.min_x - margin,
            self.min_y - margin,
            self.max_x + margin,
            self.max_y + margin,
        )

    def scaled(self, factor: float) -> "Rect":
        """A copy scaled about its centre by ``factor``."""
        c = self.center
        half_w = self.width * factor / 2
        half_h = self.height * factor / 2
        return Rect(c.x - half_w, c.y - half_h, c.x + half_w, c.y + half_h)

    def as_tuple(self) -> tuple[float, float, float, float]:
        """Return ``(min_x, min_y, max_x, max_y)``."""
        return (self.min_x, self.min_y, self.max_x, self.max_y)


@dataclass(frozen=True, slots=True)
class Box3:
    """An axis-aligned box in ``(x, y, e)`` space.

    This is the 3D MBR used by the 3D R*-tree that indexes Direct Mesh
    vertical segments, and also the *query cube* of the single-base and
    multi-base algorithms (paper Section 5).  The third axis is named
    ``e`` (the LOD axis) rather than ``z`` to avoid confusion with
    elevation.
    """

    min_x: float
    min_y: float
    min_e: float
    max_x: float
    max_y: float
    max_e: float

    def __post_init__(self) -> None:
        if (
            self.min_x > self.max_x
            or self.min_y > self.max_y
            or self.min_e > self.max_e
        ):
            raise GeometryError(
                f"inverted box: ({self.min_x}, {self.min_y}, {self.min_e}) "
                f"to ({self.max_x}, {self.max_y}, {self.max_e})"
            )

    @classmethod
    def from_rect(cls, rect: Rect, min_e: float, max_e: float) -> "Box3":
        """Extrude a 2D rectangle along the LOD axis."""
        return cls(rect.min_x, rect.min_y, min_e, rect.max_x, rect.max_y, max_e)

    @classmethod
    def vertical_segment(
        cls, x: float, y: float, e_low: float, e_high: float
    ) -> "Box3":
        """The degenerate box for a DM node's vertical segment.

        A Direct Mesh node with LOD interval ``[e_low, e_high)`` is
        represented in the index as the segment
        ``<(x, y, e_low), (x, y, e_high)>`` (paper Section 4).
        """
        return cls(x, y, e_low, x, y, e_high)

    @property
    def rect(self) -> Rect:
        """The box's footprint in the ``(x, y)`` plane."""
        return Rect(self.min_x, self.min_y, self.max_x, self.max_y)

    @property
    def width(self) -> float:
        """Extent along x (``q_x`` in the paper's cost model)."""
        return self.max_x - self.min_x

    @property
    def height(self) -> float:
        """Extent along y (``q_y`` in the paper's cost model)."""
        return self.max_y - self.min_y

    @property
    def depth(self) -> float:
        """Extent along the LOD axis (``q_z`` in the paper's cost model)."""
        return self.max_e - self.min_e

    @property
    def volume(self) -> float:
        """Box volume; zero for degenerate boxes such as query planes."""
        return self.width * self.height * self.depth

    @property
    def margin(self) -> float:
        """Half the total edge length (the R*-tree split heuristic)."""
        return self.width + self.height + self.depth

    @property
    def center(self) -> tuple[float, float, float]:
        """The box centroid ``(x, y, e)``."""
        return (
            (self.min_x + self.max_x) / 2,
            (self.min_y + self.max_y) / 2,
            (self.min_e + self.max_e) / 2,
        )

    def contains_point(self, x: float, y: float, e: float) -> bool:
        """True if ``(x, y, e)`` lies inside or on the boundary."""
        return (
            self.min_x <= x <= self.max_x
            and self.min_y <= y <= self.max_y
            and self.min_e <= e <= self.max_e
        )

    def contains_box(self, other: "Box3") -> bool:
        """True if ``other`` lies entirely within this box."""
        return (
            self.min_x <= other.min_x
            and self.min_y <= other.min_y
            and self.min_e <= other.min_e
            and self.max_x >= other.max_x
            and self.max_y >= other.max_y
            and self.max_e >= other.max_e
        )

    def intersects(self, other: "Box3") -> bool:
        """True if the boxes share at least a boundary point."""
        return (
            self.min_x <= other.max_x
            and other.min_x <= self.max_x
            and self.min_y <= other.max_y
            and other.min_y <= self.max_y
            and self.min_e <= other.max_e
            and other.min_e <= self.max_e
        )

    def union(self, other: "Box3") -> "Box3":
        """The smallest box containing both boxes."""
        return Box3(
            min(self.min_x, other.min_x),
            min(self.min_y, other.min_y),
            min(self.min_e, other.min_e),
            max(self.max_x, other.max_x),
            max(self.max_y, other.max_y),
            max(self.max_e, other.max_e),
        )

    def intersection_volume(self, other: "Box3") -> float:
        """Volume of overlap (zero if disjoint)."""
        dx = min(self.max_x, other.max_x) - max(self.min_x, other.min_x)
        if dx <= 0:
            return 0.0
        dy = min(self.max_y, other.max_y) - max(self.min_y, other.min_y)
        if dy <= 0:
            return 0.0
        de = min(self.max_e, other.max_e) - max(self.min_e, other.min_e)
        if de <= 0:
            return 0.0
        return dx * dy * de

    def enlargement(self, other: "Box3") -> float:
        """Volume increase needed to absorb ``other`` (R-tree heuristic)."""
        return self.union(other).volume - self.volume

    def as_tuple(self) -> tuple[float, float, float, float, float, float]:
        """Return ``(min_x, min_y, min_e, max_x, max_y, max_e)``."""
        return (
            self.min_x,
            self.min_y,
            self.min_e,
            self.max_x,
            self.max_y,
            self.max_e,
        )


def union_all_boxes(boxes: Sequence[Box3]) -> Box3:
    """The smallest box containing every box in ``boxes``.

    Raises :class:`GeometryError` on an empty sequence.
    """
    if not boxes:
        raise GeometryError("cannot union an empty box sequence")
    min_x = min(b.min_x for b in boxes)
    min_y = min(b.min_y for b in boxes)
    min_e = min(b.min_e for b in boxes)
    max_x = max(b.max_x for b in boxes)
    max_y = max(b.max_y for b in boxes)
    max_e = max(b.max_e for b in boxes)
    return Box3(min_x, min_y, min_e, max_x, max_y, max_e)


def union_all_rects(rects: Sequence[Rect]) -> Rect:
    """The smallest rectangle containing every rectangle in ``rects``."""
    if not rects:
        raise GeometryError("cannot union an empty rectangle sequence")
    return Rect(
        min(r.min_x for r in rects),
        min(r.min_y for r in rects),
        max(r.max_x for r in rects),
        max(r.max_y for r in rects),
    )
