"""Tilted LOD query planes for viewpoint-dependent terrain queries.

A viewpoint-dependent query (paper Section 2) does not have a fixed
LOD: the required approximation error grows with distance from the
viewer.  In the paper's ``(x, y, e)`` space the query is a *plane*
over the ROI, anchored at ``e_min`` on the edge nearest the viewer and
rising linearly to ``e_max`` on the far edge (paper Figures 4, 5, 7).

The *angle* between the query plane and the bottom plane controls the
LOD changing rate; its maximum sensible value is
``theta_max = arctan(LOD_max / ROI)`` (paper Section 6.2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import QueryError
from repro.geometry.primitives import Rect

__all__ = ["QueryPlane", "RadialLodField", "max_angle"]


def max_angle(max_lod: float, roi_extent: float) -> float:
    """The paper's ``theta_max = arctan(LOD_max / ROI)`` in radians.

    Args:
        max_lod: the maximum LOD (approximation error) in the dataset.
        roi_extent: the ROI's extent along the viewing direction.
    """
    if roi_extent <= 0:
        raise QueryError("ROI extent must be positive")
    return math.atan2(max_lod, roi_extent)


@dataclass(frozen=True)
class QueryPlane:
    """A linear LOD field over a rectangular ROI.

    The required LOD at ``(x, y)`` rises linearly along ``direction``
    (a unit vector in the (x, y) plane pointing *away* from the viewer)
    from ``e_min`` at the near edge of the ROI to ``e_max`` at the far
    edge.  Outside the ROI the field is clamped, which only matters for
    boundary points retrieved by a slightly-larger range query.

    Attributes:
        roi: the region of interest.
        e_min: required LOD at the near edge (finest detail).
        e_max: required LOD at the far edge (coarsest detail).
        direction: unit ``(dx, dy)`` away from the viewer.
    """

    roi: Rect
    e_min: float
    e_max: float
    direction: tuple[float, float] = (0.0, 1.0)

    def __post_init__(self) -> None:
        if self.e_min < 0:
            raise QueryError(f"e_min must be non-negative, got {self.e_min}")
        if self.e_max < self.e_min:
            raise QueryError(
                f"e_max ({self.e_max}) must be >= e_min ({self.e_min})"
            )
        dx, dy = self.direction
        norm = math.hypot(dx, dy)
        if norm < 1e-12:
            raise QueryError("direction must be a non-zero vector")
        object.__setattr__(self, "direction", (dx / norm, dy / norm))

    @classmethod
    def from_angle(
        cls,
        roi: Rect,
        e_min: float,
        angle: float,
        direction: tuple[float, float] = (0.0, 1.0),
    ) -> "QueryPlane":
        """Build a plane from the paper's *angle* parameterisation.

        ``e_max`` is derived from the angle between the query plane and
        the bottom plane: ``e_max = e_min + tan(angle) * extent`` where
        ``extent`` is the ROI's span along ``direction``.
        """
        if not 0 <= angle < math.pi / 2:
            raise QueryError(f"angle must be in [0, pi/2), got {angle}")
        tmp = cls(roi, e_min, e_min, direction)
        extent = tmp.extent_along_direction()
        e_max = e_min + math.tan(angle) * extent
        return cls(roi, e_min, e_max, direction)

    @property
    def angle(self) -> float:
        """The plane's tilt angle above the bottom plane, in radians."""
        extent = self.extent_along_direction()
        if extent == 0:
            return 0.0
        return math.atan2(self.e_max - self.e_min, extent)

    def extent_along_direction(self) -> float:
        """The ROI's span projected onto the viewing direction."""
        dx, dy = self.direction
        return abs(dx) * self.roi.width + abs(dy) * self.roi.height

    def _near_offset(self) -> float:
        """Minimum of ``direction . (x, y)`` over the ROI corners."""
        dx, dy = self.direction
        corners = (
            dx * self.roi.min_x + dy * self.roi.min_y,
            dx * self.roi.min_x + dy * self.roi.max_y,
            dx * self.roi.max_x + dy * self.roi.min_y,
            dx * self.roi.max_x + dy * self.roi.max_y,
        )
        return min(corners)

    def required_lod(self, x: float, y: float) -> float:
        """The LOD the query demands at ``(x, y)``.

        Smaller values mean finer detail.  The value is clamped to
        ``[e_min, e_max]`` outside the ROI.
        """
        extent = self.extent_along_direction()
        if extent == 0 or self.e_max == self.e_min:
            return self.e_min
        dx, dy = self.direction
        t = (dx * x + dy * y - self._near_offset()) / extent
        t = min(1.0, max(0.0, t))
        return self.e_min + t * (self.e_max - self.e_min)

    def required_lod_batch(self, xs, ys):
        """Vectorized :meth:`required_lod` over coordinate arrays.

        Takes two equal-length numpy arrays and returns the required
        LOD per position — the kernel behind the columnar
        ``filter_to_plane`` path.
        """
        import numpy as np

        xs = np.asarray(xs, np.float64)
        extent = self.extent_along_direction()
        if extent == 0 or self.e_max == self.e_min:
            return np.full(xs.shape, self.e_min)
        dx, dy = self.direction
        t = (dx * xs + dy * np.asarray(ys, np.float64) - self._near_offset())
        t /= extent
        np.clip(t, 0.0, 1.0, out=t)
        return self.e_min + t * (self.e_max - self.e_min)

    def lod_range_over(self, region: Rect) -> tuple[float, float]:
        """The ``(min, max)`` required LOD over ``region``.

        Because the field is linear, the extrema occur at corners.
        """
        values = [
            self.required_lod(region.min_x, region.min_y),
            self.required_lod(region.min_x, region.max_y),
            self.required_lod(region.max_x, region.min_y),
            self.required_lod(region.max_x, region.max_y),
        ]
        return (min(values), max(values))

    def split_across_direction(self, parts: int) -> list["QueryPlane"]:
        """Split the ROI into ``parts`` equal strips along the direction.

        Each strip keeps the same global LOD field, restricted to its
        sub-ROI.  This is the geometric operation behind the multi-base
        algorithm (paper Section 5.3): the optimal split divides the
        top plane "in the middle", i.e. into equal strips.
        """
        if parts < 1:
            raise QueryError(f"parts must be >= 1, got {parts}")
        if parts == 1:
            return [self]
        dx, dy = self.direction
        strips: list[QueryPlane] = []
        for sub in _strip_rects(self.roi, parts, along_y=abs(dy) >= abs(dx)):
            lo, hi = self.lod_range_over(sub)
            strips.append(QueryPlane(sub, lo, hi, self.direction))
        return strips


def _strip_rects(roi: Rect, parts: int, along_y: bool) -> list[Rect]:
    """Cut ``roi`` into ``parts`` equal strips along one axis."""
    rects = []
    if along_y:
        step = roi.height / parts
        for i in range(parts):
            rects.append(
                Rect(
                    roi.min_x,
                    roi.min_y + i * step,
                    roi.max_x,
                    roi.min_y + (i + 1) * step,
                )
            )
    else:
        step = roi.width / parts
        for i in range(parts):
            rects.append(
                Rect(
                    roi.min_x + i * step,
                    roi.min_y,
                    roi.min_x + (i + 1) * step,
                    roi.max_y,
                )
            )
    return rects


@dataclass(frozen=True)
class RadialLodField:
    """The paper's viewer model ``f(m.e, d) <= E`` as a query field.

    Paper Section 2 estimates the required LOD of a point from its
    distance ``d`` to the viewer; the simplest rule-of-thumb ``f`` is
    proportionality, i.e. a point may carry error up to
    ``rate * distance`` (clamped to ``[e_min, e_max]``).  Unlike
    :class:`QueryPlane`'s linear ramp, the field is radial around the
    viewer — the realistic shape for a camera standing on or near the
    terrain.

    The class implements the same protocol the query processors
    consume (``roi``, ``e_min``, ``e_max``, ``required_lod``,
    ``lod_range_over``, ``split_across_direction``), so single-base
    and multi-base work unchanged; multi-base strips are cut
    perpendicular to the viewer direction.

    Attributes:
        roi: the region of interest.
        viewer: the viewer position in the (x, y) plane.
        rate: tolerated error per unit of distance.
        e_min: LOD floor (finest detail ever requested).
        e_max: LOD ceiling (cap the far field, e.g. the dataset max).
    """

    roi: Rect
    viewer: tuple[float, float]
    rate: float
    e_min: float = 0.0
    e_max: float = float("inf")

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise QueryError(f"rate must be positive, got {self.rate}")
        if self.e_min < 0 or self.e_max < self.e_min:
            raise QueryError(
                f"need 0 <= e_min <= e_max, got [{self.e_min}, {self.e_max}]"
            )

    def required_lod(self, x: float, y: float) -> float:
        """Tolerated error at ``(x, y)``: ``rate * distance``, clamped."""
        vx, vy = self.viewer
        distance = math.hypot(x - vx, y - vy)
        return min(self.e_max, max(self.e_min, self.rate * distance))

    def required_lod_batch(self, xs, ys):
        """Vectorized :meth:`required_lod` over coordinate arrays."""
        import numpy as np

        vx, vy = self.viewer
        distance = np.hypot(
            np.asarray(xs, np.float64) - vx, np.asarray(ys, np.float64) - vy
        )
        return np.clip(self.rate * distance, self.e_min, self.e_max)

    def lod_range_over(self, region: Rect) -> tuple[float, float]:
        """``(min, max)`` required LOD over ``region``.

        The minimum sits at the point of ``region`` closest to the
        viewer, the maximum at the farthest corner.
        """
        vx, vy = self.viewer
        nearest_x = min(max(vx, region.min_x), region.max_x)
        nearest_y = min(max(vy, region.min_y), region.max_y)
        d_min = math.hypot(nearest_x - vx, nearest_y - vy)
        d_max = max(
            math.hypot(cx - vx, cy - vy)
            for cx in (region.min_x, region.max_x)
            for cy in (region.min_y, region.max_y)
        )
        clamp = lambda e: min(self.e_max, max(self.e_min, e))  # noqa: E731
        return (clamp(self.rate * d_min), clamp(self.rate * d_max))

    def split_across_direction(self, parts: int) -> list["RadialLodField"]:
        """Equal strips perpendicular to the viewer-to-ROI direction,
        each carrying its own LOD bounds (for its query cube)."""
        if parts < 1:
            raise QueryError(f"parts must be >= 1, got {parts}")
        if parts == 1:
            return [self]
        center = self.roi.center
        dx = center.x - self.viewer[0]
        dy = center.y - self.viewer[1]
        along_y = abs(dy) >= abs(dx)
        strips = []
        for sub in _strip_rects(self.roi, parts, along_y):
            lo, hi = self.lod_range_over(sub)
            strips.append(
                RadialLodField(sub, self.viewer, self.rate, lo, hi)
            )
        return strips
