"""Delaunay triangulation of planar point sets (Bowyer-Watson).

The triangulator builds the initial full-resolution triangular mesh
("TIN") from scattered terrain samples.  It is an incremental
Bowyer-Watson implementation with:

* a *walk* point-location strategy that starts from the most recently
  created triangle, which is fast when insertions have spatial locality;
* a spatially-sorted (serpentine grid order) insertion sequence to give
  the walk that locality;
* filtered-exact :mod:`repro.geometry.predicates`, so grid-aligned and
  cocircular inputs do not corrupt the topology.

Regular DEM grids are triangulated directly by
:mod:`repro.terrain.dem` without going through this module; the
Delaunay path is used for scattered samples and in tests as an oracle.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.errors import TriangulationError
from repro.geometry.predicates import incircle, orient2d

__all__ = ["delaunay", "Triangulation"]


class Triangulation:
    """Result of a Delaunay triangulation.

    Attributes:
        points: the input points as ``(x, y)`` tuples (duplicates removed).
        triangles: list of ``(a, b, c)`` index triples into ``points``,
            wound counter-clockwise.
        index_map: for each *original* input index, the index into
            ``points`` it was mapped to (duplicates collapse).
    """

    def __init__(
        self,
        points: list[tuple[float, float]],
        triangles: list[tuple[int, int, int]],
        index_map: list[int],
    ) -> None:
        self.points = points
        self.triangles = triangles
        self.index_map = index_map

    def edges(self) -> set[tuple[int, int]]:
        """The undirected edge set as ``(lo, hi)`` index pairs."""
        result: set[tuple[int, int]] = set()
        for a, b, c in self.triangles:
            result.add((a, b) if a < b else (b, a))
            result.add((b, c) if b < c else (c, b))
            result.add((a, c) if a < c else (c, a))
        return result


def delaunay(points: Sequence[tuple[float, float]]) -> Triangulation:
    """Compute the Delaunay triangulation of ``points``.

    Args:
        points: at least three non-collinear ``(x, y)`` pairs.  Exact
            duplicates are merged (the first occurrence wins).

    Returns:
        A :class:`Triangulation` whose triangles are counter-clockwise.

    Raises:
        TriangulationError: fewer than three distinct points, or all
            points collinear.
    """
    unique: list[tuple[float, float]] = []
    seen: dict[tuple[float, float], int] = {}
    index_map: list[int] = []
    for p in points:
        key = (float(p[0]), float(p[1]))
        if key in seen:
            index_map.append(seen[key])
        else:
            seen[key] = len(unique)
            index_map.append(len(unique))
            unique.append(key)

    if len(unique) < 3:
        raise TriangulationError(
            f"need at least 3 distinct points, got {len(unique)}"
        )

    builder = _Builder(unique)
    builder.run()
    return Triangulation(unique, builder.finished_triangles(), index_map)


class _Builder:
    """Incremental Bowyer-Watson state machine.

    Triangles are stored in parallel dicts keyed by triangle id:
    ``_verts[t] = (a, b, c)`` and ``_neigh[t] = (n0, n1, n2)`` where
    neighbour ``i`` lies across the edge ``(v[i], v[(i+1) % 3])`` and is
    ``-1`` on the convex hull.
    """

    def __init__(self, points: list[tuple[float, float]]) -> None:
        self._pts = points
        self._verts: dict[int, tuple[int, int, int]] = {}
        self._neigh: dict[int, tuple[int, int, int]] = {}
        self._next_tid = 0
        self._last_tid = -1
        # Ghost vertices forming the super-triangle use negative ids.
        self._super = (-1, -2, -3)

    # -- public driver -------------------------------------------------

    def run(self) -> None:
        self._make_super_triangle()
        for idx in self._insertion_order():
            self._insert(idx)

    def finished_triangles(self) -> list[tuple[int, int, int]]:
        """All triangles not touching the super-triangle, CCW order."""
        result = []
        for a, b, c in self._verts.values():
            if a < 0 or b < 0 or c < 0:
                continue
            result.append((a, b, c))
        if not result:
            raise TriangulationError("all input points are collinear")
        return result

    # -- setup ---------------------------------------------------------

    def _make_super_triangle(self) -> None:
        xs = [p[0] for p in self._pts]
        ys = [p[1] for p in self._pts]
        min_x, max_x = min(xs), max(xs)
        min_y, max_y = min(ys), max(ys)
        span = max(max_x - min_x, max_y - min_y, 1.0)
        cx = (min_x + max_x) / 2
        cy = (min_y + max_y) / 2
        big = 16.0 * span
        # Coordinates for the three ghost vertices.
        self._ghost_coords = {
            -1: (cx - 2 * big, cy - big),
            -2: (cx + 2 * big, cy - big),
            -3: (cx, cy + 2 * big),
        }
        tid = self._new_triangle((-1, -2, -3), (-1, -1, -1))
        self._last_tid = tid

    def _coords(self, idx: int) -> tuple[float, float]:
        if idx < 0:
            return self._ghost_coords[idx]
        return self._pts[idx]

    def _insertion_order(self) -> list[int]:
        """Serpentine grid order for walk locality."""
        n = len(self._pts)
        if n <= 3:
            return list(range(n))
        xs = [p[0] for p in self._pts]
        ys = [p[1] for p in self._pts]
        min_x, max_x = min(xs), max(xs)
        min_y, max_y = min(ys), max(ys)
        cells = max(1, int(math.sqrt(n / 4)))
        dx = (max_x - min_x) or 1.0
        dy = (max_y - min_y) or 1.0

        def key(i: int) -> tuple[int, float]:
            row = int((self._pts[i][1] - min_y) / dy * cells)
            row = min(row, cells - 1)
            x = self._pts[i][0]
            # Serpentine: odd rows scan right-to-left.
            return (row, x if row % 2 == 0 else -x)

        return sorted(range(n), key=key)

    # -- triangle bookkeeping -------------------------------------------

    def _new_triangle(
        self, verts: tuple[int, int, int], neigh: tuple[int, int, int]
    ) -> int:
        tid = self._next_tid
        self._next_tid += 1
        self._verts[tid] = verts
        self._neigh[tid] = neigh
        return tid

    def _replace_neighbor(self, tid: int, old: int, new: int) -> None:
        if tid < 0:
            return
        n = self._neigh[tid]
        if n[0] == old:
            self._neigh[tid] = (new, n[1], n[2])
        elif n[1] == old:
            self._neigh[tid] = (n[0], new, n[2])
        elif n[2] == old:
            self._neigh[tid] = (n[0], n[1], new)
        else:
            raise TriangulationError(
                f"triangle {tid} does not neighbour {old}; topology corrupt"
            )

    # -- point location --------------------------------------------------

    def _locate(self, px: float, py: float) -> int:
        """Walk from the last triangle to one containing ``(px, py)``."""
        tid = self._last_tid
        if tid not in self._verts:
            tid = next(iter(self._verts))
        max_steps = 4 * len(self._verts) + 64
        for _ in range(max_steps):
            a, b, c = self._verts[tid]
            ax, ay = self._coords(a)
            bx, by = self._coords(b)
            cx, cy = self._coords(c)
            if orient2d(ax, ay, bx, by, px, py) < 0:
                tid = self._step(tid, 0)
            elif orient2d(bx, by, cx, cy, px, py) < 0:
                tid = self._step(tid, 1)
            elif orient2d(cx, cy, ax, ay, px, py) < 0:
                tid = self._step(tid, 2)
            else:
                return tid
        raise TriangulationError("point location walk did not terminate")

    def _step(self, tid: int, edge: int) -> int:
        nxt = self._neigh[tid][edge]
        if nxt < 0:
            raise TriangulationError(
                "walked off the super-triangle; input outside bounds"
            )
        return nxt

    # -- insertion --------------------------------------------------------

    def _insert(self, idx: int) -> None:
        px, py = self._pts[idx]
        start = self._locate(px, py)

        # Grow the cavity: all triangles whose circumcircle strictly
        # contains p, seeded with the containing triangle.
        cavity: set[int] = {start}
        stack = [start]
        while stack:
            tid = stack.pop()
            for ntid in self._neigh[tid]:
                if ntid < 0 or ntid in cavity:
                    continue
                if self._in_circumcircle(ntid, px, py):
                    cavity.add(ntid)
                    stack.append(ntid)

        boundary = self._cavity_boundary(cavity, px, py)

        # Remove the cavity triangles.
        for tid in cavity:
            del self._verts[tid]
            del self._neigh[tid]

        # Fan new triangles from p to each boundary edge.  Boundary is
        # ordered CCW, so triangle (p, a, b) is CCW.
        new_tids: list[int] = []
        for (a, b, outer) in boundary:
            tid = self._new_triangle((idx, a, b), (-1, outer, -1))
            if outer >= 0:
                self._replace_neighbor_edge(outer, a, b, tid)
            new_tids.append(tid)

        # Link consecutive fan triangles: edge 2 of tri i (b_i -> p)
        # matches edge 0 of tri i+1 (p -> a_{i+1}), since b_i == a_{i+1}.
        k = len(new_tids)
        for i in range(k):
            cur = new_tids[i]
            nxt = new_tids[(i + 1) % k]
            n_cur = self._neigh[cur]
            self._neigh[cur] = (self._neigh[cur][0], n_cur[1], nxt)
            n_nxt = self._neigh[nxt]
            self._neigh[nxt] = (cur, n_nxt[1], n_nxt[2])

        self._last_tid = new_tids[-1]

    def _in_circumcircle(self, tid: int, px: float, py: float) -> bool:
        a, b, c = self._verts[tid]
        ax, ay = self._coords(a)
        bx, by = self._coords(b)
        cx, cy = self._coords(c)
        return incircle(ax, ay, bx, by, cx, cy, px, py) > 0

    def _cavity_boundary(
        self, cavity: set[int], px: float, py: float
    ) -> list[tuple[int, int, int]]:
        """The cavity's boundary edges in CCW order around the cavity.

        Returns triples ``(a, b, outer_tid)`` where the directed edge
        ``a -> b`` is CCW as seen from inside the cavity and
        ``outer_tid`` is the surviving triangle across it (-1 on hull).
        Degenerate fans (p exactly collinear with a boundary edge) are
        fixed by absorbing the offending outer triangle into the cavity
        and recomputing.
        """
        for _ in range(len(self._verts) + 8):
            edges: dict[int, tuple[int, int]] = {}
            grow: int | None = None
            for tid in cavity:
                verts = self._verts[tid]
                neigh = self._neigh[tid]
                for i in range(3):
                    ntid = neigh[i]
                    if ntid >= 0 and ntid in cavity:
                        continue
                    a = verts[i]
                    b = verts[(i + 1) % 3]
                    ax, ay = self._coords(a)
                    bx, by = self._coords(b)
                    if orient2d(px, py, ax, ay, bx, by) <= 0:
                        # New triangle (p, a, b) would be degenerate or
                        # inverted: the cavity must grow across this edge.
                        if ntid < 0:
                            raise TriangulationError(
                                "degenerate cavity against the hull"
                            )
                        grow = ntid
                        break
                    edges[a] = (b, ntid)
                if grow is not None:
                    break
            if grow is not None:
                cavity.add(grow)
                continue
            return self._order_boundary(edges)
        raise TriangulationError("cavity repair did not converge")

    @staticmethod
    def _order_boundary(
        edges: dict[int, tuple[int, int]]
    ) -> list[tuple[int, int, int]]:
        if not edges:
            raise TriangulationError("empty cavity boundary")
        start = next(iter(edges))
        ordered: list[tuple[int, int, int]] = []
        a = start
        for _ in range(len(edges)):
            b, outer = edges[a]
            ordered.append((a, b, outer))
            a = b
        if a != start or len(ordered) != len(edges):
            raise TriangulationError("cavity boundary is not a single cycle")
        return ordered

    def _replace_neighbor_edge(self, tid: int, a: int, b: int, new: int) -> None:
        """Point ``tid``'s neighbour across edge ``{a, b}`` at ``new``."""
        verts = self._verts[tid]
        neigh = self._neigh[tid]
        for i in range(3):
            va = verts[i]
            vb = verts[(i + 1) % 3]
            if (va == a and vb == b) or (va == b and vb == a):
                self._neigh[tid] = tuple(
                    new if j == i else neigh[j] for j in range(3)
                )  # type: ignore[assignment]
                return
        raise TriangulationError(
            f"triangle {tid} has no edge ({a}, {b}); topology corrupt"
        )
