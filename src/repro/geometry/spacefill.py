"""Space-filling curve keys for spatial disk clustering.

The paper arranges terrain data on disk so that "(x, y) clustering is
preserved as much as possible".  The dataset builders achieve that by
sorting records along a space-filling curve before bulk insertion into
heap files.  Hilbert order (the default) preserves locality better
than Morton/Z order; both are provided and benchmarked against each
other in the ablation suite.
"""

from __future__ import annotations

from repro.errors import GeometryError
from repro.geometry.primitives import Rect

__all__ = ["morton_key", "hilbert_key", "normalized_quantizer"]


def morton_key(ix: int, iy: int, bits: int = 16) -> int:
    """Interleave the low ``bits`` of two integers (Z-order key)."""
    _check_coords(ix, iy, bits)
    key = 0
    for b in range(bits):
        key |= ((ix >> b) & 1) << (2 * b)
        key |= ((iy >> b) & 1) << (2 * b + 1)
    return key


def hilbert_key(ix: int, iy: int, bits: int = 16) -> int:
    """Distance along the order-``bits`` Hilbert curve at ``(ix, iy)``.

    Standard rotate-and-accumulate formulation.
    """
    _check_coords(ix, iy, bits)
    rx = ry = 0
    d = 0
    s = 1 << (bits - 1)
    x, y = ix, iy
    while s > 0:
        rx = 1 if (x & s) > 0 else 0
        ry = 1 if (y & s) > 0 else 0
        d += s * s * ((3 * rx) ^ ry)
        # Rotate the quadrant.
        if ry == 0:
            if rx == 1:
                x = s - 1 - x
                y = s - 1 - y
            x, y = y, x
        s //= 2
    return d


def normalized_quantizer(bounds: Rect, bits: int = 16):
    """A function quantising ``(x, y)`` in ``bounds`` to integer grid
    coordinates suitable for :func:`morton_key` / :func:`hilbert_key`.
    """
    size = (1 << bits) - 1
    width = bounds.width or 1.0
    height = bounds.height or 1.0

    def quantize(x: float, y: float) -> tuple[int, int]:
        ix = int((x - bounds.min_x) / width * size)
        iy = int((y - bounds.min_y) / height * size)
        return (min(max(ix, 0), size), min(max(iy, 0), size))

    return quantize


def _check_coords(ix: int, iy: int, bits: int) -> None:
    if bits < 1 or bits > 31:
        raise GeometryError(f"bits must be in 1..31, got {bits}")
    limit = 1 << bits
    if not (0 <= ix < limit and 0 <= iy < limit):
        raise GeometryError(
            f"coordinates ({ix}, {iy}) out of range for {bits} bits"
        )
