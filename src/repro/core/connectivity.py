"""Similar-LOD connection-point lists — the Direct Mesh encoding.

Paper Section 4 proposes storing at each node ``m`` the list of
*connection points with similar LOD*: nodes ``m'`` whose LOD interval
overlaps ``m``'s and that can be connected to ``m`` in some terrain
approximation.  This module computes those lists.

Algorithm.  After LOD normalisation, the uniform approximation at
threshold ``e`` is exactly the set of nodes whose interval contains
``e``; and mesh adjacency between two coexisting nodes is determined
*solely by the set of alive nodes* (a node's neighbours are the union
of its children's, so by induction ``a`` and ``b`` are adjacent iff
some leaf descendant of ``a`` shares a base-mesh edge with some leaf
descendant of ``b``).  Edges are therefore only ever *created* when a
node is born and persist until an endpoint collapses.  Replaying the
collapses in ascending normalised-error order and recording each new
node's neighbour set at birth (plus the base-mesh edges) yields
exactly the set of pairs adjacent in *any* uniform approximation —
the paper's connection points with similar LOD.

The module also estimates the *total* connection-point count per node
(paper Section 4's rules 1-2: ancestors of connection points are
connection points, etc.), the quantity the paper reports as ~180/~840
versus ~12 for the similar-LOD lists.
"""

from __future__ import annotations

from repro.errors import MeshError
from repro.mesh.progressive import NULL_ID, ProgressiveMesh

__all__ = [
    "build_connection_lists",
    "connection_statistics",
    "total_connection_counts",
]


def build_connection_lists(pm: ProgressiveMesh) -> dict[int, list[int]]:
    """Compute each node's similar-LOD connection-point list.

    Args:
        pm: a normalised progressive mesh.

    Returns:
        Mapping from node id to a sorted list of connection-point ids.
        Every listed pair has overlapping LOD intervals and is adjacent
        in at least one uniform approximation.
    """
    if not pm.is_normalized:
        raise MeshError("normalize_lod() must run before connectivity")

    conn: dict[int, set[int]] = {node.id: set() for node in pm.nodes}

    # Live adjacency, seeded with the full-resolution mesh.
    adjacency: dict[int, set[int]] = {
        leaf.id: set() for leaf in pm.nodes[: pm.n_leaves]
    }
    for a, b in pm.base_edges:
        adjacency[a].add(b)
        adjacency[b].add(a)
        conn[a].add(b)
        conn[b].add(a)

    # Replay collapses in ascending LOD order.  Children always sort
    # before their parent: child.e <= parent.e, and on ties the child's
    # smaller id (creation order) wins.
    order = sorted(pm.nodes[pm.n_leaves:], key=lambda n: (n.e, n.id))
    for parent in order:
        c1, c2 = parent.child1, parent.child2
        neighbors = (adjacency[c1] | adjacency[c2]) - {c1, c2}
        for n in adjacency.pop(c1):
            adjacency[n].discard(c1)
        for n in adjacency.pop(c2):
            adjacency[n].discard(c2)
        adjacency[parent.id] = neighbors
        parent_conn = conn[parent.id]
        for n in neighbors:
            adjacency[n].add(parent.id)
            parent_conn.add(n)
            conn[n].add(parent.id)

    return {node_id: sorted(ids) for node_id, ids in conn.items()}


def total_connection_counts(
    pm: ProgressiveMesh,
    connection_lists: dict[int, list[int]] | None = None,
) -> dict[int, int]:
    """Estimate each node's *total* connection-point count.

    Paper Section 4 argues the complete connection set is prohibitively
    large because connection points propagate along the tree: if ``m'``
    connects to ``m``, so does every ancestor of ``m'`` below their
    first common ancestor (rule 1), and recursively at least one child
    (rule 2).  We materialise the upward closure of the similar-LOD
    lists — each connection point plus all its ancestors, excluding
    ``m``'s own ancestor chain (an ancestor cannot coexist with its
    descendant).  Rule 2's downward chains are symmetric (if ``d`` is a
    descendant connection of ``m``, then ``m`` appears in the upward
    closure computed *from* ``d``), so counting pairs from both sides
    covers them; the figure is still a (tight) lower bound on the
    paper's unbounded recursive definition.

    Returns:
        Mapping from node id to its total connection-point count.
    """
    if connection_lists is None:
        connection_lists = build_connection_lists(pm)

    # Precompute each node's ancestor set membership lazily via chains.
    parent = [node.parent for node in pm.nodes]

    totals: dict[int, set[int]] = {node.id: set() for node in pm.nodes}
    for node in pm.nodes:
        own_ancestors = set()
        p = parent[node.id]
        while p != NULL_ID:
            own_ancestors.add(p)
            p = parent[p]
        bucket = totals[node.id]
        for other in connection_lists[node.id]:
            # The connection point itself, then its ancestors upward.
            q = other
            while q != NULL_ID:
                if q != node.id and q not in own_ancestors:
                    bucket.add(q)
                    totals[q].add(node.id)
                q = parent[q]
    return {node_id: len(ids) for node_id, ids in totals.items()}


def connection_statistics(
    pm: ProgressiveMesh,
    connection_lists: dict[int, list[int]] | None = None,
    include_totals: bool = True,
) -> dict[str, float]:
    """Summary statistics for the paper's Section 4 comparison.

    Returns a dict with keys ``avg_similar``, ``max_similar``,
    ``avg_total``, ``max_total`` (totals only when requested; they are
    quadratic-ish to compute on large forests).
    """
    if connection_lists is None:
        connection_lists = build_connection_lists(pm)
    sizes = [len(v) for v in connection_lists.values()]
    stats: dict[str, float] = {
        "avg_similar": sum(sizes) / len(sizes) if sizes else 0.0,
        "max_similar": float(max(sizes)) if sizes else 0.0,
    }
    if include_totals:
        totals = total_connection_counts(pm, connection_lists)
        tsizes = list(totals.values())
        stats["avg_total"] = sum(tsizes) / len(tsizes) if tsizes else 0.0
        stats["max_total"] = float(max(tsizes)) if tsizes else 0.0
    return stats
