"""Cluster fast path: batched DM node clusters as contiguous page runs.

Per-node traversal is the serving bottleneck left after the columnar
kernels: every query pays one R*-tree descent over thousands of tiny
entries, per-page buffer-pool traffic, and per-cube cache decisions.
Batched Multi-Triangulation / Nanite-style systems replace those with
*cluster*-granular decisions: group nodes into fixed-size clusters
whose ``(x, y, e)`` extents form a cut over the DM DAG, and make the
cluster — not the node — the unit of selection, I/O, and caching.

At build time (:func:`build_cluster_runs`):

1. DM nodes are ordered along a Hilbert curve over ``(x, y)``
   (:mod:`repro.geometry.spacefill`) so consecutive nodes are spatial
   neighbours, then chunked into clusters of
   :data:`DEFAULT_CLUSTER_NODES` nodes;
2. each cluster's records are packed into one *blob*
   (:func:`encode_cluster_blob`) and written as a contiguous run of
   pages in the ``{prefix}_cruns`` segment — one sequential physical
   read (:meth:`~repro.storage.database.Segment.read_run`) fetches a
   whole cluster, and the blob decodes straight into the existing
   columnar kernels (:func:`~repro.storage.record.decode_dm_nodes_columnar`);
3. the per-cluster ``(x, y, e)`` extents — unions of the members'
   *indexed* (``e_cap``-capped) vertical segments — are persisted in a
   JSON directory sidecar (:class:`ClusterDirectory`).

At query time the in-memory :class:`ClusterIndex` answers a query cube
with candidate cluster ids in one vectorized intersection test.  Any
node whose capped segment intersects the (clamped) probe box lies in a
cluster whose extent intersects it too — extents are unions of member
segments — so filtering the union of candidate clusters with the
per-request predicates returns exactly the nodes the R*-tree path
returns.  The scalar per-node path stays behind
``QueryEngine(clustered=False)`` as the correctness oracle.

The record bytes in cluster runs duplicate the heap file (a covering,
batched copy — the classic clustered-projection trade): the heap +
R*-tree remain the source of truth for point lookups, the oracle path,
and rebuilds.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Sequence

import numpy as np

from repro.errors import StorageError
from repro.geometry.primitives import Box3, Rect
from repro.geometry.spacefill import hilbert_key, normalized_quantizer
from repro.storage.database import Database, Segment
from repro.storage.record import DMNodeColumns, decode_dm_nodes_columnar

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.mesh.progressive import PMNode

__all__ = [
    "DEFAULT_CLUSTER_NODES",
    "CLUSTER_DIRECTORY_VERSION",
    "ClusterMeta",
    "ClusterDirectory",
    "ClusterIndex",
    "ClusterSet",
    "ClusterCostModel",
    "encode_cluster_blob",
    "decode_cluster_blob",
    "build_cluster_runs",
    "cluster_directory_path",
    "intersecting_rows",
]

#: Target nodes per cluster (the Batched-MT sweet spot: large enough
#: to amortise one physical read and one decode, small enough that a
#: query's overfetch stays bounded).
DEFAULT_CLUSTER_NODES = 128

#: Schema version of the JSON directory sidecar.
CLUSTER_DIRECTORY_VERSION = 1

#: Sidecar filename suffix: ``{prefix}_clusters.json``.
_DIRECTORY_SUFFIX = "clusters.json"

_BLOB_HEADER = struct.Struct("<4sI")
_BLOB_MAGIC = b"DMC1"
_LEN_ENTRY = struct.Struct("<I")


# -- blob codec --------------------------------------------------------------


def encode_cluster_blob(payloads: Sequence[bytes]) -> bytes:
    """Pack DM record payloads into one self-describing cluster blob.

    Layout: magic ``DMC1``, u32 record count, ``count`` u32 record
    lengths, then the record payloads back to back.  Decoding slices
    the payload list back out (:func:`decode_cluster_blob`) and feeds
    it to the shared columnar decoder, so the record bytes themselves
    stay format-identical to the heap file's.
    """
    head = _BLOB_HEADER.pack(_BLOB_MAGIC, len(payloads))
    lengths = struct.pack(f"<{len(payloads)}I", *(len(p) for p in payloads))
    return head + lengths + b"".join(payloads)


def decode_cluster_blob(blob: bytes) -> list[bytes]:
    """Unpack a cluster blob back into its record payloads.

    Strict: the magic, the length table, and the byte count must all
    agree (``fsck`` decodes runs through this to verify directory
    consistency); trailing bytes are an error — callers slice the run
    to the directory's ``n_bytes`` first.
    """
    if len(blob) < _BLOB_HEADER.size:
        raise StorageError(
            f"cluster blob is {len(blob)} bytes, below header "
            f"{_BLOB_HEADER.size}"
        )
    magic, count = _BLOB_HEADER.unpack_from(blob, 0)
    if magic != _BLOB_MAGIC:
        raise StorageError(f"bad cluster blob magic {magic!r}")
    table_end = _BLOB_HEADER.size + count * _LEN_ENTRY.size
    if len(blob) < table_end:
        raise StorageError(
            f"cluster blob truncated in length table "
            f"({len(blob)}/{table_end} bytes)"
        )
    lengths = struct.unpack_from(f"<{count}I", blob, _BLOB_HEADER.size)
    payloads: list[bytes] = []
    offset = table_end
    for length in lengths:
        end = offset + length
        if end > len(blob):
            raise StorageError(
                f"cluster blob truncated in records "
                f"({end} > {len(blob)} bytes)"
            )
        payloads.append(blob[offset:end])
        offset = end
    if offset != len(blob):
        raise StorageError(
            f"cluster blob has {len(blob) - offset} trailing bytes"
        )
    return payloads


def intersecting_rows(
    columns: DMNodeColumns, box: Box3, e_cap: float
) -> np.ndarray:
    """Mask of rows whose capped indexed segment intersects ``box``.

    Exactly the predicate the R*-tree leaf scan applies (closed
    boundaries, ``e_high`` capped at ``e_cap`` like the tree entries),
    so narrowing a decoded cluster batch with this mask yields the
    same row set an index probe of ``box`` retrieves — what keeps the
    clustered path's ``retrieved`` accounting (and its semantic-cache
    cubes) identical to the oracle's.
    """
    return (
        (columns.x >= box.min_x)
        & (columns.x <= box.max_x)
        & (columns.y >= box.min_y)
        & (columns.y <= box.max_y)
        & (columns.e_low <= box.max_e)
        & (np.minimum(columns.e_high, e_cap) >= box.min_e)
    )


# -- directory ---------------------------------------------------------------


@dataclass(frozen=True)
class ClusterMeta:
    """One cluster's placement and extent.

    The extent is the union of the members' *indexed* vertical
    segments — ``e_high`` capped at the store's ``e_cap`` exactly like
    the R*-tree entries — so cluster selection against a clamped probe
    box sees the same geometry the tree does.
    """

    cluster_id: int
    start_page: int
    n_pages: int
    n_bytes: int
    n_nodes: int
    min_x: float
    min_y: float
    min_e: float
    max_x: float
    max_y: float
    max_e: float

    @property
    def box(self) -> Box3:
        """The cluster extent as a :class:`Box3`."""
        return Box3(
            self.min_x, self.min_y, self.min_e,
            self.max_x, self.max_y, self.max_e,
        )


def cluster_directory_path(database: Database, prefix: str) -> Path:
    """Path of the cluster directory sidecar for ``prefix``."""
    return database.path / f"{prefix}_{_DIRECTORY_SUFFIX}"


@dataclass
class ClusterDirectory:
    """The persisted cluster catalog of one store.

    A schema-versioned JSON sidecar (like ``{prefix}_dm_meta.json``):
    stores built before the cluster layer simply have no sidecar and
    open with clustering unavailable — the v2 read-compat path.
    """

    segment: str
    cluster_nodes: int
    clusters: list[ClusterMeta]

    @property
    def total_nodes(self) -> int:
        """Sum of member counts across clusters."""
        return sum(c.n_nodes for c in self.clusters)

    @property
    def total_pages(self) -> int:
        """Sum of run lengths across clusters."""
        return sum(c.n_pages for c in self.clusters)

    def __len__(self) -> int:
        return len(self.clusters)

    def save(self, database: Database, prefix: str) -> None:
        """Write the sidecar (sorted keys, trailing newline)."""
        payload = {
            "version": CLUSTER_DIRECTORY_VERSION,
            "segment": self.segment,
            "cluster_nodes": self.cluster_nodes,
            "clusters": [
                {
                    "id": c.cluster_id,
                    "start_page": c.start_page,
                    "n_pages": c.n_pages,
                    "n_bytes": c.n_bytes,
                    "n_nodes": c.n_nodes,
                    "extent": [
                        c.min_x, c.min_y, c.min_e,
                        c.max_x, c.max_y, c.max_e,
                    ],
                }
                for c in self.clusters
            ],
        }
        path = cluster_directory_path(database, prefix)
        path.write_text(
            json.dumps(payload, sort_keys=True) + "\n", encoding="ascii"
        )

    @classmethod
    def load(cls, database: Database, prefix: str) -> "ClusterDirectory":
        """Read and validate the sidecar."""
        path = cluster_directory_path(database, prefix)
        try:
            payload = json.loads(path.read_text(encoding="ascii"))
        except (OSError, ValueError) as exc:
            raise StorageError(
                f"unreadable cluster directory: {exc}", path=str(path)
            ) from exc
        try:
            version = int(payload["version"])
            if version != CLUSTER_DIRECTORY_VERSION:
                raise StorageError(
                    f"cluster directory is version {version}, "
                    f"expected {CLUSTER_DIRECTORY_VERSION}",
                    path=str(path),
                )
            clusters = [
                ClusterMeta(
                    cluster_id=int(entry["id"]),
                    start_page=int(entry["start_page"]),
                    n_pages=int(entry["n_pages"]),
                    n_bytes=int(entry["n_bytes"]),
                    n_nodes=int(entry["n_nodes"]),
                    min_x=float(entry["extent"][0]),
                    min_y=float(entry["extent"][1]),
                    min_e=float(entry["extent"][2]),
                    max_x=float(entry["extent"][3]),
                    max_y=float(entry["extent"][4]),
                    max_e=float(entry["extent"][5]),
                )
                for entry in payload["clusters"]
            ]
            return cls(
                segment=str(payload["segment"]),
                cluster_nodes=int(payload["cluster_nodes"]),
                clusters=clusters,
            )
        except (KeyError, TypeError, ValueError, IndexError) as exc:
            raise StorageError(
                f"malformed cluster directory: {exc}", path=str(path)
            ) from exc

    @classmethod
    def exists(cls, database: Database, prefix: str) -> bool:
        """True when ``prefix`` has a persisted cluster section."""
        return cluster_directory_path(database, prefix).exists()


# -- query-time selection ----------------------------------------------------


class ClusterIndex:
    """Vectorized cluster selection over the directory's extents.

    One boolean-mask intersection test over per-axis min/max arrays
    answers a query cube with every cluster whose extent touches it.
    Comparisons are boundary-closed, matching
    :meth:`~repro.geometry.primitives.Box3.intersects` — selection may
    only ever be *more* inclusive than the R*-tree walk, never less,
    and the per-request filters restore exactness.
    """

    def __init__(self, directory: ClusterDirectory) -> None:
        self.directory = directory
        clusters = directory.clusters
        self._min_x = np.array([c.min_x for c in clusters], np.float64)
        self._min_y = np.array([c.min_y for c in clusters], np.float64)
        self._min_e = np.array([c.min_e for c in clusters], np.float64)
        self._max_x = np.array([c.max_x for c in clusters], np.float64)
        self._max_y = np.array([c.max_y for c in clusters], np.float64)
        self._max_e = np.array([c.max_e for c in clusters], np.float64)
        self._n_pages = np.array([c.n_pages for c in clusters], np.int64)

    def __len__(self) -> int:
        return len(self.directory)

    def _mask(self, box: Box3) -> np.ndarray:
        return (
            (self._min_x <= box.max_x) & (self._max_x >= box.min_x)
            & (self._min_y <= box.max_y) & (self._max_y >= box.min_y)
            & (self._min_e <= box.max_e) & (self._max_e >= box.min_e)
        )

    def candidates(self, box: Box3) -> list[int]:
        """Ids of clusters whose extent intersects ``box``."""
        return np.flatnonzero(self._mask(box)).tolist()

    def estimate_pages(self, box: Box3) -> float:
        """Predicted physical pages a clustered probe of ``box`` reads.

        The sum of candidate run lengths — exact when nothing is
        cached, an upper bound otherwise.  This replaces the R*-tree
        DA formula as the admission estimator on the clustered path:
        the governor should meter the I/O the path actually performs.
        """
        return float(self._n_pages[self._mask(box)].sum())


class ClusterCostModel:
    """Adapter giving :class:`ClusterIndex` the cost-model interface.

    Drop-in for :class:`~repro.core.cost_model.RTreeCostModel` where
    only ``estimate`` is needed (the :class:`~repro.core.engine.CostGovernor`),
    so admission budgets on the clustered path are denominated in the
    pages cluster runs actually read.
    """

    def __init__(self, index: ClusterIndex) -> None:
        self._index = index

    def estimate(self, query: Box3) -> float:
        """Estimated disk accesses of a clustered probe of ``query``."""
        return self._index.estimate_pages(query)


class ClusterSet:
    """Runtime handle to one store's cluster section.

    Wraps the run segment and the loaded directory; :meth:`decode` is
    the cold path (one sequential run read + one columnar decode) that
    the engine's cluster cache sits in front of.
    """

    def __init__(self, segment: Segment, directory: ClusterDirectory) -> None:
        self.segment = segment
        self.directory = directory
        self.index = ClusterIndex(directory)

    def __len__(self) -> int:
        return len(self.directory)

    def meta(self, cluster_id: int) -> ClusterMeta:
        """Directory entry for ``cluster_id``."""
        if not 0 <= cluster_id < len(self.directory.clusters):
            raise StorageError(
                f"cluster {cluster_id} out of range "
                f"0..{len(self.directory.clusters) - 1}"
            )
        return self.directory.clusters[cluster_id]

    def read_blob(self, cluster_id: int) -> bytes:
        """The cluster's blob bytes via one sequential run read."""
        meta = self.meta(cluster_id)
        run = self.segment.read_run(meta.start_page, meta.n_pages)
        if len(run) < meta.n_bytes:
            raise StorageError(
                f"cluster {cluster_id} run holds {len(run)} bytes, "
                f"directory claims {meta.n_bytes}"
            )
        return run[:meta.n_bytes]

    def decode(self, cluster_id: int) -> DMNodeColumns:
        """Bulk-decode one cluster into a columnar page."""
        payloads = decode_cluster_blob(self.read_blob(cluster_id))
        meta = self.meta(cluster_id)
        if len(payloads) != meta.n_nodes:
            raise StorageError(
                f"cluster {cluster_id} decodes to {len(payloads)} nodes, "
                f"directory claims {meta.n_nodes}"
            )
        return decode_dm_nodes_columnar(payloads)


# -- build -------------------------------------------------------------------


def _hilbert_order(
    nodes: Sequence["PMNode"], bits: int = 16
) -> list[int]:
    """Indices of ``nodes`` sorted by Hilbert key over ``(x, y)``."""
    min_x = min(n.x for n in nodes)
    max_x = max(n.x for n in nodes)
    min_y = min(n.y for n in nodes)
    max_y = max(n.y for n in nodes)
    quantize: Callable[[float, float], tuple[int, int]]
    quantize = normalized_quantizer(Rect(min_x, min_y, max_x, max_y), bits)
    keys = [hilbert_key(*quantize(n.x, n.y), bits) for n in nodes]
    return sorted(range(len(nodes)), key=lambda i: keys[i])


def build_cluster_runs(
    database: Database,
    prefix: str,
    nodes: Sequence["PMNode"],
    payloads: Sequence[bytes],
    e_cap: float,
    cluster_nodes: int = DEFAULT_CLUSTER_NODES,
) -> ClusterDirectory:
    """Materialise the cluster section for an already-encoded node set.

    ``nodes`` and ``payloads`` are aligned (the record bytes the heap
    insert used, so both copies are byte-identical).  Nodes are
    Hilbert-ordered over ``(x, y)``, chunked into clusters of
    ``cluster_nodes``, and each cluster's blob is written as a
    contiguous page run in the ``{prefix}_cruns`` segment.  The writes
    ride the pager like every other build write — sealed under the v2
    page format, WAL-logged inside an ``atomic()`` scope.

    Returns the directory; the caller persists it
    (:meth:`ClusterDirectory.save`) alongside the store metadata.
    """
    from repro.mesh.progressive import LOD_INFINITY

    if cluster_nodes < 1:
        raise StorageError(
            f"cluster_nodes must be >= 1, got {cluster_nodes}"
        )
    if len(nodes) != len(payloads):
        raise StorageError(
            f"{len(nodes)} nodes but {len(payloads)} payloads"
        )
    segment_name = f"{prefix}_cruns"
    segment = database.segment(segment_name)
    payload_size = segment.payload_size
    clusters: list[ClusterMeta] = []
    if nodes:
        order = _hilbert_order(nodes)
        for cluster_id, chunk_start in enumerate(
            range(0, len(order), cluster_nodes)
        ):
            chunk = order[chunk_start:chunk_start + cluster_nodes]
            blob = encode_cluster_blob([payloads[i] for i in chunk])
            start_page = segment.n_pages
            for off in range(0, len(blob), payload_size):
                piece = blob[off:off + payload_size]
                _, buf = segment.allocate()
                buf[:len(piece)] = piece
            members = [nodes[i] for i in chunk]
            e_highs = [
                e_cap if m.e_high == LOD_INFINITY else m.e_high
                for m in members
            ]
            clusters.append(
                ClusterMeta(
                    cluster_id=cluster_id,
                    start_page=start_page,
                    n_pages=segment.n_pages - start_page,
                    n_bytes=len(blob),
                    n_nodes=len(chunk),
                    min_x=min(m.x for m in members),
                    min_y=min(m.y for m in members),
                    min_e=min(m.e for m in members),
                    max_x=max(m.x for m in members),
                    max_y=max(m.y for m in members),
                    max_e=max(e_highs),
                )
            )
    return ClusterDirectory(
        segment=segment_name,
        cluster_nodes=cluster_nodes,
        clusters=clusters,
    )
