"""Live terrain mutation: WAL-backed patches over epoch snapshots.

A Direct Mesh store is built once and read many times; this module
adds the missing third verb — *patch* — without ever making a reader
wait or showing it a half-updated store.  The design rests on three
ideas:

**Tile-deterministic builds.**  :class:`MutableStore` splits the DEM's
vertex grid into a fixed lattice of tiles (adjacent tiles share their
boundary vertex row/column) and runs the full Section-2/Section-4
pipeline — triangulate, greedy edge collapse, LOD normalisation,
similar-LOD connection lists — *per tile*, in global coordinates and
with the global union-jack diagonal parity.  Tile trees never span a
tile boundary, and Section 4's normalisation is a per-tree recurrence,
so per-tile normalisation *is* global normalisation of the merged
forest.  Node ids are ``tile_index * id_stride + local_id`` with a
stride fixed by the layout alone, so a tile whose heights did not
change produces byte-identical nodes whether it is rebuilt from
scratch or carried over — the property the parity suite checks
(patched store ≡ rebuild-from-scratch, node-id-identical).

**Epoch shadow staging.**  A patch never rewrites the pages a reader
may be walking.  Epoch ``N`` of store ``dm`` lives in segments named
``dm@N_*`` (epoch 0 keeps the plain prefix); :meth:`apply_patch`
stages the *next* epoch's segments beside the current ones and flips
the committed epoch in ``storage_meta.json`` only at commit.  Readers
pin ``(store, epoch)`` once per request (see
:meth:`repro.core.engine.QueryEngine.pinned_snapshot`), so a reader
that started on epoch ``N`` finishes on epoch ``N`` even if ``N+1``
commits mid-query.  Old epochs stay on disk; nothing is unlinked
under a pinned reader.

**One WAL transaction.**  The staging happens inside
:meth:`repro.storage.database.Database.patch`: every staged page is
logged (kind-3/kind-4 typed patch records) before it hits a segment,
the commit marker is fsynced, and only then does the epoch flip.  A
crash anywhere leaves the directory on exactly the pre- or post-patch
snapshot — an uncommitted log is discarded (its staged segments become
orphans ``fsck`` quarantines), a committed one is replayed *and the
flip re-applied* on the next open.  The kill-anywhere crash matrix in
``tests/test_mutate.py`` drives every WAL record boundary plus the
flip itself.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass

from repro.core.clusters import DEFAULT_CLUSTER_NODES
from repro.core.connectivity import build_connection_lists
from repro.core.direct_mesh import DirectMeshStore
from repro.errors import MutationError
from repro.geometry.primitives import Rect, union_all_rects
from repro.mesh.progressive import NULL_ID, PMNode
from repro.mesh.simplify import SimplifyConfig, simplify_to_pm
from repro.mesh.trimesh import TriMesh
from repro.storage.database import Database, epoch_prefix
from repro.terrain.dem import DEM

__all__ = ["MutableStore", "PatchReport", "TileLayout", "plan_tiles"]

_MUTATE_SIDECAR = "mutate.json"

#: Default target tile side, in grid vertices.
DEFAULT_TILE_VERTS = 33


@dataclass(frozen=True)
class TileLayout:
    """The fixed tile lattice over a DEM's vertex grid.

    ``row_edges``/``col_edges`` are vertex indices: tile ``(i, j)``
    covers vertex rows ``row_edges[i] .. row_edges[i+1]`` and columns
    ``col_edges[j] .. col_edges[j+1]`` *inclusive* — adjacent tiles
    share their boundary vertices (each materialises its own copy).
    ``id_stride`` is the global-id stride per tile, derived from the
    layout alone (2x the largest tile's vertex count bounds any binary
    forest over it), so ids are stable across patches by construction.
    """

    n_rows: int
    n_cols: int
    cell_size: float
    origin: tuple[float, float]
    row_edges: tuple[int, ...]
    col_edges: tuple[int, ...]
    id_stride: int

    @property
    def tiles_y(self) -> int:
        """Tile count in the row (y) direction."""
        return len(self.row_edges) - 1

    @property
    def tiles_x(self) -> int:
        """Tile count in the column (x) direction."""
        return len(self.col_edges) - 1

    @property
    def n_tiles(self) -> int:
        """Total tile count."""
        return self.tiles_y * self.tiles_x

    def tile_index(self, i: int, j: int) -> int:
        """Flat index of tile row ``i``, column ``j``."""
        return i * self.tiles_x + j

    def tile_window(self, index: int) -> tuple[int, int, int, int]:
        """Inclusive vertex window ``(r0, c0, r1, c1)`` of a tile."""
        i, j = divmod(index, self.tiles_x)
        return (
            self.row_edges[i],
            self.col_edges[j],
            self.row_edges[i + 1],
            self.col_edges[j + 1],
        )

    def tile_rect(self, index: int) -> Rect:
        """The tile's ``(x, y)`` extent."""
        r0, c0, r1, c1 = self.tile_window(index)
        ox, oy = self.origin
        return Rect(
            ox + c0 * self.cell_size,
            oy + r0 * self.cell_size,
            ox + c1 * self.cell_size,
            oy + r1 * self.cell_size,
        )

    def tiles_overlapping(self, region: Rect) -> list[int]:
        """Indices of tiles whose extent intersects ``region``.

        A vertex on a tile boundary belongs to every adjacent tile, so
        a patch touching it correctly selects them all.
        """
        return [
            index
            for index in range(self.n_tiles)
            if self.tile_rect(index).intersects(region)
        ]

    def to_json(self) -> dict:
        """A JSON-serialisable form (sidecar payload)."""
        return {
            "n_rows": self.n_rows,
            "n_cols": self.n_cols,
            "cell_size": self.cell_size,
            "origin": list(self.origin),
            "row_edges": list(self.row_edges),
            "col_edges": list(self.col_edges),
            "id_stride": self.id_stride,
        }

    @classmethod
    def from_json(cls, data: dict) -> "TileLayout":
        """Inverse of :meth:`to_json`."""
        return cls(
            n_rows=int(data["n_rows"]),
            n_cols=int(data["n_cols"]),
            cell_size=float(data["cell_size"]),
            origin=(float(data["origin"][0]), float(data["origin"][1])),
            row_edges=tuple(int(v) for v in data["row_edges"]),
            col_edges=tuple(int(v) for v in data["col_edges"]),
            id_stride=int(data["id_stride"]),
        )


def plan_tiles(dem: DEM, tile_verts: int = DEFAULT_TILE_VERTS) -> TileLayout:
    """Split ``dem``'s vertex grid into a near-uniform tile lattice.

    ``tile_verts`` is the target tile side in vertices; the actual
    edges are rounded so every cell row/column lands in exactly one
    tile.  The layout — and with it the global id assignment — is a
    pure function of the grid shape and ``tile_verts``, never of the
    heights, which is what keeps ids stable under patches.
    """
    field = dem.field
    if tile_verts < 2:
        raise MutationError(f"tile_verts must be >= 2, got {tile_verts}")

    def edges(n_verts: int) -> tuple[int, ...]:
        cells = n_verts - 1
        n_tiles = max(1, round(cells / (tile_verts - 1)))
        return tuple(
            round(k * cells / n_tiles) for k in range(n_tiles + 1)
        )

    row_edges = edges(field.n_rows)
    col_edges = edges(field.n_cols)
    max_rows = max(
        row_edges[i + 1] - row_edges[i] + 1
        for i in range(len(row_edges) - 1)
    )
    max_cols = max(
        col_edges[j + 1] - col_edges[j] + 1
        for j in range(len(col_edges) - 1)
    )
    # A binary collapse forest over V leaves has at most 2V - 1 nodes;
    # stride 2V keeps every tile's id block disjoint with headroom.
    id_stride = 2 * max_rows * max_cols
    return TileLayout(
        n_rows=field.n_rows,
        n_cols=field.n_cols,
        cell_size=field.cell_size,
        origin=field.origin,
        row_edges=row_edges,
        col_edges=col_edges,
        id_stride=id_stride,
    )


@dataclass(frozen=True)
class PatchReport:
    """What one committed patch did."""

    region: Rect
    from_epoch: int
    to_epoch: int
    tiles_rebuilt: tuple[int, ...]
    n_nodes: int


@dataclass
class _TileBuild:
    """Cached per-tile pipeline output (global ids, normalised e)."""

    index: int
    nodes: list[PMNode]
    connections: dict[int, list[int]]
    max_lod: float


def _build_tile(
    dem: DEM,
    layout: TileLayout,
    index: int,
    config: SimplifyConfig | None,
) -> _TileBuild:
    """Run the full PM pipeline over one tile, ids remapped globally.

    The tile mesh is built in *global* coordinates with the *global*
    union-jack parity ``(r + c) % 2``, so the geometry (and therefore
    the collapse sequence, which is deterministic) depends only on the
    tile's heights — not on where the tile sits in the lattice.
    """
    r0, c0, r1, c1 = layout.tile_window(index)
    field = dem.field
    ox, oy = field.origin
    cell = field.cell_size
    heights = field.heights[r0 : r1 + 1, c0 : c1 + 1]
    n_cols = c1 - c0 + 1
    verts = [
        (ox + c * cell, oy + r * cell, float(heights[r - r0, c - c0]))
        for r in range(r0, r1 + 1)
        for c in range(c0, c1 + 1)
    ]
    tris: list[tuple[int, int, int]] = []
    for r in range(r0, r1):
        for c in range(c0, c1):
            v00 = (r - r0) * n_cols + (c - c0)
            v01 = v00 + 1
            v10 = v00 + n_cols
            v11 = v10 + 1
            if (r + c) % 2 == 0:
                tris.append((v00, v01, v11))
                tris.append((v00, v11, v10))
            else:
                tris.append((v00, v01, v10))
                tris.append((v01, v11, v10))
    mesh = TriMesh(verts, tris, validate=False)
    pm = simplify_to_pm(mesh, config)
    pm.normalize_lod()
    connections = build_connection_lists(pm)

    base = index * layout.id_stride
    if len(pm.nodes) > layout.id_stride:
        raise MutationError(
            "tile forest exceeds its id block",
            tile=index,
            nodes=len(pm.nodes),
            id_stride=layout.id_stride,
        )

    def remap(node_id: int) -> int:
        return node_id if node_id == NULL_ID else base + node_id

    nodes = [
        PMNode(
            id=base + node.id,
            x=node.x,
            y=node.y,
            z=node.z,
            error=node.error,
            parent=remap(node.parent),
            child1=remap(node.child1),
            child2=remap(node.child2),
            wing1=remap(node.wing1),
            wing2=remap(node.wing2),
            e=node.e,
            e_high=node.e_high,
            footprint=node.footprint,
        )
        for node in pm.nodes
    ]
    remapped_conn = {
        base + node_id: [base + other for other in others]
        for node_id, others in connections.items()
    }
    return _TileBuild(index, nodes, remapped_conn, pm.max_lod())


class MutableStore:
    """A Direct Mesh store that supports live, crash-safe patches.

    Single-writer: one in-process handle applies patches (guarded by a
    lock); any number of epoch-pinned readers proceed concurrently
    through the query engine.  After a simulated crash mid-patch the
    handle is *poisoned* — further patches raise
    :class:`~repro.errors.MutationError` until the database is
    reopened (recovery then lands it on a clean snapshot).
    """

    def __init__(
        self,
        database: Database,
        dem: DEM,
        layout: TileLayout,
        tiles: list[_TileBuild],
        store: DirectMeshStore,
        epoch: int,
        prefix: str,
        config: SimplifyConfig | None = None,
        cluster_nodes: int = DEFAULT_CLUSTER_NODES,
    ) -> None:
        self.database = database
        self.dem = dem
        self.layout = layout
        self.prefix = prefix
        self.epoch = epoch
        self.store = store
        self._tiles = tiles
        self._config = config
        self._cluster_nodes = cluster_nodes
        self._listeners: list = []
        self._broken = False
        self._write_lock = threading.Lock()

    # -- construction -------------------------------------------------------

    @classmethod
    def build(
        cls,
        dem: DEM,
        database: Database,
        prefix: str = "dm",
        tile_verts: int = DEFAULT_TILE_VERTS,
        config: SimplifyConfig | None = None,
        cluster_nodes: int = DEFAULT_CLUSTER_NODES,
    ) -> "MutableStore":
        """Build epoch 0 of a mutable store from a DEM.

        Uses the tile-deterministic pipeline even for the initial
        build, so a later rebuild-from-scratch of a patched DEM is
        node-id-identical to the patched store (the parity property).
        """
        layout = plan_tiles(dem, tile_verts)
        tiles = [
            _build_tile(dem, layout, index, config)
            for index in range(layout.n_tiles)
        ]
        epoch = database.store_epoch(prefix)
        eprefix = epoch_prefix(prefix, epoch)
        store = cls._materialize(
            database, tiles, eprefix, cluster_nodes
        )
        sidecar = database.path / f"{prefix}_{_MUTATE_SIDECAR}"
        sidecar.write_text(
            json.dumps(layout.to_json(), sort_keys=True), encoding="ascii"
        )
        return cls(
            database, dem, layout, tiles, store, epoch, prefix,
            config=config, cluster_nodes=cluster_nodes,
        )

    @classmethod
    def open(
        cls,
        database: Database,
        dem: DEM,
        prefix: str = "dm",
        config: SimplifyConfig | None = None,
        cluster_nodes: int = DEFAULT_CLUSTER_NODES,
    ) -> "MutableStore":
        """Reopen a mutable store at its committed epoch.

        ``dem`` must hold the terrain as of the committed epoch (the
        DEM itself is the caller's to persist); the tile caches are
        recomputed from it, which the parity property guarantees
        reproduces the committed store's nodes exactly.
        """
        sidecar = database.path / f"{prefix}_{_MUTATE_SIDECAR}"
        if not sidecar.exists():
            raise MutationError(
                f"no mutable store at {sidecar}", prefix=prefix
            )
        layout = TileLayout.from_json(
            json.loads(sidecar.read_text(encoding="ascii"))
        )
        if (layout.n_rows, layout.n_cols) != (
            dem.field.n_rows,
            dem.field.n_cols,
        ):
            raise MutationError(
                "DEM shape does not match the store's tile layout",
                layout=(layout.n_rows, layout.n_cols),
                dem=(dem.field.n_rows, dem.field.n_cols),
            )
        epoch = database.store_epoch(prefix)
        store = DirectMeshStore.open(database, epoch_prefix(prefix, epoch))
        tiles = [
            _build_tile(dem, layout, index, config)
            for index in range(layout.n_tiles)
        ]
        return cls(
            database, dem, layout, tiles, store, epoch, prefix,
            config=config, cluster_nodes=cluster_nodes,
        )

    @classmethod
    def _materialize(
        cls,
        database: Database,
        tiles: list[_TileBuild],
        eprefix: str,
        cluster_nodes: int,
    ) -> DirectMeshStore:
        nodes: list[PMNode] = []
        connections: dict[int, list[int]] = {}
        for tile in tiles:
            nodes.extend(tile.nodes)
            connections.update(tile.connections)
        max_lod = max(tile.max_lod for tile in tiles)
        return DirectMeshStore.materialize(
            database,
            nodes,
            connections,
            max_lod,
            prefix=eprefix,
            cluster_nodes=cluster_nodes,
        )

    # -- snapshots & listeners ------------------------------------------------

    def snapshot(self) -> tuple[DirectMeshStore, int]:
        """The current committed ``(store, epoch)`` pair."""
        return self.store, self.epoch

    def add_listener(self, listener) -> None:
        """Register ``listener(store, epoch, region)`` for commits."""
        self._listeners.append(listener)

    def attach(self, engine) -> None:
        """Wire committed patches into a query engine.

        Every commit calls
        :meth:`~repro.core.engine.QueryEngine.install_store`, which
        swaps the engine's pinned snapshot, epoch-invalidates the
        semantic and cluster caches over the patched region, and marks
        overlapping streaming sessions for a keyframe resync.
        """
        self.add_listener(
            lambda store, epoch, region: engine.install_store(
                store, epoch, region=region
            )
        )

    # -- patching -------------------------------------------------------------

    def apply_patch(self, region: Rect, heights, kill_hook=None) -> PatchReport:
        """Apply one DEM patch as a crash-safe store transaction.

        Validates and applies the patch to the in-memory DEM
        (:meth:`repro.terrain.dem.DEM.apply_patch` — a rejected patch
        touches nothing), rebuilds exactly the tiles the region
        overlaps, and stages the next epoch's full segment set inside
        one WAL patch transaction.  Readers pinned to the old epoch
        are untouched; the commit flips ``storage_meta.json`` and
        notifies listeners (engine cache invalidation + session
        resync) with the union of the rebuilt tiles' extents.

        ``kill_hook`` is forwarded to the WAL for the crash matrix;
        production code leaves it ``None``.
        """
        with self._write_lock:
            if self._broken:
                raise MutationError(
                    "mutable store handle is poisoned by an aborted "
                    "patch; reopen the database to recover",
                    prefix=self.prefix,
                )
            region = self.dem.apply_patch(region, heights)
            affected = self.layout.tiles_overlapping(region)
            from_epoch = self.epoch
            to_epoch = from_epoch + 1
            eprefix = epoch_prefix(self.prefix, to_epoch)
            self._clear_stale_epoch(eprefix)

            rebuilt = {
                index: _build_tile(self.dem, self.layout, index, self._config)
                for index in affected
            }
            tiles = [
                rebuilt.get(tile.index, tile) for tile in self._tiles
            ]
            invalid_region = union_all_rects(
                [self.layout.tile_rect(index) for index in affected]
            )
            header = {
                "prefix": self.prefix,
                "from_epoch": from_epoch,
                "to_epoch": to_epoch,
                "region": list(invalid_region.as_tuple()),
                "segments": [
                    f"{eprefix}_nodes",
                    f"{eprefix}_rtree",
                    f"{eprefix}_btree",
                    f"{eprefix}_cruns",
                ],
            }
            try:
                # reprolint: disable=R10 single-writer by design: _write_lock exists to serialise mutators across the patch I/O
                with self.database.patch(header, kill_hook=kill_hook):
                    store = self._materialize(
                        self.database, tiles, eprefix, self._cluster_nodes
                    )
            except BaseException:
                self._broken = True
                raise
            self._tiles = tiles
            self.epoch = to_epoch
            self.store = store
            report = PatchReport(
                region=invalid_region,
                from_epoch=from_epoch,
                to_epoch=to_epoch,
                tiles_rebuilt=tuple(sorted(affected)),
                n_nodes=sum(len(tile.nodes) for tile in tiles),
            )
        for listener in self._listeners:
            listener(store, to_epoch, invalid_region)
        return report

    def _clear_stale_epoch(self, eprefix: str) -> None:
        """Remove leftovers of an aborted patch that staged ``eprefix``.

        A previous crash-before-commit leaves orphaned staged segments
        (recovery discarded the log, so nothing references them);
        restaging the same epoch must start from nothing or heap RIDs
        would shift.
        """
        for name in self.database.segment_names():
            if name.startswith(f"{eprefix}_"):
                self.database.remove_segment(name)
        for suffix in ("dm_meta.json", "clusters.json"):
            stale = self.database.path / f"{eprefix}_{suffix}"
            if stale.exists():
                stale.unlink()
