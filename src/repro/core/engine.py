"""Concurrent batched query engine over a :class:`DirectMeshStore`.

The paper reduces selective refinement to a single 3D range query;
this module turns that property into a *serving* path.  A batch of
terrain queries — viewpoint-independent (:class:`UniformRequest`) or
viewpoint-dependent single-base (:class:`SingleBaseRequest`) — is

0. **cache-checked**: with a
   :class:`~repro.core.cache.SemanticCache` attached, any request
   whose query box is contained in a cached cube is answered inline
   by one vectorized filter — no index probe, no record fetch — and
   executed range queries feed their cubes back into the cache;
1. **deduplicated**: requests whose query boxes coincide share one
   index probe and record fetch; in ``"subsume"`` mode a request whose
   box is contained in another's reuses the superset's records and
   only re-runs the (cheap) LOD filter;
2. **fanned out** across a :class:`~concurrent.futures.ThreadPoolExecutor`
   against the shared, lock-striped buffer pool — pager reads release
   the GIL, so independent cache misses overlap;
3. **instrumented**: every executed range query reports R*-tree nodes
   visited, pages read, cache hit-rate and per-stage wall time through
   a :class:`~repro.obs.metrics.MetricsRegistry`;
4. **fault-isolated**: a request that fails — a storage error, a
   missed deadline — yields a :class:`QueryOutcome` with its ``error``
   set instead of an exception; sibling requests in the batch are
   never poisoned, and a failed *leader* demotes its dedup followers
   to independent probes rather than cascading.

Robustness knobs (all per-engine):

* ``retries`` — :class:`~repro.errors.TransientIOError` is retried
  with exponential backoff (``retry_backoff_s * 2**attempt``); any
  other exception fails the request immediately.
* ``deadline_s`` — a per-request deadline measured from batch
  submission.  When it expires before a request has produced a
  result, a :class:`UniformRequest` is *degraded*: re-run once at the
  coarsest LOD (the paper's property that any ``e' > e`` is a valid,
  cheaper approximation makes the base mesh a legitimate answer), and
  the outcome is flagged ``degraded``.  Non-degradable requests get a
  :class:`~repro.errors.DeadlineExceededError` outcome.
* **corruption quarantine** — a
  :class:`~repro.errors.PageCorruptionError` is *never* retried at
  the same page (re-reading rot returns the same bytes): the page id
  enters a bounded :class:`~repro.storage.integrity.PageQuarantine`
  (:attr:`QueryEngine.quarantine`), ``engine.corruptions`` is
  recorded, and uniform groups take the same base-mesh degradation
  path as a deadline miss — the batch keeps serving while an operator
  runs ``python -m repro fsck --repair``.
* **admission control** — with a :class:`CostGovernor` attached, the
  *open-loop* submission path (:meth:`QueryEngine.submit`) estimates
  every request's I/O cost with the paper's DA cost model (Section
  5.3, formula (1) — the same estimator the multi-base optimiser
  uses) *before* execution.  A request whose cost fits the in-flight
  budget is admitted at full fidelity; one that does not is
  *degraded* to the base-mesh path (overload, not faults, triggering
  the same ``e' > e`` approximation) while degraded headroom lasts,
  and *shed* beyond that — answered inline from a cached base-mesh
  snapshot with zero queueing, so an overloaded engine keeps bounded
  latency instead of collapsing.  Per-tenant token buckets (metered
  in cost units) keep one hot tenant from starving the rest.

Results are byte-identical to the sequential query processors in
:mod:`repro.core.query` (same nodes, same ``retrieved`` count) in the
default ``"exact"`` dedup mode; ``"subsume"`` keeps the *approximation*
identical but accounts ``retrieved`` against the shared superset
fetch.

Usage::

    with QueryEngine(store, workers=4, retries=3) as engine:
        outcomes = engine.run_batch(
            [UniformRequest(roi, lod) for roi, lod in workload]
        )
    for outcome in outcomes:
        if not outcome.ok:
            log.warning("query failed: %s", outcome.error)
    print(engine.registry.report())
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable, Sequence, Union

from repro.core.cache import (
    DEFAULT_CLUSTER_CACHE_BYTES,
    CacheStats,
    ClusterCache,
    SemanticCache,
)
from repro.core.clusters import intersecting_rows
from repro.core.cost_model import RTreeCostModel
from repro.core.query import (
    DMQueryResult,
    clamp_lod,
    filter_to_plane,
    filter_to_plane_columnar,
    filter_uniform,
    filter_uniform_columnar,
)
from repro.errors import (
    DeadlineExceededError,
    InvariantError,
    OverloadShedError,
    PageCorruptionError,
    QueryError,
    TransientIOError,
)
from repro.geometry.plane import QueryPlane
from repro.geometry.primitives import Box3, Rect
from repro.obs.metrics import MetricsRegistry
from repro.obs.lockwatch import watched_lock
from repro.storage.integrity import PageQuarantine
from repro.storage.record import (
    DMNodeColumns,
    DMNodeRecord,
    concat_dm_columns,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.direct_mesh import DirectMeshStore
    from repro.core.streaming import SessionManager

__all__ = [
    "QueryEngine",
    "UniformRequest",
    "SingleBaseRequest",
    "QueryMetrics",
    "QueryOutcome",
    "DEDUP_MODES",
    "ADMIT",
    "DEGRADE",
    "SHED",
    "AdmissionDecision",
    "CostGovernor",
    "TokenBucket",
]

#: Supported deduplication policies (see :class:`QueryEngine`).
DEDUP_MODES = ("off", "exact", "subsume")

#: Admission actions (see :class:`CostGovernor.decide`).
ADMIT = "admit"
DEGRADE = "degrade"
SHED = "shed"


@dataclass(frozen=True)
class UniformRequest:
    """A viewpoint-independent query ``Q(M, roi, lod)``."""

    roi: Rect
    lod: float

    def query_box(self, e_cap: float | None = None) -> Box3:
        """The degenerate plane box the range query probes.

        ``e_cap`` clamps the probe height to the store's indexing cap
        (root records keep ``[e, inf)`` but their indexed segments top
        out at ``e_cap``); the per-request filter still uses the real
        :attr:`lod`, so ``lod > e_cap`` returns the base mesh instead
        of probing above every indexed segment.
        """
        probe_e = clamp_lod(self.lod, e_cap)
        return Box3.from_rect(self.roi, probe_e, probe_e)

    def filter(
        self, records: "Iterable[DMNodeRecord] | DMNodeColumns"
    ) -> dict[int, DMNodeRecord]:
        """Apply the uniform-query predicate to fetched records.

        Accepts either decoded record objects or a columnar page; the
        two paths are node-id-identical (the property tests hold the
        vectorized kernel to the scalar oracle).
        """
        if isinstance(records, DMNodeColumns):
            return filter_uniform_columnar(records, self.roi, self.lod)
        return filter_uniform(records, self.roi, self.lod)


@dataclass(frozen=True)
class SingleBaseRequest:
    """A viewpoint-dependent single-base query (Algorithm 1)."""

    plane: QueryPlane

    def query_box(self, e_cap: float | None = None) -> Box3:
        """The query cube ``roi x [e_min, e_max]`` (clamped to
        ``e_cap`` like :meth:`UniformRequest.query_box`)."""
        e_min = clamp_lod(self.plane.e_min, e_cap)
        e_max = clamp_lod(self.plane.e_max, e_cap)
        return Box3.from_rect(self.plane.roi, e_min, e_max)

    def filter(
        self, records: "Iterable[DMNodeRecord] | DMNodeColumns"
    ) -> dict[int, DMNodeRecord]:
        """Apply the plane predicate to fetched records (scalar or
        columnar, like :meth:`UniformRequest.filter`)."""
        if isinstance(records, DMNodeColumns):
            return filter_to_plane_columnar(records, self.plane)
        return filter_to_plane(records, self.plane)


EngineRequest = Union[UniformRequest, SingleBaseRequest]


@dataclass
class QueryMetrics:
    """Where one query's time and I/O went.

    ``shared`` marks requests served from another request's range
    query (dedup); their I/O counters describe the shared fetch.
    """

    nodes_visited: int = 0
    pages_read: int = 0
    logical_reads: int = 0
    cache_hit_rate: float = 0.0
    index_s: float = 0.0
    fetch_s: float = 0.0
    filter_s: float = 0.0
    total_s: float = 0.0
    shared: bool = False
    cached: bool = False
    #: Clustered fast path only: candidate clusters this query's group
    #: selected, and the nodes those clusters decoded to *before*
    #: narrowing to the probe box — ``nodes_decoded / retrieved`` is
    #: the cluster overfetch ratio ``explain`` reports.  Zero on the
    #: per-node oracle path.
    clusters_touched: int = 0
    nodes_decoded: int = 0
    #: The store epoch this query was pinned to (see
    #: :meth:`QueryEngine.pinned_snapshot`).  Under live mutation, two
    #: outcomes with equal ``epoch`` saw the same terrain snapshot.
    epoch: int = 0


@dataclass
class QueryOutcome:
    """One request's result (or failure) plus its metrics.

    Exactly one of ``result`` / ``error`` is set.  ``degraded`` marks
    a uniform request answered at a coarser LOD under deadline,
    corruption, or overload pressure; ``shed`` marks an outcome the
    admission controller refused to execute at full fidelity (shed
    uniform requests still carry a well-formed base-mesh ``result``);
    ``attempts`` counts execution attempts including retries.
    """

    request: EngineRequest
    result: DMQueryResult | None
    metrics: QueryMetrics
    error: Exception | None = None
    attempts: int = 1
    degraded: bool = False
    shed: bool = False

    @property
    def ok(self) -> bool:
        """True when the request produced a result."""
        return self.error is None


class TokenBucket:
    """A thread-safe token bucket metered in *cost units*.

    The :class:`CostGovernor` keeps one per tenant, refilled at
    ``rate`` units per second up to ``burst``; a request is charged
    its estimated disk accesses, so a tenant issuing few expensive
    queries and one issuing many cheap queries drain their buckets at
    the same (cost-weighted) pace — fair queueing in the currency the
    disks actually spend.

    ``clock`` is injectable so admission decisions are unit-testable
    with a deterministic clock (no sleeps, no wall-time flake).
    """

    __slots__ = ("_burst", "_clock", "_last", "_lock", "_rate", "_tokens")

    def __init__(
        self,
        rate: float,
        burst: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate <= 0:
            raise QueryError(f"token rate must be > 0, got {rate}")
        if burst <= 0:
            raise QueryError(f"token burst must be > 0, got {burst}")
        self._lock = watched_lock("TokenBucket._lock")
        self._rate = rate
        self._burst = burst
        self._clock = clock
        self._tokens = burst
        self._last = clock()

    def _refill_locked(self) -> None:
        """Advance the bucket to the current clock reading."""
        now = self._clock()
        elapsed = now - self._last
        self._last = now
        if elapsed > 0:
            self._tokens = min(self._burst, self._tokens + elapsed * self._rate)

    def try_take(self, amount: float) -> bool:
        """Atomically consume ``amount`` tokens; False when short.

        A failed take consumes nothing (no partial debits), so a
        request denied here can still be served by the degraded path
        without distorting the tenant's balance.
        """
        with self._lock:
            self._refill_locked()
            if amount <= self._tokens + 1e-9:
                self._tokens -= amount
                return True
            return False

    @property
    def tokens(self) -> float:
        """Current balance (after refilling to the clock)."""
        with self._lock:
            self._refill_locked()
            return self._tokens


@dataclass(frozen=True)
class AdmissionDecision:
    """One request's verdict from the :class:`CostGovernor`.

    ``reserved_cost`` is what was debited from the in-flight budget
    (the full estimate for :data:`ADMIT`, the degraded-probe cost for
    :data:`DEGRADE`, zero for :data:`SHED`) and must be released when
    the request completes.  ``throttled`` records that the tenant's
    token bucket denied full fidelity, whatever the final action.
    """

    action: str
    estimated_cost: float
    reserved_cost: float
    throttled: bool = False


class CostGovernor:
    """Cost-based admission control for the open-loop serving path.

    The paper's DA cost model (Section 5.3, formula (1)) estimates a
    range query's disk accesses in O(1) from aggregate R*-tree node
    statistics; the multi-base optimiser already trusts it to choose
    query plans, and this class reuses it as an *admission estimator*:
    the sum of estimates of everything currently executing is a
    predicted I/O backlog, and holding that sum under a budget bounds
    queueing ahead of time instead of discovering collapse in p999.

    Decision ladder for a request of estimated cost ``c``:

    1. **admit** — tenant bucket grants ``min(c, burst)`` and
       ``inflight + c <= budget``: reserve ``c``, run at full
       fidelity.
    2. **degrade** — otherwise, while ``inflight + degraded_cost <=
       budget * degrade_headroom`` (and the request is degradable):
       reserve only ``degraded_cost`` and serve the base mesh — the
       paper's ``e' > e`` guarantee makes that a *valid* cheaper
       answer, so overload sheds fidelity before it sheds requests.
    3. **shed** — beyond headroom: reserve nothing; the engine
       answers from its base-mesh snapshot with zero queueing.

    Because every executing request reserves at least
    ``min(1, degraded_cost)`` units, the number in flight — hence the
    executor queue — is bounded by ``budget * degrade_headroom``
    regardless of the offered rate.

    Args:
        cost_model: the store's :class:`RTreeCostModel`
            (``store.cost_model``).
        budget: in-flight estimated-disk-access budget for
            full-fidelity admissions.
        degraded_cost: reserved cost of one base-mesh probe (a
            handful of root records; default 1 page).
        degrade_headroom: multiple of ``budget`` the degraded tier
            may fill before requests are shed outright.
        tenant_rate: per-tenant token refill in cost units/second
            (``None`` disables per-tenant fairness).
        tenant_burst: per-tenant bucket capacity (defaults to
            ``budget`` when ``tenant_rate`` is set).
        clock: time source for the buckets (injectable for tests).
    """

    def __init__(
        self,
        cost_model: RTreeCostModel,
        budget: float,
        degraded_cost: float = 1.0,
        degrade_headroom: float = 2.0,
        tenant_rate: float | None = None,
        tenant_burst: float | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if budget <= 0:
            raise QueryError(f"budget must be > 0, got {budget}")
        if degraded_cost <= 0:
            raise QueryError(
                f"degraded_cost must be > 0, got {degraded_cost}"
            )
        if degrade_headroom < 1.0:
            raise QueryError(
                f"degrade_headroom must be >= 1, got {degrade_headroom}"
            )
        if tenant_rate is not None and tenant_rate <= 0:
            raise QueryError(
                f"tenant_rate must be > 0 or None, got {tenant_rate}"
            )
        self._cost_model = cost_model
        self._budget = budget
        self._degraded_cost = degraded_cost
        self._degrade_headroom = degrade_headroom
        self._tenant_rate = tenant_rate
        self._tenant_burst = (
            budget if tenant_burst is None else tenant_burst
        )
        self._clock = clock
        self._lock = watched_lock("CostGovernor._lock")
        self._inflight = 0.0
        self._buckets: dict[str, TokenBucket] = {}

    @property
    def budget(self) -> float:
        """Full-fidelity in-flight cost budget."""
        return self._budget

    @property
    def inflight_cost(self) -> float:
        """Sum of reserved cost currently executing."""
        with self._lock:
            return self._inflight

    def estimate(self, box: Box3) -> float:
        """Estimated disk accesses of a probe (formula (1)), floored
        at one page — even a miss pays an index descent."""
        return max(1.0, self._cost_model.estimate(box))

    def _tenant_bucket(self, tenant: str) -> TokenBucket | None:
        if self._tenant_rate is None:
            return None
        with self._lock:
            bucket = self._buckets.get(tenant)
            if bucket is None:
                bucket = TokenBucket(
                    self._tenant_rate, self._tenant_burst, clock=self._clock
                )
                self._buckets[tenant] = bucket
            return bucket

    def decide(
        self, tenant: str, cost: float, degradable: bool = True
    ) -> AdmissionDecision:
        """Admit, degrade, or shed a request of estimated ``cost``.

        The charge against the tenant bucket is capped at the burst
        size so a single query costlier than the whole bucket can
        still (eventually) be admitted rather than starving forever.
        """
        bucket = self._tenant_bucket(tenant)
        throttled = bucket is not None and not bucket.try_take(
            min(cost, self._tenant_burst)
        )
        with self._lock:
            if not throttled and self._inflight + cost <= self._budget:
                self._inflight += cost
                return AdmissionDecision(ADMIT, cost, cost)
            ceiling = self._budget * self._degrade_headroom
            if degradable and self._inflight + self._degraded_cost <= ceiling:
                self._inflight += self._degraded_cost
                return AdmissionDecision(
                    DEGRADE, cost, self._degraded_cost, throttled=throttled
                )
            return AdmissionDecision(SHED, cost, 0.0, throttled=throttled)

    def release(self, reserved: float) -> None:
        """Return a completed request's reservation to the budget."""
        if reserved <= 0:
            return
        with self._lock:
            self._inflight = max(0.0, self._inflight - reserved)


def _resolved(outcome: QueryOutcome) -> "Future[QueryOutcome]":
    """An already-completed future (cache hits, shed answers)."""
    future: "Future[QueryOutcome]" = Future()
    future.set_result(outcome)
    return future


class _NodeTally:
    """Unlocked per-query node counter (single-writer by design)."""

    __slots__ = ("count",)

    def __init__(self) -> None:
        self.count = 0

    def inc(self, n: int = 1) -> None:
        self.count += n


@dataclass(frozen=True)
class _StoreSnapshot:
    """An immutable ``(store, epoch)`` pair a request pins once.

    Live mutation (:mod:`repro.core.mutate`) swaps the engine's
    current snapshot at patch commit; every request captures the
    snapshot *once* at submission and reads store state only through
    it, so a request that started on epoch ``N`` finishes on epoch
    ``N`` — never a hybrid — even when ``N+1`` commits mid-flight.
    Reprolint rule R12 enforces the discipline: the engine's ``_snap``
    slot may only be touched by ``__init__``/``pinned_snapshot``/
    ``install_store``.
    """

    store: "DirectMeshStore"
    epoch: int = 0


@dataclass
class _Group:
    """Requests sharing one range query (identical query boxes)."""

    box: Box3
    positions: list[int] = field(default_factory=list)
    requests: list[EngineRequest] = field(default_factory=list)
    leader: "_Group | None" = None  # Set in subsume mode.
    # Filled by the leader task: decoded records (scalar path) or a
    # columnar page (vectorized path / cache enabled).
    records: "list[DMNodeRecord] | DMNodeColumns | None" = None
    #: The snapshot the whole group executes against (pinned when the
    #: group was planned; execution never re-reads the live slot).
    snap: "_StoreSnapshot | None" = None


class QueryEngine:
    """Batched, deduplicating, fault-isolated query execution.

    Args:
        store: the Direct Mesh store to serve from.
        workers: thread-pool width; 1 reproduces sequential execution
            (the throughput baseline).
        dedup: ``"off"`` (every request probes the index), ``"exact"``
            (identical query boxes share one probe; results stay
            byte-identical to the sequential path), or ``"subsume"``
            (a box contained in another also reuses the superset's
            records — identical approximations, shared I/O
            accounting).
        registry: metrics sink; a private one is created if omitted.
        retries: how many times a request hit by a
            :class:`~repro.errors.TransientIOError` is re-attempted
            (0 disables retry; other exceptions never retry).
        retry_backoff_s: base backoff before the first retry; doubles
            per attempt.  Backoff never sleeps past the deadline.
        deadline_s: per-request deadline in seconds, measured from
            batch submission; ``None`` disables deadlines.
        degrade: whether uniform requests that miss their deadline are
            answered at the coarsest LOD (flagged ``degraded``)
            instead of failing with
            :class:`~repro.errors.DeadlineExceededError`.
        cache: a :class:`~repro.core.cache.SemanticCache`; every
            request is checked against it *before* dedup grouping (a
            hit skips the index probe and record fetch entirely), and
            every executed range query feeds its cube back in.  A
            cache may be shared by several engines over the same
            store; it must be invalidated when the store is rebuilt.
            Enabling the cache forces the columnar fetch path.
        vectorized: fetch records as columnar pages and run the
            numpy filter kernels (the default); ``False`` keeps the
            scalar per-record reference path.
        quarantine_cap: bound on the corrupt-page quarantine set (see
            :attr:`quarantine`); oldest entries fall off first.
        governor: a :class:`CostGovernor` giving the open-loop
            :meth:`submit` path cost-based admission control; batch
            execution (:meth:`run_batch`) is closed-loop by
            construction and stays ungoverned.  ``None`` admits
            everything (the ``--no-admission`` baseline).
        clustered: serve range queries from the store's v3 cluster
            section — cluster-granular selection, one sequential run
            read per cold cluster, cluster-granular caching — instead
            of the per-node R*-tree walk.  ``None`` (the default)
            enables it exactly when the store has a cluster section;
            ``True`` on a store without one raises; ``False`` keeps
            the per-node path as the correctness oracle.  Results are
            node-id-identical either way (the parity property suite
            holds the fast path to the oracle); only ``retrieved``
            accounting differs — whole clusters are decoded, so the
            overfetch the batching buys is visible, not hidden.
        cluster_cache_bytes: budget of the engine's decoded-cluster
            LRU (:class:`~repro.core.cache.ClusterCache`); only used
            when the clustered path is active.
        epoch: the store's committed epoch (``database.store_epoch``);
            0 for never-patched stores.  Requests pin ``(store,
            epoch)`` once at submission; live patches swap the pair
            via :meth:`install_store`.
    """

    def __init__(
        self,
        store: "DirectMeshStore",
        workers: int = 4,
        dedup: str = "exact",
        registry: MetricsRegistry | None = None,
        retries: int = 2,
        retry_backoff_s: float = 0.002,
        deadline_s: float | None = None,
        degrade: bool = True,
        cache: SemanticCache | None = None,
        vectorized: bool = True,
        quarantine_cap: int = 256,
        governor: CostGovernor | None = None,
        clustered: bool | None = None,
        cluster_cache_bytes: int = DEFAULT_CLUSTER_CACHE_BYTES,
        epoch: int = 0,
    ) -> None:
        if workers < 1:
            raise QueryError(f"workers must be >= 1, got {workers}")
        if dedup not in DEDUP_MODES:
            raise QueryError(
                f"dedup must be one of {DEDUP_MODES}, got {dedup!r}"
            )
        if retries < 0:
            raise QueryError(f"retries must be >= 0, got {retries}")
        if retry_backoff_s < 0:
            raise QueryError(
                f"retry_backoff_s must be >= 0, got {retry_backoff_s}"
            )
        if deadline_s is not None and deadline_s <= 0:
            raise QueryError(
                f"deadline_s must be positive or None, got {deadline_s}"
            )
        if clustered is None:
            clustered = store.clusters is not None
        elif clustered and store.clusters is None:
            raise QueryError(
                "clustered=True but the store has no cluster section "
                "(rebuild with DirectMeshStore.build(clustered=True))"
            )
        self._snap = _StoreSnapshot(store, epoch)
        self._workers = workers
        self._dedup = dedup
        self._retries = retries
        self._retry_backoff_s = retry_backoff_s
        self._deadline_s = deadline_s
        self._degrade = degrade
        self._cache = cache
        self._governor = governor
        self._clustered = clustered
        self._cluster_cache = (
            ClusterCache(cluster_cache_bytes) if clustered else None
        )
        # Base-mesh snapshot for the shed path, fetched once on first
        # shed (double-checked under _base_lock: submit() is called
        # from arbitrary client threads).  Epoch-tagged: a live patch
        # changes the root set, so a snapshot fetched at epoch N only
        # serves requests pinned to N.
        self._base_lock = watched_lock("QueryEngine._base_lock")
        self._base_columns: tuple[int, DMNodeColumns] | None = None
        # Delta-session manager, created lazily on first use (DCL
        # under _session_lock: sessions() may race from client
        # threads; the import is local to avoid a module cycle).
        self._session_lock = watched_lock("QueryEngine._session_lock")
        self._session_manager: "SessionManager | None" = None
        # Cache entries are columnar pages, so the cache implies the
        # columnar fetch path even when ``vectorized`` is off.
        self._columnar = vectorized or cache is not None
        self.registry = registry if registry is not None else MetricsRegistry()
        #: Bounded set of ``(segment, page)`` ids that failed checksum
        #: verification while serving.  Thread-safe; cleared by
        #: :meth:`clear_quarantine` after an offline repair.
        self.quarantine = PageQuarantine(quarantine_cap)
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-engine"
        )

    # -- lifecycle ---------------------------------------------------------

    @property
    def workers(self) -> int:
        """Thread-pool width."""
        return self._workers

    @property
    def store(self) -> "DirectMeshStore":
        """The store this engine currently serves from."""
        return self.pinned_snapshot().store

    @property
    def epoch(self) -> int:
        """The committed epoch of the current snapshot."""
        return self.pinned_snapshot().epoch

    def pinned_snapshot(self) -> _StoreSnapshot:
        """Capture the current ``(store, epoch)`` snapshot.

        The *only* read path to the engine's live store slot
        (reprolint R12).  Callers capture once per request and thread
        the frozen snapshot through execution; the reference swap in
        :meth:`install_store` is atomic, so no lock is needed here.
        """
        return self._snap

    def install_store(
        self,
        store: "DirectMeshStore",
        epoch: int,
        region: Rect | None = None,
    ) -> None:
        """Swap the serving snapshot after a committed live patch.

        In-flight requests keep the snapshot they pinned (old-epoch
        segments stay on disk); new submissions see ``(store,
        epoch)``.  ``region`` is the patched area: the semantic cache
        drops exactly the cubes overlapping it (and arms its
        insert-time guard, see
        :meth:`~repro.core.cache.SemanticCache.begin_epoch`), the
        cluster cache drops overlapping decoded clusters, and
        streaming sessions whose last ROI overlaps are marked for a
        keyframe resync.  ``region=None`` treats the whole terrain as
        patched (full rebuild).
        """
        if self._clustered and store.clusters is None:
            raise QueryError(
                "cannot install a store without a cluster section "
                "into a clustered engine"
            )
        registry = self.registry
        # Invalidate BEFORE publishing the new snapshot: a request
        # that pins the new epoch must never find a stale overlapping
        # entry still resident (lookup serves entries with epoch <=
        # the pinned epoch, so the drop has to happen first).  The
        # reverse race — an old-epoch request inserting a stale entry
        # after the drop — is closed by begin_epoch's insert guard.
        if self._cache is not None:
            self._cache.begin_epoch(epoch, region)
            registry.counter("cache.region_invalidations").inc()
        if self._cluster_cache is not None:
            self._cluster_cache.invalidate(region)
            registry.counter("cluster.region_invalidations").inc()
        self._snap = _StoreSnapshot(store, epoch)
        registry.gauge("engine.epoch").set(epoch)
        with self._session_lock:
            manager = self._session_manager
        if manager is not None:
            manager.mark_stale(region)

    @property
    def cache(self) -> SemanticCache | None:
        """The attached semantic cache (None when caching is off)."""
        return self._cache

    @property
    def clustered(self) -> bool:
        """True when range queries run on the cluster fast path."""
        return self._clustered

    @property
    def cluster_cache(self) -> ClusterCache | None:
        """The decoded-cluster LRU (None on the per-node path)."""
        return self._cluster_cache

    @property
    def governor(self) -> CostGovernor | None:
        """The attached admission controller (None = admit all)."""
        return self._governor

    def sessions(self) -> "SessionManager":
        """The engine's delta-session manager (created lazily).

        Sessions opened here submit through this engine, so they
        compose with the semantic cache, retries, deadlines, and
        admission control; see :mod:`repro.core.streaming`.
        """
        if self._session_manager is None:
            # Import before taking the lock: a first-touch import does
            # file I/O under the interpreter import lock (reprolint R10).
            from repro.core.streaming import SessionManager

            with self._session_lock:
                if self._session_manager is None:
                    self._session_manager = SessionManager(self)
        return self._session_manager

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "QueryEngine":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- execution ---------------------------------------------------------

    def run(self, request: EngineRequest) -> QueryOutcome:
        """Convenience: run a single request."""
        return self.run_batch([request])[0]

    # -- open-loop submission (admission-controlled) -----------------------

    def submit(
        self, request: EngineRequest, tenant: str = "default"
    ) -> "Future[QueryOutcome]":
        """Submit one request asynchronously (the open-loop path).

        Unlike :meth:`run_batch` — where a closed-loop caller
        self-limits by waiting — ``submit`` returns immediately, so an
        open-loop arrival process can outrun capacity.  With a
        :class:`CostGovernor` attached, the request's cost is
        estimated *in the caller's thread* before anything is queued:
        admitted requests execute at full fidelity, overload-degraded
        ones run the cheap base-mesh probe, and shed ones are answered
        inline from the base-mesh snapshot (or an
        :class:`~repro.errors.OverloadShedError` outcome when not
        degradable) without ever touching the executor queue.

        The per-request deadline starts at submission.  A cache hit
        bypasses admission entirely: it costs one vectorized filter
        and no I/O, so there is nothing to govern.
        """
        registry = self.registry
        registry.counter("engine.requests").inc()
        deadline = (
            None
            if self._deadline_s is None
            else time.monotonic() + self._deadline_s
        )
        snap = self.pinned_snapshot()
        cache = self._cache
        if cache is not None:
            columns = cache.lookup(
                request.query_box(snap.store.e_cap), epoch=snap.epoch
            )
            if columns is not None:
                return _resolved(
                    self._cached_outcome(request, columns, snap.epoch)
                )
        governor = self._governor
        if governor is None:
            return self._submit_task(
                request, snap, deadline, 0.0, degraded=False
            )
        cost = self._estimate_cost(
            request.query_box(snap.store.e_cap), snap.store
        )
        registry.histogram("slo.estimated_cost").observe(cost)
        degradable = self._degrade and isinstance(request, UniformRequest)
        decision = governor.decide(tenant, cost, degradable=degradable)
        registry.gauge("slo.inflight_cost").set(governor.inflight_cost)
        if decision.throttled:
            registry.counter("slo.tenant_throttled").inc()
        if decision.action == ADMIT:
            registry.counter("engine.admitted").inc()
            return self._submit_task(
                request, snap, deadline, decision.reserved_cost,
                degraded=False,
            )
        if decision.action == DEGRADE:
            registry.counter("engine.overload_degraded").inc()
            return self._submit_task(
                request, snap, deadline, decision.reserved_cost,
                degraded=True,
            )
        registry.counter("engine.shed").inc()
        return _resolved(self._shed_outcome(request, snap))

    def _estimate_cost(self, box: Box3, store: "DirectMeshStore") -> float:
        """Admission cost of a probe, in predicted physical pages.

        The per-node path uses the paper's DA formula over R*-tree
        statistics; the clustered path sums the candidate clusters'
        run lengths (:class:`~repro.core.clusters.ClusterCostModel`) —
        the pages that path will actually read — so the governor's
        budget meters the I/O the serving path performs, not the one
        it replaced.  Both are floored at one page: even a miss pays
        a descent (or a directory scan).
        """
        governor = self._governor
        if governor is None:
            return 1.0
        cluster_model = store.cluster_cost_model
        if self._clustered and cluster_model is not None:
            return max(1.0, cluster_model.estimate(box))
        return governor.estimate(box)

    def _submit_task(
        self,
        request: EngineRequest,
        snap: _StoreSnapshot,
        deadline: float | None,
        reserved: float,
        degraded: bool,
    ) -> "Future[QueryOutcome]":
        """Queue one request on the pool, releasing its reservation
        (and the queue-depth gauge) however execution ends."""
        group = self._single_group(request, snap)
        queue_depth = self.registry.gauge("slo.queue_depth")
        queue_depth.add(1)

        def task() -> QueryOutcome:
            try:
                if degraded:
                    outcomes = self._run_overload_degraded(group)
                else:
                    outcomes = self._execute_with_policy(group, deadline)
                return outcomes[0]
            finally:
                queue_depth.add(-1)
                governor = self._governor
                if governor is not None and reserved > 0:
                    governor.release(reserved)
                    self.registry.gauge("slo.inflight_cost").set(
                        governor.inflight_cost
                    )

        return self._pool.submit(task)

    def _single_group(
        self, request: EngineRequest, snap: _StoreSnapshot
    ) -> _Group:
        """A one-request group (the submit path never dedups)."""
        e_cap = snap.store.e_cap
        box = request.query_box(e_cap)
        if self._cache is not None:
            box = self._cache.inflate(box, e_cap)
        return _Group(box, [0], [request], snap=snap)

    def _run_overload_degraded(self, group: _Group) -> list[QueryOutcome]:
        """Serve a group at the base mesh because admission said so.

        Same mechanism as a deadline miss (``_execute_degraded``), but
        triggered by predicted overload before any work was wasted.
        """
        try:
            outcomes = self._execute_degraded(group)
        except Exception as exc:
            return self._error_outcomes(group, exc, 1)
        self.registry.counter("engine.degraded").inc(len(group.requests))
        for outcome in outcomes:
            outcome.degraded = True
        return outcomes

    def _shed_outcome(
        self, request: EngineRequest, snap: _StoreSnapshot
    ) -> QueryOutcome:
        """Answer a shed request from the base-mesh snapshot, inline.

        Costs one vectorized filter in the caller's thread — no
        executor slot, no index probe, no disk.  Non-degradable
        requests (and an unbuildable snapshot) get an
        :class:`~repro.errors.OverloadShedError` outcome instead.
        """
        started = time.perf_counter()
        columns = (
            self._base_snapshot(snap)
            if self._degrade and isinstance(request, UniformRequest)
            else None
        )
        if columns is None or not isinstance(request, UniformRequest):
            self.registry.counter("engine.errors").inc()
            error = OverloadShedError(
                "admission control shed the request and no degraded "
                "answer was possible"
            )
            return QueryOutcome(
                request, None, QueryMetrics(epoch=snap.epoch),
                error=error, shed=True,
            )
        coarse = UniformRequest(request.roi, snap.store.max_lod)
        result = DMQueryResult(
            nodes=coarse.filter(columns), retrieved=len(columns)
        )
        filter_s = time.perf_counter() - started
        metrics = QueryMetrics(
            filter_s=filter_s, total_s=filter_s, cached=True,
            epoch=snap.epoch,
        )
        self.registry.counter("engine.degraded").inc()
        self.registry.histogram("engine.filter_s").observe(filter_s)
        return QueryOutcome(
            request, result, metrics, degraded=True, shed=True
        )

    def _base_snapshot(self, snap: _StoreSnapshot) -> DMNodeColumns | None:
        """The base mesh as one cached columnar page set.

        Fetched once (submit() races from many client threads) and
        shared read-only afterwards — root records are immutable for
        the life of a store *epoch*, so the cached set is tagged with
        the epoch it was fetched at and refetched after a patch swaps
        the snapshot.  The page reads run *outside* ``_base_lock``:
        holding a lock across buffer-pool I/O stalls every other
        shedding thread and orders ``_base_lock`` against the whole
        storage lock hierarchy (reprolint R10).  Racing threads may
        fetch twice; publication under the lock keeps one winner.
        """
        cached = self._base_columns
        if cached is None or cached[0] != snap.epoch:
            store = snap.store
            space = store.rtree.data_space
            if space is None:
                return None
            probe = UniformRequest(space.rect, store.max_lod)
            try:
                rids = store.rtree.search(probe.query_box(store.e_cap))
                columns = store.read_records_columnar(rids)
            except Exception:
                # Leave unset: the next shed retries the fetch.
                return None
            with self._base_lock:
                existing = self._base_columns
                if existing is None or existing[0] != snap.epoch:
                    self._base_columns = (snap.epoch, columns)
            return columns
        return cached[1]

    def run_batch(
        self, requests: Sequence[EngineRequest]
    ) -> list[QueryOutcome]:
        """Execute a batch; outcomes are returned in request order.

        Never raises for a per-request failure: errors surface as
        :attr:`QueryOutcome.error` on the affected requests only.

        Leader groups (one per distinct query box) are submitted to
        the pool first, follower groups after — a follower waiting on
        its leader can therefore never deadlock the pool: by FIFO
        dispatch its leader is already running or finished.

        With a semantic cache attached, every request is probed
        against it *before* dedup grouping: a hit is answered inline
        (one vectorized filter over the cached cube, no index or disk
        I/O) and only the misses proceed to planning and execution.
        """
        requests = list(requests)
        if not requests:
            return []
        deadline = (
            None
            if self._deadline_s is None
            else time.monotonic() + self._deadline_s
        )
        outcomes: list[QueryOutcome | None] = [None] * len(requests)
        snap = self.pinned_snapshot()
        cache = self._cache
        cache_before = cache.stats() if cache is not None else None
        if cache is None:
            pending = list(enumerate(requests))
        else:
            pending = []
            e_cap = snap.store.e_cap
            for position, request in enumerate(requests):
                columns = cache.lookup(
                    request.query_box(e_cap), epoch=snap.epoch
                )
                if columns is None:
                    pending.append((position, request))
                else:
                    outcomes[position] = self._cached_outcome(
                        request, columns, snap.epoch
                    )
        groups = self._plan(pending, snap)
        leaders = [g for g in groups if g.leader is None]
        followers = [g for g in groups if g.leader is not None]

        leader_futures = {
            id(group): self._pool.submit(
                self._execute_with_policy, group, deadline
            )
            for group in leaders
        }
        follower_futures = [
            self._pool.submit(
                self._execute_follower,
                group,
                leader_futures[id(group.leader)],
                deadline,
            )
            for group in followers
        ]

        futures = [leader_futures[id(g)] for g in leaders] + follower_futures
        for group, future in zip(leaders + followers, futures):
            try:
                group_outcomes = future.result()
            except Exception as exc:  # Last-ditch isolation: a bug in
                # the task itself must still not poison the batch.
                group_outcomes = self._error_outcomes(group, exc, 1)
            for position, outcome in zip(group.positions, group_outcomes):
                outcomes[position] = outcome

        registry = self.registry
        registry.counter("engine.requests").inc(len(requests))
        registry.counter("engine.batches").inc()
        registry.counter("engine.range_queries").inc(len(leaders))
        registry.counter("engine.dedup_shared").inc(
            len(pending) - len(leaders)
        )
        if cache is not None and cache_before is not None:
            self._record_cache_metrics(cache, cache_before)
        filled: list[QueryOutcome] = []
        for position, outcome in enumerate(outcomes):
            if outcome is None:
                raise InvariantError(
                    "run_batch left a request without an outcome",
                    position=position,
                )
            filled.append(outcome)
        return filled

    def _cached_outcome(
        self,
        request: EngineRequest,
        columns: DMNodeColumns,
        epoch: int = 0,
    ) -> QueryOutcome:
        """Answer a request from a cached cube (no index/disk I/O)."""
        started = time.perf_counter()
        result = DMQueryResult(
            nodes=request.filter(columns), retrieved=len(columns)
        )
        filter_s = time.perf_counter() - started
        metrics = QueryMetrics(
            filter_s=filter_s, total_s=filter_s, cached=True, epoch=epoch
        )
        self.registry.histogram("engine.filter_s").observe(filter_s)
        return QueryOutcome(request, result, metrics)

    def _record_cache_metrics(
        self, cache: SemanticCache, before: CacheStats
    ) -> None:
        """Mirror the batch's cache activity into the registry.

        The cache keeps lifetime counters (it may be shared across
        engines); the registry gets this batch's deltas plus the
        current resident size.
        """
        after = cache.stats()
        registry = self.registry
        registry.counter("cache.hits").inc(after.hits - before.hits)
        registry.counter("cache.misses").inc(after.misses - before.misses)
        registry.counter("cache.subsume_hits").inc(
            after.subsume_hits - before.subsume_hits
        )
        registry.counter("cache.insertions").inc(
            after.insertions - before.insertions
        )
        registry.counter("cache.evictions").inc(
            after.evictions - before.evictions
        )
        registry.gauge("cache.bytes").set(after.bytes)
        registry.gauge("cache.entries").set(after.entries)

    # -- planning ----------------------------------------------------------

    def _plan(
        self,
        pending: Sequence[tuple[int, EngineRequest]],
        snap: _StoreSnapshot,
    ) -> list[_Group]:
        """Group ``(position, request)`` pairs into shared range
        queries per dedup policy.

        With a cache attached, each group's *probe* box is the
        prefetch-inflated cube (``cache.inflate``): the per-request
        filters restore exactness, and the taller cube turns nearby
        LODs into future cache hits.  Grouping still keys on the
        uninflated box, so dedup semantics are cache-independent.
        """
        e_cap = snap.store.e_cap
        cache = self._cache
        groups: list[_Group] = []
        if self._dedup == "off":
            for position, request in pending:
                box = request.query_box(e_cap)
                if cache is not None:
                    box = cache.inflate(box, e_cap)
                groups.append(_Group(box, [position], [request], snap=snap))
            return groups

        # Key on (box, request type) only: identical query boxes share
        # one probe even when the requests differ (e.g. two uniform
        # LODs above e_cap, or two planes with different directions
        # over the same cube) — the per-request filter in
        # _filter_group restores exactness.
        by_key: dict[object, _Group] = {}
        for position, request in pending:
            box = request.query_box(e_cap)
            key = box.as_tuple() + (type(request).__name__,)
            group = by_key.get(key)
            if group is None:
                probe = box if cache is None else cache.inflate(box, e_cap)
                group = _Group(probe, snap=snap)
                by_key[key] = group
                groups.append(group)
            group.positions.append(position)
            group.requests.append(request)

        if self._dedup == "subsume":
            # Largest boxes first; each group adopts the first strictly
            # earlier (hence >= volume) group whose box contains its
            # own.  Containment is all that correctness needs: records
            # intersecting the superset box are a superset of those
            # intersecting ours, and the per-request filter restores
            # exactness.
            ordered = sorted(
                groups, key=lambda g: g.box.volume, reverse=True
            )
            for i, group in enumerate(ordered):
                for candidate in ordered[:i]:
                    root = candidate.leader or candidate
                    if root.box.contains_box(group.box):
                        group.leader = root
                        break
        return groups

    # -- stages (run on worker threads) ------------------------------------

    def _execute_with_policy(
        self, group: _Group, deadline: float | None
    ) -> list[QueryOutcome]:
        """Run a group under the retry/deadline policy.

        Returns outcomes for every request in the group; never raises.
        """
        registry = self.registry
        attempts = 0
        while True:
            attempts += 1
            if deadline is not None and time.monotonic() >= deadline:
                return self._deadline_outcomes(group, attempts)
            try:
                outcomes = self._execute_group(group)
            except PageCorruptionError as exc:
                # Never retried: re-reading a rotten page returns the
                # same bytes.  Quarantine it and serve degraded.
                return self._corruption_outcomes(group, exc, attempts)
            except TransientIOError as exc:
                if attempts > self._retries:
                    return self._error_outcomes(group, exc, attempts)
                registry.counter("engine.retries").inc()
                delay = self._retry_backoff_s * (2 ** (attempts - 1))
                if deadline is not None:
                    delay = min(delay, max(0.0, deadline - time.monotonic()))
                if delay > 0:
                    time.sleep(delay)
                continue
            except Exception as exc:  # Hard fault: isolate, don't retry.
                return self._error_outcomes(group, exc, attempts)
            for outcome in outcomes:
                outcome.attempts = attempts
            return outcomes

    def _execute_follower(
        self,
        group: _Group,
        leader_future: "Future[list[QueryOutcome]]",
        deadline: float | None,
    ) -> list[QueryOutcome]:
        """Filter a subsumed group against its leader's records.

        A failed leader does not cascade: the follower is demoted to
        an independent probe under the full retry/deadline policy.
        """
        leader = group.leader
        if leader is None:
            raise InvariantError("follower group has no leader")
        leader_outcomes = leader_future.result()
        records = leader.records
        if records is None or not leader_outcomes[0].ok:
            self.registry.counter("engine.demotions").inc(
                len(group.requests)
            )
            return self._execute_with_policy(group, deadline)
        leader_metrics = leader_outcomes[0].metrics
        started = time.perf_counter()
        outcomes = self._filter_group(group, records, shared=True)
        filter_s = time.perf_counter() - started
        metrics = QueryMetrics(
            nodes_visited=leader_metrics.nodes_visited,
            pages_read=leader_metrics.pages_read,
            logical_reads=leader_metrics.logical_reads,
            cache_hit_rate=leader_metrics.cache_hit_rate,
            filter_s=filter_s,
            total_s=filter_s,
            shared=True,
            epoch=leader_metrics.epoch,
        )
        for outcome in outcomes:
            outcome.metrics = metrics
        self.registry.histogram("engine.filter_s").observe(filter_s)
        return outcomes

    def _execute_group(self, group: _Group) -> list[QueryOutcome]:
        """Run the group's range query, fetch, and per-request filters."""
        if self._clustered:
            return self._execute_group_clustered(group)
        snap = group.snap or self.pinned_snapshot()
        store = snap.store
        registry = self.registry
        tally = _NodeTally()
        started = time.perf_counter()
        with store.database.stats.attribute() as probe:
            rids = store.rtree.search(group.box, node_counter=tally)
            index_done = time.perf_counter()
            if self._columnar:
                records = store.read_records_columnar(rids)
            else:
                records = store.read_records(rids)
            fetch_done = time.perf_counter()
            outcomes = self._filter_group(group, records, shared=False)
        finished = time.perf_counter()
        if self._cache is not None and isinstance(records, DMNodeColumns):
            self._cache.insert(group.box, records, epoch=snap.epoch)

        metrics = QueryMetrics(
            nodes_visited=tally.count,
            pages_read=probe.physical_reads,
            logical_reads=probe.logical_reads,
            cache_hit_rate=probe.cache_hit_rate,
            index_s=index_done - started,
            fetch_s=fetch_done - index_done,
            filter_s=finished - fetch_done,
            total_s=finished - started,
            epoch=snap.epoch,
        )
        group.records = records
        for outcome in outcomes:
            outcome.metrics = metrics
        registry.histogram("engine.index_s").observe(metrics.index_s)
        registry.histogram("engine.fetch_s").observe(metrics.fetch_s)
        registry.histogram("engine.filter_s").observe(metrics.filter_s)
        registry.histogram("engine.query_s").observe(metrics.total_s)
        registry.histogram("engine.nodes_visited").observe(tally.count)
        registry.histogram("engine.pages_read").observe(probe.physical_reads)
        registry.histogram("engine.cache_hit_rate").observe(
            probe.cache_hit_rate
        )
        return outcomes

    def _execute_group_clustered(self, group: _Group) -> list[QueryOutcome]:
        """Clustered twin of :meth:`_execute_group`.

        Selection runs against the cluster directory (one vectorized
        intersection over per-cluster extents) instead of the R*-tree;
        each candidate cluster is served from the decoded-cluster LRU
        or bulk-fetched with one sequential run read and one columnar
        decode.  Candidate pages concatenate into a single columnar
        batch and flow through the *same* per-request filters as every
        other path — which is the whole parity argument: a node
        passing the filter has its capped segment intersecting the
        probe box, so its cluster's extent (a union of such segments)
        is always a candidate.

        The decoded batch is *narrowed* to the rows whose capped
        segment intersects the probe box (:func:`intersecting_rows`)
        before filtering: that is exactly the row set an R*-tree probe
        retrieves, so ``retrieved`` counts, semantic-cache cubes, and
        dedup-follower behaviour stay bit-identical to the oracle
        path.  The pre-narrow count is kept as ``nodes_decoded`` — the
        overfetch ratio stays measurable.

        Metric mapping: ``nodes_visited`` counts clusters examined
        (the selection work this path does) and ``pages_read`` counts
        the run pages actually transferred (the pager records a run as
        its page count, not one probe call).
        """
        snap = group.snap or self.pinned_snapshot()
        store = snap.store
        clusters = store.clusters
        cluster_cache = self._cluster_cache
        if clusters is None or cluster_cache is None:
            raise InvariantError(
                "clustered execution without a cluster section"
            )
        registry = self.registry
        decode_hits = 0
        runs_read = 0
        started = time.perf_counter()
        with store.database.stats.attribute() as probe:
            cids = clusters.index.candidates(group.box)
            index_done = time.perf_counter()
            parts: list[DMNodeColumns] = []
            hit_pages = 0
            for cid in cids:
                columns = cluster_cache.get(cid, snap.epoch)
                if columns is None:
                    columns = clusters.decode(cid)
                    cluster_cache.put(
                        cid,
                        columns,
                        snap.epoch,
                        extent=clusters.meta(cid).box,
                    )
                    runs_read += 1
                else:
                    decode_hits += 1
                    hit_pages += clusters.meta(cid).n_pages
                parts.append(columns)
            if hit_pages:
                # A decode hit stands in for requesting the run's pages
                # and finding every one resident: count them as logical
                # reads so per-probe hit rates mean the same thing on
                # both serving paths (misses are counted by read_run).
                store.database.stats.record_logical_read(
                    clusters.segment.name, pages=hit_pages
                )
            batch = concat_dm_columns(parts)
            nodes_decoded = len(batch)
            if nodes_decoded:
                records = batch.select(
                    intersecting_rows(batch, group.box, store.e_cap)
                )
            else:
                records = batch
            fetch_done = time.perf_counter()
            outcomes = self._filter_group(group, records, shared=False)
        finished = time.perf_counter()
        if self._cache is not None:
            self._cache.insert(group.box, records, epoch=snap.epoch)

        metrics = QueryMetrics(
            nodes_visited=len(cids),
            pages_read=probe.physical_reads,
            logical_reads=probe.logical_reads,
            cache_hit_rate=probe.cache_hit_rate,
            index_s=index_done - started,
            fetch_s=fetch_done - index_done,
            filter_s=finished - fetch_done,
            total_s=finished - started,
            clusters_touched=len(cids),
            nodes_decoded=nodes_decoded,
            epoch=snap.epoch,
        )
        group.records = records
        for outcome in outcomes:
            outcome.metrics = metrics
        if runs_read:
            registry.counter("storage.cluster_reads").inc(runs_read)
            registry.counter("cluster.decode_misses").inc(runs_read)
        if decode_hits:
            registry.counter("cluster.decode_hits").inc(decode_hits)
        cache_stats = cluster_cache.stats()
        registry.gauge("cluster.bytes").set(cache_stats.bytes)
        registry.gauge("cluster.entries").set(cache_stats.entries)
        registry.gauge("cluster.evictions").set(cache_stats.evictions)
        registry.histogram("engine.clusters_touched").observe(len(cids))
        registry.histogram("engine.index_s").observe(metrics.index_s)
        registry.histogram("engine.fetch_s").observe(metrics.fetch_s)
        registry.histogram("engine.filter_s").observe(metrics.filter_s)
        registry.histogram("engine.query_s").observe(metrics.total_s)
        registry.histogram("engine.nodes_visited").observe(len(cids))
        registry.histogram("engine.pages_read").observe(probe.physical_reads)
        registry.histogram("engine.cache_hit_rate").observe(
            probe.cache_hit_rate
        )
        return outcomes

    # -- failure paths -----------------------------------------------------

    def clear_quarantine(self) -> None:
        """Forget quarantined pages (call after ``fsck --repair``)."""
        self.quarantine.clear()

    def _corruption_outcomes(
        self, group: _Group, error: PageCorruptionError, attempts: int
    ) -> list[QueryOutcome]:
        """Handle a group that hit a corrupt page: quarantine the page,
        then degrade uniform groups to the base mesh (like a deadline
        miss) or fail the group's requests in isolation."""
        registry = self.registry
        registry.counter("engine.corruptions").inc()
        segment = error.context.get("segment")
        page = error.context.get("page")
        if isinstance(segment, str) and isinstance(page, int):
            self.quarantine.add(segment, page)
        degradable = self._degrade and all(
            isinstance(request, UniformRequest)
            for request in group.requests
        )
        if degradable:
            try:
                outcomes = self._execute_degraded(group)
            except Exception:  # The base mesh may be corrupt too.
                degradable = False
            else:
                registry.counter("engine.degraded").inc(len(group.requests))
                for outcome in outcomes:
                    outcome.attempts = attempts
                    outcome.degraded = True
                return outcomes
        return self._error_outcomes(group, error, attempts)

    def _error_outcomes(
        self, group: _Group, error: Exception, attempts: int
    ) -> list[QueryOutcome]:
        """Per-request errored outcomes for a group that failed."""
        self.registry.counter("engine.errors").inc(len(group.requests))
        return [
            QueryOutcome(
                request,
                None,
                QueryMetrics(),
                error=error,
                attempts=attempts,
            )
            for request in group.requests
        ]

    def _deadline_outcomes(
        self, group: _Group, attempts: int
    ) -> list[QueryOutcome]:
        """Handle a group whose deadline expired before it produced a
        result: degrade uniform requests to the coarsest LOD, fail the
        rest."""
        registry = self.registry
        registry.counter("engine.deadline_misses").inc(len(group.requests))
        degradable = self._degrade and all(
            isinstance(request, UniformRequest) for request in group.requests
        )
        if degradable:
            try:
                outcomes = self._execute_degraded(group)
            except Exception:
                degradable = False
            else:
                registry.counter("engine.degraded").inc(len(group.requests))
                for outcome in outcomes:
                    outcome.attempts = attempts
                    outcome.degraded = True
                return outcomes
        error = DeadlineExceededError(
            f"deadline of {self._deadline_s}s expired before the request ran"
        )
        return self._error_outcomes(group, error, attempts)

    def _execute_degraded(self, group: _Group) -> list[QueryOutcome]:
        """Answer a uniform group at the coarsest LOD (the base mesh).

        Any ``e' > e`` is a valid, cheaper approximation (paper
        Section 4), and the base mesh is the cheapest of all — a
        handful of root records instead of a deep fetch.  No retry:
        this is the last, best effort under deadline pressure.
        """
        snap = group.snap or self.pinned_snapshot()
        store = snap.store
        coarse_lod = store.max_lod
        uniform = [
            request
            for request in group.requests
            if isinstance(request, UniformRequest)
        ]
        if len(uniform) != len(group.requests):
            raise InvariantError(
                "degraded execution reached a non-uniform request"
            )
        # All requests in a group share one query box, hence one ROI.
        roi = uniform[0].roi
        coarse_group = _Group(
            UniformRequest(roi, coarse_lod).query_box(store.e_cap),
            list(group.positions),
            [UniformRequest(request.roi, coarse_lod) for request in uniform],
            snap=snap,
        )
        outcomes = self._execute_group(coarse_group)
        # Re-label with the original requests: the caller must see the
        # request it submitted, served by a coarser approximation.
        for outcome, request in zip(outcomes, group.requests):
            outcome.request = request
        return outcomes

    @staticmethod
    def _filter_group(
        group: _Group,
        records: "list[DMNodeRecord] | DMNodeColumns",
        shared: bool,
    ) -> list[QueryOutcome]:
        outcomes: list[QueryOutcome] = []
        # Equal requests in the group share one result object (their
        # filters agree by construction); distinct requests behind the
        # same box — e.g. different LODs above e_cap — each run their
        # own filter, which is what keeps shared probes exact.
        computed: list[tuple[EngineRequest, DMQueryResult]] = []
        for request in group.requests:
            result = next(
                (res for req, res in computed if req == request), None
            )
            if result is None:
                result = DMQueryResult(
                    nodes=request.filter(records), retrieved=len(records)
                )
                computed.append((request, result))
            outcomes.append(
                QueryOutcome(request, result, QueryMetrics(shared=shared))
            )
        return outcomes
