"""Concurrent batched query engine over a :class:`DirectMeshStore`.

The paper reduces selective refinement to a single 3D range query;
this module turns that property into a *serving* path.  A batch of
terrain queries — viewpoint-independent (:class:`UniformRequest`) or
viewpoint-dependent single-base (:class:`SingleBaseRequest`) — is

1. **deduplicated**: requests whose query boxes coincide share one
   index probe and record fetch; in ``"subsume"`` mode a request whose
   box is contained in another's reuses the superset's records and
   only re-runs the (cheap) LOD filter;
2. **fanned out** across a :class:`~concurrent.futures.ThreadPoolExecutor`
   against the shared, lock-striped buffer pool — pager reads release
   the GIL, so independent cache misses overlap;
3. **instrumented**: every executed range query reports R*-tree nodes
   visited, pages read, cache hit-rate and per-stage wall time through
   a :class:`~repro.obs.metrics.MetricsRegistry`.

Results are byte-identical to the sequential query processors in
:mod:`repro.core.query` (same nodes, same ``retrieved`` count) in the
default ``"exact"`` dedup mode; ``"subsume"`` keeps the *approximation*
identical but accounts ``retrieved`` against the shared superset
fetch.

Usage::

    with QueryEngine(store, workers=4) as engine:
        outcomes = engine.run_batch(
            [UniformRequest(roi, lod) for roi, lod in workload]
        )
    print(engine.registry.report())
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Sequence, Union

from repro.core.query import DMQueryResult, filter_to_plane, filter_uniform
from repro.errors import QueryError
from repro.geometry.plane import QueryPlane
from repro.geometry.primitives import Box3, Rect
from repro.obs.metrics import MetricsRegistry
from repro.storage.record import DMNodeRecord

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.direct_mesh import DirectMeshStore

__all__ = [
    "QueryEngine",
    "UniformRequest",
    "SingleBaseRequest",
    "QueryMetrics",
    "QueryOutcome",
    "DEDUP_MODES",
]

#: Supported deduplication policies (see :class:`QueryEngine`).
DEDUP_MODES = ("off", "exact", "subsume")


@dataclass(frozen=True)
class UniformRequest:
    """A viewpoint-independent query ``Q(M, roi, lod)``."""

    roi: Rect
    lod: float

    def query_box(self) -> Box3:
        """The degenerate plane box the range query probes."""
        return Box3.from_rect(self.roi, self.lod, self.lod)

    def filter(self, records: Iterable[DMNodeRecord]) -> dict[int, DMNodeRecord]:
        """Apply the uniform-query predicate to fetched records."""
        return filter_uniform(records, self.roi, self.lod)


@dataclass(frozen=True)
class SingleBaseRequest:
    """A viewpoint-dependent single-base query (Algorithm 1)."""

    plane: QueryPlane

    def query_box(self) -> Box3:
        """The query cube ``roi x [e_min, e_max]``."""
        return Box3.from_rect(
            self.plane.roi, self.plane.e_min, self.plane.e_max
        )

    def filter(self, records: Iterable[DMNodeRecord]) -> dict[int, DMNodeRecord]:
        """Apply the plane predicate to fetched records."""
        return filter_to_plane(records, self.plane)


EngineRequest = Union[UniformRequest, SingleBaseRequest]


@dataclass
class QueryMetrics:
    """Where one query's time and I/O went.

    ``shared`` marks requests served from another request's range
    query (dedup); their I/O counters describe the shared fetch.
    """

    nodes_visited: int = 0
    pages_read: int = 0
    logical_reads: int = 0
    cache_hit_rate: float = 0.0
    index_s: float = 0.0
    fetch_s: float = 0.0
    filter_s: float = 0.0
    total_s: float = 0.0
    shared: bool = False


@dataclass
class QueryOutcome:
    """One request's result plus its metrics."""

    request: EngineRequest
    result: DMQueryResult
    metrics: QueryMetrics


class _NodeTally:
    """Unlocked per-query node counter (single-writer by design)."""

    __slots__ = ("count",)

    def __init__(self) -> None:
        self.count = 0

    def inc(self, n: int = 1) -> None:
        self.count += n


@dataclass
class _Group:
    """Requests sharing one range query (identical query boxes)."""

    box: Box3
    positions: list[int] = field(default_factory=list)
    requests: list[EngineRequest] = field(default_factory=list)
    leader: "_Group | None" = None  # Set in subsume mode.
    records: list[DMNodeRecord] | None = None  # Filled by the leader task.


class QueryEngine:
    """Batched, deduplicating, multi-threaded query execution.

    Args:
        store: the Direct Mesh store to serve from.
        workers: thread-pool width; 1 reproduces sequential execution
            (the throughput baseline).
        dedup: ``"off"`` (every request probes the index), ``"exact"``
            (identical query boxes share one probe; results stay
            byte-identical to the sequential path), or ``"subsume"``
            (a box contained in another also reuses the superset's
            records — identical approximations, shared I/O
            accounting).
        registry: metrics sink; a private one is created if omitted.
    """

    def __init__(
        self,
        store: "DirectMeshStore",
        workers: int = 4,
        dedup: str = "exact",
        registry: MetricsRegistry | None = None,
    ) -> None:
        if workers < 1:
            raise QueryError(f"workers must be >= 1, got {workers}")
        if dedup not in DEDUP_MODES:
            raise QueryError(
                f"dedup must be one of {DEDUP_MODES}, got {dedup!r}"
            )
        self._store = store
        self._workers = workers
        self._dedup = dedup
        self.registry = registry if registry is not None else MetricsRegistry()
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-engine"
        )

    # -- lifecycle ---------------------------------------------------------

    @property
    def workers(self) -> int:
        """Thread-pool width."""
        return self._workers

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "QueryEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- execution ---------------------------------------------------------

    def run(self, request: EngineRequest) -> QueryOutcome:
        """Convenience: run a single request."""
        return self.run_batch([request])[0]

    def run_batch(
        self, requests: Sequence[EngineRequest]
    ) -> list[QueryOutcome]:
        """Execute a batch; outcomes are returned in request order.

        Leader groups (one per distinct query box) are submitted to
        the pool first, follower groups after — a follower waiting on
        its leader can therefore never deadlock the pool: by FIFO
        dispatch its leader is already running or finished.
        """
        requests = list(requests)
        if not requests:
            return []
        groups = self._plan(requests)
        leaders = [g for g in groups if g.leader is None]
        followers = [g for g in groups if g.leader is not None]

        leader_futures = {
            id(group): self._pool.submit(self._execute_leader, group)
            for group in leaders
        }
        follower_futures = [
            self._pool.submit(
                self._execute_follower, group, leader_futures[id(group.leader)]
            )
            for group in followers
        ]

        outcomes: list[QueryOutcome | None] = [None] * len(requests)
        futures = [leader_futures[id(g)] for g in leaders] + follower_futures
        for group, future in zip(leaders + followers, futures):
            for position, outcome in zip(group.positions, future.result()):
                outcomes[position] = outcome

        registry = self.registry
        registry.counter("engine.requests").inc(len(requests))
        registry.counter("engine.batches").inc()
        registry.counter("engine.range_queries").inc(len(leaders))
        registry.counter("engine.dedup_shared").inc(
            len(requests) - len(leaders)
        )
        assert all(outcome is not None for outcome in outcomes)
        return outcomes  # type: ignore[return-value]

    # -- planning ----------------------------------------------------------

    def _plan(self, requests: Sequence[EngineRequest]) -> list[_Group]:
        """Group requests into shared range queries per dedup policy."""
        groups: list[_Group] = []
        if self._dedup == "off":
            for position, request in enumerate(requests):
                groups.append(
                    _Group(request.query_box(), [position], [request])
                )
            return groups

        by_key: dict[object, _Group] = {}
        for position, request in enumerate(requests):
            key = request.query_box().as_tuple() + (
                type(request).__name__,
                request,
            )
            group = by_key.get(key)
            if group is None:
                group = _Group(request.query_box())
                by_key[key] = group
                groups.append(group)
            group.positions.append(position)
            group.requests.append(request)

        if self._dedup == "subsume":
            # Largest boxes first; each group adopts the first strictly
            # earlier (hence >= volume) group whose box contains its
            # own.  Containment is all that correctness needs: records
            # intersecting the superset box are a superset of those
            # intersecting ours, and the per-request filter restores
            # exactness.
            ordered = sorted(
                groups, key=lambda g: g.box.volume, reverse=True
            )
            for i, group in enumerate(ordered):
                for candidate in ordered[:i]:
                    root = candidate.leader or candidate
                    if root.box.contains_box(group.box):
                        group.leader = root
                        break
        return groups

    # -- stages (run on worker threads) ------------------------------------

    def _execute_leader(self, group: _Group) -> list[QueryOutcome]:
        """Run the group's range query, fetch, and per-request filters."""
        store = self._store
        registry = self.registry
        tally = _NodeTally()
        started = time.perf_counter()
        with store.database.stats.attribute() as probe:
            rids = store.rtree.search(group.box, node_counter=tally)
            index_done = time.perf_counter()
            records = store.read_records(rids)
            fetch_done = time.perf_counter()
            outcomes = self._filter_group(group, records, shared=False)
        finished = time.perf_counter()

        metrics = QueryMetrics(
            nodes_visited=tally.count,
            pages_read=probe.physical_reads,
            logical_reads=probe.logical_reads,
            cache_hit_rate=probe.cache_hit_rate,
            index_s=index_done - started,
            fetch_s=fetch_done - index_done,
            filter_s=finished - fetch_done,
            total_s=finished - started,
        )
        group.records = records
        for outcome in outcomes:
            outcome.metrics = metrics
        registry.histogram("engine.index_s").observe(metrics.index_s)
        registry.histogram("engine.fetch_s").observe(metrics.fetch_s)
        registry.histogram("engine.filter_s").observe(metrics.filter_s)
        registry.histogram("engine.query_s").observe(metrics.total_s)
        registry.histogram("engine.nodes_visited").observe(tally.count)
        registry.histogram("engine.pages_read").observe(probe.physical_reads)
        registry.histogram("engine.cache_hit_rate").observe(
            probe.cache_hit_rate
        )
        return outcomes

    def _execute_follower(self, group: _Group, leader_future) -> list[QueryOutcome]:
        """Filter a subsumed group against its leader's records."""
        leader_outcomes = leader_future.result()
        leader_metrics = leader_outcomes[0].metrics
        records = group.leader.records
        assert records is not None
        started = time.perf_counter()
        outcomes = self._filter_group(group, records, shared=True)
        filter_s = time.perf_counter() - started
        metrics = QueryMetrics(
            nodes_visited=leader_metrics.nodes_visited,
            pages_read=leader_metrics.pages_read,
            logical_reads=leader_metrics.logical_reads,
            cache_hit_rate=leader_metrics.cache_hit_rate,
            filter_s=filter_s,
            total_s=filter_s,
            shared=True,
        )
        for outcome in outcomes:
            outcome.metrics = metrics
        self.registry.histogram("engine.filter_s").observe(filter_s)
        return outcomes

    @staticmethod
    def _filter_group(
        group: _Group, records: list[DMNodeRecord], shared: bool
    ) -> list[QueryOutcome]:
        outcomes: list[QueryOutcome] = []
        first_result: DMQueryResult | None = None
        for request in group.requests:
            if first_result is None:
                nodes = request.filter(records)
                first_result = DMQueryResult(
                    nodes=nodes, retrieved=len(records)
                )
            # Duplicate requests in the group share the result object
            # (they are equal, so their filters agree by construction).
            outcomes.append(
                QueryOutcome(request, first_result, QueryMetrics(shared=shared))
            )
        return outcomes
