"""Progressive terrain streaming sessions over a Direct Mesh store.

The paper's introduction motivates MTMs with interactive walkthroughs
on "ordinary desktops or wireless devices and Internet applications":
a client keeps a terrain mesh for its current view and, as the view
moves, wants *deltas* — which points entered the approximation, which
left — rather than full result sets.

:class:`TerrainSession` provides that on top of the store's query
processors.  Each :meth:`update` evaluates the new view (a
:class:`~repro.geometry.plane.QueryPlane`, a
:class:`~repro.geometry.plane.RadialLodField`, or a uniform
``(roi, lod)`` pair), diffs it against the session's active set, and
returns a :class:`SessionDelta` with the added records, the removed
ids, and transfer-size accounting.  Because Direct Mesh nodes are
self-describing (coordinates + connection list), the client can splice
deltas into its mesh without any server-side topology bookkeeping —
the property that makes DM suit thin clients.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.query import DMQueryResult
from repro.core.reconstruct import mesh_edges, mesh_triangles
from repro.errors import QueryError
from repro.geometry.primitives import Rect
from repro.storage.record import DMNodeRecord, dm_record_size

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.direct_mesh import DirectMeshStore
    from repro.geometry.plane import QueryPlane

__all__ = ["TerrainSession", "SessionDelta"]


@dataclass
class SessionDelta:
    """The outcome of one view update.

    Attributes:
        added: records newly entering the approximation (what a server
            would transmit).
        removed: ids leaving the approximation (clients drop these).
        kept: number of records carried over unchanged.
        disk_accesses: physical reads the update cost the server.
        bytes_added: on-wire size of ``added`` (DM record encoding).
    """

    added: list[DMNodeRecord] = field(default_factory=list)
    removed: list[int] = field(default_factory=list)
    kept: int = 0
    disk_accesses: int = 0
    bytes_added: int = 0

    @property
    def churn(self) -> float:
        """Fraction of the new view that had to be transmitted."""
        total = len(self.added) + self.kept
        return len(self.added) / total if total else 0.0


class TerrainSession:
    """A stateful client view over a Direct Mesh store."""

    def __init__(self, store: "DirectMeshStore") -> None:
        self._store = store
        self._active: dict[int, DMNodeRecord] = {}
        self._updates = 0

    # -- state ------------------------------------------------------------

    @property
    def active_ids(self) -> set[int]:
        """Ids currently in the client's mesh."""
        return set(self._active)

    @property
    def update_count(self) -> int:
        """Number of updates applied."""
        return self._updates

    def mesh(self) -> tuple[set[tuple[int, int]], list[tuple[int, int, int]]]:
        """The client's current ``(edges, triangles)``."""
        edges = mesh_edges(self._active)
        return edges, mesh_triangles(self._active, edges)

    # -- updates ------------------------------------------------------------

    def update(
        self, view: "Rect | QueryPlane", lod: float | None = None
    ) -> SessionDelta:
        """Move the session to a new view and return the delta.

        Args:
            view: a query plane / radial field (viewpoint-dependent),
                or a :class:`~repro.geometry.primitives.Rect` ROI
                combined with ``lod`` (viewpoint-independent).
            lod: the uniform LOD when ``view`` is a Rect.
        """
        database = self._store.database
        database.begin_measured_query()
        result = self._evaluate(view, lod)
        disk_accesses = database.disk_accesses
        return self._apply(result, disk_accesses)

    def _evaluate(
        self, view: "Rect | QueryPlane", lod: float | None
    ) -> DMQueryResult:
        if isinstance(view, Rect):
            if lod is None:
                raise QueryError("uniform view updates need a lod value")
            return self._store.uniform_query(view, lod)
        if hasattr(view, "required_lod"):
            return self._store.multi_base_query(view)
        raise QueryError(
            f"unsupported view type {type(view).__name__}; pass a Rect "
            "or an object with required_lod()"
        )

    def _apply(
        self, result: DMQueryResult, disk_accesses: int
    ) -> SessionDelta:
        new_ids = set(result.nodes)
        old_ids = set(self._active)
        delta = SessionDelta(disk_accesses=disk_accesses)
        for node_id in sorted(new_ids - old_ids):
            record = result.nodes[node_id]
            delta.added.append(record)
            delta.bytes_added += dm_record_size(len(record.connections))
        delta.removed = sorted(old_ids - new_ids)
        delta.kept = len(new_ids & old_ids)
        self._active = dict(result.nodes)
        self._updates += 1
        return delta

    def reset(self) -> None:
        """Drop the client state (e.g. teleporting the camera)."""
        self._active.clear()
