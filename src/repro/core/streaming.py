"""Progressive terrain streaming sessions over a Direct Mesh store.

The paper's introduction motivates MTMs with interactive walkthroughs
on "ordinary desktops or wireless devices and Internet applications":
a client keeps a terrain mesh for its current view and, as the view
moves, wants *deltas* — which points entered the approximation, which
left — rather than full result sets.

Two layers provide that:

* :class:`TerrainSession` — the in-process helper.  Each
  :meth:`~TerrainSession.update` evaluates the new view directly
  against the store's query processors, diffs it against the active
  set, and returns a :class:`SessionDelta` with added records, removed
  ids, and transfer-size accounting.
* :class:`EngineSession` / :class:`SessionManager` — the transmission
  subsystem.  Updates are routed through
  :meth:`~repro.core.engine.QueryEngine.submit`, so sessions compose
  with the semantic cache, fault retries, deadlines, and
  :class:`~repro.core.engine.CostGovernor` admission (tenant-tagged —
  session queries drain the same token buckets as everything else).
  Each update is encoded as a versioned delta frame
  (:mod:`repro.core.wire`) a stateless
  :class:`~repro.core.wire.ClientMesh` splices without any
  server-side topology bookkeeping — the property that makes DM suit
  thin clients.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.query import DMQueryResult
from repro.core.reconstruct import mesh_edges, mesh_triangles
from repro.core.wire import (
    FLAG_DEGRADED,
    FLAG_KEYFRAME,
    DeltaFrame,
    encode_frame,
)
from repro.errors import QueryError, SessionError
from repro.obs.lockwatch import watched_lock
from repro.geometry.primitives import Rect
from repro.storage.record import DMNodeRecord, dm_record_size

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.direct_mesh import DirectMeshStore
    from repro.core.engine import EngineRequest, QueryEngine, QueryOutcome
    from repro.geometry.plane import QueryPlane

__all__ = [
    "TerrainSession",
    "SessionDelta",
    "FrameResult",
    "EngineSession",
    "SessionManager",
]


@dataclass
class SessionDelta:
    """The outcome of one view update.

    Attributes:
        added: records newly entering the approximation (what a server
            would transmit).
        removed: ids leaving the approximation (clients drop these).
        kept: number of records carried over unchanged.
        disk_accesses: physical reads the update cost the server.
        bytes_added: on-wire size of ``added`` (DM record encoding).
    """

    added: list[DMNodeRecord] = field(default_factory=list)
    removed: list[int] = field(default_factory=list)
    kept: int = 0
    disk_accesses: int = 0
    bytes_added: int = 0

    @property
    def churn(self) -> float:
        """Fraction of the new view that had to be transmitted."""
        total = len(self.added) + self.kept
        return len(self.added) / total if total else 0.0


def diff_active(
    active: dict[int, DMNodeRecord],
    result: DMQueryResult,
    disk_accesses: int = 0,
) -> SessionDelta:
    """Diff a fresh query result against a session's active set."""
    new_ids = set(result.nodes)
    old_ids = set(active)
    delta = SessionDelta(disk_accesses=disk_accesses)
    for node_id in sorted(new_ids - old_ids):
        record = result.nodes[node_id]
        delta.added.append(record)
        delta.bytes_added += dm_record_size(len(record.connections))
    delta.removed = sorted(old_ids - new_ids)
    delta.kept = len(new_ids & old_ids)
    return delta


class TerrainSession:
    """A stateful client view over a Direct Mesh store."""

    def __init__(self, store: "DirectMeshStore") -> None:
        self._store = store
        self._active: dict[int, DMNodeRecord] = {}
        self._updates = 0

    # -- state ------------------------------------------------------------

    @property
    def active_ids(self) -> set[int]:
        """Ids currently in the client's mesh."""
        return set(self._active)

    @property
    def update_count(self) -> int:
        """Number of updates applied."""
        return self._updates

    def mesh(self) -> tuple[set[tuple[int, int]], list[tuple[int, int, int]]]:
        """The client's current ``(edges, triangles)``."""
        edges = mesh_edges(self._active)
        return edges, mesh_triangles(self._active, edges)

    # -- updates ------------------------------------------------------------

    def update(
        self, view: "Rect | QueryPlane", lod: float | None = None
    ) -> SessionDelta:
        """Move the session to a new view and return the delta.

        Args:
            view: a query plane / radial field (viewpoint-dependent),
                or a :class:`~repro.geometry.primitives.Rect` ROI
                combined with ``lod`` (viewpoint-independent).
            lod: the uniform LOD when ``view`` is a Rect.

        A failed evaluation (bad view type, query error) leaves the
        session state — active set and update count — untouched, and
        its I/O accounting is scoped by a per-thread probe, so a
        raise cannot misattribute disk accesses to the next update
        (the ISSUE 7 bracket bug: ``begin_measured_query`` reset the
        *global* counters and an exception abandoned the bracket).
        """
        database = self._store.database
        # Cold-cache measurement methodology: every update pays its own
        # physical reads, as the original global bracket did.
        database.flush()
        with database.stats.attribute() as probe:
            result = self._evaluate(view, lod)
        return self._apply(result, probe.physical_reads)

    def _evaluate(
        self, view: "Rect | QueryPlane", lod: float | None
    ) -> DMQueryResult:
        if isinstance(view, Rect):
            if lod is None:
                raise QueryError("uniform view updates need a lod value")
            return self._store.uniform_query(view, lod)
        if hasattr(view, "required_lod"):
            return self._store.multi_base_query(view)
        raise QueryError(
            f"unsupported view type {type(view).__name__}; pass a Rect "
            "or an object with required_lod()"
        )

    def _apply(
        self, result: DMQueryResult, disk_accesses: int
    ) -> SessionDelta:
        delta = diff_active(self._active, result, disk_accesses)
        self._active = dict(result.nodes)
        self._updates += 1
        return delta

    def reset(self) -> None:
        """Drop the client state (e.g. teleporting the camera)."""
        self._active.clear()


# -- transmission over the engine -------------------------------------------


@dataclass
class FrameResult:
    """One engine-session update: the wire frame plus its provenance.

    ``payload`` is what goes on the wire; ``frame`` is its decoded
    form (identical to what the client will see); ``delta`` carries
    the diff accounting; ``outcome`` is the engine's verdict with
    per-query metrics, degraded/shed flags, and attempt counts.
    """

    payload: bytes
    frame: DeltaFrame
    delta: SessionDelta
    outcome: "QueryOutcome"


class EngineSession:
    """One client's delta-transmission stream over a query engine.

    Every :meth:`update` submits the request through
    :meth:`QueryEngine.submit` under the session's tenant — admission
    control, retries, deadline degradation, and the semantic cache all
    apply — then diffs the result against the session's active set and
    encodes the delta as a wire frame.  The first frame (and any
    :meth:`resync`) is a keyframe; degraded or shed answers produce
    valid frames flagged ``FLAG_DEGRADED``.

    A failed update (the outcome carries an error) raises it and
    leaves the session state untouched, so the client's mesh and the
    server's view of it cannot drift.

    When a terrain patch commits over the session's view
    (:meth:`mark_stale`, driven by
    :meth:`QueryEngine.install_store`), the next :meth:`update` is
    forced to a keyframe: the client's spliced mesh mixes pre-patch
    records with a post-patch answer otherwise, and no incremental
    delta can reconcile node ids across epochs.

    Not thread-safe for updates: a session is one client's ordered
    stream (:meth:`mark_stale` alone may be called from any thread).
    Use one :class:`EngineSession` per client; the engine underneath
    is the concurrency layer.
    """

    def __init__(
        self,
        engine: "QueryEngine",
        session_id: str,
        tenant: str = "default",
        compress: bool = True,
    ) -> None:
        self._engine = engine
        self._session_id = session_id
        self._tenant = tenant
        self._compress = compress
        self._active: dict[int, DMNodeRecord] = {}
        self._seq = 0
        self._bytes_sent = 0
        self._stale = threading.Event()
        self._last_roi: "Rect | None" = None

    # -- state ------------------------------------------------------------

    @property
    def session_id(self) -> str:
        """The manager-scoped session identifier."""
        return self._session_id

    @property
    def tenant(self) -> str:
        """The tenant whose token bucket this session drains."""
        return self._tenant

    @property
    def active_ids(self) -> set[int]:
        """Ids in the server's view of the client mesh."""
        return set(self._active)

    @property
    def next_seq(self) -> int:
        """Sequence number the next frame will carry."""
        return self._seq

    @property
    def bytes_sent(self) -> int:
        """Total wire bytes encoded by this session."""
        return self._bytes_sent

    @property
    def stale(self) -> bool:
        """Whether the next update is forced to a keyframe."""
        return self._stale.is_set()

    # -- mutation ----------------------------------------------------------

    def mark_stale(self, region: "Rect | None" = None) -> None:
        """Force the next :meth:`update` to emit a keyframe.

        Called when a terrain patch commits.  ``region`` is the
        patched extent: a session whose last view does not overlap it
        keeps streaming plain deltas (its records are untouched by
        the patch).  ``None`` marks unconditionally, as does an
        unknown last view — staleness must over-approximate.

        Safe from any thread; the keyframe itself is emitted on the
        session's own (single-client) update path.
        """
        if region is not None and self._last_roi is not None:
            if not self._last_roi.intersects(region):
                return
        self._stale.set()

    # -- updates ----------------------------------------------------------

    @staticmethod
    def _request_roi(request: "EngineRequest") -> "Rect | None":
        """The request's ground-plane footprint, if it exposes one."""
        roi = getattr(request, "roi", None)
        if isinstance(roi, Rect):
            return roi
        plane = getattr(request, "plane", None)
        roi = getattr(plane, "roi", None)
        return roi if isinstance(roi, Rect) else None

    def update(self, request: "EngineRequest") -> FrameResult:
        """Serve one view update as a wire frame.

        Raises the outcome's error (deadline, shed-unservable, I/O)
        without touching session state; the caller can retry or
        :meth:`resync`.
        """
        registry = self._engine.registry
        outcome = self._engine.submit(request, tenant=self._tenant).result()
        if outcome.error is not None or outcome.result is None:
            registry.counter("session.errors").inc()
            error = outcome.error or QueryError("engine returned no result")
            raise error
        delta = diff_active(
            self._active, outcome.result, outcome.metrics.pages_read
        )
        stale = self._stale.is_set()
        keyframe = self._seq == 0 or stale
        flags = FLAG_KEYFRAME if keyframe else 0
        if outcome.degraded:
            flags |= FLAG_DEGRADED
        if keyframe:
            # Post-patch node ids are a different epoch's namespace: a
            # delta spliced over pre-patch records would silently mix
            # snapshots, so ship the whole new view instead.
            nodes = outcome.result.nodes
            frame = DeltaFrame(
                self._seq,
                tuple(nodes[node_id] for node_id in sorted(nodes)),
                (),
                flags,
            )
        else:
            frame = DeltaFrame(
                self._seq, tuple(delta.added), tuple(delta.removed), flags
            )
        payload = encode_frame(frame, compress=self._compress)
        self._active = dict(outcome.result.nodes)
        self._last_roi = self._request_roi(request)
        if stale:
            self._stale.clear()
            registry.counter("session.patch_resyncs").inc()
        self._seq += 1
        self._bytes_sent += len(payload)
        registry.counter("session.updates").inc()
        registry.counter("session.added").inc(len(delta.added))
        registry.counter("session.removed").inc(len(delta.removed))
        registry.counter("session.bytes_wire").inc(len(payload))
        registry.histogram("session.frame_bytes").observe(len(payload))
        registry.histogram("session.churn").observe(delta.churn)
        return FrameResult(payload, frame, delta, outcome)

    def resync(self) -> bytes:
        """A keyframe of the current active set (no query).

        For clients that lost frames: a keyframe is accepted by
        :class:`~repro.core.wire.ClientMesh` at any sequence number
        and replaces its mesh outright.
        """
        frame = DeltaFrame(
            self._seq,
            tuple(
                self._active[node_id] for node_id in sorted(self._active)
            ),
            (),
            FLAG_KEYFRAME,
        )
        payload = encode_frame(frame, compress=self._compress)
        self._seq += 1
        self._bytes_sent += len(payload)
        registry = self._engine.registry
        registry.counter("session.resyncs").inc()
        registry.counter("session.bytes_wire").inc(len(payload))
        return payload


class SessionManager:
    """Tracks the open delta sessions of one :class:`QueryEngine`.

    Thread-safe: ``open``/``close``/``get`` may be called from any
    serving thread.  The sessions themselves are single-client
    streams (see :class:`EngineSession`).
    """

    def __init__(self, engine: "QueryEngine") -> None:
        self._engine = engine
        self._lock = watched_lock("SessionManager._lock")
        self._sessions: dict[str, EngineSession] = {}
        self._opened = 0

    def open(
        self,
        session_id: str | None = None,
        tenant: str = "default",
        compress: bool = True,
    ) -> EngineSession:
        """Open a new session (auto-named ``s-<n>`` when unnamed)."""
        with self._lock:
            if session_id is None:
                session_id = f"s-{self._opened}"
            if session_id in self._sessions:
                raise SessionError(
                    "session id already open", session_id=session_id
                )
            session = EngineSession(
                self._engine, session_id, tenant, compress
            )
            self._sessions[session_id] = session
            self._opened += 1
            active = len(self._sessions)
        self._engine.registry.gauge("session.active").set(active)
        return session

    def get(self, session_id: str) -> EngineSession:
        """The open session called ``session_id``."""
        with self._lock:
            session = self._sessions.get(session_id)
        if session is None:
            raise SessionError("unknown session id", session_id=session_id)
        return session

    def close(self, session_id: str) -> None:
        """Close a session (idempotent for unknown ids is an error)."""
        with self._lock:
            if self._sessions.pop(session_id, None) is None:
                raise SessionError(
                    "unknown session id", session_id=session_id
                )
            active = len(self._sessions)
        self._engine.registry.gauge("session.active").set(active)

    def mark_stale(self, region: "Rect | None" = None) -> None:
        """Mark every session overlapping ``region`` stale.

        Called by :meth:`QueryEngine.install_store` when a patch
        commits: each affected session's next frame is forced to a
        keyframe (see :meth:`EngineSession.mark_stale`).  ``None``
        marks every open session.
        """
        with self._lock:
            sessions = list(self._sessions.values())
        for session in sessions:
            session.mark_stale(region)

    def ids(self) -> list[str]:
        """The open session ids, sorted."""
        with self._lock:
            return sorted(self._sessions)

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)
