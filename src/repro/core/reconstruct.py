"""Mesh reconstruction from retrieved Direct Mesh nodes.

Direct Mesh's defining property (paper Section 4) is that a terrain
approximation can be rebuilt from a *set of points* without fetching
their ancestors: every retrieved node carries its similar-LOD
connection-point list, so

* the approximation's **edges** are exactly the connection pairs whose
  two endpoints are both in the result set, and
* **triangles** fall out of the planar embedding: around each node,
  sort its result-set neighbours by angle; each consecutive pair that
  is itself connected closes a triangle.

The module also implements the *refinement* steps (3)-(4) of the
paper's Algorithm 1 (``SingleBase``): build the mesh on the top plane,
then split nodes top-down until the query plane's LOD is met — used
both as the executable form of the algorithm and to cross-check the
set-filter semantics in tests.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field

import numpy as np

from repro.errors import QueryError
from repro.geometry.plane import QueryPlane
from repro.storage.record import DMNodeRecord

__all__ = [
    "mesh_edges",
    "mesh_edges_scalar",
    "mesh_edges_np",
    "mesh_triangles",
    "RefinementResult",
    "refine_to_plane",
    "resolve_overlaps",
]

#: Below this many nodes the scalar edge extraction wins (array setup
#: costs more than the loop it replaces).
_EDGES_NP_MIN_NODES = 64


def mesh_edges(nodes: dict[int, DMNodeRecord]) -> set[tuple[int, int]]:
    """Edges of the approximation formed by ``nodes``.

    A pair is an edge iff each endpoint appears in the other's
    similar-LOD connection list and both are present.  Large results
    go through the vectorized kernel (:func:`mesh_edges_np`); tiny
    ones stay on the scalar path, which is the reference oracle either
    way.
    """
    if len(nodes) >= _EDGES_NP_MIN_NODES:
        return mesh_edges_np(nodes)
    return mesh_edges_scalar(nodes)


def mesh_edges_scalar(
    nodes: dict[int, DMNodeRecord]
) -> set[tuple[int, int]]:
    """Scalar reference implementation of :func:`mesh_edges`."""
    edges: set[tuple[int, int]] = set()
    for node_id, record in nodes.items():
        for other in record.connections:
            if other in nodes:
                edges.add((node_id, other) if node_id < other else (other, node_id))
    return edges


def mesh_edges_np(nodes: dict[int, DMNodeRecord]) -> set[tuple[int, int]]:
    """Vectorized :func:`mesh_edges`: one membership test and one
    unique-pairs pass over the flattened connection lists."""
    if not nodes:
        return set()
    ids = np.fromiter(nodes.keys(), np.int64, len(nodes))
    counts = np.fromiter(
        (len(rec.connections) for rec in nodes.values()), np.int64, len(nodes)
    )
    total = int(counts.sum())
    if total == 0:
        return set()
    src = np.repeat(ids, counts)
    dst = np.fromiter(
        itertools.chain.from_iterable(
            rec.connections for rec in nodes.values()
        ),
        np.int64,
        total,
    )
    present = np.isin(dst, ids)
    src, dst = src[present], dst[present]
    if src.size == 0:
        return set()
    pairs = np.unique(
        np.stack((np.minimum(src, dst), np.maximum(src, dst)), axis=1),
        axis=0,
    )
    return set(map(tuple, pairs.tolist()))


def mesh_triangles(
    nodes: dict[int, DMNodeRecord],
    edges: set[tuple[int, int]] | None = None,
) -> list[tuple[int, int, int]]:
    """Triangles of the approximation formed by ``nodes``.

    For each node, neighbours are sorted counter-clockwise; every
    consecutive neighbour pair that shares an edge closes a triangle.
    Each interior triangle is found three times and deduplicated.
    """
    if edges is None:
        edges = mesh_edges(nodes)
    neighbor_map: dict[int, list[int]] = {nid: [] for nid in nodes}
    for a, b in edges:
        neighbor_map[a].append(b)
        neighbor_map[b].append(a)
    triangles: set[tuple[int, int, int]] = set()
    for nid, neighbors in neighbor_map.items():
        if len(neighbors) < 2:
            continue
        origin = nodes[nid]
        ordered = sorted(
            neighbors,
            key=lambda other: math.atan2(
                nodes[other].y - origin.y, nodes[other].x - origin.x
            ),
        )
        count = len(ordered)
        for i in range(count):
            a = ordered[i]
            b = ordered[(i + 1) % count]
            if count == 2 and i == 1:
                break  # Avoid emitting the same wedge twice.
            key = (a, b) if a < b else (b, a)
            if key in edges:
                tri = tuple(sorted((nid, a, b)))
                triangles.add(tri)  # type: ignore[arg-type]
    return sorted(triangles)


@dataclass
class RefinementResult:
    """Outcome of running Algorithm 1's refinement steps.

    Attributes:
        active: ids forming the refined mesh.
        splits: number of vertex splits performed (CPU-cost proxy —
            the paper notes DM needs "a smaller amount of refinement").
        missing_children: ids of children that were demanded but not
            present in the retrieved set (should stay empty for
            correctly formed query cubes; boundary nodes whose
            children fall outside the ROI are not demanded).
    """

    active: set[int]
    splits: int = 0
    missing_children: list[int] = field(default_factory=list)


def refine_to_plane(
    records: dict[int, DMNodeRecord],
    plane: QueryPlane,
    start_lod: float | None = None,
) -> RefinementResult:
    """Algorithm 1, steps 3-4: top-plane mesh, then refine downwards.

    Args:
        records: every node retrieved by the query cube, keyed by id.
        plane: the query plane (``required_lod`` drives the splits).
        start_lod: LOD of the top plane (defaults to ``plane.e_max``).

    A node is split while its ``e_low`` exceeds the plane's required
    LOD at the node's own position and both children are available;
    children falling outside the retrieved set are recorded in
    ``missing_children`` (they lie outside the ROI and are dropped,
    clipping the mesh at the ROI boundary like the paper's ``M'``).
    """
    top = plane.e_max if start_lod is None else start_lod
    active: set[int] = {
        nid for nid, rec in records.items() if rec.interval_contains(top)
    }
    if not active and records:
        # The cube's top plane may sit above every retrieved interval
        # when the ROI clips coarse ancestors away; seed with maximal
        # nodes (those whose parent is absent).
        active = {
            nid for nid, rec in records.items() if rec.parent not in records
        }
    result = RefinementResult(active=set())
    stack = list(active)
    while stack:
        nid = stack.pop()
        rec = records[nid]
        required = plane.required_lod(rec.x, rec.y)
        if rec.e_low <= required or rec.is_leaf:
            result.active.add(nid)
            continue
        children = [c for c in (rec.child1, rec.child2) if c in records]
        if len(children) < 2:
            # Children clipped by the ROI: keep what exists.
            result.missing_children.extend(
                c for c in (rec.child1, rec.child2) if c not in records
            )
            stack.extend(children)
            continue
        result.splits += 1
        stack.extend(children)
    return result


def resolve_overlaps(
    records: dict[int, DMNodeRecord]
) -> dict[int, DMNodeRecord]:
    """Drop nodes whose ancestor is also present.

    Under the pointwise viewpoint-dependent semantics a steep query
    plane can qualify both a node and one of its descendants (at their
    respective positions).  Keeping the ancestor yields a consistent
    (slightly coarser) mesh; this helper applies that rule.
    """
    present = set(records)
    kept: dict[int, DMNodeRecord] = {}
    for nid, rec in records.items():
        ancestor = rec.parent
        has_present_ancestor = False
        guard = 0
        while ancestor != -1:
            if ancestor in present:
                has_present_ancestor = True
                break
            parent_rec = records.get(ancestor)
            if parent_rec is None:
                break
            ancestor = parent_rec.parent
            guard += 1
            if guard > len(records):
                raise QueryError("parent chain cycle detected")
        if not has_present_ancestor:
            kept[nid] = rec
    return kept
