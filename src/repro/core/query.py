"""Query results and the DM query algorithms (paper Section 5).

Three processors, all operating on a
:class:`~repro.core.direct_mesh.DirectMeshStore`:

* :func:`uniform_query` — viewpoint-independent ``Q(M, r, e)``: one 3D
  range query with a *query plane* (degenerate box at height ``e``);
* :func:`single_base_query` — Algorithm 1: one query cube
  ``r x [e_min, e_max]``, top-plane mesh, refinement to the plane;
* :func:`multi_base_query` — the cost-model-optimised plan of several
  smaller cubes (Section 5.3), merged and refined identically.

Disk accesses are *not* reset here: callers scope measurements with
``database.begin_measured_query()`` /
``database.stats`` so that query composition stays measurable.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

from repro.core.cost_model import MultiBasePlan
from repro.core.reconstruct import mesh_edges, mesh_triangles
from repro.errors import QueryError
from repro.geometry.plane import QueryPlane
from repro.geometry.primitives import Box3, Rect
from repro.storage.record import DMNodeColumns, DMNodeRecord

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    import numpy as np
    import numpy.typing as npt

    from repro.core.direct_mesh import DirectMeshStore

__all__ = [
    "DMQueryResult",
    "clamp_lod",
    "uniform_query",
    "single_base_query",
    "multi_base_query",
    "filter_uniform",
    "filter_to_plane",
    "filter_uniform_columnar",
    "filter_to_plane_columnar",
]


@dataclass
class DMQueryResult:
    """Result of a Direct Mesh terrain query.

    Attributes:
        nodes: the approximation's nodes, keyed by id.
        retrieved: how many records the range quer(ies) fetched before
            filtering — ``retrieved - len(nodes)`` is the extraneous
            data volume.
        n_range_queries: how many index range queries ran (1 for
            uniform/single-base; the plan size for multi-base).
        plan: the multi-base plan, when one was used.
    """

    nodes: dict[int, DMNodeRecord]
    retrieved: int
    n_range_queries: int = 1
    plan: MultiBasePlan | None = None
    _edges: set[tuple[int, int]] | None = field(default=None, repr=False)
    _edges_lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def __len__(self) -> int:
        return len(self.nodes)

    def edges(self) -> set[tuple[int, int]]:
        """Approximation edges (computed once, cached).

        Result objects are shared across engine worker threads (dedup
        followers reuse the leader's result), so the lazy cache is
        filled compute-then-assign under a lock: every caller sees the
        *same* fully built set, never a partially initialised one.
        """
        cached = self._edges
        if cached is not None:
            return cached
        with self._edges_lock:
            if self._edges is None:
                self._edges = mesh_edges(self.nodes)
            return self._edges

    def triangles(self) -> list[tuple[int, int, int]]:
        """Approximation triangles (angular extraction)."""
        return mesh_triangles(self.nodes, self.edges())

    def points(self) -> list[tuple[float, float, float]]:
        """The approximation's 3D points (arbitrary stable order)."""
        return [
            (rec.x, rec.y, rec.z)
            for _, rec in sorted(self.nodes.items())
        ]

    def vertex_mesh(
        self,
    ) -> tuple[list[tuple[float, float, float]], list[tuple[int, int, int]]]:
        """``(vertices, triangles)`` with dense vertex indices — ready
        for :func:`repro.terrain.io.write_obj`."""
        ids = sorted(self.nodes)
        index = {nid: i for i, nid in enumerate(ids)}
        vertices = [
            (self.nodes[nid].x, self.nodes[nid].y, self.nodes[nid].z)
            for nid in ids
        ]
        triangles = [
            (index[a], index[b], index[c]) for a, b, c in self.triangles()
        ]
        return vertices, triangles


def clamp_lod(e: float, e_cap: float | None) -> float:
    """Clamp a probe height to the store's indexing cap.

    Root records keep the paper's ``[e, inf)`` interval but their
    *indexed* segments top out at ``e_cap``, so an index probe above
    the cap would sail over every segment and return an empty mesh.
    Every query-box construction must route its LOD coordinates
    through this helper (``reprolint`` rule R2 enforces it); the
    per-request *filters* keep using the real, unclamped LOD, which is
    what makes ``lod > e_cap`` return exactly the base mesh.

    ``e_cap=None`` (no cap known) returns ``e`` unchanged.
    """
    if e_cap is None:
        return e
    return min(e, e_cap)


def uniform_query(
    store: "DirectMeshStore", roi: Rect, lod: float
) -> DMQueryResult:
    """Viewpoint-independent query: one range query with a query plane.

    Retrieves exactly the vertical segments crossing height ``lod``
    over ``roi`` and filters to the half-open interval semantics.

    The index probe height is clamped to the store's ``e_cap``: root
    records keep the paper's ``[e, inf)`` interval, but their *indexed*
    segments are capped at ``e_cap``, so a plane above the cap would
    sail over every segment and return an empty mesh.  Probing at
    ``min(lod, e_cap)`` while filtering with the real ``lod`` makes
    any ``lod > e_cap`` return exactly the base mesh.
    """
    if lod < 0:
        raise QueryError(f"LOD must be non-negative, got {lod}")
    probe_e = clamp_lod(lod, store.e_cap)
    plane_box = Box3.from_rect(roi, probe_e, probe_e)
    rids = store.rtree.search(plane_box)
    records = store.read_records(rids)
    nodes = filter_uniform(records, roi, lod)
    return DMQueryResult(nodes=nodes, retrieved=len(records))


def single_base_query(
    store: "DirectMeshStore", plane: QueryPlane
) -> DMQueryResult:
    """Viewpoint-dependent query, Algorithm 1 (single base).

    One query cube ``roi x [e_min, e_max]``; every node whose interval
    contains the plane's required LOD at its own position survives.
    The cube's LOD extent is clamped to ``e_cap`` like
    :func:`uniform_query`'s plane (no indexed segment rises above the
    cap; the plane filter uses the real LOD values).
    """
    cube = Box3.from_rect(
        plane.roi,
        clamp_lod(plane.e_min, store.e_cap),
        clamp_lod(plane.e_max, store.e_cap),
    )
    rids = store.rtree.search(cube)
    records = store.read_records(rids)
    nodes = filter_to_plane(records, plane)
    return DMQueryResult(nodes=nodes, retrieved=len(records))


def multi_base_query(
    store: "DirectMeshStore",
    plane: QueryPlane,
    plan: MultiBasePlan | None = None,
) -> DMQueryResult:
    """Viewpoint-dependent query with the multi-base optimisation.

    The plan (from :meth:`RTreeCostModel.plan_multi_base`) replaces the
    single cube by one smaller cube per strip; results are merged by
    node id (strip-boundary nodes may be fetched twice — that double
    I/O is real and stays visible in the disk-access counts) and
    filtered against the *global* plane, so the strip meshes join
    seamlessly, as the paper argues they must.
    """
    if plan is None:
        plan = store.cost_model.plan_multi_base(plane)
    merged: dict[int, DMNodeRecord] = {}
    retrieved = 0
    for strip in plan.strips:
        cube = Box3.from_rect(
            strip.roi,
            clamp_lod(strip.e_min, store.e_cap),
            clamp_lod(strip.e_max, store.e_cap),
        )
        rids = store.rtree.search(cube)
        records = store.read_records(rids)
        retrieved += len(records)
        for rec in records:
            merged.setdefault(rec.id, rec)
    nodes = filter_to_plane(merged.values(), plane)
    return DMQueryResult(
        nodes=nodes,
        retrieved=retrieved,
        n_range_queries=len(plan.strips),
        plan=plan,
    )


def filter_uniform(
    records: Iterable[DMNodeRecord], roi: Rect, lod: float
) -> dict[int, DMNodeRecord]:
    """The uniform-query predicate: half-open LOD interval over
    ``roi``.  Shared by :func:`uniform_query` and the batched engine so
    both paths return identical approximations."""
    return {
        rec.id: rec
        for rec in records
        if rec.interval_contains(lod) and roi.contains_point(rec.x, rec.y)
    }


def filter_to_plane(
    records: Iterable[DMNodeRecord], plane: QueryPlane
) -> dict[int, DMNodeRecord]:
    """The viewpoint-dependent predicate: each node's interval must
    contain the plane's required LOD at the node's position."""
    roi = plane.roi
    nodes: dict[int, DMNodeRecord] = {}
    for rec in records:
        if not roi.contains_point(rec.x, rec.y):
            continue
        required = plane.required_lod(rec.x, rec.y)
        if rec.interval_contains(required):
            nodes[rec.id] = rec
    return nodes


# -- columnar (vectorized) filters ------------------------------------------
#
# The numpy twins of the two predicates above, operating on a
# :class:`~repro.storage.record.DMNodeColumns` page: the predicate runs
# as one array mask and only surviving rows are materialised into
# records.  Node-id-identical to the scalar filters by construction
# (same comparisons, same float arithmetic); the scalar paths stay as
# the reference oracle for the property tests.


def _roi_mask(
    columns: "DMNodeColumns", roi: Rect
) -> "npt.NDArray[np.bool_]":
    """``roi.contains_point`` over every row, as a boolean mask."""
    x, y = columns.x, columns.y
    return (
        (x >= roi.min_x) & (x <= roi.max_x)
        & (y >= roi.min_y) & (y <= roi.max_y)
    )


def filter_uniform_columnar(
    columns: "DMNodeColumns", roi: Rect, lod: float
) -> dict[int, DMNodeRecord]:
    """Vectorized :func:`filter_uniform` over a columnar page."""
    mask = (
        (columns.e_low <= lod) & (lod < columns.e_high) & _roi_mask(columns, roi)
    )
    return columns.materialize(mask)


def filter_to_plane_columnar(
    columns: "DMNodeColumns", plane: QueryPlane
) -> dict[int, DMNodeRecord]:
    """Vectorized :func:`filter_to_plane` over a columnar page.

    Uses the plane's ``required_lod_batch`` kernel when it has one
    (:class:`~repro.geometry.plane.QueryPlane` and
    :class:`~repro.geometry.plane.RadialLodField` both do); other LOD
    fields fall back to their scalar ``required_lod`` per row.
    """
    import numpy as np

    batch = getattr(plane, "required_lod_batch", None)
    if batch is not None:
        required = batch(columns.x, columns.y)
    else:
        required = np.fromiter(
            (plane.required_lod(x, y) for x, y in zip(columns.x, columns.y)),
            np.float64,
            len(columns),
        )
    mask = (
        (columns.e_low <= required)
        & (required < columns.e_high)
        & _roi_mask(columns, plane.roi)
    )
    return columns.materialize(mask)
