"""Interval-aware semantic result cache for Direct Mesh queries.

The paper's LOD-interval encoding makes a terrain approximation a pure
*set filter* over a 3D range query (Sections 4-5).  That gives cached
results unusually strong semantics: a cube of records fetched for
``roi x [e_lo, e_hi]`` contains **every** record any subsumed query
needs — any record whose vertical segment intersects a box contained
in the cube also intersects the cube — so re-running the (cheap,
vectorized) per-request filter over the cached cube reproduces the
exact answer of a fresh index probe, with zero index or disk I/O.

:class:`SemanticCache` is a byte-budgeted LRU of such cubes, keyed by
``(roi, e_lo, e_hi)`` (a :class:`~repro.geometry.primitives.Box3`):

* **exact hits** — the same query box again — are one dict lookup;
* **subsume hits** scan for any resident cube that contains the query
  box (uniform planes, single-base cubes and multi-base strips all
  qualify against the same cubes);
* **prefetch inflation** (:meth:`inflate`) probes a slightly taller
  cube than asked, so nearby LODs over the same ROI hit next time —
  the cube's extra records are filtered away per request, never seen
  by callers;
* **invalidation** (:meth:`invalidate`) empties the cache; call it
  whenever the underlying store is rebuilt — cached cubes describe a
  snapshot of the store, not the store itself.

Entries hold :class:`~repro.storage.record.DMNodeColumns` pages
(struct-of-arrays), so a hit flows straight into the vectorized
filters without touching per-record objects.  All operations are
thread-safe; the query engine's workers insert concurrently.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

from repro.errors import QueryError
from repro.geometry.primitives import Box3
from repro.obs.lockwatch import watched_lock
from repro.storage.record import DMNodeColumns

__all__ = [
    "SemanticCache",
    "CacheStats",
    "ClusterCache",
    "ClusterCacheStats",
    "DEFAULT_CLUSTER_CACHE_BYTES",
]

#: Fixed per-entry overhead charged against the byte budget (key,
#: OrderedDict node, entry object) so many tiny cubes cannot dodge
#: eviction.
ENTRY_OVERHEAD_BYTES = 512


@dataclass(frozen=True)
class CacheStats:
    """A consistent snapshot of the cache's lifetime counters."""

    hits: int
    misses: int
    subsume_hits: int
    insertions: int
    evictions: int
    invalidations: int
    bytes: int
    entries: int

    @property
    def lookups(self) -> int:
        """Total lookups served."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits per lookup (0.0 when idle)."""
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups


class _Entry:
    __slots__ = ("box", "columns", "nbytes")

    def __init__(self, box: Box3, columns: DMNodeColumns) -> None:
        self.box = box
        self.columns = columns
        self.nbytes = columns.nbytes + ENTRY_OVERHEAD_BYTES


class SemanticCache:
    """Byte-budgeted LRU of query cubes with subsumption lookup.

    Args:
        max_bytes: resident-set budget; entries are evicted LRU-first
            when an insert would exceed it.  An entry larger than the
            whole budget is never admitted.
        prefetch_e: how far :meth:`inflate` grows a probe cube along
            the LOD axis in each direction (0 disables prefetch).
    """

    def __init__(self, max_bytes: int, prefetch_e: float = 0.0) -> None:
        if max_bytes <= 0:
            raise QueryError(f"max_bytes must be positive, got {max_bytes}")
        if prefetch_e < 0:
            raise QueryError(
                f"prefetch_e must be non-negative, got {prefetch_e}"
            )
        self.max_bytes = max_bytes
        self.prefetch_e = prefetch_e
        self._lock = watched_lock("SemanticCache._lock")
        self._entries: OrderedDict[tuple, _Entry] = OrderedDict()
        self._bytes = 0
        self._hits = 0
        self._misses = 0
        self._subsume_hits = 0
        self._insertions = 0
        self._evictions = 0
        self._invalidations = 0

    # -- introspection -----------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def bytes(self) -> int:
        """Resident bytes (payload plus per-entry overhead)."""
        with self._lock:
            return self._bytes

    def stats(self) -> CacheStats:
        """Lifetime counters, read in one critical section."""
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                subsume_hits=self._subsume_hits,
                insertions=self._insertions,
                evictions=self._evictions,
                invalidations=self._invalidations,
                bytes=self._bytes,
                entries=len(self._entries),
            )

    # -- the cache protocol ------------------------------------------------

    def inflate(self, box: Box3, e_cap: float) -> Box3:
        """The probe cube to fetch for a miss on ``box``.

        Grows the LOD extent by ``prefetch_e`` both ways, clamped to
        ``[0, e_cap]`` (nothing is indexed outside that band, so a
        taller probe would only re-fetch air).  With ``prefetch_e=0``
        the box is returned unchanged.
        """
        if self.prefetch_e == 0.0:
            return box
        min_e = max(0.0, box.min_e - self.prefetch_e)
        max_e = max(min_e, min(e_cap, box.max_e + self.prefetch_e))
        if min_e == box.min_e and max_e == box.max_e:
            return box
        return Box3(box.min_x, box.min_y, min_e, box.max_x, box.max_y, max_e)

    def lookup(self, box: Box3) -> DMNodeColumns | None:
        """A cached cube that answers ``box``, or ``None``.

        Exact-key match first (one dict probe), then a subsumption
        scan for any resident cube containing ``box``.  The serving
        entry is marked most-recently-used.
        """
        key = box.as_tuple()
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                for candidate in reversed(self._entries.values()):
                    if candidate.box.contains_box(box):
                        entry = candidate
                        self._subsume_hits += 1
                        break
            if entry is None:
                self._misses += 1
                return None
            self._hits += 1
            self._entries.move_to_end(entry.box.as_tuple())
            return entry.columns

    def insert(self, box: Box3, columns: DMNodeColumns) -> bool:
        """Admit the cube ``box`` with its fetched ``columns``.

        Entries subsumed by ``box`` are dropped (the new cube answers
        everything they could); an entry already subsuming ``box``
        makes the insert a no-op.  Returns True when admitted.
        """
        entry = _Entry(box, columns)
        if entry.nbytes > self.max_bytes:
            return False
        with self._lock:
            for candidate in self._entries.values():
                if candidate.box.contains_box(box):
                    return False
            doomed = [
                key
                for key, candidate in self._entries.items()
                if box.contains_box(candidate.box)
            ]
            for key in doomed:
                self._drop_locked(key)
            self._entries[box.as_tuple()] = entry
            self._bytes += entry.nbytes
            self._insertions += 1
            while self._bytes > self.max_bytes:
                oldest = next(iter(self._entries))
                self._drop_locked(oldest)
                self._evictions += 1
            return True

    def invalidate(self) -> None:
        """Empty the cache (required after a store rebuild).

        Cached cubes are snapshots of the store they were fetched
        from; once the store's records change they can silently serve
        stale approximations, so rebuild paths must call this.
        """
        with self._lock:
            self._entries.clear()
            self._bytes = 0
            self._invalidations += 1

    # -- internals ---------------------------------------------------------

    def _drop_locked(self, key: tuple[float, ...]) -> None:
        # The ``_locked`` suffix is a contract (checked by reprolint
        # rule R1): callers hold ``self._lock``.
        entry = self._entries.pop(key)
        self._bytes -= entry.nbytes


# -- cluster-granular cache --------------------------------------------------

#: Default byte budget of the engine's per-store cluster cache.
DEFAULT_CLUSTER_CACHE_BYTES = 64 * 1024 * 1024


@dataclass(frozen=True)
class ClusterCacheStats:
    """A consistent snapshot of a :class:`ClusterCache`'s counters."""

    hits: int
    misses: int
    insertions: int
    evictions: int
    bytes: int
    entries: int

    @property
    def hit_rate(self) -> float:
        """Hits per lookup (0.0 when idle)."""
        lookups = self.hits + self.misses
        if lookups == 0:
            return 0.0
        return self.hits / lookups


class ClusterCache:
    """Byte-budgeted LRU of *decoded clusters*, keyed by cluster id.

    The cluster fast path's twin of :class:`SemanticCache`, one level
    lower: instead of query cubes it holds whole decoded clusters
    (:class:`~repro.storage.record.DMNodeColumns`), so a hit skips
    both the run's physical read *and* the columnar decode.  Clusters
    are immutable for the life of a store — a cluster id fully
    identifies its content, which is what makes the id a sufficient
    key: any query selecting the cluster reuses the same decoded page
    regardless of its LOD interval, a strictly stronger sharing regime
    than cube subsumption (two disjoint cubes touching the same
    cluster share nothing in the cube cache, everything here).

    Like the semantic cache, entries are dropped wholesale by
    :meth:`invalidate` on store rebuild.  All operations are
    thread-safe; engine workers hit and fill concurrently.
    """

    def __init__(self, max_bytes: int = DEFAULT_CLUSTER_CACHE_BYTES) -> None:
        if max_bytes <= 0:
            raise QueryError(f"max_bytes must be positive, got {max_bytes}")
        self.max_bytes = max_bytes
        self._lock = watched_lock("ClusterCache._lock")
        self._entries: OrderedDict[int, DMNodeColumns] = OrderedDict()
        self._sizes: dict[int, int] = {}
        self._bytes = 0
        self._hits = 0
        self._misses = 0
        self._insertions = 0
        self._evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def bytes(self) -> int:
        """Resident bytes (payload plus per-entry overhead)."""
        with self._lock:
            return self._bytes

    def stats(self) -> ClusterCacheStats:
        """Lifetime counters, read in one critical section."""
        with self._lock:
            return ClusterCacheStats(
                hits=self._hits,
                misses=self._misses,
                insertions=self._insertions,
                evictions=self._evictions,
                bytes=self._bytes,
                entries=len(self._entries),
            )

    def get(self, cluster_id: int) -> DMNodeColumns | None:
        """The decoded cluster, or ``None``; hits become MRU."""
        with self._lock:
            columns = self._entries.get(cluster_id)
            if columns is None:
                self._misses += 1
                return None
            self._hits += 1
            self._entries.move_to_end(cluster_id)
            return columns

    def put(self, cluster_id: int, columns: DMNodeColumns) -> bool:
        """Admit a decoded cluster; returns True when admitted.

        An entry larger than the whole budget is refused; re-inserting
        a resident id refreshes recency without double-charging.
        """
        nbytes = columns.nbytes + ENTRY_OVERHEAD_BYTES
        if nbytes > self.max_bytes:
            return False
        with self._lock:
            if cluster_id in self._entries:
                self._entries.move_to_end(cluster_id)
                return True
            self._entries[cluster_id] = columns
            self._sizes[cluster_id] = nbytes
            self._bytes += nbytes
            self._insertions += 1
            while self._bytes > self.max_bytes:
                oldest, _ = self._entries.popitem(last=False)
                self._bytes -= self._sizes.pop(oldest)
                self._evictions += 1
            return True

    def invalidate(self) -> None:
        """Empty the cache (required after a store rebuild)."""
        with self._lock:
            self._entries.clear()
            self._sizes.clear()
            self._bytes = 0
