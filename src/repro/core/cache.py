"""Interval-aware semantic result cache for Direct Mesh queries.

The paper's LOD-interval encoding makes a terrain approximation a pure
*set filter* over a 3D range query (Sections 4-5).  That gives cached
results unusually strong semantics: a cube of records fetched for
``roi x [e_lo, e_hi]`` contains **every** record any subsumed query
needs — any record whose vertical segment intersects a box contained
in the cube also intersects the cube — so re-running the (cheap,
vectorized) per-request filter over the cached cube reproduces the
exact answer of a fresh index probe, with zero index or disk I/O.

:class:`SemanticCache` is a byte-budgeted LRU of such cubes, keyed by
``(roi, e_lo, e_hi)`` (a :class:`~repro.geometry.primitives.Box3`):

* **exact hits** — the same query box again — are one dict lookup;
* **subsume hits** scan for any resident cube that contains the query
  box (uniform planes, single-base cubes and multi-base strips all
  qualify against the same cubes);
* **prefetch inflation** (:meth:`inflate`) probes a slightly taller
  cube than asked, so nearby LODs over the same ROI hit next time —
  the cube's extra records are filtered away per request, never seen
  by callers;
* **invalidation** (:meth:`invalidate`) empties the cache; call it
  whenever the underlying store is rebuilt — cached cubes describe a
  snapshot of the store, not the store itself.

Entries hold :class:`~repro.storage.record.DMNodeColumns` pages
(struct-of-arrays), so a hit flows straight into the vectorized
filters without touching per-record objects.  All operations are
thread-safe; the query engine's workers insert concurrently.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

from repro.errors import QueryError
from repro.geometry.primitives import Box3, Rect
from repro.obs.lockwatch import watched_lock
from repro.storage.record import DMNodeColumns

__all__ = [
    "SemanticCache",
    "CacheStats",
    "ClusterCache",
    "ClusterCacheStats",
    "DEFAULT_CLUSTER_CACHE_BYTES",
]

#: Fixed per-entry overhead charged against the byte budget (key,
#: OrderedDict node, entry object) so many tiny cubes cannot dodge
#: eviction.
ENTRY_OVERHEAD_BYTES = 512

#: Patch-log capacity of :class:`SemanticCache`.  The log exists to
#: reject inserts computed against a pre-patch snapshot (see
#: :meth:`SemanticCache.begin_epoch`); if more epochs than this are
#: in flight the cache clears itself and resets the log — correct,
#: merely cold.
PATCH_LOG_LIMIT = 64


@dataclass(frozen=True)
class CacheStats:
    """A consistent snapshot of the cache's lifetime counters."""

    hits: int
    misses: int
    subsume_hits: int
    insertions: int
    evictions: int
    invalidations: int
    bytes: int
    entries: int
    region_invalidations: int = 0

    @property
    def lookups(self) -> int:
        """Total lookups served."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits per lookup (0.0 when idle)."""
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups


class _Entry:
    __slots__ = ("box", "columns", "nbytes", "epoch")

    def __init__(
        self, box: Box3, columns: DMNodeColumns, epoch: int = 0
    ) -> None:
        self.box = box
        self.columns = columns
        self.nbytes = columns.nbytes + ENTRY_OVERHEAD_BYTES
        self.epoch = epoch


class SemanticCache:
    """Byte-budgeted LRU of query cubes with subsumption lookup.

    Args:
        max_bytes: resident-set budget; entries are evicted LRU-first
            when an insert would exceed it.  An entry larger than the
            whole budget is never admitted.
        prefetch_e: how far :meth:`inflate` grows a probe cube along
            the LOD axis in each direction (0 disables prefetch).
    """

    def __init__(self, max_bytes: int, prefetch_e: float = 0.0) -> None:
        if max_bytes <= 0:
            raise QueryError(f"max_bytes must be positive, got {max_bytes}")
        if prefetch_e < 0:
            raise QueryError(
                f"prefetch_e must be non-negative, got {prefetch_e}"
            )
        self.max_bytes = max_bytes
        self.prefetch_e = prefetch_e
        self._lock = watched_lock("SemanticCache._lock")
        self._entries: OrderedDict[tuple, _Entry] = OrderedDict()
        self._bytes = 0
        self._hits = 0
        self._misses = 0
        self._subsume_hits = 0
        self._insertions = 0
        self._evictions = 0
        self._invalidations = 0
        self._region_invalidations = 0
        # Committed-patch log: ``(to_epoch, region)`` pairs, newest
        # last.  Insert-time guard against entries computed from a
        # pre-patch snapshot (see ``begin_epoch``).
        self._patch_log: list[tuple[int, Rect | None]] = []

    # -- introspection -----------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def bytes(self) -> int:
        """Resident bytes (payload plus per-entry overhead)."""
        with self._lock:
            return self._bytes

    def stats(self) -> CacheStats:
        """Lifetime counters, read in one critical section."""
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                subsume_hits=self._subsume_hits,
                insertions=self._insertions,
                evictions=self._evictions,
                invalidations=self._invalidations,
                bytes=self._bytes,
                entries=len(self._entries),
                region_invalidations=self._region_invalidations,
            )

    # -- the cache protocol ------------------------------------------------

    def inflate(self, box: Box3, e_cap: float) -> Box3:
        """The probe cube to fetch for a miss on ``box``.

        Grows the LOD extent by ``prefetch_e`` both ways, clamped to
        ``[0, e_cap]`` (nothing is indexed outside that band, so a
        taller probe would only re-fetch air).  With ``prefetch_e=0``
        the box is returned unchanged.
        """
        if self.prefetch_e == 0.0:
            return box
        min_e = max(0.0, box.min_e - self.prefetch_e)
        max_e = max(min_e, min(e_cap, box.max_e + self.prefetch_e))
        if min_e == box.min_e and max_e == box.max_e:
            return box
        return Box3(box.min_x, box.min_y, min_e, box.max_x, box.max_y, max_e)

    def lookup(self, box: Box3, epoch: int = 0) -> DMNodeColumns | None:
        """A cached cube that answers ``box`` at ``epoch``, or ``None``.

        Exact-key match first (one dict probe), then a subsumption
        scan for any resident cube containing ``box``.  The serving
        entry is marked most-recently-used.

        **Epoch validity.**  An entry tagged epoch ``E`` serves every
        reader at epoch ``R >= E``: :meth:`begin_epoch` dropped any
        entry overlapping a patched region, and :meth:`insert` refuses
        entries a later patch already overlapped — so anything still
        resident describes terrain unchanged between ``E`` and ``R``.
        A reader pinned *behind* the entry (``R < E``) is refused: the
        entry may include post-patch records the reader's snapshot
        never held.
        """
        key = box.as_tuple()
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and entry.epoch > epoch:
                entry = None
            if entry is None:
                for candidate in reversed(self._entries.values()):
                    if (
                        candidate.epoch <= epoch
                        and candidate.box.contains_box(box)
                    ):
                        entry = candidate
                        self._subsume_hits += 1
                        break
            if entry is None:
                self._misses += 1
                return None
            self._hits += 1
            self._entries.move_to_end(entry.box.as_tuple())
            return entry.columns

    def insert(
        self, box: Box3, columns: DMNodeColumns, epoch: int = 0
    ) -> bool:
        """Admit the cube ``box`` with its fetched ``columns``.

        Entries subsumed by ``box`` are dropped (the new cube answers
        everything they could); an entry already subsuming ``box``
        makes the insert a no-op.  ``epoch`` is the pinned epoch the
        cube was fetched at; a cube overlapping a patch committed
        *after* that epoch is refused (it describes a superseded
        snapshot — see :meth:`begin_epoch`).  Returns True when
        admitted.
        """
        entry = _Entry(box, columns, epoch)
        if entry.nbytes > self.max_bytes:
            return False
        rect = box.rect
        with self._lock:
            for to_epoch, region in self._patch_log:
                if to_epoch > epoch and (
                    region is None or region.intersects(rect)
                ):
                    return False
            for candidate in self._entries.values():
                if (
                    candidate.epoch <= epoch
                    and candidate.box.contains_box(box)
                ):
                    return False
            doomed = [
                key
                for key, candidate in self._entries.items()
                if box.contains_box(candidate.box)
            ]
            for key in doomed:
                self._drop_locked(key)
            self._entries[box.as_tuple()] = entry
            self._bytes += entry.nbytes
            self._insertions += 1
            while self._bytes > self.max_bytes:
                oldest = next(iter(self._entries))
                self._drop_locked(oldest)
                self._evictions += 1
            return True

    def invalidate(self, region: Rect | None = None) -> None:
        """Drop cached cubes — all of them, or one spatial region.

        With ``region=None`` the cache empties (required after a full
        store rebuild).  With a region, only entries whose cube
        footprint intersects it are dropped: cubes elsewhere describe
        terrain the mutation never touched and keep serving (the
        surgical invalidation live patches rely on).
        """
        with self._lock:
            if region is None:
                self._entries.clear()
                self._bytes = 0
                self._invalidations += 1
                return
            doomed = [
                key
                for key, entry in self._entries.items()
                if entry.box.rect.intersects(region)
            ]
            for key in doomed:
                self._drop_locked(key)
            self._region_invalidations += 1

    def begin_epoch(self, to_epoch: int, region: Rect | None = None) -> None:
        """Tell the cache a patch just committed epoch ``to_epoch``.

        Drops exactly the resident cubes overlapping ``region`` and
        logs ``(to_epoch, region)`` so in-flight inserts computed
        against the pre-patch snapshot are refused when they land
        (without the log, a slow reader pinned to the old epoch could
        re-populate a patched region with stale records *after* the
        drop).  The log is bounded by :data:`PATCH_LOG_LIMIT`; on
        overflow the cache clears wholesale and the log resets — the
        expensive-but-safe degenerate case.
        """
        with self._lock:
            if len(self._patch_log) >= PATCH_LOG_LIMIT:
                self._entries.clear()
                self._bytes = 0
                self._invalidations += 1
                self._patch_log = [(to_epoch, region)]
                return
            self._patch_log.append((to_epoch, region))
            doomed = [
                key
                for key, entry in self._entries.items()
                if region is None or entry.box.rect.intersects(region)
            ]
            for key in doomed:
                self._drop_locked(key)
            self._region_invalidations += 1

    # -- internals ---------------------------------------------------------

    def _drop_locked(self, key: tuple[float, ...]) -> None:
        # The ``_locked`` suffix is a contract (checked by reprolint
        # rule R1): callers hold ``self._lock``.
        entry = self._entries.pop(key)
        self._bytes -= entry.nbytes


# -- cluster-granular cache --------------------------------------------------

#: Default byte budget of the engine's per-store cluster cache.
DEFAULT_CLUSTER_CACHE_BYTES = 64 * 1024 * 1024


@dataclass(frozen=True)
class ClusterCacheStats:
    """A consistent snapshot of a :class:`ClusterCache`'s counters."""

    hits: int
    misses: int
    insertions: int
    evictions: int
    bytes: int
    entries: int
    region_invalidations: int = 0

    @property
    def hit_rate(self) -> float:
        """Hits per lookup (0.0 when idle)."""
        lookups = self.hits + self.misses
        if lookups == 0:
            return 0.0
        return self.hits / lookups


class ClusterCache:
    """Byte-budgeted LRU of *decoded clusters*, keyed by
    ``(epoch, cluster id)``.

    The cluster fast path's twin of :class:`SemanticCache`, one level
    lower: instead of query cubes it holds whole decoded clusters
    (:class:`~repro.storage.record.DMNodeColumns`), so a hit skips
    both the run's physical read *and* the columnar decode.  Clusters
    are immutable for the life of a store *epoch* — but unlike node
    ids, **cluster ids are not stable across epochs** (the Hilbert
    chunking shifts globally when any tile's node count changes), so
    the epoch is part of the key: a reader pinned to epoch ``N`` only
    ever sees clusters decoded from epoch ``N``'s runs.  Any query at
    that epoch selecting the cluster reuses the same decoded page
    regardless of its LOD interval, a strictly stronger sharing regime
    than cube subsumption (two disjoint cubes touching the same
    cluster share nothing in the cube cache, everything here).

    Entries carry the cluster's spatial extent so
    :meth:`invalidate` can drop exactly the clusters a patch region
    overlaps — old-epoch clusters elsewhere keep serving readers still
    pinned behind the patch.  All operations are thread-safe; engine
    workers hit and fill concurrently.
    """

    def __init__(self, max_bytes: int = DEFAULT_CLUSTER_CACHE_BYTES) -> None:
        if max_bytes <= 0:
            raise QueryError(f"max_bytes must be positive, got {max_bytes}")
        self.max_bytes = max_bytes
        self._lock = watched_lock("ClusterCache._lock")
        self._entries: OrderedDict[tuple[int, int], DMNodeColumns] = (
            OrderedDict()
        )
        self._sizes: dict[tuple[int, int], int] = {}
        self._extents: dict[tuple[int, int], Box3 | None] = {}
        self._bytes = 0
        self._hits = 0
        self._misses = 0
        self._insertions = 0
        self._evictions = 0
        self._region_invalidations = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def bytes(self) -> int:
        """Resident bytes (payload plus per-entry overhead)."""
        with self._lock:
            return self._bytes

    def stats(self) -> ClusterCacheStats:
        """Lifetime counters, read in one critical section."""
        with self._lock:
            return ClusterCacheStats(
                hits=self._hits,
                misses=self._misses,
                insertions=self._insertions,
                evictions=self._evictions,
                bytes=self._bytes,
                entries=len(self._entries),
                region_invalidations=self._region_invalidations,
            )

    def get(self, cluster_id: int, epoch: int = 0) -> DMNodeColumns | None:
        """The decoded cluster of one epoch, or ``None``; hits become
        MRU."""
        key = (epoch, cluster_id)
        with self._lock:
            columns = self._entries.get(key)
            if columns is None:
                self._misses += 1
                return None
            self._hits += 1
            self._entries.move_to_end(key)
            return columns

    def put(
        self,
        cluster_id: int,
        columns: DMNodeColumns,
        epoch: int = 0,
        extent: Box3 | None = None,
    ) -> bool:
        """Admit a decoded cluster; returns True when admitted.

        ``extent`` is the cluster's bounding box from its directory
        metadata; an entry admitted without one is treated as
        everywhere by :meth:`invalidate` (dropped by any region).  An
        entry larger than the whole budget is refused; re-inserting a
        resident key refreshes recency without double-charging.
        """
        nbytes = columns.nbytes + ENTRY_OVERHEAD_BYTES
        if nbytes > self.max_bytes:
            return False
        key = (epoch, cluster_id)
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                return True
            self._entries[key] = columns
            self._sizes[key] = nbytes
            self._extents[key] = extent
            self._bytes += nbytes
            self._insertions += 1
            while self._bytes > self.max_bytes:
                oldest, _ = self._entries.popitem(last=False)
                self._bytes -= self._sizes.pop(oldest)
                self._extents.pop(oldest, None)
                self._evictions += 1
            return True

    def invalidate(self, region: Rect | None = None) -> None:
        """Drop decoded clusters — all of them, or one spatial region.

        With ``region=None`` the cache empties (full store rebuild).
        With a region, entries whose extent intersects it — plus any
        admitted without an extent — are dropped across *all* epochs;
        dropping is always safe (the next get re-decodes), and
        non-overlapping clusters of superseded epochs deliberately
        survive to serve readers still pinned behind a patch.
        """
        with self._lock:
            if region is None:
                self._entries.clear()
                self._sizes.clear()
                self._extents.clear()
                self._bytes = 0
                return
            doomed = []
            for key in self._entries:
                extent = self._extents.get(key)
                if extent is None or extent.rect.intersects(region):
                    doomed.append(key)
            for key in doomed:
                self._entries.pop(key)
                self._bytes -= self._sizes.pop(key)
                self._extents.pop(key, None)
            self._region_invalidations += 1
