"""The Direct Mesh store: DM records + 3D R*-tree in a database.

Building a Direct Mesh (paper Section 4) from a normalised progressive
mesh:

1. every node gets its similar-LOD connection-point list
   (:mod:`repro.core.connectivity`);
2. node records (PM tuple + connection list) go into a heap file in
   the STR packing order of their ``(x, y, e)`` segments — a clustered
   primary index, the strongest reading of the paper's "(x, y)
   clustering is preserved as much as possible" for DM's access path
   (the ``abl_clustering`` benchmark quantifies the alternative);
3. each node becomes the vertical segment
   ``<(x, y, e_low), (x, y, e_high)>`` in ``(x, y, e)`` space, indexed
   by a 3D R*-tree;
4. a B+-tree maps node id -> RID for point lookups.

``e_cap`` — index vs record semantics
-------------------------------------

The paper gives root nodes the LOD interval ``[e, inf)``: a root is
part of *every* approximation coarser than its own error.  An R*-tree
cannot index an unbounded segment, so the **index** caps root segments
at ``e_cap = max_lod * 1.05 + 1`` (a finite height just above the
dataset maximum) while the **records** keep infinity.  The two
representations answer different questions and must not be mixed:

* interval membership (``record.interval_contains(lod)``) uses the
  record's real ``[e, inf)`` — correct at any ``lod``;
* index probes must clamp their query height to ``min(lod, e_cap)``,
  because a probe above ``e_cap`` is above every indexed segment and
  returns nothing.

The query processors (:mod:`repro.core.query`) and the engine's
request planners do the clamp; any new access path must too, or
queries with ``lod > e_cap`` silently return an empty mesh instead of
the base mesh.

The store exposes the three query processors of
:mod:`repro.core.query` as methods.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.core.clusters import (
    DEFAULT_CLUSTER_NODES,
    ClusterCostModel,
    ClusterDirectory,
    ClusterSet,
    build_cluster_runs,
)
from repro.core.connectivity import build_connection_lists
from repro.core.cost_model import MultiBasePlan, RTreeCostModel
from repro.core.query import (
    DMQueryResult,
    multi_base_query,
    single_base_query,
    uniform_query,
)
from repro.errors import QueryError, StorageError
from repro.geometry.plane import QueryPlane
from repro.geometry.primitives import Box3, Rect
from repro.index.btree import BPlusTree
from repro.index.rstar import RStarTree, str_order
from repro.mesh.progressive import LOD_INFINITY, ProgressiveMesh
from repro.storage.database import Database
from repro.storage.heapfile import HeapFile
from repro.storage.record import (
    DMNodeColumns,
    DMNodeRecord,
    decode_dm_node,
    decode_dm_nodes_columnar,
    encode_dm_node,
)

__all__ = ["DirectMeshStore", "DMBuildReport"]

_META_FILE = "dm_meta.json"


@dataclass(frozen=True)
class DMBuildReport:
    """Sizes recorded while building a store (storage-overhead bench)."""

    n_nodes: int
    heap_pages: int
    index_pages: int
    btree_pages: int
    total_record_bytes: int
    total_connection_entries: int
    cluster_pages: int = 0

    @property
    def avg_connections(self) -> float:
        """Mean similar-LOD connection-list length."""
        if self.n_nodes == 0:
            return 0.0
        return self.total_connection_entries / self.n_nodes


class DirectMeshStore:
    """Direct Mesh data resident in a :class:`Database`."""

    def __init__(
        self,
        database: Database,
        heap: HeapFile,
        rtree: RStarTree,
        btree: BPlusTree,
        max_lod: float,
        e_cap: float,
        build_report: DMBuildReport | None = None,
        clusters: ClusterSet | None = None,
        prefix: str = "dm",
    ) -> None:
        self.database = database
        self.heap = heap
        self.rtree = rtree
        self.btree = btree
        self.max_lod = max_lod
        self.e_cap = e_cap
        self.build_report = build_report
        #: The segment-name prefix the store's data lives under.  For
        #: live-patched stores this is the *epoch* prefix (e.g.
        #: ``dm@3``), not the logical one — see :mod:`repro.core.mutate`.
        self.prefix = prefix
        #: The v3 cluster section (``None`` for stores built before the
        #: cluster layer — the engine then serves via the per-node
        #: oracle path only).
        self.clusters = clusters
        # Node-extent statistics live in the in-memory catalog (the
        # paper reads them "from the R-tree index"); computing them
        # here keeps measured queries free of catalog I/O.
        self.cost_model = RTreeCostModel(rtree.node_stats())
        #: Admission estimator denominated in cluster-run pages (the
        #: I/O the clustered path actually performs); ``None`` without
        #: a cluster section.
        self.cluster_cost_model = (
            ClusterCostModel(clusters.index) if clusters is not None else None
        )

    # -- construction -------------------------------------------------------

    @classmethod
    def build(
        cls,
        pm: ProgressiveMesh,
        database: Database,
        connections: dict[int, list[int]] | None = None,
        prefix: str = "dm",
        bulk_index: bool = True,
        compress_connections: bool = False,
        clustered: bool = True,
        cluster_nodes: int = DEFAULT_CLUSTER_NODES,
    ) -> "DirectMeshStore":
        """Materialise a Direct Mesh store from a normalised PM.

        Args:
            pm: the progressive mesh (``normalize_lod()`` already run).
            database: target database.
            connections: precomputed connection lists (else computed).
            prefix: segment name prefix (several stores can share a
                database).
            bulk_index: STR-pack the R*-tree (fast, well-packed); set
                false to exercise dynamic R* insertion.
            compress_connections: store connection lists delta+varint
                coded (extension; smaller records, same query results).
            clustered: also materialise the v3 cluster section —
                Hilbert-ordered node clusters as contiguous page runs
                (:mod:`repro.core.clusters`) enabling the engine's
                cluster fast path; ``False`` builds a v2-shaped store.
            cluster_nodes: target cluster size in nodes.
        """
        if not pm.is_normalized:
            raise QueryError("progressive mesh must be normalised")
        if connections is None:
            connections = build_connection_lists(pm)
        return cls.materialize(
            database,
            pm.nodes,
            connections,
            pm.max_lod(),
            prefix=prefix,
            bulk_index=bulk_index,
            compress_connections=compress_connections,
            clustered=clustered,
            cluster_nodes=cluster_nodes,
        )

    @classmethod
    def materialize(
        cls,
        database: Database,
        nodes: list,
        connections: dict[int, list[int]],
        max_lod: float,
        prefix: str = "dm",
        bulk_index: bool = True,
        compress_connections: bool = False,
        clustered: bool = True,
        cluster_nodes: int = DEFAULT_CLUSTER_NODES,
    ) -> "DirectMeshStore":
        """Materialise a store from bare nodes + connection lists.

        The workhorse behind :meth:`build`, split out so the live
        mutation layer (:mod:`repro.core.mutate`) can materialise a
        *forest* — per-tile PM trees merged under globally remapped
        ids — which :class:`~repro.mesh.progressive.ProgressiveMesh`
        would reject (its validation requires positional ids).  The
        nodes must already carry Section-4 normalised ``e``/``e_high``
        values; ``max_lod`` is the maximum over the whole node set.
        """
        e_cap = max_lod * 1.05 + 1.0

        heap = HeapFile(database.segment(f"{prefix}_nodes"))
        rtree = RStarTree(database.segment(f"{prefix}_rtree"))
        btree = BPlusTree(database.segment(f"{prefix}_btree"))

        # Cluster the heap by the 3D index: records are inserted in the
        # STR packing order of their (x, y, e) segments, so each R*-tree
        # leaf's RIDs occupy contiguous pages (a clustered primary
        # index).  This is the strongest "(x, y) clustering preserved"
        # arrangement for DM's access path.
        boxes = []
        for node in nodes:
            e_high = node.e_high if node.e_high != LOD_INFINITY else e_cap
            boxes.append(
                Box3.vertical_segment(node.x, node.y, node.e, e_high)
            )
        ordered = [nodes[i] for i in str_order(boxes)]

        total_bytes = 0
        total_conn = 0
        entries: list[tuple[Box3, int]] = []
        id_to_rid: list[tuple[int, int]] = []
        payloads: list[bytes] = []
        for node in ordered:
            conn = connections.get(node.id, [])
            payload = encode_dm_node(node, conn, compress=compress_connections)
            total_bytes += len(payload)
            total_conn += len(conn)
            rid = heap.insert(payload)
            id_to_rid.append((node.id, rid))
            payloads.append(payload)
            e_high = node.e_high if node.e_high != LOD_INFINITY else e_cap
            entries.append(
                (Box3.vertical_segment(node.x, node.y, node.e, e_high), rid)
            )

        if bulk_index:
            rtree.bulk_load(entries)
        else:
            for box, rid in entries:
                rtree.insert(box, rid)
        btree.bulk_load(sorted(id_to_rid))

        clusters: ClusterSet | None = None
        if clustered:
            directory = build_cluster_runs(
                database, prefix, ordered, payloads, e_cap,
                cluster_nodes=cluster_nodes,
            )
            directory.save(database, prefix)
            clusters = ClusterSet(
                database.segment(directory.segment), directory
            )

        report = DMBuildReport(
            n_nodes=len(nodes),
            heap_pages=heap.n_pages,
            index_pages=database.segment_pages(f"{prefix}_rtree"),
            btree_pages=database.segment_pages(f"{prefix}_btree"),
            total_record_bytes=total_bytes,
            total_connection_entries=total_conn,
            cluster_pages=(
                database.segment_pages(f"{prefix}_cruns") if clustered else 0
            ),
        )
        cls._save_meta(database, prefix, max_lod, e_cap, clustered=clustered)
        database.buffer.flush_dirty()
        return cls(
            database, heap, rtree, btree, max_lod, e_cap, report,
            clusters=clusters, prefix=prefix,
        )

    @classmethod
    def open(cls, database: Database, prefix: str = "dm") -> "DirectMeshStore":
        """Open a previously built store."""
        meta_path = database.path / f"{prefix}_{_META_FILE}"
        if not meta_path.exists():
            raise StorageError(f"no Direct Mesh store at {meta_path}")
        with open(meta_path, "r", encoding="ascii") as f:
            meta = json.load(f)
        heap = HeapFile(database.segment(f"{prefix}_nodes"))
        rtree = RStarTree(database.segment(f"{prefix}_rtree"))
        btree = BPlusTree(database.segment(f"{prefix}_btree"))
        # v2 read compat: stores built before the cluster layer have no
        # directory sidecar and open with clustering unavailable.
        clusters: ClusterSet | None = None
        if ClusterDirectory.exists(database, prefix):
            directory = ClusterDirectory.load(database, prefix)
            clusters = ClusterSet(
                database.segment(directory.segment), directory
            )
        return cls(
            database, heap, rtree, btree, meta["max_lod"], meta["e_cap"],
            clusters=clusters, prefix=prefix,
        )

    @staticmethod
    def _save_meta(
        database: Database,
        prefix: str,
        max_lod: float,
        e_cap: float,
        clustered: bool = False,
    ) -> None:
        # "format" 3 marks the cluster section; readers never require
        # the key (v2 metas predate it) — the directory sidecar is the
        # actual open-time signal.
        meta = {
            "max_lod": max_lod,
            "e_cap": e_cap,
            "format": 3 if clustered else 2,
        }
        meta_path = database.path / f"{prefix}_{_META_FILE}"
        with open(meta_path, "w", encoding="ascii") as f:
            json.dump(meta, f)

    # -- record access ----------------------------------------------------------

    def read_records(self, rids: list[int]) -> list[DMNodeRecord]:
        """Fetch and decode records, page-ordered to minimise I/O."""
        return [decode_dm_node(p) for p in self.heap.read_many(rids)]

    def read_records_columnar(self, rids: list[int]) -> DMNodeColumns:
        """Fetch records into a columnar page (struct-of-arrays).

        Same I/O as :meth:`read_records`; the decode happens in one
        batched pass and the result feeds the vectorized filters and
        the semantic cache instead of per-record objects.
        """
        return decode_dm_nodes_columnar(self.heap.read_many(rids))

    def get_node(self, node_id: int) -> DMNodeRecord | None:
        """Point lookup through the id B+-tree."""
        rid = self.btree.get(node_id)
        if rid is None:
            return None
        return decode_dm_node(self.heap.read(rid))

    # -- queries -------------------------------------------------------------------

    def uniform_query(self, roi: Rect, lod: float) -> DMQueryResult:
        """Viewpoint-independent query (paper Section 5.1)."""
        return uniform_query(self, roi, lod)

    def single_base_query(self, plane: QueryPlane) -> DMQueryResult:
        """Viewpoint-dependent query, Algorithm 1 (Section 5.2)."""
        return single_base_query(self, plane)

    def multi_base_query(
        self, plane: QueryPlane, plan: MultiBasePlan | None = None
    ) -> DMQueryResult:
        """Viewpoint-dependent query, multi-base plan (Section 5.3).

        ``plan`` overrides the cost-model optimiser (used by the
        multi-base ablation to force specific strip counts).
        """
        return multi_base_query(self, plane, plan)
