"""The R-tree I/O cost model and the multi-base optimiser.

Paper Section 5.3: the number of disk accesses of a 3D R-tree range
query ``q`` is estimated as::

    DA(R, q) = sum_i (q_x + w_i) (q_y + h_i) (q_z + d_i)        (1)

over the tree's nodes ``i`` (all sizes normalised to the data space).
Splitting a viewpoint-dependent query's single cube into several
smaller cubes trades extra index descents for less dead volume; two
cubes win when formula (7) is positive, and the best place to split
the top plane is **the middle** (formulas (8)-(9), since
``q_y1 q_z1 + q_y2 q_z2`` is minimised by equal halves).  Applied
recursively this yields the multi-base query plan.

The aggregate node statistics come from
:meth:`repro.index.rstar.RStarTree.node_stats`, i.e. "the size of
R-tree nodes ... can be found from the R-tree index", as the paper
notes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geometry.plane import QueryPlane
from repro.geometry.primitives import Box3
from repro.index.rstar import RTreeNodeStats

__all__ = ["RTreeCostModel", "MultiBasePlan"]

#: Recursion guard: at most 2**_MAX_SPLIT_DEPTH base cubes.
_MAX_SPLIT_DEPTH = 6


@dataclass(frozen=True)
class MultiBasePlan:
    """The optimiser's output: one sub-plane (strip) per range query.

    ``estimated_da`` is the cost-model estimate for the plan;
    ``single_base_da`` the estimate for the unsplit cube, kept for
    reporting the predicted gain.
    """

    strips: list[QueryPlane]
    estimated_da: float
    single_base_da: float

    @property
    def n_queries(self) -> int:
        """Number of range queries the plan issues."""
        return len(self.strips)

    @property
    def predicted_gain(self) -> float:
        """Estimated disk accesses saved versus single-base."""
        return self.single_base_da - self.estimated_da


class RTreeCostModel:
    """Estimates range-query I/O against one R*-tree."""

    def __init__(self, stats: RTreeNodeStats) -> None:
        self._stats = stats

    def estimate(self, query: Box3) -> float:
        """Formula (1) for one query box."""
        return self._stats.estimate_disk_accesses(query)

    def estimate_plane(self, plane: QueryPlane) -> float:
        """Formula (1) for the cube enclosing a query plane."""
        return self.estimate(self.cube_for(plane))

    @staticmethod
    def cube_for(plane: QueryPlane) -> Box3:
        """The single-base query cube of a (sub-)plane."""
        return Box3.from_rect(plane.roi, plane.e_min, plane.e_max)

    # -- multi-base optimisation -------------------------------------------

    def plan_multi_base(
        self, plane: QueryPlane, max_depth: int = _MAX_SPLIT_DEPTH
    ) -> MultiBasePlan:
        """Recursively halve the query plane while formula (7) predicts
        a positive gain.

        Returns the strips in order along the viewing direction.
        """
        single = self.estimate_plane(plane)
        strips = self._split_recursive(plane, max_depth)
        total = sum(self.estimate_plane(s) for s in strips)
        if total >= single:
            # Degenerate data (e.g. flat LOD field): keep single-base.
            return MultiBasePlan([plane], single, single)
        return MultiBasePlan(strips, total, single)

    def _split_recursive(
        self, plane: QueryPlane, depth: int
    ) -> list[QueryPlane]:
        if depth <= 0:
            return [plane]
        whole = self.estimate_plane(plane)
        halves = plane.split_across_direction(2)
        if len(halves) != 2:
            return [plane]
        split_cost = sum(self.estimate_plane(h) for h in halves)
        if split_cost >= whole:
            # Condition (7) fails: splitting no longer pays.
            return [plane]
        result: list[QueryPlane] = []
        for half in halves:
            result.extend(self._split_recursive(half, depth - 1))
        return result

    def gain_curve(
        self, plane: QueryPlane, max_parts: int = 32
    ) -> list[tuple[int, float]]:
        """Estimated DA for 1, 2, 4, ... equal strips (ablation data).

        Used by the multi-base ablation benchmark to show where the
        optimum lies and that the cost decreases then flattens/rises.
        """
        curve: list[tuple[int, float]] = []
        parts = 1
        while parts <= max_parts:
            strips = plane.split_across_direction(parts)
            curve.append(
                (parts, sum(self.estimate_plane(s) for s in strips))
            )
            parts *= 2
        return curve

    def middle_split_advantage(
        self, plane: QueryPlane, fractions: list[float] | None = None
    ) -> list[tuple[float, float]]:
        """Estimated DA of a 2-way split at varying split positions.

        Demonstrates formula (9): the middle split minimises
        ``q_y1 q_z1 + q_y2 q_z2``.  Returns ``(fraction, DA)`` pairs.
        """
        if fractions is None:
            fractions = [0.1, 0.25, 0.5, 0.75, 0.9]
        results: list[tuple[float, float]] = []
        for frac in fractions:
            first, second = _split_at(plane, frac)
            da = self.estimate_plane(first) + self.estimate_plane(second)
            results.append((frac, da))
        return results


def _split_at(plane: QueryPlane, fraction: float) -> tuple[QueryPlane, QueryPlane]:
    """Split a plane's ROI at ``fraction`` along the dominant view axis."""
    from repro.geometry.primitives import Rect

    roi = plane.roi
    dx, dy = plane.direction
    if abs(dy) >= abs(dx):
        cut = roi.min_y + roi.height * fraction
        a = Rect(roi.min_x, roi.min_y, roi.max_x, cut)
        b = Rect(roi.min_x, cut, roi.max_x, roi.max_y)
    else:
        cut = roi.min_x + roi.width * fraction
        a = Rect(roi.min_x, roi.min_y, cut, roi.max_y)
        b = Rect(cut, roi.min_y, roi.max_x, roi.max_y)
    planes = []
    for sub in (a, b):
        lo, hi = plane.lod_range_over(sub)
        planes.append(QueryPlane(sub, lo, hi, plane.direction))
    return planes[0], planes[1]
