"""EXPLAIN for terrain queries: show the plan before running it.

A database system exposes its optimiser's reasoning; this module does
the same for Direct Mesh queries.  :func:`explain` returns a
:class:`QueryExplanation` describing the access path (query plane or
cube(s)), the cost model's per-range-query DA estimates, and — when
asked to execute — the actual counters next to the estimates, so the
model's accuracy is visible per query.

Example::

    >>> print(explain(store, plane).to_text())          # doctest: +SKIP
    viewpoint-dependent query (multi-base)
      strip 1: roi 640x320, e in [0.12, 3.4], est. 18.2 DA
      ...
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.query import clamp_lod
from repro.errors import QueryError
from repro.geometry.plane import QueryPlane
from repro.geometry.primitives import Box3, Rect

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.direct_mesh import DirectMeshStore

__all__ = ["explain", "ClusterView", "QueryExplanation", "RangeStep"]


@dataclass(frozen=True)
class RangeStep:
    """One index range query in a plan."""

    cube: Box3
    estimated_da: float

    def describe(self) -> str:
        """One-line human-readable form."""
        flat = self.cube.depth == 0
        shape = "plane" if flat else "cube"
        return (
            f"{shape} x:[{self.cube.min_x:.0f},{self.cube.max_x:.0f}] "
            f"y:[{self.cube.min_y:.0f},{self.cube.max_y:.0f}] "
            f"e:[{self.cube.min_e:.3g},{self.cube.max_e:.3g}] "
            f"est {self.estimated_da:.1f} DA"
        )


@dataclass
class ClusterView:
    """The cluster fast path's side of a plan.

    The static half (``candidates`` / ``run_pages`` / ``nodes``) comes
    from the in-memory cluster directory: which clusters the probe
    cubes select and what decoding them costs.  The executed half is
    filled by running the query through a fresh
    :class:`~repro.core.engine.QueryEngine` — nodes decoded vs
    retrieved (the overfetch the batched layout trades for sequential
    I/O) and where each cluster came from (decoded-cluster cache hit
    vs physical run read).
    """

    candidates: int
    run_pages: int
    nodes: int
    pages_read: int | None = None
    nodes_decoded: int | None = None
    retrieved: int | None = None
    result_nodes: int | None = None
    decode_hits: int | None = None
    decode_misses: int | None = None

    @property
    def overfetch(self) -> float | None:
        """Nodes decoded per node retrieved (``None`` before execute
        or when nothing was retrieved)."""
        if not self.retrieved or self.nodes_decoded is None:
            return None
        return self.nodes_decoded / self.retrieved

    def lines(self) -> list[str]:
        """The EXPLAIN block's cluster section."""
        out = [
            f"  cluster path: {self.candidates} candidate cluster"
            f"{'' if self.candidates == 1 else 's'}, "
            f"{self.run_pages} run pages, {self.nodes} nodes"
        ]
        if self.nodes_decoded is not None:
            ratio = self.overfetch
            ratio_text = f", overfetch {ratio:.1f}x" if ratio else ""
            out.append(
                f"  executed clustered: {self.pages_read} pages read, "
                f"{self.nodes_decoded} decoded -> {self.retrieved} "
                f"retrieved -> {self.result_nodes} in result{ratio_text}"
            )
            out.append(
                f"  cluster provenance: {self.decode_hits} decoded-cache "
                f"hit{'' if self.decode_hits == 1 else 's'}, "
                f"{self.decode_misses} run read"
                f"{'' if self.decode_misses == 1 else 's'}"
            )
        return out


@dataclass
class QueryExplanation:
    """The plan (and optionally the execution) of one terrain query."""

    kind: str
    steps: list[RangeStep] = field(default_factory=list)
    single_base_estimate: float | None = None
    predicted_gain: float | None = None
    actual_da: int | None = None
    result_nodes: int | None = None
    retrieved: int | None = None
    cluster_view: ClusterView | None = None

    @property
    def estimated_da(self) -> float:
        """Total cost-model estimate across steps."""
        return sum(step.estimated_da for step in self.steps)

    def to_text(self) -> str:
        """A formatted EXPLAIN block."""
        lines = [f"{self.kind} ({len(self.steps)} range quer"
                 f"{'y' if len(self.steps) == 1 else 'ies'})"]
        for index, step in enumerate(self.steps, 1):
            lines.append(f"  step {index}: {step.describe()}")
        lines.append(
            f"  estimated total: {self.estimated_da:.1f} DA "
            f"(formula (1): index node accesses only)"
        )
        if self.predicted_gain is not None and self.predicted_gain > 0:
            lines.append(
                f"  multi-base gain vs single cube: "
                f"{self.predicted_gain:.1f} DA "
                f"(single-base est {self.single_base_estimate:.1f})"
            )
        if self.actual_da is not None:
            lines.append(
                f"  executed: {self.actual_da} DA, "
                f"{self.retrieved} records retrieved, "
                f"{self.result_nodes} in result"
            )
        if self.cluster_view is not None:
            lines.extend(self.cluster_view.lines())
        return "\n".join(lines)


def explain(
    store: "DirectMeshStore",
    query: Rect | QueryPlane,
    lod: float | None = None,
    execute: bool = False,
) -> QueryExplanation:
    """Explain (and optionally run) a terrain query.

    Args:
        store: a :class:`~repro.core.direct_mesh.DirectMeshStore`.
        query: a :class:`~repro.geometry.primitives.Rect` (with
            ``lod``) for a viewpoint-independent query, or an LOD
            field (QueryPlane / RadialLodField) for a
            viewpoint-dependent one.
        lod: the LOD for Rect queries.
        execute: also run the query cold and attach actual counters.
    """
    model = store.cost_model
    if isinstance(query, Rect):
        if lod is None:
            raise QueryError("explain of a Rect query needs a lod value")
        cube = Box3.from_rect(query, lod, lod)
        explanation = QueryExplanation(
            kind="viewpoint-independent query",
            steps=[RangeStep(cube, model.estimate(cube))],
        )
        runner = lambda: store.uniform_query(query, lod)  # noqa: E731
        # Cluster selection sees what the engine probes: the clamped
        # cube (an unclamped lod above e_cap selects nothing).
        probe_e = clamp_lod(lod, store.e_cap)
        probe_cubes = [Box3.from_rect(query, probe_e, probe_e)]
    elif hasattr(query, "required_lod"):
        plan = model.plan_multi_base(query)
        steps = [
            RangeStep(
                Box3.from_rect(strip.roi, strip.e_min, strip.e_max),
                model.estimate_plane(strip),
            )
            for strip in plan.strips
        ]
        explanation = QueryExplanation(
            kind="viewpoint-dependent query (multi-base)"
            if plan.n_queries > 1
            else "viewpoint-dependent query (single-base)",
            steps=steps,
            single_base_estimate=plan.single_base_da,
            predicted_gain=plan.predicted_gain,
        )
        runner = lambda: store.multi_base_query(query, plan=plan)  # noqa: E731
        probe_cubes = [
            Box3.from_rect(
                strip.roi,
                min(strip.e_min, store.e_cap),
                min(strip.e_max, store.e_cap),
            )
            for strip in plan.strips
        ]
    else:
        raise QueryError(
            f"cannot explain query of type {type(query).__name__}"
        )

    clusters = store.clusters
    if clusters is not None:
        cids = sorted(
            {
                cid
                for cube in probe_cubes
                for cid in clusters.index.candidates(cube)
            }
        )
        explanation.cluster_view = ClusterView(
            candidates=len(cids),
            run_pages=sum(clusters.meta(cid).n_pages for cid in cids),
            nodes=sum(clusters.meta(cid).n_nodes for cid in cids),
        )

    if execute:
        store.database.begin_measured_query()
        result = runner()
        explanation.actual_da = store.database.disk_accesses
        explanation.result_nodes = len(result)
        explanation.retrieved = result.retrieved
        if explanation.cluster_view is not None:
            _execute_clustered(store, query, lod, explanation.cluster_view)
    return explanation


def _execute_clustered(
    store: "DirectMeshStore",
    query: Rect | QueryPlane,
    lod: float | None,
    view: ClusterView,
) -> None:
    """Run the query through the cluster fast path and fill ``view``.

    A fresh single-worker engine (so its decoded-cluster cache starts
    cold — the provenance line shows this query's own hits vs run
    reads).  Non-plane LOD fields are left unexecuted: the engine's
    request types cover Rect and QueryPlane queries.
    """
    from repro.core.engine import (
        QueryEngine,
        SingleBaseRequest,
        UniformRequest,
    )
    from repro.obs.metrics import MetricsRegistry

    if isinstance(query, Rect):
        request = UniformRequest(query, lod)
    elif isinstance(query, QueryPlane):
        request = SingleBaseRequest(query)
    else:
        return
    registry = MetricsRegistry()
    with QueryEngine(store, workers=1, registry=registry) as engine:
        outcome = engine.run(request)
    if not outcome.ok or outcome.result is None:
        return
    counters = registry.counters()
    metrics = outcome.metrics
    view.candidates = metrics.clusters_touched
    view.pages_read = metrics.pages_read
    view.nodes_decoded = metrics.nodes_decoded
    view.retrieved = outcome.result.retrieved
    view.result_nodes = len(outcome.result.nodes)
    view.decode_hits = counters.get("cluster.decode_hits", 0)
    view.decode_misses = counters.get("cluster.decode_misses", 0)
