"""EXPLAIN for terrain queries: show the plan before running it.

A database system exposes its optimiser's reasoning; this module does
the same for Direct Mesh queries.  :func:`explain` returns a
:class:`QueryExplanation` describing the access path (query plane or
cube(s)), the cost model's per-range-query DA estimates, and — when
asked to execute — the actual counters next to the estimates, so the
model's accuracy is visible per query.

Example::

    >>> print(explain(store, plane).to_text())          # doctest: +SKIP
    viewpoint-dependent query (multi-base)
      strip 1: roi 640x320, e in [0.12, 3.4], est. 18.2 DA
      ...
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import QueryError
from repro.geometry.plane import QueryPlane
from repro.geometry.primitives import Box3, Rect

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.direct_mesh import DirectMeshStore

__all__ = ["explain", "QueryExplanation", "RangeStep"]


@dataclass(frozen=True)
class RangeStep:
    """One index range query in a plan."""

    cube: Box3
    estimated_da: float

    def describe(self) -> str:
        """One-line human-readable form."""
        flat = self.cube.depth == 0
        shape = "plane" if flat else "cube"
        return (
            f"{shape} x:[{self.cube.min_x:.0f},{self.cube.max_x:.0f}] "
            f"y:[{self.cube.min_y:.0f},{self.cube.max_y:.0f}] "
            f"e:[{self.cube.min_e:.3g},{self.cube.max_e:.3g}] "
            f"est {self.estimated_da:.1f} DA"
        )


@dataclass
class QueryExplanation:
    """The plan (and optionally the execution) of one terrain query."""

    kind: str
    steps: list[RangeStep] = field(default_factory=list)
    single_base_estimate: float | None = None
    predicted_gain: float | None = None
    actual_da: int | None = None
    result_nodes: int | None = None
    retrieved: int | None = None

    @property
    def estimated_da(self) -> float:
        """Total cost-model estimate across steps."""
        return sum(step.estimated_da for step in self.steps)

    def to_text(self) -> str:
        """A formatted EXPLAIN block."""
        lines = [f"{self.kind} ({len(self.steps)} range quer"
                 f"{'y' if len(self.steps) == 1 else 'ies'})"]
        for index, step in enumerate(self.steps, 1):
            lines.append(f"  step {index}: {step.describe()}")
        lines.append(
            f"  estimated total: {self.estimated_da:.1f} DA "
            f"(formula (1): index node accesses only)"
        )
        if self.predicted_gain is not None and self.predicted_gain > 0:
            lines.append(
                f"  multi-base gain vs single cube: "
                f"{self.predicted_gain:.1f} DA "
                f"(single-base est {self.single_base_estimate:.1f})"
            )
        if self.actual_da is not None:
            lines.append(
                f"  executed: {self.actual_da} DA, "
                f"{self.retrieved} records retrieved, "
                f"{self.result_nodes} in result"
            )
        return "\n".join(lines)


def explain(
    store: "DirectMeshStore",
    query: Rect | QueryPlane,
    lod: float | None = None,
    execute: bool = False,
) -> QueryExplanation:
    """Explain (and optionally run) a terrain query.

    Args:
        store: a :class:`~repro.core.direct_mesh.DirectMeshStore`.
        query: a :class:`~repro.geometry.primitives.Rect` (with
            ``lod``) for a viewpoint-independent query, or an LOD
            field (QueryPlane / RadialLodField) for a
            viewpoint-dependent one.
        lod: the LOD for Rect queries.
        execute: also run the query cold and attach actual counters.
    """
    model = store.cost_model
    if isinstance(query, Rect):
        if lod is None:
            raise QueryError("explain of a Rect query needs a lod value")
        cube = Box3.from_rect(query, lod, lod)
        explanation = QueryExplanation(
            kind="viewpoint-independent query",
            steps=[RangeStep(cube, model.estimate(cube))],
        )
        runner = lambda: store.uniform_query(query, lod)  # noqa: E731
    elif hasattr(query, "required_lod"):
        plan = model.plan_multi_base(query)
        steps = [
            RangeStep(
                Box3.from_rect(strip.roi, strip.e_min, strip.e_max),
                model.estimate_plane(strip),
            )
            for strip in plan.strips
        ]
        explanation = QueryExplanation(
            kind="viewpoint-dependent query (multi-base)"
            if plan.n_queries > 1
            else "viewpoint-dependent query (single-base)",
            steps=steps,
            single_base_estimate=plan.single_base_da,
            predicted_gain=plan.predicted_gain,
        )
        runner = lambda: store.multi_base_query(query, plan=plan)  # noqa: E731
    else:
        raise QueryError(
            f"cannot explain query of type {type(query).__name__}"
        )

    if execute:
        store.database.begin_measured_query()
        result = runner()
        explanation.actual_da = store.database.disk_accesses
        explanation.result_nodes = len(result)
        explanation.retrieved = result.retrieved
    return explanation
