"""Integrity verification for Direct Mesh stores (``fsck`` for DM).

Cross-checks the three physical structures that must stay mutually
consistent — the record heap, the 3D R*-tree, and the id B+-tree —
plus the semantic invariants of the Direct Mesh encoding itself
(interval sanity, connection-list symmetry, parent/child links).
Returns a structured report rather than raising, so operators can see
every problem at once; ``raise_on_error`` converts failures into
:class:`~repro.errors.StorageError`.

Used after bulk builds in tests, and exposed as
``python -m repro info --verify``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import StorageError
from repro.storage.record import decode_dm_node

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.direct_mesh import DirectMeshStore

__all__ = ["verify_store", "StoreReport"]


@dataclass
class StoreReport:
    """Outcome of a store verification pass.

    ``problems`` is empty for a healthy store; ``stats`` carries the
    object counts the checks were computed over.
    """

    problems: list[str] = field(default_factory=list)
    stats: dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True when no problems were found."""
        return not self.problems

    def to_text(self) -> str:
        """A printable report."""
        lines = [
            "store verification: " + ("OK" if self.ok else "PROBLEMS FOUND")
        ]
        for key in sorted(self.stats):
            lines.append(f"  {key}: {self.stats[key]}")
        for problem in self.problems[:50]:
            lines.append(f"  !! {problem}")
        if len(self.problems) > 50:
            lines.append(f"  ... and {len(self.problems) - 50} more")
        return "\n".join(lines)


def verify_store(
    store: "DirectMeshStore",
    sample_connections: int = 2000,
    raise_on_error: bool = False,
) -> StoreReport:
    """Verify a :class:`~repro.core.direct_mesh.DirectMeshStore`.

    Checks:

    1. every heap record decodes and its RID appears exactly once in
       the R*-tree with a box matching the record's segment;
    2. the B+-tree maps every node id to the correct RID (and nothing
       else);
    3. interval sanity (`0 <= e_low <= e_high`, roots unbounded);
    4. parent/child links resolve to existing records;
    5. connection-list symmetry over a sample (full check on small
       stores).

    Args:
        store: the store to verify.
        sample_connections: cap on nodes whose connection symmetry is
            cross-checked (each costs a B+-tree lookup per neighbour).
        raise_on_error: raise instead of returning a dirty report.
    """
    report = StoreReport()
    problems = report.problems

    # Pass 1: heap scan.
    records: dict[int, tuple[int, object]] = {}  # id -> (rid, record)
    rid_by_record: dict[int, int] = {}
    for rid, payload in store.heap.scan():
        try:
            record = decode_dm_node(payload)
        except Exception as exc:  # noqa: BLE001 - report, don't crash
            problems.append(f"rid {rid}: undecodable record ({exc})")
            continue
        if record.id in records:
            problems.append(f"duplicate node id {record.id} in heap")
        records[record.id] = (rid, record)
        rid_by_record[rid] = record.id
    report.stats["heap_records"] = len(records)

    # Pass 2: index entries.
    index_rids: dict[int, tuple] = {}
    for box, rid in store.rtree.all_entries():
        if rid in index_rids:
            problems.append(f"rid {rid} appears twice in the R*-tree")
        index_rids[rid] = box
    report.stats["index_entries"] = len(index_rids)

    if set(index_rids) != set(rid_by_record):
        missing = len(set(rid_by_record) - set(index_rids))
        extra = len(set(index_rids) - set(rid_by_record))
        if missing:
            problems.append(f"{missing} heap records missing from the index")
        if extra:
            problems.append(f"{extra} dangling index entries")

    for node_id, (rid, record) in records.items():
        box = index_rids.get(rid)
        if box is None:
            continue
        if box.min_x != record.x or box.min_y != record.y:
            problems.append(f"node {node_id}: index position mismatch")
        if box.min_e != record.e_low:
            problems.append(f"node {node_id}: index e_low mismatch")
        expected_high = (
            store.e_cap if math.isinf(record.e_high) else record.e_high
        )
        if box.max_e != expected_high:
            problems.append(f"node {node_id}: index e_high mismatch")

    # Pass 3: B+-tree.
    btree_count = 0
    for key, rid in store.btree.items():
        btree_count += 1
        entry = records.get(key)
        if entry is None:
            problems.append(f"btree maps unknown id {key}")
        elif entry[0] != rid:
            problems.append(f"btree rid mismatch for id {key}")
    report.stats["btree_entries"] = btree_count
    if btree_count != len(records):
        problems.append(
            f"btree has {btree_count} entries for {len(records)} records"
        )

    # Pass 4: semantic invariants.
    for node_id, (_, record) in records.items():
        if record.e_low < 0:
            problems.append(f"node {node_id}: negative e_low")
        if record.e_high < record.e_low:
            problems.append(f"node {node_id}: inverted interval")
        if record.parent == -1 and not math.isinf(record.e_high):
            problems.append(f"root {node_id}: bounded interval")
        for child in (record.child1, record.child2):
            if child != -1 and child not in records:
                problems.append(f"node {node_id}: missing child {child}")
        if record.parent != -1 and record.parent not in records:
            problems.append(f"node {node_id}: missing parent")

    # Pass 5: connection symmetry (sampled).
    checked = 0
    for node_id, (_, record) in records.items():
        if checked >= sample_connections:
            break
        checked += 1
        for other_id in record.connections:
            other = records.get(other_id)
            if other is None:
                problems.append(
                    f"node {node_id}: connection to missing {other_id}"
                )
            elif node_id not in other[1].connections:
                problems.append(
                    f"asymmetric connection ({node_id}, {other_id})"
                )
    report.stats["connection_checked"] = checked

    if raise_on_error and not report.ok:
        raise StorageError(
            f"store verification failed: {report.problems[0]} "
            f"(+{len(report.problems) - 1} more)"
        )
    return report
