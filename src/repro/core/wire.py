"""Versioned wire format for progressive terrain transmission.

The paper motivates MTMs with walkthroughs on thin clients; ROADMAP
item 2 (after Devillers–Gandoin, *Geometric compression for
progressive transmission*) calls for shipping view *deltas* — not full
result sets — in a compact varint coding.  This module is that wire
layer: a :class:`DeltaFrame` carries the records entering the
approximation and the ids leaving it, :func:`encode_frame` /
:func:`decode_frame` are the codec, and :class:`ClientMesh` is the
pure client that splices frames into a mesh with **no** server-side
state beyond the frame stream itself.

Frame layout (version 1), all integers LEB128 varints unless noted::

    offset  size  field
    0       2     magic  b"DM"
    2       1     version (currently 1)
    3       1     flags   bit 0 = keyframe, bit 1 = degraded
    4       var   seq        frame sequence number (uvarint)
    .       var   n_added    (uvarint)
    .       var   n_removed  (uvarint)
    .       var   added ids  n_added zigzag-delta varints (sorted)
    .       var   payloads   n_added x (uvarint length + DM record)
    .       var   removed ids  n_removed zigzag-delta varints (sorted)
    end-4   4     crc32 (little-endian) over every preceding byte

Id streams are sorted ascending and delta-coded; deltas are wrapped
mod ``2**64`` into signed 64-bit before zigzag, so the stream carries
the full u64 id range (:mod:`repro.storage.varint` documents the
bounds).  Record payloads reuse the self-describing on-disk DM
encoding (:func:`repro.storage.record.decode_dm_node` handles plain
and compressed), each cross-checked against its id stream entry.

Versioning / compatibility rules (also in ``docs/wire_format.md``):
the version byte bumps on any layout change; a decoder rejects frames
with a *newer* version than it knows (no silent misparse) and must
keep decoding every older version it ever shipped.  Flag bits not
listed above are reserved and must be zero in version 1.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Sequence

from repro.core.reconstruct import mesh_edges, mesh_triangles
from repro.errors import RecordError, SessionError
from repro.storage.record import (
    DMNodeRecord,
    decode_dm_node,
    encode_dm_record,
)
from repro.storage.varint import (
    U64_MAX,
    decode_uvarint,
    encode_uvarint,
    unzigzag,
    zigzag,
)

__all__ = [
    "WIRE_MAGIC",
    "WIRE_VERSION",
    "FLAG_KEYFRAME",
    "FLAG_DEGRADED",
    "DeltaFrame",
    "encode_delta_ids",
    "decode_delta_ids",
    "encode_frame",
    "decode_frame",
    "ClientMesh",
]

WIRE_MAGIC = b"DM"
WIRE_VERSION = 1

#: Frame replaces the client's whole mesh (session start or resync).
FLAG_KEYFRAME = 0x01
#: Frame was produced from a degraded (base-mesh) server answer.
FLAG_DEGRADED = 0x02

_KNOWN_FLAGS = FLAG_KEYFRAME | FLAG_DEGRADED
_U64_SPAN = 1 << 64
_CRC_SIZE = 4
_MIN_FRAME = len(WIRE_MAGIC) + 2 + 3 + _CRC_SIZE


def encode_delta_ids(ids: Sequence[int], out: bytearray) -> None:
    """Append sorted ``ids`` as a zigzag-delta varint stream.

    Consecutive deltas are wrapped mod ``2**64`` into the signed
    64-bit range before zigzag, so streams whose ids span the full
    ``[0, 2**64)`` range stay encodable (a plain signed delta between
    u64 extremes would not fit i64).
    """
    previous = 0
    for value in ids:
        if not 0 <= value <= U64_MAX:
            raise RecordError(
                f"id stream values must be in [0, 2**64), got {value}"
            )
        delta = (value - previous) % _U64_SPAN
        if delta >= (1 << 63):
            delta -= _U64_SPAN
        encode_uvarint(zigzag(delta), out)
        previous = value


def decode_delta_ids(
    data: bytes, offset: int, count: int
) -> tuple[list[int], int]:
    """Decode ``count`` zigzag-delta ids; returns ``(ids, offset)``."""
    ids: list[int] = []
    current = 0
    for _ in range(count):
        raw, offset = decode_uvarint(data, offset)
        current = (current + unzigzag(raw)) % _U64_SPAN
        ids.append(current)
    return ids, offset


@dataclass(frozen=True)
class DeltaFrame:
    """One decoded transmission frame.

    ``added`` records are sorted by id; ``removed`` ids are sorted
    ascending.  A *keyframe* replaces the client mesh outright (the
    session opener and the resync path); non-keyframes splice.
    """

    seq: int
    added: tuple[DMNodeRecord, ...]
    removed: tuple[int, ...]
    flags: int = 0

    @property
    def keyframe(self) -> bool:
        """True when this frame replaces the whole client mesh."""
        return bool(self.flags & FLAG_KEYFRAME)

    @property
    def degraded(self) -> bool:
        """True when the server answered from a degraded result."""
        return bool(self.flags & FLAG_DEGRADED)


def encode_frame(frame: DeltaFrame, compress: bool = True) -> bytes:
    """Serialise a frame (``compress`` varint-packs connection lists)."""
    if frame.seq < 0:
        raise RecordError(f"frame seq must be >= 0, got {frame.seq}")
    if frame.flags & ~_KNOWN_FLAGS:
        raise RecordError(
            f"unknown frame flags 0x{frame.flags & ~_KNOWN_FLAGS:x}"
        )
    body = bytearray()
    body += WIRE_MAGIC
    body.append(WIRE_VERSION)
    body.append(frame.flags)
    encode_uvarint(frame.seq, body)
    encode_uvarint(len(frame.added), body)
    encode_uvarint(len(frame.removed), body)
    added = sorted(frame.added, key=lambda record: record.id)
    encode_delta_ids([record.id for record in added], body)
    for record in added:
        payload = encode_dm_record(record, compress=compress)
        encode_uvarint(len(payload), body)
        body += payload
    encode_delta_ids(sorted(frame.removed), body)
    body += zlib.crc32(bytes(body)).to_bytes(_CRC_SIZE, "little")
    return bytes(body)


def decode_frame(data: bytes) -> DeltaFrame:
    """Deserialise one frame, verifying checksum and layout."""
    if len(data) < _MIN_FRAME:
        raise RecordError(
            f"frame is {len(data)} bytes, below minimum {_MIN_FRAME}"
        )
    expected_crc = int.from_bytes(data[-_CRC_SIZE:], "little")
    actual_crc = zlib.crc32(data[:-_CRC_SIZE])
    if expected_crc != actual_crc:
        raise RecordError(
            "frame checksum mismatch",
            expected=expected_crc,
            actual=actual_crc,
        )
    if data[: len(WIRE_MAGIC)] != WIRE_MAGIC:
        raise RecordError("bad frame magic")
    version = data[len(WIRE_MAGIC)]
    if version > WIRE_VERSION:
        raise RecordError(
            "frame version newer than supported",
            version=version,
            supported=WIRE_VERSION,
        )
    if version < 1:
        raise RecordError("bad frame version 0")
    flags = data[len(WIRE_MAGIC) + 1]
    if flags & ~_KNOWN_FLAGS:
        raise RecordError(f"unknown frame flags 0x{flags & ~_KNOWN_FLAGS:x}")
    end = len(data) - _CRC_SIZE
    body = data[:end]
    offset = len(WIRE_MAGIC) + 2
    seq, offset = decode_uvarint(body, offset)
    n_added, offset = decode_uvarint(body, offset)
    n_removed, offset = decode_uvarint(body, offset)
    # Each id costs at least one byte, so counts past the frame size
    # are corrupt; reject before allocating anything count-sized.
    if n_added + n_removed > len(body):
        raise RecordError(
            "frame counts exceed the frame size",
            n_added=n_added,
            n_removed=n_removed,
            frame_bytes=len(body),
        )
    added_ids, offset = decode_delta_ids(body, offset, n_added)
    added: list[DMNodeRecord] = []
    for index in range(n_added):
        length, offset = decode_uvarint(body, offset)
        if offset + length > end:
            raise RecordError(
                "frame record payload overruns the frame",
                index=index,
                length=length,
            )
        record = decode_dm_node(body[offset : offset + length])
        offset += length
        if record.id != added_ids[index]:
            raise RecordError(
                "frame payload id disagrees with its id stream",
                stream_id=added_ids[index],
                payload_id=record.id,
            )
        added.append(record)
    removed, offset = decode_delta_ids(body, offset, n_removed)
    if offset != end:
        raise RecordError(
            f"frame has {end - offset} trailing bytes before the checksum"
        )
    return DeltaFrame(seq, tuple(added), tuple(removed), flags)


class ClientMesh:
    """The thin-client side of a delta session: pure frame splicing.

    Holds only what came over the wire — no store, no index, no query
    processors — which is exactly the paper's thin-client story: DM
    records are self-describing (coordinates + connection list), so
    splicing needs no server round-trip.  Frames must arrive in
    sequence order; a keyframe is accepted at any point and replaces
    the mesh (the resync path).  A failed :meth:`apply` leaves the
    mesh untouched, so a client can request a resync and carry on.

    Not thread-safe: a session is a single client's ordered stream.
    """

    def __init__(self) -> None:
        self._nodes: dict[int, DMNodeRecord] = {}
        self._next_seq = 0
        self._frames = 0
        self._bytes_received = 0

    # -- state -------------------------------------------------------------

    @property
    def active_ids(self) -> set[int]:
        """Ids currently in the client's mesh."""
        return set(self._nodes)

    @property
    def frames_applied(self) -> int:
        """Number of frames spliced so far."""
        return self._frames

    @property
    def bytes_received(self) -> int:
        """Total wire bytes decoded so far."""
        return self._bytes_received

    @property
    def next_seq(self) -> int:
        """The sequence number the next non-keyframe must carry."""
        return self._next_seq

    def __len__(self) -> int:
        return len(self._nodes)

    def node(self, node_id: int) -> DMNodeRecord:
        """The record for ``node_id`` (raises if absent)."""
        record = self._nodes.get(node_id)
        if record is None:
            raise SessionError(
                "node is not in the client mesh", node_id=node_id
            )
        return record

    def records(self) -> dict[int, DMNodeRecord]:
        """A snapshot of the client's records by id."""
        return dict(self._nodes)

    def mesh(self) -> tuple[set[tuple[int, int]], list[tuple[int, int, int]]]:
        """The client's current ``(edges, triangles)``."""
        edges = mesh_edges(self._nodes)
        return edges, mesh_triangles(self._nodes, edges)

    # -- splicing ----------------------------------------------------------

    def apply(self, payload: bytes) -> DeltaFrame:
        """Decode one frame and splice it into the mesh.

        Returns the decoded frame.  Raises
        :class:`~repro.errors.RecordError` for malformed bytes and
        :class:`~repro.errors.SessionError` for protocol violations
        (sequence gap, removing an id the mesh does not hold, adding a
        duplicate); in every failure case the mesh is unchanged.
        """
        frame = decode_frame(payload)
        if frame.keyframe:
            nodes: dict[int, DMNodeRecord] = {}
        else:
            if frame.seq != self._next_seq:
                raise SessionError(
                    "frame out of sequence",
                    expected=self._next_seq,
                    got=frame.seq,
                )
            nodes = dict(self._nodes)
        for node_id in frame.removed:
            if node_id not in nodes:
                raise SessionError(
                    "frame removes an id the client does not hold",
                    node_id=node_id,
                )
            del nodes[node_id]
        for record in frame.added:
            if record.id in nodes:
                raise SessionError(
                    "frame adds an id the client already holds",
                    node_id=record.id,
                )
            nodes[record.id] = record
        self._nodes = nodes
        self._next_seq = frame.seq + 1
        self._frames += 1
        self._bytes_received += len(payload)
        return frame
