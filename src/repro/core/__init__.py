"""The paper's contribution: Direct Mesh.

Public surface:

* :func:`~repro.core.connectivity.build_connection_lists` -- the
  similar-LOD connection-point encoding (paper Section 4);
* :class:`~repro.core.direct_mesh.DirectMeshStore` -- DM records +
  3D R*-tree in a database, with the three query processors;
* :class:`~repro.core.query.DMQueryResult` -- query results with mesh
  reconstruction (edges/triangles) straight from connection lists;
* :class:`~repro.core.cost_model.RTreeCostModel` -- the I/O cost model
  and multi-base optimiser (paper formulas (1)-(9));
* :mod:`repro.core.reconstruct` -- Algorithm 1's refinement steps and
  triangle extraction;
* :class:`~repro.core.engine.QueryEngine` -- concurrent batched query
  execution with per-query metrics (the serving path);
* :class:`~repro.core.cache.SemanticCache` -- interval-aware result
  cache answering subsumed queries with zero index/disk I/O;
* :mod:`repro.core.wire` -- the versioned delta-frame wire format and
  the pure-client :class:`~repro.core.wire.ClientMesh`;
* :class:`~repro.core.streaming.EngineSession` /
  :class:`~repro.core.streaming.SessionManager` -- progressive
  transmission sessions routed through the engine
  (``engine.sessions()``).
"""

from repro.core.cache import CacheStats, SemanticCache
from repro.core.connectivity import (
    build_connection_lists,
    connection_statistics,
    total_connection_counts,
)
from repro.core.cost_model import MultiBasePlan, RTreeCostModel
from repro.core.direct_mesh import DirectMeshStore, DMBuildReport
from repro.core.engine import (
    QueryEngine,
    QueryMetrics,
    QueryOutcome,
    SingleBaseRequest,
    UniformRequest,
)
from repro.core.explain import QueryExplanation, RangeStep, explain
from repro.core.query import (
    DMQueryResult,
    multi_base_query,
    single_base_query,
    uniform_query,
)
from repro.core.reconstruct import (
    RefinementResult,
    mesh_edges,
    mesh_triangles,
    refine_to_plane,
    resolve_overlaps,
)
from repro.core.streaming import (
    EngineSession,
    FrameResult,
    SessionDelta,
    SessionManager,
    TerrainSession,
)
from repro.core.verify_store import StoreReport, verify_store
from repro.core.wire import ClientMesh, DeltaFrame, decode_frame, encode_frame

__all__ = [
    "CacheStats",
    "ClientMesh",
    "DMBuildReport",
    "DMQueryResult",
    "DeltaFrame",
    "EngineSession",
    "FrameResult",
    "SemanticCache",
    "SessionManager",
    "DirectMeshStore",
    "MultiBasePlan",
    "QueryEngine",
    "QueryExplanation",
    "QueryMetrics",
    "QueryOutcome",
    "RangeStep",
    "RTreeCostModel",
    "RefinementResult",
    "SessionDelta",
    "SingleBaseRequest",
    "StoreReport",
    "TerrainSession",
    "UniformRequest",
    "build_connection_lists",
    "connection_statistics",
    "decode_frame",
    "encode_frame",
    "explain",
    "mesh_edges",
    "mesh_triangles",
    "multi_base_query",
    "refine_to_plane",
    "resolve_overlaps",
    "single_base_query",
    "total_connection_counts",
    "uniform_query",
    "verify_store",
]
