"""Disk-backed R*-tree over 3D boxes (Beckmann et al., SIGMOD '90).

This is the "general purpose spatial index" the paper builds Direct
Mesh on: DM nodes become vertical segments in ``(x, y, e)`` space and
are indexed here; 2D use cases (the LOD-R-tree/HDoV base) pass
degenerate boxes with ``min_e == max_e``.

Every tree node occupies one page of a
:class:`~repro.storage.database.Segment`, so index traversal cost is
measured by the same disk-access counters as table access.

Implemented:

* range search (:meth:`RStarTree.search`);
* dynamic insertion with the R* heuristics — ChooseSubtree with
  minimum overlap enlargement at the leaf level, forced reinsert (30%,
  once per level per insert), and the R* split (choose axis by margin
  sum, distribution by overlap);
* STR (sort-tile-recursive) bulk loading, used by the benchmark
  datasets for build speed — packing is the standard practice for
  static data [Kamel & Faloutsos];
* node-geometry statistics feeding the paper's I/O cost model
  (formulas (1)-(2)).

Page 0 of the segment is a metadata page: root page number, tree
height, entry count, and the data-space MBR used for cost-model
normalisation.
"""

from __future__ import annotations

import math
import struct
from dataclasses import dataclass
from typing import Iterable, Protocol, Sequence

from repro.errors import IndexError_, InvariantError
from repro.geometry.primitives import Box3, union_all_boxes
from repro.storage.database import Segment

__all__ = ["RStarTree", "RTreeNodeStats", "SupportsInc"]


class SupportsInc(Protocol):
    """Anything with an ``inc()`` — e.g. a metrics Counter."""

    def inc(self, n: int = 1) -> None: ...


_META = struct.Struct("<4sIHQ6d")
_MAGIC = b"RST1"
_NODE_HEADER = struct.Struct("<BH")
_ENTRY = struct.Struct("<6dQ")

#: Fraction of entries removed by forced reinsert.
_REINSERT_FRACTION = 0.3
#: Minimum node fill fraction.
_MIN_FILL = 0.4


@dataclass(frozen=True)
class RTreeNodeStats:
    """Aggregate node-extent sums for the paper's cost model.

    For nodes ``i`` with extents ``(w_i, h_i, d_i)`` *normalised to the
    data space*, the paper's formula (1) expands into eight terms whose
    coefficients are the sums stored here, so one estimate is O(1).
    """

    n_nodes: int
    sum_w: float
    sum_h: float
    sum_d: float
    sum_wh: float
    sum_wd: float
    sum_hd: float
    sum_whd: float
    data_space: Box3

    def estimate_disk_accesses(self, query: Box3) -> float:
        """``DA(R, q) = sum_i (qx + w_i) (qy + h_i) (qz + d_i)``.

        ``query`` is given in data coordinates and normalised here.
        """
        space = self.data_space
        ex = space.width or 1.0
        ey = space.height or 1.0
        ez = space.depth or 1.0
        qx = query.width / ex
        qy = query.height / ey
        qz = query.depth / ez
        return (
            self.n_nodes * qx * qy * qz
            + qy * qz * self.sum_w
            + qx * qz * self.sum_h
            + qx * qy * self.sum_d
            + qz * self.sum_wh
            + qy * self.sum_wd
            + qx * self.sum_hd
            + self.sum_whd
        )


class RStarTree:
    """A 3D R*-tree stored in one database segment."""

    def __init__(self, segment: Segment) -> None:
        self._segment = segment
        self._capacity = (segment.payload_size - _NODE_HEADER.size) // _ENTRY.size
        self._min_entries = max(2, int(self._capacity * _MIN_FILL))
        if segment.n_pages == 0:
            self._bootstrap()
        else:
            self._load_meta()

    # -- construction -------------------------------------------------------

    def _bootstrap(self) -> None:
        meta_no, _ = self._segment.allocate()
        if meta_no != 0:
            raise IndexError_("meta page must be page 0")
        root_no, root_buf = self._segment.allocate()
        self._write_node(root_no, True, [], buf=root_buf)
        self._root = root_no
        self._height = 1
        self._count = 0
        self._space: Box3 | None = None
        self._save_meta()

    def _load_meta(self) -> None:
        buf = self._segment.fetch(0)
        magic, root, height, count, x0, y0, e0, x1, y1, e1 = _META.unpack_from(
            buf, 0
        )
        if magic != _MAGIC:
            raise IndexError_(f"segment {self._segment.name} is not an R*-tree")
        self._root = root
        self._height = height
        self._count = count
        if count:
            self._space = Box3(x0, y0, e0, x1, y1, e1)
        else:
            self._space = None

    def _save_meta(self) -> None:
        buf = self._segment.fetch(0)
        space = self._space or Box3(0, 0, 0, 0, 0, 0)
        _META.pack_into(
            buf,
            0,
            _MAGIC,
            self._root,
            self._height,
            self._count,
            space.min_x,
            space.min_y,
            space.min_e,
            space.max_x,
            space.max_y,
            space.max_e,
        )
        self._segment.mark_dirty(0)

    # -- node codec -----------------------------------------------------------

    def _read_node(self, page_no: int) -> tuple[bool, list[tuple[Box3, int]]]:
        buf = self._segment.fetch(page_no)
        is_leaf, count = _NODE_HEADER.unpack_from(buf, 0)
        entries: list[tuple[Box3, int]] = []
        offset = _NODE_HEADER.size
        for _ in range(count):
            x0, y0, e0, x1, y1, e1, payload = _ENTRY.unpack_from(buf, offset)
            entries.append((Box3(x0, y0, e0, x1, y1, e1), payload))
            offset += _ENTRY.size
        return bool(is_leaf), entries

    def _write_node(
        self,
        page_no: int,
        is_leaf: bool,
        entries: Sequence[tuple[Box3, int]],
        buf: bytearray | None = None,
    ) -> None:
        if len(entries) > self._capacity:
            raise IndexError_(
                f"node overflow: {len(entries)} > {self._capacity}"
            )
        if buf is None:
            buf = self._segment.fetch(page_no)
        _NODE_HEADER.pack_into(buf, 0, 1 if is_leaf else 0, len(entries))
        offset = _NODE_HEADER.size
        for box, payload in entries:
            _ENTRY.pack_into(
                buf,
                offset,
                box.min_x,
                box.min_y,
                box.min_e,
                box.max_x,
                box.max_y,
                box.max_e,
                payload,
            )
            offset += _ENTRY.size
        self._segment.mark_dirty(page_no)

    # -- properties ---------------------------------------------------------------

    @property
    def capacity(self) -> int:
        """Maximum entries per node (one node per page)."""
        return self._capacity

    @property
    def height(self) -> int:
        """Tree height (1 = root is a leaf)."""
        return self._height

    def __len__(self) -> int:
        return self._count

    @property
    def data_space(self) -> Box3 | None:
        """MBR of everything ever inserted (cost-model normalisation)."""
        return self._space

    # -- search ----------------------------------------------------------------------

    def search(
        self, query: Box3, node_counter: "SupportsInc | None" = None
    ) -> list[int]:
        """Payloads of all leaf entries whose box intersects ``query``.

        ``node_counter`` — any object with an ``inc()`` method, e.g. a
        :class:`repro.obs.metrics.Counter` — receives one increment per
        tree node visited, so callers can report traversal effort
        per query.
        """
        results: list[int] = []
        stack = [(self._root, self._height)]
        while stack:
            page_no, level = stack.pop()
            if node_counter is not None:
                node_counter.inc()
            is_leaf, entries = self._read_node(page_no)
            if is_leaf:
                for box, payload in entries:
                    if box.intersects(query):
                        results.append(payload)
            else:
                for box, child in entries:
                    if box.intersects(query):
                        stack.append((child, level - 1))
        return results

    def search_with_boxes(self, query: Box3) -> list[tuple[Box3, int]]:
        """Like :meth:`search` but returns ``(box, payload)`` pairs."""
        results: list[tuple[Box3, int]] = []
        stack = [self._root]
        while stack:
            page_no = stack.pop()
            is_leaf, entries = self._read_node(page_no)
            for box, payload in entries:
                if not box.intersects(query):
                    continue
                if is_leaf:
                    results.append((box, payload))
                else:
                    stack.append(payload)
        return results

    def all_entries(self) -> Iterable[tuple[Box3, int]]:
        """Iterate every leaf entry (for tests and rebuilds)."""
        stack = [self._root]
        while stack:
            page_no = stack.pop()
            is_leaf, entries = self._read_node(page_no)
            for box, payload in entries:
                if is_leaf:
                    yield (box, payload)
                else:
                    stack.append(payload)

    # -- insertion ---------------------------------------------------------------------

    def insert(self, box: Box3, value: int) -> None:
        """Insert one ``(box, value)`` pair with the R* heuristics."""
        self._space = box if self._space is None else self._space.union(box)
        self._reinserted_levels: set[int] = set()
        self._insert_entry((box, value), target_level=1)
        self._count += 1
        self._save_meta()

    def _insert_entry(
        self, entry: tuple[Box3, int], target_level: int
    ) -> None:
        """Insert ``entry`` into a node at ``target_level`` (1 = leaf)."""
        path = self._choose_path(entry[0], target_level)
        page_no = path[-1]
        is_leaf, entries = self._read_node(page_no)
        entries.append(entry)
        if len(entries) <= self._capacity:
            self._write_node(page_no, is_leaf, entries)
            self._adjust_path(path)
            return
        self._overflow(path, is_leaf, entries, target_level)

    def _choose_path(self, box: Box3, target_level: int) -> list[int]:
        """Page numbers from the root to the chosen node at
        ``target_level`` (levels count 1 at the leaves)."""
        path = [self._root]
        level = self._height
        while level > target_level:
            page_no = path[-1]
            _, entries = self._read_node(page_no)
            if not entries:
                raise IndexError_("internal node with no entries")
            if level - 1 == 1:
                chosen = self._least_overlap_child(entries, box)
            else:
                chosen = self._least_enlargement_child(entries, box)
            path.append(chosen)
            level -= 1
        return path

    @staticmethod
    def _least_enlargement_child(
        entries: list[tuple[Box3, int]], box: Box3
    ) -> int:
        best = None
        best_key = None
        for child_box, child in entries:
            key = (child_box.enlargement(box), child_box.volume)
            if best_key is None or key < best_key:
                best_key = key
                best = child
        if best is None:
            raise InvariantError("ChooseSubtree saw an empty entry list")
        return best

    @staticmethod
    def _least_overlap_child(
        entries: list[tuple[Box3, int]], box: Box3
    ) -> int:
        """R* ChooseSubtree at the level above the leaves: minimise
        overlap enlargement, tie-break on volume enlargement."""
        best = None
        best_key = None
        for i, (child_box, child) in enumerate(entries):
            grown = child_box.union(box)
            overlap_before = 0.0
            overlap_after = 0.0
            for j, (other_box, _) in enumerate(entries):
                if i == j:
                    continue
                overlap_before += child_box.intersection_volume(other_box)
                overlap_after += grown.intersection_volume(other_box)
            key = (
                overlap_after - overlap_before,
                child_box.enlargement(box),
                child_box.volume,
            )
            if best_key is None or key < best_key:
                best_key = key
                best = child
        if best is None:
            raise InvariantError("ChooseSubtree saw an empty entry list")
        return best

    def _adjust_path(self, path: list[int]) -> None:
        """Recompute parent MBRs bottom-up along ``path``."""
        for depth in range(len(path) - 2, -1, -1):
            parent_no = path[depth]
            child_no = path[depth + 1]
            _, child_entries = self._read_node(child_no)
            child_box = union_all_boxes([b for b, _ in child_entries])
            is_leaf, parent_entries = self._read_node(parent_no)
            changed = False
            for i, (box, payload) in enumerate(parent_entries):
                if payload == child_no:
                    if box.as_tuple() != child_box.as_tuple():
                        parent_entries[i] = (child_box, payload)
                        changed = True
                    break
            if changed:
                self._write_node(parent_no, is_leaf, parent_entries)

    def _overflow(
        self,
        path: list[int],
        is_leaf: bool,
        entries: list[tuple[Box3, int]],
        level: int,
    ) -> None:
        page_no = path[-1]
        is_root = page_no == self._root
        if not is_root and level not in self._reinserted_levels:
            self._reinserted_levels.add(level)
            self._forced_reinsert(path, is_leaf, entries, level)
            return
        self._split(path, is_leaf, entries, level)

    def _forced_reinsert(
        self,
        path: list[int],
        is_leaf: bool,
        entries: list[tuple[Box3, int]],
        level: int,
    ) -> None:
        page_no = path[-1]
        center_box = union_all_boxes([b for b, _ in entries])
        cx, cy, ce = center_box.center
        entries.sort(
            key=lambda ent: _center_distance_sq(ent[0], cx, cy, ce),
            reverse=True,
        )
        k = max(1, int(len(entries) * _REINSERT_FRACTION))
        removed = entries[:k]
        kept = entries[k:]
        self._write_node(page_no, is_leaf, kept)
        self._adjust_path(path)
        # Re-insert far entries (close reinsert: nearest first).
        for entry in reversed(removed):
            self._insert_entry(entry, target_level=level)

    def _split(
        self,
        path: list[int],
        is_leaf: bool,
        entries: list[tuple[Box3, int]],
        level: int,
    ) -> None:
        group_a, group_b = self._rstar_split(entries)
        page_no = path[-1]
        self._write_node(page_no, is_leaf, group_a)
        new_no, new_buf = self._segment.allocate()
        self._write_node(new_no, is_leaf, group_b, buf=new_buf)
        box_a = union_all_boxes([b for b, _ in group_a])
        box_b = union_all_boxes([b for b, _ in group_b])

        if page_no == self._root:
            root_no, root_buf = self._segment.allocate()
            self._write_node(
                root_no,
                False,
                [(box_a, page_no), (box_b, new_no)],
                buf=root_buf,
            )
            self._root = root_no
            self._height += 1
            self._save_meta()
            return

        parent_no = path[-2]
        p_is_leaf, parent_entries = self._read_node(parent_no)
        for i, (box, payload) in enumerate(parent_entries):
            if payload == page_no:
                parent_entries[i] = (box_a, page_no)
                break
        else:
            raise IndexError_("split child missing from parent")
        parent_entries.append((box_b, new_no))
        if len(parent_entries) <= self._capacity:
            self._write_node(parent_no, p_is_leaf, parent_entries)
            self._adjust_path(path[:-1])
            return
        self._overflow(path[:-1], p_is_leaf, parent_entries, level + 1)

    def _rstar_split(
        self, entries: list[tuple[Box3, int]]
    ) -> tuple[list[tuple[Box3, int]], list[tuple[Box3, int]]]:
        """R* split: pick the axis with minimum margin sum, then the
        distribution with minimum overlap (ties: minimum volume)."""
        m = self._min_entries
        best_axis_key = None
        best_axis_dists = None
        for axis in range(3):
            lo = sorted(entries, key=lambda ent: _axis_bounds(ent[0], axis)[0])
            hi = sorted(entries, key=lambda ent: _axis_bounds(ent[0], axis)[1])
            margin_sum = 0.0
            dists = []
            for ordering in (lo, hi):
                for k in range(m, len(entries) - m + 1):
                    left = ordering[:k]
                    right = ordering[k:]
                    box_l = union_all_boxes([b for b, _ in left])
                    box_r = union_all_boxes([b for b, _ in right])
                    margin_sum += box_l.margin + box_r.margin
                    dists.append((left, right, box_l, box_r))
            if best_axis_key is None or margin_sum < best_axis_key:
                best_axis_key = margin_sum
                best_axis_dists = dists
        if best_axis_dists is None:
            raise InvariantError(
                "R* split produced no candidate distributions",
                entries=len(entries),
            )
        best = None
        best_key = None
        for left, right, box_l, box_r in best_axis_dists:
            key = (box_l.intersection_volume(box_r), box_l.volume + box_r.volume)
            if best_key is None or key < best_key:
                best_key = key
                best = (left, right)
        if best is None:
            raise InvariantError("R* split chose no distribution")
        return best

    # -- deletion ----------------------------------------------------------------------

    def delete(self, box: Box3, value: int) -> bool:
        """Remove the leaf entry ``(box, value)``; returns whether it
        was found.

        Standard R-tree deletion with CondenseTree: the entry's leaf
        is located by overlap search; if removal leaves the leaf
        underfull, the leaf is dissolved and its remaining entries
        re-inserted; ancestors' MBRs shrink along the way.
        """
        path = self._find_entry(self._root, [], box, value)
        if path is None:
            return False
        leaf_no = path[-1]
        _, entries = self._read_node(leaf_no)
        entries = [
            (b, v)
            for b, v in entries
            if not (v == value and b.as_tuple() == box.as_tuple())
        ]
        self._count -= 1
        orphans: list[tuple[Box3, int]] = []
        if leaf_no != self._root and len(entries) < self._min_entries:
            # Dissolve the leaf; re-insert survivors afterwards.
            orphans = entries
            self._remove_child(path)
        else:
            self._write_node(leaf_no, True, entries)
            self._adjust_path(path)
        for orphan_box, orphan_value in orphans:
            self._reinserted_levels = set()
            self._insert_entry((orphan_box, orphan_value), target_level=1)
        # Shrink the root if it degenerated to a single internal child.
        self._collapse_root()
        self._space = None if self._count == 0 else self._space
        self._save_meta()
        return True

    def _find_entry(
        self,
        page_no: int,
        path: list[int],
        box: Box3,
        value: int,
    ) -> list[int] | None:
        path = path + [page_no]
        is_leaf, entries = self._read_node(page_no)
        if is_leaf:
            for entry_box, payload in entries:
                if payload == value and entry_box.as_tuple() == box.as_tuple():
                    return path
            return None
        for entry_box, child in entries:
            if entry_box.contains_box(box):
                found = self._find_entry(child, path, box, value)
                if found is not None:
                    return found
        return None

    def _remove_child(self, path: list[int]) -> None:
        """Drop ``path[-1]`` from its parent, condensing upwards."""
        child_no = path[-1]
        parent_no = path[-2]
        p_is_leaf, parent_entries = self._read_node(parent_no)
        parent_entries = [
            (b, c) for b, c in parent_entries if c != child_no
        ]
        if (
            parent_no != self._root
            and len(parent_entries) < 2
            and len(path) >= 3
        ):
            # Parent now too small: dissolve it too, hoisting its
            # remaining child subtree entries via re-insertion.
            for b, c in parent_entries:
                self._reinsert_subtree(c, self._height - (len(path) - 1))
            self._remove_child(path[:-1])
            return
        self._write_node(parent_no, p_is_leaf, parent_entries)
        self._adjust_path(path[:-1])

    def _reinsert_subtree(self, page_no: int, level: int) -> None:
        is_leaf, entries = self._read_node(page_no)
        if is_leaf:
            for box, value in entries:
                self._reinserted_levels = set()
                self._insert_entry((box, value), target_level=1)
        else:
            for _, child in entries:
                self._reinsert_subtree(child, level - 1)

    def _collapse_root(self) -> None:
        while True:
            is_leaf, entries = self._read_node(self._root)
            if is_leaf or len(entries) != 1:
                return
            self._root = entries[0][1]
            self._height -= 1

    # -- bulk loading ------------------------------------------------------------------

    def bulk_load(self, entries: Sequence[tuple[Box3, int]]) -> None:
        """Replace the tree contents by STR packing of ``entries``.

        Sort-Tile-Recursive: sort by x-centre, slice into vertical
        slabs, sort each slab by y-centre, slice again, then by
        e-centre, emitting full nodes; repeat on the node MBRs until a
        single root remains.
        """
        if self._count:
            raise IndexError_("bulk_load requires an empty tree")
        if not entries:
            return
        fill = max(2, int(self._capacity * 0.85))
        level_entries = list(entries)
        is_leaf = True
        level = 1
        while True:
            groups = _str_pack(level_entries, fill)
            next_level: list[tuple[Box3, int]] = []
            pages: list[int] = []
            for group in groups:
                page_no, buf = self._segment.allocate()
                self._write_node(page_no, is_leaf, group, buf=buf)
                next_level.append(
                    (union_all_boxes([b for b, _ in group]), page_no)
                )
                pages.append(page_no)
            if len(next_level) == 1:
                self._root = next_level[0][1]
                self._height = level
                break
            level_entries = next_level
            is_leaf = False
            level += 1
        self._count = len(entries)
        self._space = union_all_boxes([b for b, _ in entries])
        self._save_meta()

    # -- cost-model statistics ---------------------------------------------------------

    def node_stats(self) -> RTreeNodeStats:
        """Aggregate normalised node extents for the paper's cost model."""
        space = self._space
        if space is None:
            raise IndexError_("empty tree has no node statistics")
        ex = space.width or 1.0
        ey = space.height or 1.0
        ez = space.depth or 1.0
        n = 0
        sw = sh = sd = swh = swd = shd = swhd = 0.0
        stack = [self._root]
        while stack:
            page_no = stack.pop()
            is_leaf, entries = self._read_node(page_no)
            if entries:
                box = union_all_boxes([b for b, _ in entries])
                w = box.width / ex
                h = box.height / ey
                d = box.depth / ez
                n += 1
                sw += w
                sh += h
                sd += d
                swh += w * h
                swd += w * d
                shd += h * d
                swhd += w * h * d
            if not is_leaf:
                stack.extend(child for _, child in entries)
        return RTreeNodeStats(n, sw, sh, sd, swh, swd, shd, swhd, space)

    # -- validation --------------------------------------------------------------------

    def validate(self) -> None:
        """Check MBR containment, fill factors, and uniform leaf depth."""
        leaf_depths: set[int] = set()

        def recurse(page_no: int, depth: int, bound: Box3 | None) -> None:
            is_leaf, entries = self._read_node(page_no)
            if page_no != self._root and len(entries) < 2:
                raise IndexError_(f"underfull node {page_no}")
            for box, payload in entries:
                if bound is not None and not bound.contains_box(box):
                    raise IndexError_(
                        f"entry box escapes parent MBR at page {page_no}"
                    )
                if not is_leaf:
                    recurse(payload, depth + 1, box)
            if is_leaf:
                leaf_depths.add(depth)

        recurse(self._root, 1, None)
        if len(leaf_depths) > 1:
            raise IndexError_(f"leaves at multiple depths: {leaf_depths}")
        if leaf_depths and leaf_depths.pop() != self._height:
            raise IndexError_("height metadata does not match leaf depth")


def _axis_bounds(box: Box3, axis: int) -> tuple[float, float]:
    if axis == 0:
        return (box.min_x, box.max_x)
    if axis == 1:
        return (box.min_y, box.max_y)
    return (box.min_e, box.max_e)


def _center_distance_sq(box: Box3, cx: float, cy: float, ce: float) -> float:
    x, y, e = box.center
    return (x - cx) ** 2 + (y - cy) ** 2 + (e - ce) ** 2


def str_order(boxes: Sequence[Box3], capacity: int | None = None) -> list[int]:
    """The STR packing order of ``boxes`` as an index permutation.

    Storing heap records in this order makes the heap *clustered by
    the R-tree*: each leaf node's RIDs land on contiguous pages, so a
    range query's record fetches touch ~``results / records_per_page``
    pages instead of scattering.  ``capacity`` should match the leaf
    fill used by :meth:`RStarTree.bulk_load` (its default when None).
    """
    if capacity is None:
        page = 8192  # DEFAULT_PAGE_SIZE; local to avoid import cycle.
        capacity = max(2, int(((page - _NODE_HEADER.size) // _ENTRY.size) * 0.85))
    entries = [(box, i) for i, box in enumerate(boxes)]
    groups = _str_pack(entries, capacity)
    return [idx for group in groups for _, idx in group]


def _str_pack(
    entries: list[tuple[Box3, int]], fill: int
) -> list[list[tuple[Box3, int]]]:
    """Group entries into nodes by sort-tile-recursive tiling."""
    n = len(entries)
    n_nodes = math.ceil(n / fill)
    if n_nodes <= 1:
        return [list(entries)]
    # Number of vertical slabs: cube-root tiling over three dims.
    slabs_x = max(1, round(n_nodes ** (1 / 3)))
    per_slab_nodes = math.ceil(n_nodes / slabs_x)
    slab_size = math.ceil(n / slabs_x)
    by_x = sorted(entries, key=lambda ent: ent[0].center[0])
    groups: list[list[tuple[Box3, int]]] = []
    for sx in range(0, n, slab_size):
        slab = by_x[sx : sx + slab_size]
        runs_y = max(1, round(math.sqrt(per_slab_nodes)))
        run_size = math.ceil(len(slab) / runs_y)
        by_y = sorted(slab, key=lambda ent: ent[0].center[1])
        for sy in range(0, len(slab), run_size):
            run = by_y[sy : sy + run_size]
            by_e = sorted(run, key=lambda ent: ent[0].center[2])
            run_groups = [
                by_e[se : se + fill] for se in range(0, len(run), fill)
            ]
            # A trailing singleton would violate the min-fill invariant
            # (and R-tree validation); rebalance it from its neighbour.
            if len(run_groups) >= 2 and len(run_groups[-1]) < 2:
                run_groups[-1].insert(0, run_groups[-2].pop())
            groups.extend(run_groups)
    return groups
