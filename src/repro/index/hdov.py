"""The HDoV-tree baseline (Shou, Huang, Tan — ICDE 2003).

A LOD-R-tree extended with per-node *degree of visibility* (DoV).
Following the paper's evaluation setup (Section 6): "The terrain is
partitioned into grids, which serve as the objects in the HDoV tree.
Visibility data is stored using the 'indexed-vertical storage scheme'
... No additional spatial index is used with the HDoV tree."

Structure (after Kofler's LOD-R-tree, which HDoV extends):

* the terrain is cut into a ``G x G`` grid of tiles — the leaf
  objects, each storing its **full-resolution** mesh;
* internal nodes (2 x 2 groupings up to the root) each store one
  *generalised* mesh of their whole region at a LOD tied to their
  height — LOD granularity equals tree height, one of the two
  granularity problems the Direct Mesh paper calls out;
* each stored mesh is a self-contained renderable unit: point records
  **plus an explicit triangle list** (unlike PM/DM, this structure has
  no other way to convey topology), laid out as a contiguous page run
  whose extent is recorded in the tree node — the indexed-vertical
  storage that lets a query read exactly one version;
* every node carries a DoV estimate
  (:mod:`repro.index.visibility`); occluded nodes are skipped and
  low-visibility nodes served at coarser LOD.

A query descends from the root and stops at the first node whose mesh
satisfies the (visibility-adjusted) required LOD, reading that node's
**entire** mesh — the whole-object granularity the Direct Mesh paper
criticises ("entire node needs to be retrieved even if only a small
part of the area covered by the node is needed").

``use_visibility=False`` yields the plain LOD-R-tree
(:class:`LodRTree`), also part of the system inventory.
"""

from __future__ import annotations

import json
import math
import struct
from dataclasses import dataclass, field

from repro.core.reconstruct import mesh_triangles
from repro.errors import IndexError_, QueryError, StorageError
from repro.geometry.plane import QueryPlane
from repro.geometry.primitives import Rect
from repro.index.visibility import default_viewpoints, tile_visibility
from repro.mesh.progressive import PMNode, ProgressiveMesh
from repro.storage.database import Database, Segment
from repro.storage.record import PM_RECORD_SIZE, decode_pm_node, encode_pm_node
from repro.terrain.gridfield import GridField

__all__ = ["HDoVTree", "HDoVQueryResult", "LodRTree"]

_META_FILE = "hdov_meta.json"

_NODE_FIXED = struct.Struct("<BBHxxd4d")
_CHILD = struct.Struct("<I")
_VERSION = struct.Struct("<dIIII")
_DATA_HEADER = struct.Struct("<H")
_TRIANGLE = struct.Struct("<3i")

#: DoV below which a node is treated as fully occluded.
_OCCLUDED_DOV = 0.02
#: Floor applied when dividing by DoV for LOD relaxation.
_DOV_FLOOR = 0.05


@dataclass
class HDoVQueryResult:
    """Result of an HDoV-tree query.

    Attributes:
        nodes: approximation nodes inside the ROI, keyed by id.
        triangles: triangles of the fetched tile meshes (clipped to
            those with at least one vertex in the ROI).
        versions_read: number of node meshes fetched.
        records_scanned: total point records decoded (the fetched
            granularity; compare with ``len(nodes)`` for waste).
        skipped_occluded: nodes skipped because DoV ~ 0.
    """

    nodes: dict[int, PMNode] = field(default_factory=dict)
    triangles: list[tuple[int, int, int]] = field(default_factory=list)
    versions_read: int = 0
    records_scanned: int = 0
    skipped_occluded: int = 0

    def __len__(self) -> int:
        return len(self.nodes)


@dataclass(frozen=True)
class _Version:
    error: float
    start_page: int
    n_pages: int
    count: int
    n_triangles: int


@dataclass(frozen=True)
class _Node:
    page_no: int
    is_leaf: bool
    height: int
    mbr: Rect
    dov: float
    children: tuple[int, ...]
    version: _Version


class HDoVTree:
    """An HDoV-tree resident in a :class:`Database`."""

    def __init__(
        self,
        database: Database,
        tree_segment: Segment,
        data_segment: Segment,
        root_page: int,
        max_lod: float,
        thresholds: list[float],
        use_visibility: bool = True,
    ) -> None:
        self.database = database
        self._tree = tree_segment
        self._data = data_segment
        self._root = root_page
        self.max_lod = max_lod
        self.thresholds = thresholds
        self.use_visibility = use_visibility

    # -- construction -------------------------------------------------------

    @classmethod
    def build(
        cls,
        pm: ProgressiveMesh,
        field_raster: GridField | None,
        database: Database,
        connections: dict[int, list[int]] | None = None,
        prefix: str = "hdov",
        grid: int = 16,
        level_ratio: float = 4.0,
        use_visibility: bool = True,
    ) -> "HDoVTree":
        """Build the HDoV-tree from a normalised PM.

        Args:
            pm: the progressive mesh.
            field_raster: terrain raster for visibility sampling (may
                be ``None``; DoV defaults to 1.0 everywhere).
            connections: similar-LOD connection lists, used only at
                *build* time to triangulate the per-node meshes (the
                original system builds them during simplification).
                Triangles are omitted when not supplied.
            grid: tiles per side (power of two).
            level_ratio: error ratio between consecutive tree levels.
        """
        if grid < 2 or grid & (grid - 1):
            raise IndexError_(f"grid must be a power of two >= 2, got {grid}")
        if not pm.is_normalized:
            raise QueryError("progressive mesh must be normalised")
        max_lod = pm.max_lod()
        height = int(math.log2(grid))
        # thresholds[h] = LOD of the mesh stored at height h; leaves
        # (h = 0) store full resolution.
        thresholds = [0.0] + [
            max_lod / (level_ratio ** (height - h)) for h in range(1, height + 1)
        ]

        tree_seg = database.segment(f"{prefix}_tree")
        data_seg = database.segment(f"{prefix}_data")
        builder = _Builder(
            pm,
            field_raster if use_visibility else None,
            tree_seg,
            data_seg,
            grid,
            thresholds,
            connections,
        )
        root_page = builder.run()
        meta = {
            "root": root_page,
            "max_lod": max_lod,
            "thresholds": thresholds,
            "use_visibility": use_visibility,
        }
        with open(database.path / f"{prefix}_{_META_FILE}", "w",
                  encoding="ascii") as f:
            json.dump(meta, f)
        database.buffer.flush_dirty()
        return cls(
            database, tree_seg, data_seg, root_page, max_lod, thresholds,
            use_visibility,
        )

    @classmethod
    def open(cls, database: Database, prefix: str = "hdov") -> "HDoVTree":
        """Open a previously built tree."""
        meta_path = database.path / f"{prefix}_{_META_FILE}"
        if not meta_path.exists():
            raise StorageError(f"no HDoV tree at {meta_path}")
        with open(meta_path, "r", encoding="ascii") as f:
            meta = json.load(f)
        return cls(
            database,
            database.segment(f"{prefix}_tree"),
            database.segment(f"{prefix}_data"),
            meta["root"],
            meta["max_lod"],
            meta["thresholds"],
            meta.get("use_visibility", True),
        )

    # -- node access ----------------------------------------------------------

    def _read_node(self, page_no: int) -> _Node:
        buf = self._tree.fetch(page_no)
        (
            is_leaf,
            height,
            n_children,
            dov,
            mx0,
            my0,
            mx1,
            my1,
        ) = _NODE_FIXED.unpack_from(buf, 0)
        offset = _NODE_FIXED.size
        children = []
        for _ in range(n_children):
            (child,) = _CHILD.unpack_from(buf, offset)
            children.append(child)
            offset += _CHILD.size
        error, start, pages, count, n_tris = _VERSION.unpack_from(buf, offset)
        return _Node(
            page_no,
            bool(is_leaf),
            height,
            Rect(mx0, my0, mx1, my1),
            dov,
            tuple(children),
            _Version(error, start, pages, count, n_tris),
        )

    def _read_version(
        self, version: _Version, roi: Rect, result: HDoVQueryResult
    ) -> None:
        """Fetch an entire node mesh (points then triangles)."""
        result.versions_read += 1
        rec_per_page = (self._data.payload_size - _DATA_HEADER.size) // PM_RECORD_SIZE
        point_pages = -(-version.count // rec_per_page) if version.count else 0
        in_roi: set[int] = set()
        for i in range(version.n_pages):
            page_no = version.start_page + i
            buf = self._data.fetch(page_no)
            (count,) = _DATA_HEADER.unpack_from(buf, 0)
            offset = _DATA_HEADER.size
            if i < point_pages:
                for _ in range(count):
                    record = decode_pm_node(
                        bytes(buf[offset : offset + PM_RECORD_SIZE])
                    )
                    offset += PM_RECORD_SIZE
                    result.records_scanned += 1
                    if roi.contains_point(record.x, record.y):
                        result.nodes[record.id] = record
                        in_roi.add(record.id)
            else:
                for _ in range(count):
                    a, b, c = _TRIANGLE.unpack_from(buf, offset)
                    offset += _TRIANGLE.size
                    if a in in_roi or b in in_roi or c in in_roi:
                        result.triangles.append((a, b, c))

    # -- queries -------------------------------------------------------------------

    def uniform_query(self, roi: Rect, lod: float) -> HDoVQueryResult:
        """Viewpoint-independent query: descend until LOD sufficient."""
        result = HDoVQueryResult()
        self._descend(self._root, roi, lambda region: lod, result)
        return result

    def viewdep_query(self, plane: QueryPlane) -> HDoVQueryResult:
        """Viewpoint-dependent query with visibility-based selection."""

        def required(region: Rect) -> float:
            lo, _ = plane.lod_range_over(region)
            return lo

        result = HDoVQueryResult()
        self._descend(self._root, plane.roi, required, result)
        return result

    def _descend(self, page_no: int, roi: Rect, required, result) -> None:
        node = self._read_node(page_no)
        region = node.mbr.intersection(roi)
        if region is None:
            return
        if self.use_visibility and node.dov <= _OCCLUDED_DOV:
            result.skipped_occluded += 1
            return
        req = required(region)
        if self.use_visibility:
            # Low visibility tolerates a coarser mesh.
            req = req / max(node.dov, _DOV_FLOOR)
        if node.version.error <= req or node.is_leaf:
            self._read_version(node.version, roi, result)
            return
        for child in node.children:
            self._descend(child, roi, required, result)


class LodRTree(HDoVTree):
    """The plain LOD-R-tree (Kofler): HDoV without visibility."""

    @classmethod
    def build(cls, pm, field_raster, database, prefix="lodrt", **kwargs):
        kwargs["use_visibility"] = False
        return super().build(pm, None, database, prefix=prefix, **kwargs)


class _RecordView:
    """Adapter giving :func:`mesh_triangles` what it needs from PMNodes."""

    __slots__ = ("x", "y", "connections")

    def __init__(self, node: PMNode, connections: list[int]) -> None:
        self.x = node.x
        self.y = node.y
        self.connections = connections


class _Builder:
    """One-shot HDoV construction state."""

    def __init__(
        self,
        pm: ProgressiveMesh,
        field_raster: GridField | None,
        tree_seg: Segment,
        data_seg: Segment,
        grid: int,
        thresholds: list[float],
        connections: dict[int, list[int]] | None,
    ) -> None:
        self._pm = pm
        self._raster = field_raster
        self._tree = tree_seg
        self._data = data_seg
        self._grid = grid
        self._thresholds = thresholds
        self._bounds = Rect.from_points(n for n in pm.nodes)
        self._records_per_page = (
            data_seg.payload_size - _DATA_HEADER.size
        ) // PM_RECORD_SIZE
        self._tris_per_page = (
            data_seg.payload_size - _DATA_HEADER.size
        ) // _TRIANGLE.size
        # Per level: the cut's node buckets by tile and its triangles
        # bucketed by centroid tile.
        self._buckets: dict[tuple[int, int, int], list[int]] = {}
        self._tri_buckets: dict[tuple[int, int, int], list[tuple[int, int, int]]] = {}
        for level, threshold in enumerate(thresholds):
            cut = pm.uniform_cut(threshold)
            for node_id in cut:
                node = pm.node(node_id)
                ix, iy = self._tile_of(node.x, node.y)
                self._buckets.setdefault((level, ix, iy), []).append(node_id)
            if connections is not None:
                view = {
                    nid: _RecordView(pm.node(nid), connections.get(nid, []))
                    for nid in cut
                }
                for tri in mesh_triangles(view):
                    ax = sum(pm.node(v).x for v in tri) / 3
                    ay = sum(pm.node(v).y for v in tri) / 3
                    ix, iy = self._tile_of(ax, ay)
                    self._tri_buckets.setdefault((level, ix, iy), []).append(tri)
        self._viewpoints = (
            default_viewpoints(self._raster) if self._raster else []
        )

    def _tile_of(self, x: float, y: float) -> tuple[int, int]:
        g = self._grid
        b = self._bounds
        ix = int((x - b.min_x) / (b.width or 1.0) * g)
        iy = int((y - b.min_y) / (b.height or 1.0) * g)
        return (min(max(ix, 0), g - 1), min(max(iy, 0), g - 1))

    def _tile_rect(self, ix: int, iy: int, span: int = 1) -> Rect:
        b = self._bounds
        w = b.width / self._grid
        h = b.height / self._grid
        return Rect(
            b.min_x + ix * w,
            b.min_y + iy * h,
            b.min_x + (ix + span) * w,
            b.min_y + (iy + span) * h,
        )

    def run(self) -> int:
        """Build everything; returns the root page number."""
        if self._data.n_pages == 0:
            self._data.allocate()  # Page 0 stays a null sentinel.
        grid = self._grid
        current: dict[tuple[int, int], int] = {}
        for ix in range(grid):
            for iy in range(grid):
                current[(ix, iy)] = self._write_tile(ix, iy, 0, 1, [])
        height = 1
        span = 2
        while grid > 1:
            next_level: dict[tuple[int, int], int] = {}
            for ix in range(0, grid, 2):
                for iy in range(0, grid, 2):
                    children = [
                        current[(cx, cy)]
                        for cx in (ix, ix + 1)
                        for cy in (iy, iy + 1)
                        if (cx, cy) in current
                    ]
                    next_level[(ix // 2, iy // 2)] = self._write_tile(
                        ix * span // 2,
                        iy * span // 2,
                        height,
                        span,
                        children,
                    )
            current = next_level
            grid //= 2
            span *= 2
            height += 1
        return current[(0, 0)]

    # -- node writers ----------------------------------------------------------

    def _write_tile(
        self, ix: int, iy: int, height: int, span: int, children: list[int]
    ) -> int:
        rect = self._tile_rect(ix, iy, span)
        level = min(len(self._thresholds) - 1, height)
        ids: list[int] = []
        tris: list[tuple[int, int, int]] = []
        for tx in range(ix, ix + span):
            for ty in range(iy, iy + span):
                ids.extend(self._buckets.get((level, tx, ty), []))
                tris.extend(self._tri_buckets.get((level, tx, ty), []))
        version = self._write_version(level, ids, tris)
        dov = self._estimate_dov(rect)
        return self._write_node(not children, height, rect, dov, children, version)

    def _estimate_dov(self, rect: Rect) -> float:
        if self._raster is None:
            return 1.0
        return tile_visibility(self._raster, rect, self._viewpoints)

    def _write_version(
        self, level: int, ids: list[int], tris: list[tuple[int, int, int]]
    ) -> _Version:
        start = self._data.n_pages
        n_pages = 0
        for chunk_start in range(0, len(ids), self._records_per_page):
            chunk = ids[chunk_start : chunk_start + self._records_per_page]
            page_no, buf = self._data.allocate()
            _DATA_HEADER.pack_into(buf, 0, len(chunk))
            offset = _DATA_HEADER.size
            for node_id in chunk:
                payload = encode_pm_node(self._pm.node(node_id))
                buf[offset : offset + PM_RECORD_SIZE] = payload
                offset += PM_RECORD_SIZE
            self._data.mark_dirty(page_no)
            n_pages += 1
        for chunk_start in range(0, len(tris), self._tris_per_page):
            chunk = tris[chunk_start : chunk_start + self._tris_per_page]
            page_no, buf = self._data.allocate()
            _DATA_HEADER.pack_into(buf, 0, len(chunk))
            offset = _DATA_HEADER.size
            for a, b, c in chunk:
                _TRIANGLE.pack_into(buf, offset, a, b, c)
                offset += _TRIANGLE.size
            self._data.mark_dirty(page_no)
            n_pages += 1
        return _Version(
            self._thresholds[level], start, n_pages, len(ids), len(tris)
        )

    def _write_node(
        self,
        is_leaf: bool,
        height: int,
        mbr: Rect,
        dov: float,
        children: list[int],
        version: _Version,
    ) -> int:
        page_no, buf = self._tree.allocate()
        _NODE_FIXED.pack_into(
            buf,
            0,
            1 if is_leaf else 0,
            height,
            len(children),
            dov,
            mbr.min_x,
            mbr.min_y,
            mbr.max_x,
            mbr.max_y,
        )
        offset = _NODE_FIXED.size
        for child in children:
            _CHILD.pack_into(buf, offset, child)
            offset += _CHILD.size
        _VERSION.pack_into(
            buf,
            offset,
            version.error,
            version.start_page,
            version.n_pages,
            version.count,
            version.n_triangles,
        )
        self._tree.mark_dirty(page_no)
        return page_no
