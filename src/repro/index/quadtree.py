"""The LOD-quadtree (Xu, ADC 2003): a 3D adaptive quadtree.

The strongest pre-existing index for PM data and the paper's main
comparator: PM nodes are indexed as *points* ``(x, y, e)`` — position
plus LOD value — and the selective-refinement query becomes a 3D range
query.  The quadtree is *adaptive* because terrain points are roughly
uniform in ``(x, y)`` but severely skewed in the LOD dimension
(paper Section 3): a node whose point population spans a large
normalised LOD extent splits at the local **median LOD** (a binary,
skew-adapted split), otherwise it splits into four ``(x, y)``
quadrants at the box midpoint.

The known weakness the paper exploits — internal PM nodes are treated
as points rather than footprint boxes, so ancestors lying outside the
query region must be chased with follow-up point queries — is
reproduced faithfully by the PM baseline in
:mod:`repro.baselines.pm_db`.

One tree node per page; page 0 is metadata.
"""

from __future__ import annotations

import struct
from typing import Sequence

from repro.errors import IndexError_, InvariantError
from repro.geometry.primitives import Box3
from repro.storage.database import Segment

__all__ = ["LodQuadtree"]

_META = struct.Struct("<4sIQ6d")
_MAGIC = b"LQT1"
_HEADER = struct.Struct("<BH")
_POINT = struct.Struct("<3dQ")
_XY_SPLIT = struct.Struct("<2d4I")
_E_SPLIT = struct.Struct("<d2I")

_LEAF = 0
_INTERNAL_XY = 1
_INTERNAL_E = 2
_CHAIN = 3  # Overflow chain for indivisible point populations.

#: A node whose points span more than this fraction of the data-space
#: LOD extent (relative to its larger xy spread) splits on LOD first.
_E_SKEW_RATIO = 1.0


class LodQuadtree:
    """An adaptive ``(x, y, e)`` quadtree stored in one segment.

    Build with :meth:`bulk_load`; query with :meth:`range_search`.
    """

    def __init__(self, segment: Segment) -> None:
        self._segment = segment
        self._leaf_cap = (segment.payload_size - _HEADER.size) // _POINT.size
        if segment.n_pages == 0:
            meta_no, _ = segment.allocate()
            if meta_no != 0:
                raise IndexError_("meta page must be page 0")
            self._root = 0  # No root yet.
            self._count = 0
            self._space: Box3 | None = None
            self._save_meta()
        else:
            self._load_meta()

    # -- metadata ------------------------------------------------------------

    def _load_meta(self) -> None:
        buf = self._segment.fetch(0)
        magic, root, count, x0, y0, e0, x1, y1, e1 = _META.unpack_from(buf, 0)
        if magic != _MAGIC:
            raise IndexError_(
                f"segment {self._segment.name} is not a LOD-quadtree"
            )
        self._root = root
        self._count = count
        self._space = Box3(x0, y0, e0, x1, y1, e1) if count else None

    def _save_meta(self) -> None:
        buf = self._segment.fetch(0)
        space = self._space or Box3(0, 0, 0, 0, 0, 0)
        _META.pack_into(
            buf,
            0,
            _MAGIC,
            self._root,
            self._count,
            space.min_x,
            space.min_y,
            space.min_e,
            space.max_x,
            space.max_y,
            space.max_e,
        )
        self._segment.mark_dirty(0)

    # -- properties ---------------------------------------------------------------

    def __len__(self) -> int:
        return self._count

    @property
    def leaf_capacity(self) -> int:
        """Points per leaf page."""
        return self._leaf_cap

    @property
    def data_space(self) -> Box3 | None:
        """MBR of the loaded points."""
        return self._space

    # -- bulk build --------------------------------------------------------------------

    def bulk_load(
        self, points: Sequence[tuple[float, float, float, int]]
    ) -> None:
        """Build the tree from ``(x, y, e, value)`` tuples."""
        if self._count:
            raise IndexError_("bulk_load requires an empty tree")
        if not points:
            return
        xs = [p[0] for p in points]
        ys = [p[1] for p in points]
        es = [p[2] for p in points]
        self._space = Box3(min(xs), min(ys), min(es), max(xs), max(ys), max(es))
        self._root = self._build(list(points), self._space)
        self._count = len(points)
        self._save_meta()

    def _build(
        self,
        points: list[tuple[float, float, float, int]],
        box: Box3,
    ) -> int:
        if len(points) <= self._leaf_cap:
            return self._write_leaf(points)
        if self._space is None:
            raise InvariantError("quadtree build entered _build with no space box")
        # Normalised extents of the *population*, not the box: this is
        # the adaptivity to LOD skew.
        es = [p[2] for p in points]
        e_extent = (max(es) - min(es)) / (self._space.depth or 1.0)
        x_extent = box.width / (self._space.width or 1.0)
        y_extent = box.height / (self._space.height or 1.0)
        if e_extent >= _E_SKEW_RATIO * max(x_extent, y_extent):
            # Binary split at the median LOD.
            es_sorted = sorted(es)
            ce = es_sorted[len(es_sorted) // 2]
            if ce <= box.min_e or ce >= box.max_e:
                ce = (box.min_e + box.max_e) / 2
            low = [p for p in points if p[2] < ce]
            high = [p for p in points if p[2] >= ce]
            if not low or not high:
                return self._write_leaf_chain(points)
            lo_no = self._build(
                low, Box3(box.min_x, box.min_y, box.min_e, box.max_x, box.max_y, ce)
            )
            hi_no = self._build(
                high, Box3(box.min_x, box.min_y, ce, box.max_x, box.max_y, box.max_e)
            )
            page_no, buf = self._segment.allocate()
            _HEADER.pack_into(buf, 0, _INTERNAL_E, 2)
            _E_SPLIT.pack_into(buf, _HEADER.size, ce, lo_no, hi_no)
            self._segment.mark_dirty(page_no)
            return page_no
        # Quadrant split at the box midpoint.
        cx = (box.min_x + box.max_x) / 2
        cy = (box.min_y + box.max_y) / 2
        quads: list[list[tuple[float, float, float, int]]] = [[], [], [], []]
        for p in points:
            idx = (1 if p[0] >= cx else 0) | (2 if p[1] >= cy else 0)
            quads[idx].append(p)
        if sum(1 for q in quads if q) <= 1:
            return self._write_leaf_chain(points)
        child_boxes = (
            Box3(box.min_x, box.min_y, box.min_e, cx, cy, box.max_e),
            Box3(cx, box.min_y, box.min_e, box.max_x, cy, box.max_e),
            Box3(box.min_x, cy, box.min_e, cx, box.max_y, box.max_e),
            Box3(cx, cy, box.min_e, box.max_x, box.max_y, box.max_e),
        )
        children = [
            self._build(quads[i], child_boxes[i]) if quads[i] else 0
            for i in range(4)
        ]
        page_no, buf = self._segment.allocate()
        _HEADER.pack_into(buf, 0, _INTERNAL_XY, 4)
        _XY_SPLIT.pack_into(buf, _HEADER.size, cx, cy, *children)
        self._segment.mark_dirty(page_no)
        return page_no

    def _write_leaf(
        self, points: Sequence[tuple[float, float, float, int]]
    ) -> int:
        page_no, buf = self._segment.allocate()
        _HEADER.pack_into(buf, 0, _LEAF, len(points))
        offset = _HEADER.size
        for x, y, e, value in points:
            _POINT.pack_into(buf, offset, x, y, e, value)
            offset += _POINT.size
        self._segment.mark_dirty(page_no)
        return page_no

    def _write_leaf_chain(
        self, points: list[tuple[float, float, float, int]]
    ) -> int:
        """Indivisible population (e.g. identical coordinates): spill
        across leaf pages linked by chain nodes.  Chain nodes carry no
        split value — searches must visit both children — because the
        population cannot be partitioned spatially."""
        if len(points) <= self._leaf_cap:
            return self._write_leaf(points)
        head = points[: self._leaf_cap]
        rest = points[self._leaf_cap :]
        left = self._write_leaf(head)
        right = self._write_leaf_chain(rest)
        page_no, buf = self._segment.allocate()
        _HEADER.pack_into(buf, 0, _CHAIN, 2)
        _E_SPLIT.pack_into(buf, _HEADER.size, 0.0, left, right)
        self._segment.mark_dirty(page_no)
        return page_no

    # -- query -------------------------------------------------------------------------

    def range_search(self, query: Box3) -> list[tuple[float, float, float, int]]:
        """All ``(x, y, e, value)`` points inside the closed ``query`` box."""
        if self._count == 0 or self._space is None:
            return []
        results: list[tuple[float, float, float, int]] = []
        stack: list[tuple[int, Box3]] = [(self._root, self._space)]
        while stack:
            page_no, box = stack.pop()
            if not box.intersects(query):
                continue
            buf = self._segment.fetch(page_no)
            node_type, count = _HEADER.unpack_from(buf, 0)
            if node_type == _LEAF:
                offset = _HEADER.size
                for _ in range(count):
                    x, y, e, value = _POINT.unpack_from(buf, offset)
                    offset += _POINT.size
                    if query.contains_point(x, y, e):
                        results.append((x, y, e, value))
            elif node_type == _CHAIN:
                _, lo_no, hi_no = _E_SPLIT.unpack_from(buf, _HEADER.size)
                stack.append((lo_no, box))
                stack.append((hi_no, box))
            elif node_type == _INTERNAL_E:
                ce, lo_no, hi_no = _E_SPLIT.unpack_from(buf, _HEADER.size)
                stack.append(
                    (lo_no, Box3(box.min_x, box.min_y, box.min_e,
                                 box.max_x, box.max_y, ce))
                )
                stack.append(
                    (hi_no, Box3(box.min_x, box.min_y, ce,
                                 box.max_x, box.max_y, box.max_e))
                )
            else:
                cx, cy, c0, c1, c2, c3 = _XY_SPLIT.unpack_from(buf, _HEADER.size)
                child_boxes = (
                    Box3(box.min_x, box.min_y, box.min_e, cx, cy, box.max_e),
                    Box3(cx, box.min_y, box.min_e, box.max_x, cy, box.max_e),
                    Box3(box.min_x, cy, box.min_e, cx, box.max_y, box.max_e),
                    Box3(cx, cy, box.min_e, box.max_x, box.max_y, box.max_e),
                )
                for child, child_box in zip((c0, c1, c2, c3), child_boxes):
                    if child:
                        stack.append((child, child_box))
        return results

    def count_in_range(self, query: Box3) -> int:
        """Number of points inside ``query``."""
        return len(self.range_search(query))
