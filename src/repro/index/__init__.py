"""Index substrate: spatial and relational access methods.

* :class:`~repro.index.rstar.RStarTree` -- disk-backed 3D R*-tree
  (dynamic R* insertion + STR bulk load), the index Direct Mesh uses;
* :class:`~repro.index.btree.BPlusTree` -- id -> RID index;
* :class:`~repro.index.quadtree.LodQuadtree` -- Xu's 3D adaptive
  quadtree for PM data (the prior state of the art);
* :class:`~repro.index.hdov.HDoVTree` /
  :class:`~repro.index.hdov.LodRTree` -- the visibility-aware
  LOD-R-tree family (Shou et al. / Kofler);
* :mod:`repro.index.visibility` -- degree-of-visibility estimation.
"""

from repro.index.btree import BPlusTree
from repro.index.hdov import HDoVQueryResult, HDoVTree, LodRTree
from repro.index.quadtree import LodQuadtree
from repro.index.rstar import RStarTree, RTreeNodeStats
from repro.index.visibility import default_viewpoints, tile_visibility

__all__ = [
    "BPlusTree",
    "HDoVQueryResult",
    "HDoVTree",
    "LodQuadtree",
    "LodRTree",
    "RStarTree",
    "RTreeNodeStats",
    "default_viewpoints",
    "tile_visibility",
]
