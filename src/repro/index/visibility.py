"""Degree-of-visibility estimation for the HDoV-tree.

The HDoV-tree (Shou et al., ICDE 2003) annotates every tree node with
visibility information so occluded terrain can be skipped and barely
visible terrain fetched at a coarser LOD.  Their system precomputes
visibility per view cell; we estimate a per-tile **degree of
visibility** (DoV) by sampling line-of-sight rays from a set of
representative elevated viewpoints against the terrain raster.

On open terrain almost everything is visible, which reproduces the
paper's observation that "obstruction among the areas of the terrain
is not as much as in the synthetic city model" and hence HDoV's
visibility selection helps little — exactly the behaviour Figure 8
shows.
"""

from __future__ import annotations

from repro.geometry.primitives import Rect
from repro.terrain.gridfield import GridField

__all__ = ["default_viewpoints", "tile_visibility"]


def default_viewpoints(
    field: GridField, elevation_margin: float = 0.25, count: int = 4
) -> list[tuple[float, float, float]]:
    """Representative viewpoints: points around the terrain boundary,
    elevated a fraction of the relief above the local surface.

    Args:
        field: the terrain raster.
        elevation_margin: extra height as a fraction of total relief.
        count: number of viewpoints (max 4; corners are used in order).
    """
    bounds = field.bounds()
    z_min, z_max = field.elevation_range()
    lift = (z_max - z_min) * elevation_margin
    inset_x = bounds.width * 0.05
    inset_y = bounds.height * 0.05
    corners = [
        (bounds.min_x + inset_x, bounds.min_y + inset_y),
        (bounds.max_x - inset_x, bounds.max_y - inset_y),
        (bounds.min_x + inset_x, bounds.max_y - inset_y),
        (bounds.max_x - inset_x, bounds.min_y + inset_y),
    ]
    result = []
    for x, y in corners[: max(1, min(count, 4))]:
        result.append((x, y, field.sample(x, y) + lift))
    return result


def tile_visibility(
    field: GridField,
    tile: Rect,
    viewpoints: list[tuple[float, float, float]],
    samples_per_side: int = 3,
    los_steps: int = 32,
) -> float:
    """Average fraction of a tile's sample points visible from the
    viewpoints.

    Sample points form a ``samples_per_side x samples_per_side`` grid
    over the tile, each slightly above the surface (targets are
    terrain, not abstract points).
    """
    if not viewpoints:
        return 1.0
    z_min, z_max = field.elevation_range()
    lift = (z_max - z_min) * 0.01
    xs = [
        tile.min_x + (i + 0.5) * tile.width / samples_per_side
        for i in range(samples_per_side)
    ]
    ys = [
        tile.min_y + (j + 0.5) * tile.height / samples_per_side
        for j in range(samples_per_side)
    ]
    visible = 0
    total = 0
    for x in xs:
        for y in ys:
            target = (x, y, field.sample(x, y) + lift)
            for vp in viewpoints:
                total += 1
                if field.line_of_sight(vp, target, steps=los_steps):
                    visible += 1
    return visible / total if total else 1.0
